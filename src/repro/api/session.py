"""The one front door: a per-graph session with cached canonicalization.

The paper's pipeline — estimate vertex connectivity, build a CDS or
spanning packing, run broadcast/gossip/routing on top — is one coherent
object, but the free functions each re-canonicalize their ``nx.Graph``
argument through :class:`~repro.fastgraph.IndexedGraph` /
:class:`~repro.core.virtual_graph.CdsIndex`. A :class:`GraphSession`
canonicalizes **once** (from a graph, a ``family:args`` spec string, or
an edge list) and dispatches every task against the cached view:

>>> from repro.api import GraphSession
>>> session = GraphSession("harary:6,24")
>>> estimate = session.connectivity(seed=3)      # builds the index
>>> packing = session.pack_cds(seed=3)           # reuses it (and the
...                                              # estimate's packing)
>>> outcome = session.broadcast(messages=24, seed=3)  # still one index

Every method returns a typed :class:`~repro.api.envelope.Result`
envelope (graph fingerprint, seed, parameters, timings, JSON-clean
payload, plus the rich object in ``.raw``). Under a fixed seed each
method is bit-identical to the corresponding free function — the
session only *shares* the canonical index; it never changes an RNG
stream (``tests/test_api_session.py`` pins this).
"""

from __future__ import annotations

import hashlib
import time
from collections import OrderedDict
from dataclasses import asdict
from typing import Any, Dict, Hashable, Iterable, List, Optional, Tuple, Union

import networkx as nx

from repro.api.envelope import Result, encode_value
from repro.api.specs import parse_graph_spec
from repro.errors import GraphValidationError
from repro.utils.rng import RngLike

TopologyLike = Union[str, nx.Graph, Iterable[Tuple[Hashable, Hashable]]]

#: Tasks a batch :class:`~repro.api.batch.JobSpec` may name — exactly the
#: session methods returning envelopes.
SESSION_TASKS = (
    "connectivity",
    "pack_cds",
    "pack_spanning",
    "pack_integral",
    "broadcast",
    "gossip",
    "simulate",
)


def _coerce_topology(topology: TopologyLike) -> Tuple[nx.Graph, str]:
    """(graph, descriptor) from a spec string, graph, or edge list."""
    if isinstance(topology, str):
        return parse_graph_spec(topology), topology
    if isinstance(topology, nx.Graph):
        graph = topology
        return graph, (
            f"<graph n={graph.number_of_nodes()} m={graph.number_of_edges()}>"
        )
    if isinstance(topology, Iterable):
        graph = nx.Graph()
        graph.add_edges_from(topology)
        if graph.number_of_nodes() == 0:
            raise GraphValidationError("edge list produced an empty graph")
        return graph, (
            f"<edges n={graph.number_of_nodes()} m={graph.number_of_edges()}>"
        )
    raise GraphValidationError(
        f"cannot interpret topology {topology!r}; expected a graph spec "
        "string, an nx.Graph, or an iterable of edges"
    )


#: Default bound on a session's per-task result cache. Long-lived
#: processes (the ``repro serve`` daemon) hold sessions indefinitely, so
#: an unbounded cache is a leak; 256 envelopes comfortably covers any
#: interactive working set while keeping the worst case small.
DEFAULT_CACHE_LIMIT = 256


class GraphSession:
    """Canonicalize a graph once; run the whole pipeline against it.

    Cached across calls: the :class:`~repro.fastgraph.IndexedGraph`
    canonicalization, the CDS-pipeline :class:`CdsIndex`, the structural
    fingerprint, and every task result (keyed by task + seed + params),
    so ``connectivity → pack_cds → broadcast`` under one seed performs a
    single canonicalization and a single packing construction.
    ``session.stats`` reports the cache behavior.

    The result cache is an LRU bounded by ``cache_limit`` entries
    (``None`` for unbounded; evictions are counted in
    ``stats["evictions"]``), so a session can serve an unbounded query
    stream — the ``repro serve`` daemon holds sessions for its whole
    lifetime — without leaking.

    Sessions are also *mutable*: :meth:`add_edge` / :meth:`remove_edge`
    update the graph and the cached :class:`IndexedGraph` incrementally
    (no re-canonicalization) and bump :attr:`generation`; the dependent
    layers — ``CdsIndex``, fingerprint, result cache — carry the
    generation they were built at and lazily rebuild when stale. After
    any edit sequence the session is bit-identical to a fresh session
    built from the final graph (``tests/test_incremental_index.py``).
    """

    def __init__(
        self,
        topology: TopologyLike,
        label: Optional[str] = None,
        cache_limit: Optional[int] = DEFAULT_CACHE_LIMIT,
    ):
        graph, descriptor = _coerce_topology(topology)
        if cache_limit is not None and cache_limit < 1:
            raise GraphValidationError(
                f"cache_limit must be >= 1 or None, got {cache_limit!r}"
            )
        self._graph = graph
        self._label = label or descriptor
        self._cache_limit = cache_limit
        self._indexed = None
        self._cds_index = None
        self._fingerprint: Optional[str] = None
        self._results: "OrderedDict[Tuple, Result]" = OrderedDict()
        #: Bumped on every mutation; dependent caches stamp the
        #: generation they were built at and rebuild lazily when stale.
        self.generation = 0
        self._cds_generation = 0
        self._fingerprint_generation = 0
        self._results_generation = 0
        self.stats: Dict[str, int] = {
            "canonicalizations": 0,
            "cache_hits": 0,
            "cache_misses": 0,
            "evictions": 0,
            "mutations": 0,
            "invalidations": 0,
        }

    # -- cached canonical views ----------------------------------------

    @property
    def graph(self) -> nx.Graph:
        return self._graph

    @property
    def label(self) -> str:
        return self._label

    @property
    def n(self) -> int:
        return self._graph.number_of_nodes()

    @property
    def m(self) -> int:
        return self._graph.number_of_edges()

    @property
    def indexed(self):
        """The session's :class:`IndexedGraph` (built on first access)."""
        if self._indexed is None:
            from repro.fastgraph import IndexedGraph

            self._indexed = IndexedGraph.from_networkx(self._graph)
            self.stats["canonicalizations"] += 1
        return self._indexed

    @property
    def cds_index(self):
        """The CDS-pipeline index, sharing :attr:`indexed`.

        Rebuilt lazily after a mutation (the generation stamp differs);
        the underlying :class:`IndexedGraph` is *not* rebuilt — it was
        maintained incrementally by the mutation itself.
        """
        if self._cds_index is None or self._cds_generation != self.generation:
            from repro.core.virtual_graph import CdsIndex

            self._cds_index = CdsIndex(self._graph, indexed=self.indexed)
            self._cds_generation = self.generation
        return self._cds_index

    @property
    def fingerprint(self) -> str:
        """Structural hash of the canonical node order + edge array.

        Stable across processes and hash seeds (node ``repr`` based), so
        batch rows from different workers agree on graph identity.
        Recomputed lazily after a mutation.
        """
        if (
            self._fingerprint is None
            or self._fingerprint_generation != self.generation
        ):
            indexed = self.indexed
            digest = hashlib.sha256()
            for node in indexed.nodes:
                digest.update(repr(node).encode("utf-8"))
                digest.update(b"\x00")
            digest.update(b"|")
            for a, b in sorted(
                (min(a, b), max(a, b)) for a, b in zip(indexed.u, indexed.v)
            ):
                digest.update(f"{a},{b};".encode("ascii"))
            self._fingerprint = digest.hexdigest()[:16]
            self._fingerprint_generation = self.generation
        return self._fingerprint

    # -- incremental mutation ------------------------------------------

    def add_edge(self, a: Hashable, b: Hashable) -> None:
        """Add edge ``{a, b}`` (new labels become new nodes).

        The cached :class:`IndexedGraph` is spliced in place — no
        re-canonicalization — and :attr:`generation` is bumped so the
        dependent layers (``CdsIndex``, fingerprint, result cache)
        rebuild lazily on next use.
        """
        if a == b:
            raise GraphValidationError(
                f"self-loop {a!r}-{b!r} is not allowed"
            )
        if self._graph.has_edge(a, b):
            raise GraphValidationError(f"edge {a!r}-{b!r} already exists")
        if self._indexed is not None:
            self._indexed.add_edge(a, b)
        self._graph.add_edge(a, b)
        self._note_mutation()

    def remove_edge(self, a: Hashable, b: Hashable) -> None:
        """Remove edge ``{a, b}`` (nodes stay, as in ``nx.Graph``)."""
        if not self._graph.has_edge(a, b):
            raise GraphValidationError(
                f"edge {a!r}-{b!r} is not in the graph"
            )
        if self._indexed is not None:
            self._indexed.remove_edge(a, b)
        self._graph.remove_edge(a, b)
        self._note_mutation()

    def _note_mutation(self) -> None:
        self.generation += 1
        self.stats["mutations"] += 1

    # -- result cache --------------------------------------------------

    def _fresh_results(self) -> "OrderedDict[Tuple, Result]":
        """The result cache, cleared first if a mutation made it stale."""
        if self._results_generation != self.generation:
            if self._results:
                self.stats["invalidations"] += len(self._results)
                self._results.clear()
            self._results_generation = self.generation
        return self._results

    def _store_result(self, key: Tuple, value) -> None:
        """Insert into the LRU; evict the least-recently-used overflow."""
        results = self._fresh_results()
        results[key] = value
        results.move_to_end(key)
        if self._cache_limit is not None:
            while len(results) > self._cache_limit:
                results.popitem(last=False)
                self.stats["evictions"] += 1

    def _cached(self, key: Tuple, build) -> Result:
        # Envelopes are handed out as copies (raw shared): a caller
        # mutating payload/timings in place must not poison the cache.
        results = self._fresh_results()
        if key in results:
            self.stats["cache_hits"] += 1
            results.move_to_end(key)
            return results[key].copy()
        self.stats["cache_misses"] += 1
        start = time.perf_counter()
        result = build()
        result.timings.setdefault(
            "total_s", time.perf_counter() - start
        )
        self._store_result(key, result)
        return result.copy()

    def _envelope(
        self,
        task: str,
        seed: Optional[int],
        params: Dict[str, Any],
        payload: Dict[str, Any],
        raw: Any,
    ) -> Result:
        return Result(
            task=task,
            graph=self._label,
            fingerprint=self.fingerprint,
            n=self.n,
            m=self.m,
            seed=seed,
            params=params,
            payload=payload,
            raw=raw,
        )

    # -- pipeline tasks ------------------------------------------------

    def _cds_result(self, k, seed, params):
        """The shared fractional-CDS construction (raw result, cached).

        ``connectivity`` and ``pack_cds`` under the same (k, seed,
        params) are *one* construction: Corollary 1.7's estimate is read
        off the very packing ``pack_cds`` returns.
        """
        from repro.core.cds_packing import fractional_cds_packing

        key = ("_cds", k, seed, params)
        results = self._fresh_results()
        if key not in results:
            result = fractional_cds_packing(
                self._graph, k=k, params=params, rng=seed,
                index=self.cds_index,
            )
            self._store_result(key, result)
        else:
            results.move_to_end(key)
        return self._results[key]

    def pack_cds(
        self,
        k: Optional[int] = None,
        seed: int = 0,
        params=None,
    ) -> Result:
        """Fractional dominating tree packing (Theorems 1.1/1.2).

        Bit-identical to
        :func:`repro.core.cds_packing.fractional_cds_packing` under the
        same seed.
        """
        def build():
            result = self._cds_result(k, seed, params)
            packing = result.packing
            # No max_diameter here: all-pairs BFS per tree costs more
            # than the construction itself; callers that want it read
            # ``raw.packing.max_diameter()`` (the CLI does).
            payload = {
                "size": packing.size,
                "n_trees": len(packing),
                "t_requested": result.t_requested,
                "t_used": result.t_used,
                "n_valid_classes": len(result.valid_classes),
                "k_guess": result.k_guess,
                "attempts": result.attempts,
                "max_node_load": packing.max_node_load(),
            }
            return self._envelope(
                "pack_cds", seed,
                {"k": k, "params": asdict(params) if params else None},
                payload, result,
            )

        return self._cached(("pack_cds", k, seed, params), build)

    def connectivity(
        self,
        seed: int = 0,
        params=None,
        approximation_constant: float = 6.0,
        exact: bool = False,
    ) -> Result:
        """Corollary 1.7 vertex-connectivity estimate.

        Shares the packing with :meth:`pack_cds` (same seed/params) —
        the estimate is derived, not recomputed. ``exact=True`` adds the
        exact Even–Tarjan ``k`` and Stoer–Wagner ``λ`` oracles to the
        payload (expensive; off by default).
        """
        def build():
            from repro.core.vertex_connectivity import estimate_from_packing

            packing_result = self._cds_result(None, seed, params)
            estimate = estimate_from_packing(
                self._graph, packing_result, approximation_constant
            )
            payload = {
                "lower_bound": estimate.lower_bound,
                "upper_bound": estimate.upper_bound,
                "estimate": estimate.estimate,
                "packing_size": estimate.packing_size,
                "n_trees": estimate.n_trees,
                "log_factor": estimate.log_factor,
            }
            if exact:
                payload["exact_k"] = self.exact_vertex_connectivity()
                payload["exact_lambda"] = self.exact_edge_connectivity()
            return self._envelope(
                "connectivity", seed,
                {
                    "params": asdict(params) if params else None,
                    "approximation_constant": approximation_constant,
                    "exact": exact,
                },
                payload, estimate,
            )

        return self._cached(
            ("connectivity", seed, params, approximation_constant, exact),
            build,
        )

    def exact_vertex_connectivity(self) -> int:
        """Exact ``k`` via Even–Tarjan (cached; the expensive oracle)."""
        key = ("_exact_k",)
        results = self._fresh_results()
        if key not in results:
            from repro.baselines.vertex_connectivity_exact import (
                even_tarjan_vertex_connectivity,
            )

            exact_k, _ = even_tarjan_vertex_connectivity(self._graph)
            self._store_result(key, exact_k)
        else:
            results.move_to_end(key)
        return self._results[key]

    def exact_edge_connectivity(self) -> int:
        """Exact ``λ`` via Stoer–Wagner (cached)."""
        key = ("_exact_lam",)
        results = self._fresh_results()
        if key not in results:
            from repro.baselines.mincut import edge_connectivity_exact

            self._store_result(key, edge_connectivity_exact(self._graph))
        else:
            results.move_to_end(key)
        return self._results[key]

    def pack_spanning(
        self,
        lam: Optional[int] = None,
        seed: int = 0,
        params=None,
    ) -> Result:
        """Fractional spanning tree packing (Theorem 1.3); bit-identical
        to :func:`~repro.core.spanning_packing.fractional_spanning_tree_packing`."""
        def build():
            from repro.core.spanning_packing import (
                fractional_spanning_tree_packing,
            )

            result = fractional_spanning_tree_packing(
                self._graph, lam=lam, params=params, rng=seed,
                indexed=self.indexed,
            )
            packing = result.packing
            payload = {
                "size": packing.size,
                "n_trees": len(packing),
                "lam": result.lam,
                "target": result.target,
                "parts": result.parts,
                "efficiency": result.efficiency,
                "max_edge_load": packing.max_edge_load(),
                "mwu_iterations": max(
                    (t.iterations for t in result.traces), default=0
                ),
            }
            return self._envelope(
                "pack_spanning", seed,
                {"lam": lam, "params": asdict(params) if params else None},
                payload, result,
            )

        return self._cached(("pack_spanning", lam, seed, params), build)

    def pack_integral(
        self,
        kind: str = "cds",
        seed: int = 0,
        k: Optional[int] = None,
        lam: Optional[int] = None,
        class_factor: float = 0.25,
        parts_factor: float = 0.5,
    ) -> Result:
        """Integral (vertex-/edge-disjoint) packings (Section 1.2)."""
        if kind not in ("cds", "spanning"):
            raise GraphValidationError(
                f"unknown integral packing kind {kind!r}; "
                "valid kinds: cds, spanning"
            )

        def build():
            if kind == "cds":
                from repro.core.integral_packing import integral_cds_packing

                result = integral_cds_packing(
                    self._graph, k=k, class_factor=class_factor, rng=seed
                )
                packing = result.packing
                payload = {
                    "kind": kind,
                    "size": len(packing),
                    "t_requested": result.t_requested,
                    "valid_classes": result.valid_classes,
                    "vertex_disjoint": packing.is_vertex_disjoint(),
                }
                raw = result
            else:
                from repro.core.integral_packing import (
                    integral_spanning_packing,
                )

                packing = integral_spanning_packing(
                    self._graph, lam=lam, parts_factor=parts_factor,
                    rng=seed, indexed=self.indexed,
                )
                payload = {
                    "kind": kind,
                    "size": len(packing),
                    "edge_disjoint": packing.is_edge_disjoint(),
                }
                raw = packing
            return self._envelope(
                "pack_integral", seed,
                {
                    "kind": kind, "k": k, "lam": lam,
                    "class_factor": class_factor,
                    "parts_factor": parts_factor,
                },
                payload, raw,
            )

        return self._cached(
            ("pack_integral", kind, seed, k, lam, class_factor, parts_factor),
            build,
        )

    # -- applications on top of the packings ---------------------------

    def default_sources(self, messages: int) -> Dict[int, Hashable]:
        """The CLI's historical source assignment: message ``i`` starts
        at the ``i``-th node in string order (round-robin)."""
        nodes = sorted(self._graph.nodes(), key=str)
        return {i: nodes[i % len(nodes)] for i in range(messages)}

    def broadcast(
        self,
        messages: int = 16,
        seed: int = 0,
        transport: str = "vertex",
        sources: Optional[Dict[int, Hashable]] = None,
        pack_seed: Optional[int] = None,
        k: Optional[int] = None,
        params=None,
    ) -> Result:
        """Tree-routed broadcast (Corollaries 1.4/1.5) on the session's
        cached packing.

        ``transport`` — ``"vertex"`` floods a dominating tree packing
        under V-CONGEST capacities, ``"edge"`` a spanning packing under
        E-CONGEST. ``pack_seed`` defaults to ``seed`` (the CLI's
        historical behavior: one seed pins packing and routing).
        """
        if transport not in ("vertex", "edge"):
            raise GraphValidationError(
                f"unknown broadcast transport {transport!r}; "
                "valid transports: vertex, edge"
            )
        effective_pack_seed = seed if pack_seed is None else pack_seed
        explicit_sources = sources is not None

        def build():
            from repro.apps.broadcast import edge_broadcast, vertex_broadcast

            chosen_sources = (
                sources if explicit_sources else self.default_sources(messages)
            )
            if transport == "vertex":
                packing = self._cds_result(
                    k, effective_pack_seed, params
                ).packing
                outcome = vertex_broadcast(packing, chosen_sources, rng=seed)
            else:
                packing = self.pack_spanning(
                    seed=effective_pack_seed, params=params
                ).raw.packing
                outcome = edge_broadcast(packing, chosen_sources, rng=seed)
            payload = {
                "transport": transport,
                "n_messages": outcome.n_messages,
                "rounds": outcome.rounds,
                "throughput": outcome.throughput,
                "max_vertex_congestion": outcome.max_vertex_congestion,
                "max_edge_congestion": outcome.max_edge_congestion,
                "n_trees_used": len(set(outcome.tree_assignment.values())),
            }
            return self._envelope(
                "broadcast", seed,
                {
                    "messages": len(chosen_sources),
                    "transport": transport,
                    "pack_seed": effective_pack_seed,
                    "k": k,
                    "params": asdict(params) if params else None,
                },
                payload, outcome,
            )

        if explicit_sources:
            return build()  # un-hashable argument: skip the cache
        return self._cached(
            (
                "broadcast", messages, seed, transport,
                effective_pack_seed, k, params,
            ),
            build,
        )

    def gossip(
        self,
        n_messages: Optional[int] = None,
        max_per_node: int = 1,
        seed: int = 0,
        pack_seed: Optional[int] = None,
        k: Optional[int] = None,
        params=None,
    ) -> Result:
        """Gossip / k-token dissemination (Corollary A.1) on the cached
        dominating tree packing."""
        effective_pack_seed = seed if pack_seed is None else pack_seed

        def build():
            from repro.apps.gossip import gossip as gossip_fn

            packing = self._cds_result(k, effective_pack_seed, params).packing
            outcome = gossip_fn(
                packing,
                n_messages=n_messages,
                max_per_node=max_per_node,
                rng=seed,
            )
            payload = {
                "n_messages": outcome.n_messages,
                "max_per_node": outcome.max_per_node,
                "rounds": outcome.rounds,
                "reference_rounds": outcome.reference_rounds,
                "slowdown": outcome.slowdown,
                "throughput": outcome.broadcast.throughput,
            }
            return self._envelope(
                "gossip", seed,
                {
                    "n_messages": n_messages,
                    "max_per_node": max_per_node,
                    "pack_seed": effective_pack_seed,
                    "k": k,
                    "params": asdict(params) if params else None,
                },
                payload, outcome,
            )

        return self._cached(
            (
                "gossip", n_messages, max_per_node, seed,
                effective_pack_seed, k, params,
            ),
            build,
        )

    # -- simulator-backed tasks ----------------------------------------

    def simulate(
        self,
        program: str = "flood-min",
        model: Optional[str] = None,
        seed: int = 0,
        fault_plan=None,
        adversary_plan=None,
        max_rounds: int = 100000,
        trace: bool = False,
        engine: Optional[str] = None,
        shards: Optional[int] = None,
        show_outputs: Optional[int] = None,
    ) -> Result:
        """Run a registered scenario program on the round simulator.

        The scenario's :class:`~repro.simulator.network.Network` reuses
        the session's canonicalization (``Scenario.indexed``); the run
        RNG stream is unchanged, so results match a standalone
        :class:`~repro.simulator.scenario.Scenario` bit for bit.
        ``engine`` picks a registered round loop (``"indexed"``,
        ``"reference"``, ``"sharded"``, ``"vectorized"`` — all
        bit-identical); ``shards`` sets the worker count of
        multiprocess engines (``engine="sharded"``).
        ``show_outputs`` caps how many node
        outputs enter the payload (``None``: all). The envelope's
        ``params`` carry the *full* fault/adversary configuration
        (including the plan seeds bound during the run), so a ``--json``
        row alone reproduces a hostile execution.
        """
        from repro.simulator.runner import Model
        from repro.simulator.scenario import Scenario

        scenario = Scenario(
            topology=self._graph,
            program=program,
            model=Model(model) if isinstance(model, str) else model,
            seed=seed,
            fault_plan=fault_plan,
            adversary_plan=adversary_plan,
            max_rounds=max_rounds,
            trace=trace,
            engine=engine,
            shards=shards,
            indexed=self.indexed,
        )
        resolved = scenario.resolve()
        run = scenario.run()
        summary = run.summary()
        outputs = list(run.result.outputs.items())
        if show_outputs is not None:
            outputs = outputs[:show_outputs]
        from repro.simulator.runner import default_engine

        payload = {
            "program": resolved.name,
            "description": resolved.description,
            "model": (scenario.model or resolved.model).value,
            "engine": engine or default_engine(),
            "rounds": summary["rounds"],
            "messages": summary["messages"],
            "bits": summary["bits"],
            "max_message_bits": summary["max_message_bits"],
            "halted": summary["halted"],
            "outputs": {node: _jsonable(out) for node, out in outputs},
        }
        envelope = self._envelope(
            "simulate", seed,
            {
                "program": program,
                "model": model,
                "max_rounds": max_rounds,
                "engine": engine,
                "shards": shards,
                # Full plan configs (seeds included; bound during the
                # run, so the envelope pins the exact loss/corruption
                # pattern). None = reliable / honest channels.
                "faults": _describe_plan(fault_plan),
                "adversary": _describe_plan(adversary_plan),
            },
            payload, run,
        )
        envelope.timings["total_s"] = run.wall_seconds
        envelope.timings["rounds_per_sec"] = summary["rounds_per_sec"]
        return envelope

    def pack_cds_distributed(
        self,
        k: int,
        seed: int = 0,
        params=None,
    ) -> Result:
        """Theorem B.1's distributed construction on the V-CONGEST
        simulator (round/bit accounting in the payload)."""
        def build():
            from repro.core.cds_packing_distributed import (
                distributed_cds_packing,
            )

            dist = distributed_cds_packing(self._graph, k, params, seed)
            payload = {
                "size": dist.result.packing.size,
                "n_trees": len(dist.result.packing),
                "meta_rounds": dist.meta_rounds,
                "real_round_estimate": dist.real_round_estimate,
                "analytic_round_bound": dist.report.analytic_total(),
                "messages": dist.report.measured.messages,
                "bits": dist.report.measured.bits,
            }
            return self._envelope(
                "pack_cds_distributed", seed,
                {"k": k, "params": asdict(params) if params else None},
                payload, dist,
            )

        return self._cached(("pack_cds_distributed", k, seed, params), build)


def _jsonable(value: Any) -> Any:
    """Best-effort envelope encoding for node program outputs."""
    try:
        return encode_value(value)
    except TypeError:
        return repr(value)


def _describe_plan(plan: Any) -> Optional[Dict[str, Any]]:
    """A plan's JSON-clean config for the params block (None stays None)."""
    if plan is None:
        return None
    described = plan.describe()
    try:
        return encode_value(described)
    except TypeError:
        return {key: repr(value) for key, value in described.items()}
