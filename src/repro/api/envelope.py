"""Typed result envelopes — one JSON-round-trippable shape for every task.

Every :class:`repro.api.GraphSession` method returns a :class:`Result`:
the task name, the graph's identity (spec + structural fingerprint),
the seed and parameters that produced it, stage timings, and a
``payload`` of task-specific measurements. The envelope — not the
module-specific dataclass — is what sweeps, the batch executor, and the
CLI ``--json`` mode serialize, so every layer above the session speaks
one schema.

``payload``/``params`` values survive a JSON round trip exactly:
:func:`encode_value`/:func:`decode_value` tag the non-JSON types the
library produces (:class:`fractions.Fraction`, ``frozenset``, ``set``,
``tuple``, and dicts with non-string keys) so
``Result.from_json(r.to_json()) == r`` holds for every envelope.

The underlying rich object (a ``CdsPackingResult``, ``ScenarioRun``, …)
rides along in ``Result.raw`` for in-process callers; it is never
serialized and is excluded from equality.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from fractions import Fraction
from typing import Any, Dict, Optional

from repro.errors import GraphValidationError

#: Schema version stamped into every envelope; bump on breaking changes.
ENVELOPE_VERSION = 1

_TAG_FRACTION = "__fraction__"
_TAG_FROZENSET = "__frozenset__"
_TAG_SET = "__set__"
_TAG_TUPLE = "__tuple__"
_TAG_DICT = "__dict__"      # dict with non-string keys, as [k, v] pairs
_TAGS = (_TAG_FRACTION, _TAG_FROZENSET, _TAG_SET, _TAG_TUPLE, _TAG_DICT)


def encode_value(value: Any) -> Any:
    """Recursively convert ``value`` into JSON-serializable primitives.

    Containers are tagged (``{"__tuple__": [...]}``) so the exact Python
    type — not just the JSON shape — comes back out of
    :func:`decode_value`. Sets are serialized in sorted-repr order so
    encoding is deterministic across runs and hash seeds.
    """
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, Fraction):
        return {_TAG_FRACTION: [value.numerator, value.denominator]}
    if isinstance(value, (frozenset, set)):
        tag = _TAG_FROZENSET if isinstance(value, frozenset) else _TAG_SET
        encoded = [encode_value(item) for item in value]
        encoded.sort(key=lambda item: json.dumps(item, sort_keys=True))
        return {tag: encoded}
    if isinstance(value, tuple):
        return {_TAG_TUPLE: [encode_value(item) for item in value]}
    if isinstance(value, list):
        return [encode_value(item) for item in value]
    if isinstance(value, dict):
        if all(isinstance(key, str) for key in value) and not (
            set(value) & set(_TAGS)
        ):
            return {key: encode_value(item) for key, item in value.items()}
        return {
            _TAG_DICT: [
                [encode_value(key), encode_value(item)]
                for key, item in value.items()
            ]
        }
    raise TypeError(
        f"cannot encode {type(value).__name__!r} into a result envelope; "
        "payloads must be built from JSON primitives, Fraction, "
        "set/frozenset, tuple, list, and dict"
    )


def decode_value(value: Any) -> Any:
    """Inverse of :func:`encode_value`."""
    if isinstance(value, list):
        return [decode_value(item) for item in value]
    if isinstance(value, dict):
        if len(value) == 1:
            (tag, body), = value.items()
            if tag == _TAG_FRACTION:
                return Fraction(body[0], body[1])
            if tag == _TAG_FROZENSET:
                return frozenset(decode_value(item) for item in body)
            if tag == _TAG_SET:
                return {decode_value(item) for item in body}
            if tag == _TAG_TUPLE:
                return tuple(decode_value(item) for item in body)
            if tag == _TAG_DICT:
                return {
                    decode_value(key): decode_value(item)
                    for key, item in body
                }
        return {key: decode_value(item) for key, item in value.items()}
    return value


@dataclass
class Result:
    """The typed envelope every :class:`GraphSession` method returns.

    ``payload`` holds the task's measurements (JSON-clean via the codec
    above); ``raw`` holds the underlying rich object for in-process use
    and never serializes. ``timings`` are wall-clock stage seconds —
    excluded from :meth:`canonical_json` so deterministic pipelines
    (the batch executor) emit byte-identical rows.
    """

    task: str
    graph: str                    # spec string or synthesized descriptor
    fingerprint: str              # structural hash of the canonical graph
    n: int
    m: int
    seed: Optional[int] = None
    params: Dict[str, Any] = field(default_factory=dict)
    payload: Dict[str, Any] = field(default_factory=dict)
    timings: Dict[str, float] = field(default_factory=dict)
    version: int = ENVELOPE_VERSION
    raw: Any = field(default=None, repr=False, compare=False)

    def to_dict(self, include_timings: bool = True) -> Dict[str, Any]:
        """Envelope as JSON-serializable primitives (no ``raw``)."""
        body: Dict[str, Any] = {
            "version": self.version,
            "task": self.task,
            "graph": self.graph,
            "fingerprint": self.fingerprint,
            "n": self.n,
            "m": self.m,
            "seed": self.seed,
            "params": encode_value(self.params),
            "payload": encode_value(self.payload),
        }
        if include_timings:
            body["timings"] = dict(self.timings)
        return body

    def to_json(self, include_timings: bool = True, indent: Optional[int] = None) -> str:
        return json.dumps(
            self.to_dict(include_timings=include_timings),
            sort_keys=True,
            indent=indent,
        )

    def canonical_json(self) -> str:
        """Deterministic single-line form (batch JSONL rows): sorted
        keys, compact separators, no timings."""
        return json.dumps(
            self.to_dict(include_timings=False),
            sort_keys=True,
            separators=(",", ":"),
        )

    def copy(self) -> "Result":
        """An independent envelope: payload/params/timings are deep
        copies (all deep-copyable by construction), ``raw`` is shared.

        The session cache hands out copies so a caller mutating an
        envelope in place cannot poison later same-key calls.
        """
        import copy as _copy

        return Result(
            task=self.task,
            graph=self.graph,
            fingerprint=self.fingerprint,
            n=self.n,
            m=self.m,
            seed=self.seed,
            params=_copy.deepcopy(self.params),
            payload=_copy.deepcopy(self.payload),
            timings=dict(self.timings),
            version=self.version,
            raw=self.raw,
        )

    @classmethod
    def from_dict(cls, body: Dict[str, Any]) -> "Result":
        try:
            return cls(
                task=body["task"],
                graph=body["graph"],
                fingerprint=body["fingerprint"],
                n=body["n"],
                m=body["m"],
                seed=body.get("seed"),
                params=decode_value(body.get("params", {})),
                payload=decode_value(body.get("payload", {})),
                timings=dict(body.get("timings", {})),
                version=body.get("version", ENVELOPE_VERSION),
            )
        except KeyError as exc:
            raise GraphValidationError(
                f"result envelope is missing required field {exc}"
            ) from exc

    @classmethod
    def from_json(cls, text: str) -> "Result":
        return cls.from_dict(json.loads(text))
