"""repro.api — the session layer: one front door to the whole pipeline.

* :class:`GraphSession` — canonicalize a graph once (``nx.Graph``,
  ``family:args`` spec string, or edge list), cache the
  ``IndexedGraph``/``CdsIndex``/connectivity estimate, and run every
  task (``connectivity``, ``pack_cds``, ``pack_spanning``,
  ``pack_integral``, ``broadcast``, ``gossip``, ``simulate``) against
  the cached view.
* :class:`Result` — the typed, JSON-round-trippable envelope every task
  returns (graph fingerprint, seed, parameters, timings, payload).
* :class:`JobSpec` / :func:`run` — the batch scheduler: a declarative
  graph × seed × task × transport matrix fanned across a pluggable
  backend (``serial`` / ``process`` / ``thread`` — see
  :mod:`repro.api.backends`) with deterministic per-job seeds,
  streaming JSONL rows, and sha256-manifest checkpoint/resume.
* :func:`parse_graph_spec` — the hardened graph-family spec parser
  (previously CLI-only).

The module-level task functions (:func:`connectivity`, :func:`pack_cds`,
…) are one-shot conveniences: each builds a throwaway session. For more
than one call on the same graph, hold a :class:`GraphSession`.
"""

from __future__ import annotations

from repro.api.backends import (
    BatchBackend,
    available_backends,
    register_backend,
)
from repro.api.batch import (
    JobSpec,
    derive_seed,
    expand_matrix,
    is_error_row,
    job_digest,
    load_jobs,
    run,
    run_to_jsonl,
)
from repro.api.envelope import (
    ENVELOPE_VERSION,
    Result,
    decode_value,
    encode_value,
)
from repro.api.session import SESSION_TASKS, GraphSession, TopologyLike
from repro.api.specs import (
    GRAPH_FAMILIES,
    available_families,
    family_signatures,
    load_adjacency_csv,
    parse_graph_spec,
)


def connectivity(topology: TopologyLike, **kwargs) -> Result:
    """One-shot :meth:`GraphSession.connectivity`."""
    return GraphSession(topology).connectivity(**kwargs)


def pack_cds(topology: TopologyLike, **kwargs) -> Result:
    """One-shot :meth:`GraphSession.pack_cds`."""
    return GraphSession(topology).pack_cds(**kwargs)


def pack_spanning(topology: TopologyLike, **kwargs) -> Result:
    """One-shot :meth:`GraphSession.pack_spanning`."""
    return GraphSession(topology).pack_spanning(**kwargs)


def pack_integral(topology: TopologyLike, **kwargs) -> Result:
    """One-shot :meth:`GraphSession.pack_integral`."""
    return GraphSession(topology).pack_integral(**kwargs)


def broadcast(topology: TopologyLike, **kwargs) -> Result:
    """One-shot :meth:`GraphSession.broadcast`."""
    return GraphSession(topology).broadcast(**kwargs)


def gossip(topology: TopologyLike, **kwargs) -> Result:
    """One-shot :meth:`GraphSession.gossip`."""
    return GraphSession(topology).gossip(**kwargs)


def simulate(topology: TopologyLike, **kwargs) -> Result:
    """One-shot :meth:`GraphSession.simulate`."""
    return GraphSession(topology).simulate(**kwargs)


__all__ = [
    "GraphSession",
    "TopologyLike",
    "SESSION_TASKS",
    "Result",
    "ENVELOPE_VERSION",
    "encode_value",
    "decode_value",
    "JobSpec",
    "run",
    "run_to_jsonl",
    "load_jobs",
    "expand_matrix",
    "derive_seed",
    "job_digest",
    "is_error_row",
    "BatchBackend",
    "available_backends",
    "register_backend",
    "parse_graph_spec",
    "load_adjacency_csv",
    "available_families",
    "family_signatures",
    "GRAPH_FAMILIES",
    "connectivity",
    "pack_cds",
    "pack_spanning",
    "pack_integral",
    "broadcast",
    "gossip",
    "simulate",
]
