"""Pluggable batch backends: the execution plane behind :func:`repro.api.run`.

The batch scheduler (:mod:`repro.api.batch`) plans *what* runs — jobs
grouped by graph so each group shares one
:class:`~repro.api.GraphSession`, split into **chunks** sized to the
worker count — and a :class:`BatchBackend` decides *how*: in-process
(``serial``), across a :class:`~concurrent.futures.ProcessPoolExecutor`
(``process``), or across threads (``thread``, which becomes true
parallelism on free-threaded CPython 3.13t and is already the right
plane for I/O-bound session tasks).

Three contracts every backend honors:

* **chunk-at-a-time streaming** — :meth:`BatchBackend.execute` *yields*
  each chunk's rows as that chunk completes (completion order is
  unspecified); the scheduler reassembles rows by job index, so the
  final JSONL is byte-identical no matter the backend, worker count, or
  finish order.
* **rows, never exceptions, for job failures** — per-job errors are
  error-row envelopes produced inside the chunk runner
  (:func:`repro.api.batch._execute_items`); a backend only raises for
  *infrastructure* failures (a killed worker breaking the pool), and
  then as a :class:`~repro.errors.BatchExecutionError` naming the chunk.
* **canonical rows are computed where the job ran** — each row carries
  its precomputed :meth:`~repro.api.envelope.Result.canonical_json`
  string, so serialization happens exactly once, identically, on every
  plane (the ``raw`` object never crosses a process boundary).

Chunk planning (:func:`make_chunks`) is where the one-graph parallelism
hole is fixed: a group larger than ``ceil(total / workers)`` jobs is
split into consecutive slices, so a 200-job sweep over a *single* graph
fans out across every worker instead of serializing behind one
session. Splitting costs one extra canonicalization per extra chunk and
never changes output bytes (each job's result depends only on its own
graph × task × seed × params).
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor, as_completed
from concurrent.futures.process import BrokenProcessPool
from typing import Any, Dict, Iterator, List, Tuple

from repro.api.envelope import Result
from repro.errors import BatchExecutionError, GraphValidationError

#: One planned unit of backend work: same-graph ``(job index, JobSpec
#: dict, seed)`` triples, executed in order through one GraphSession.
Chunk = List[Tuple[int, Dict[str, Any], int]]

#: One executed row: ``(job index, envelope, canonical JSONL line)``.
ChunkRows = List[Tuple[int, Result, str]]

#: Worker-count cap mirroring the sharded engine's default sizing.
MAX_DEFAULT_WORKERS = 8


def default_workers() -> int:
    """One worker per core, capped at :data:`MAX_DEFAULT_WORKERS`."""
    return max(1, min(MAX_DEFAULT_WORKERS, os.cpu_count() or 1))


def make_chunks(
    groups: Dict[str, Chunk], workers: int
) -> List[Chunk]:
    """Graph groups → backend chunks, splitting large groups.

    With one worker every group stays whole (one canonicalization per
    graph, exactly the serial contract). With ``workers > 1`` any group
    longer than ``ceil(total_jobs / workers)`` is cut into consecutive
    slices of that size — the fix for batches whose jobs all hit one
    graph, which previously could never use more than one worker.
    Deterministic: chunk boundaries depend only on the job list and the
    worker count, never on timing.
    """
    if workers <= 1:
        return [list(items) for items in groups.values()]
    total = sum(len(items) for items in groups.values())
    target = max(1, -(-total // workers))  # ceil(total / workers)
    chunks: List[Chunk] = []
    for items in groups.values():
        if len(items) <= target:
            chunks.append(list(items))
        else:
            for start in range(0, len(items), target):
                chunks.append(list(items[start:start + target]))
    return chunks


def _run_chunk(chunk: Chunk) -> Tuple[int, List[Tuple[int, Dict[str, Any], str]]]:
    """Process-pool worker: one chunk through ``_execute_items``.

    Returns plain dicts plus the precomputed canonical row (the ``raw``
    object does not cross the process boundary), and the worker's pid so
    the scheduler's ``stats`` can prove real fan-out.
    """
    from repro.api.batch import _execute_items

    rows = [
        (index, result.to_dict(include_timings=True),
         result.canonical_json())
        for index, result in _execute_items(chunk)
    ]
    return os.getpid(), rows


def _chunk_span(chunk: Chunk) -> str:
    """Human-readable chunk identity for error messages."""
    graph = chunk[0][1].get("graph", "?") if chunk else "?"
    indexes = [index for index, _, _ in chunk]
    return f"graph {graph!r}, jobs {min(indexes)}..{max(indexes)}"


class BatchBackend:
    """Protocol for a batch execution plane.

    Subclasses set :attr:`name` and implement :meth:`execute`, yielding
    each chunk's :data:`ChunkRows` as the chunk completes. ``stats`` is
    a scratch dict the backend annotates in place (``worker_pids`` at
    minimum) so callers can observe parallelism without parsing rows.
    """

    name: str = "?"

    def execute(
        self, chunks: List[Chunk], workers: int, stats: Dict[str, Any]
    ) -> Iterator[ChunkRows]:
        raise NotImplementedError


class SerialBackend(BatchBackend):
    """In-process, in-order execution; envelopes keep their ``raw``."""

    name = "serial"

    def execute(self, chunks, workers, stats):
        from repro.api.batch import _execute_items

        stats["worker_pids"].add(os.getpid())
        for chunk in chunks:
            yield [
                (index, result, result.canonical_json())
                for index, result in _execute_items(chunk)
            ]


class ThreadBackend(BatchBackend):
    """Thread-pool execution; in-process, so ``raw`` survives.

    Under the GIL this overlaps only the interpreter-releasing parts
    (numpy kernels, I/O); on free-threaded 3.13t builds it becomes full
    parallelism with zero fork/pickle overhead.
    """

    name = "thread"

    def execute(self, chunks, workers, stats):
        from repro.api.batch import _execute_items

        stats["worker_pids"].add(os.getpid())
        with ThreadPoolExecutor(max_workers=workers) as pool:
            futures = [pool.submit(_execute_items, chunk) for chunk in chunks]
            for future in as_completed(futures):
                yield [
                    (index, result, result.canonical_json())
                    for index, result in future.result()
                ]


class ProcessBackend(BatchBackend):
    """Process-pool execution: chunks fan out across real processes.

    Chunks are submitted individually and yielded as they finish, so a
    checkpointing caller persists completed work without waiting for
    the slowest chunk. A worker crash (the pool breaking) surfaces as a
    :class:`~repro.errors.BatchExecutionError` naming the chunk, with
    the pool's exception chained — never a bare pool traceback.
    """

    name = "process"

    def execute(self, chunks, workers, stats):
        try:
            with ProcessPoolExecutor(max_workers=workers) as pool:
                futures = {
                    pool.submit(_run_chunk, chunk): chunk for chunk in chunks
                }
                for future in as_completed(futures):
                    try:
                        pid, rows = future.result()
                    except BrokenProcessPool as exc:
                        raise BatchExecutionError(
                            "batch worker crashed while running chunk "
                            f"({_chunk_span(futures[future])}); partial "
                            "results up to the last completed chunk are "
                            "preserved in the checkpoint, if one was given"
                        ) from exc
                    stats["worker_pids"].add(pid)
                    yield [
                        (index, Result.from_dict(body), canonical)
                        for index, body, canonical in rows
                    ]
        except BrokenProcessPool as exc:
            # The pool can also break on submit or teardown, outside any
            # one future: still a typed error, still chained.
            raise BatchExecutionError(
                "batch process pool broke before all chunks completed"
            ) from exc


#: The registry: backend name → instance. Extend via
#: :func:`register_backend` (e.g. an asyncio plane for the service).
BACKENDS: Dict[str, BatchBackend] = {}


def register_backend(backend: BatchBackend) -> BatchBackend:
    """Add a backend to the registry (name collisions overwrite —
    latest registration wins, mirroring the scenario registry)."""
    BACKENDS[backend.name] = backend
    return backend


def available_backends() -> List[str]:
    """Registered backend names, sorted."""
    return sorted(BACKENDS)


def get_backend(name: str) -> BatchBackend:
    """Lookup with the registry listing in the failure message."""
    backend = BACKENDS.get(name)
    if backend is None:
        raise GraphValidationError(
            f"unknown batch backend {name!r}; registered backends: "
            + ", ".join(available_backends())
        )
    return backend


register_backend(SerialBackend())
register_backend(ProcessBackend())
register_backend(ThreadBackend())
