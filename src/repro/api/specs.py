"""Graph-family specification strings — the API layer's graph front door.

A *graph spec* is a ``family:arg1,arg2,…`` string naming one of the
reproducible graph families (``harary:6,24``, ``hypercube:4``, …). The
parser used to live in :mod:`repro.cli`; it is now part of the public
API so library users get the same one-line graph construction — and the
same hardened error messages — as the command line:

* an unknown family lists the valid families;
* a malformed argument names the offending token and the family's
  expected signature.

:data:`GRAPH_FAMILIES` is the single registry; the CLI help text and
the error messages are both generated from it, so the two cannot drift.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Tuple

import networkx as nx

from repro.errors import GraphValidationError
from repro.graphs import generators


@dataclass(frozen=True)
class GraphFamily:
    """One named family: its argument signature and builder."""

    name: str
    signature: str          # e.g. "k,n" — shown in error messages / docs
    description: str
    min_args: int
    max_args: int
    build: Callable[..., nx.Graph]
    # Per-position coercions; positions beyond the list parse as int.
    arg_types: Tuple[type, ...] = ()
    # True: the argument text is one opaque token (file paths may
    # contain commas), not a comma-separated list.
    raw_args: bool = False

    def coerce(self, position: int, token: str):
        target = (
            self.arg_types[position]
            if position < len(self.arg_types)
            else int
        )
        if target is str:
            return token
        try:
            return target(token)
        except ValueError:
            raise GraphValidationError(
                f"family {self.name!r} ({self.name}:{self.signature}): "
                f"argument {position + 1} must be "
                f"{'a number' if target is float else 'an integer'}, "
                f"got {token!r}"
            ) from None


GRAPH_FAMILIES: Dict[str, GraphFamily] = {}


def _register(family: GraphFamily) -> None:
    GRAPH_FAMILIES[family.name] = family


_register(GraphFamily(
    name="harary",
    signature="k,n",
    description="Harary graph, vertex connectivity exactly k",
    min_args=2, max_args=2,
    build=lambda k, n: generators.harary_graph(k, n),
))
_register(GraphFamily(
    name="clique_chain",
    signature="k,len",
    description="chain of cliques (large-diameter regime)",
    min_args=2, max_args=2,
    build=lambda k, length: generators.clique_chain(k, length),
))
_register(GraphFamily(
    name="fat_cycle",
    signature="w,len",
    description="thickened cycle, k = 2w",
    min_args=2, max_args=2,
    build=lambda width, length: generators.fat_cycle(width, length),
))
_register(GraphFamily(
    name="hypercube",
    signature="d",
    description="d-dimensional hypercube",
    min_args=1, max_args=1,
    build=lambda dimension: generators.hypercube(dimension),
))
_register(GraphFamily(
    name="torus",
    signature="r,c",
    description="r x c torus grid",
    min_args=2, max_args=2,
    build=lambda rows, cols: generators.torus_grid(rows, cols),
))
_register(GraphFamily(
    name="regular",
    signature="d,n[,seed]",
    description="connected random d-regular graph",
    min_args=2, max_args=3,
    build=lambda degree, n, seed=0: generators.random_regular_connected(
        degree, n, rng=seed
    ),
))
_register(GraphFamily(
    name="gnp",
    signature="n,p[,seed]",
    description="connected Erdos-Renyi G(n, p)",
    min_args=2, max_args=3,
    arg_types=(int, float, int),
    build=lambda n, p, seed=0: generators.gnp_connected(n, p, rng=seed),
))
_register(GraphFamily(
    name="complete",
    signature="n",
    description="complete graph K_n",
    min_args=1, max_args=1,
    build=lambda n: nx.complete_graph(n),
))


def _coerce_node_id(token: str):
    """CSV node IDs: integer-looking tokens become ints, others strings.

    Matches the CLI's crash-spec coercion so node identity agrees across
    every front door (a CSV node ``3`` equals ``repro shell``'s
    ``node nbr 3``).
    """
    token = token.strip()
    return int(token) if token.lstrip("-").isdigit() and token else token


def load_adjacency_csv(path: str) -> nx.Graph:
    """Import an adjacency-matrix CSV (GCLI exemplar format).

    The first row and first column list the node IDs (the corner cell is
    blank/ignored); a non-empty, non-zero cell creates the edge between
    its row and column nodes. The matrix is read as undirected — either
    triangle (or both, consistently) may be filled in. Diagonal cells
    are ignored (no self-loops).

    Node order is the header order, edges are added row-major, so the
    resulting canonicalization is deterministic for a given file.
    """
    import csv as _csv

    try:
        with open(path, "r", encoding="utf-8-sig", newline="") as handle:
            rows = [row for row in _csv.reader(handle) if row]
    except OSError as exc:
        raise GraphValidationError(
            f"cannot read adjacency CSV {path!r}: {exc}"
        ) from exc
    if len(rows) < 2:
        raise GraphValidationError(
            f"adjacency CSV {path!r} needs a header row and at least one "
            "node row (first row/column are node IDs)"
        )
    header = [_coerce_node_id(cell) for cell in rows[0][1:]]
    if not header or len(set(header)) != len(header):
        raise GraphValidationError(
            f"adjacency CSV {path!r}: header row must list unique node "
            "IDs after the blank corner cell"
        )
    graph = nx.Graph()
    graph.add_nodes_from(header)
    conflicting = []
    for row_number, row in enumerate(rows[1:], start=2):
        row_id = _coerce_node_id(row[0])
        if row_id not in graph:
            raise GraphValidationError(
                f"adjacency CSV {path!r} line {row_number}: row node "
                f"{row_id!r} does not appear in the header row"
            )
        if len(row) - 1 > len(header):
            raise GraphValidationError(
                f"adjacency CSV {path!r} line {row_number}: {len(row) - 1} "
                f"cells for {len(header)} header node(s)"
            )
        for column, cell in zip(header, row[1:]):
            filled = cell.strip() not in ("", "0")
            if not filled or column == row_id:
                continue
            if graph.has_edge(row_id, column):
                continue
            graph.add_edge(row_id, column)
            # Remember the fill so an asymmetric matrix (cell set on one
            # side, explicit 0 on the other) can be reported loudly.
            conflicting.append((row_id, column, cell.strip()))
    explicit = {
        (a, b): value for a, b, value in conflicting
    }
    for row_number, row in enumerate(rows[1:], start=2):
        row_id = _coerce_node_id(row[0])
        for column, cell in zip(header, row[1:]):
            if column == row_id:
                continue
            value = cell.strip()
            mirrored = explicit.get((column, row_id))
            if mirrored is not None and value == "0":
                raise GraphValidationError(
                    f"adjacency CSV {path!r} line {row_number}: cell "
                    f"({row_id!r}, {column!r}) is 0 but the mirror cell "
                    f"is {mirrored!r}; fill the matrix consistently"
                )
    if graph.number_of_nodes() == 0:
        raise GraphValidationError(
            f"adjacency CSV {path!r} produced an empty graph"
        )
    return graph


_register(GraphFamily(
    name="csv",
    signature="path",
    description="adjacency-matrix CSV import (first row/column = node IDs)",
    min_args=1, max_args=1,
    arg_types=(str,),
    raw_args=True,
    build=load_adjacency_csv,
))


def available_families() -> List[str]:
    """Registered family names, sorted (error messages / CLI listing)."""
    return sorted(GRAPH_FAMILIES)


def family_signatures() -> List[Tuple[str, str]]:
    """(``family:signature``, description) rows for help text."""
    return [
        (f"{family.name}:{family.signature}", family.description)
        for name, family in sorted(GRAPH_FAMILIES.items())
    ]


def parse_graph_spec(spec: str) -> nx.Graph:
    """Build a graph from a ``family:args`` specification string.

    Raises :class:`~repro.errors.GraphValidationError` with an
    actionable message: unknown families list the valid names, malformed
    arguments name the offending token and the expected signature.
    """
    if not isinstance(spec, str) or not spec:
        raise GraphValidationError(
            f"graph spec must be a non-empty 'family:args' string, "
            f"got {spec!r}"
        )
    family_name, _, argument_text = spec.partition(":")
    family = GRAPH_FAMILIES.get(family_name)
    if family is None:
        raise GraphValidationError(
            f"unknown graph family {family_name!r}; valid families: "
            + ", ".join(available_families())
        )
    if family.raw_args:
        tokens = [argument_text] if argument_text else []
    else:
        tokens = (
            [a for a in argument_text.split(",") if a] if argument_text else []
        )
    if not (family.min_args <= len(tokens) <= family.max_args):
        expected = (
            str(family.min_args)
            if family.min_args == family.max_args
            else f"{family.min_args}-{family.max_args}"
        )
        raise GraphValidationError(
            f"family {family_name!r} ({family.name}:{family.signature}) "
            f"expects {expected} argument(s), got {len(tokens)}"
        )
    values = [family.coerce(i, token) for i, token in enumerate(tokens)]
    return family.build(*values)
