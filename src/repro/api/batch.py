"""Batch scheduler: fan declarative job specs across pluggable backends.

A :class:`JobSpec` names one unit of work — *graph × task × seed ×
transport (+ task kwargs)* — and :func:`run` executes a list of them,
streaming one canonical JSONL row (a serialized
:class:`~repro.api.envelope.Result`) per job, in job order. This is the
substrate every sweep/serving layer sits on:

* **session reuse** — jobs are grouped by graph spec and each group runs
  through one :class:`~repro.api.GraphSession`, so a graph is
  canonicalized once per chunk no matter how many tasks hit it;
* **deterministic seeds** — a job without an explicit seed gets one
  derived from ``sha256(base_seed | job index | job key)``, so the same
  spec file always produces byte-identical JSONL (rows are
  :meth:`~repro.api.envelope.Result.canonical_json`: sorted keys, no
  timings);
* **pluggable fan-out** — ``backend=`` selects an execution plane from
  the :mod:`repro.api.backends` registry (``serial`` / ``process`` /
  ``thread``); graph groups are split into worker-sized chunks (a
  single-graph sweep still uses every worker) and rows are reassembled
  in job order, so every backend emits identical bytes;
* **checkpoint/resume** — ``checkpoint=`` write-ahead-logs each row to
  a manifest keyed by ``sha256(job.key() | seed)`` as its chunk
  completes; ``resume=True`` reloads it, skips completed jobs, rejects
  a mismatched jobs file loudly, and still emits byte-identical final
  JSONL — a killed million-job sweep restarts where it died.

The matrix shorthand :func:`expand_matrix` turns
``{"graphs": [...], "tasks": [...], "seeds": [...]}`` into the full
cross product; ``repro batch jobs.json`` is the CLI face and the
service's ``batch`` op routes through the same scheduler.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import (
    Any, Dict, IO, List, Mapping, Optional, Sequence, Tuple, Union,
)

from repro.api.backends import default_workers, get_backend, make_chunks
from repro.api.envelope import Result
from repro.api.session import SESSION_TASKS, GraphSession
from repro.errors import GraphValidationError, ReproError

_SEED_SPACE = 2**63

#: Manifest self-identification; bump ``_CHECKPOINT_VERSION`` on any
#: breaking change to the line format.
_CHECKPOINT_KIND = "repro-batch-checkpoint"
_CHECKPOINT_VERSION = 1


@dataclass
class JobSpec:
    """One declarative unit of batch work.

    ``seed=None`` means "derive deterministically from the batch's
    ``base_seed`` and this job's position/identity"; an explicit int is
    used verbatim. ``transport`` maps to the task's transport-like
    argument (``broadcast``: vertex/edge; ``simulate``: the model).
    ``params`` are extra keyword arguments for the session method.
    """

    graph: str
    task: str = "connectivity"
    seed: Optional[int] = None
    transport: Optional[str] = None
    params: Dict[str, Any] = field(default_factory=dict)
    label: Optional[str] = None

    def __post_init__(self) -> None:
        if self.task not in SESSION_TASKS:
            raise GraphValidationError(
                f"unknown batch task {self.task!r}; valid tasks: "
                + ", ".join(SESSION_TASKS)
            )

    def key(self) -> str:
        """Canonical identity string (seed derivation input)."""
        return json.dumps(
            {
                "graph": self.graph,
                "task": self.task,
                "transport": self.transport,
                "params": self.params,
                "label": self.label,
            },
            sort_keys=True,
            separators=(",", ":"),
        )

    def to_dict(self) -> Dict[str, Any]:
        body: Dict[str, Any] = {"graph": self.graph, "task": self.task}
        if self.seed is not None:
            body["seed"] = self.seed
        if self.transport is not None:
            body["transport"] = self.transport
        if self.params:
            body["params"] = self.params
        if self.label is not None:
            body["label"] = self.label
        return body

    @classmethod
    def from_dict(cls, body: Mapping[str, Any]) -> "JobSpec":
        unknown = set(body) - {
            "graph", "task", "seed", "transport", "params", "label"
        }
        if unknown:
            raise GraphValidationError(
                f"unknown JobSpec field(s) {sorted(unknown)}; valid "
                "fields: graph, task, seed, transport, params, label"
            )
        if "graph" not in body:
            raise GraphValidationError("a JobSpec requires a 'graph' spec")
        return cls(
            graph=body["graph"],
            task=body.get("task", "connectivity"),
            seed=body.get("seed"),
            transport=body.get("transport"),
            params=dict(body.get("params", {})),
            label=body.get("label"),
        )


def derive_seed(base_seed: int, index: int, job: JobSpec) -> int:
    """Deterministic per-job seed: sha256 over base seed, position, and
    the job's canonical identity — stable across runs and processes."""
    digest = hashlib.sha256(
        f"{base_seed}|{index}|{job.key()}".encode("utf-8")
    ).digest()
    return int.from_bytes(digest[:8], "big") % _SEED_SPACE


def job_digest(job: JobSpec, seed: int) -> str:
    """Checkpoint identity of one resolved job: ``sha256(key | seed)``.

    The same derandomize-the-randomness idiom as the seed derivation:
    identity is a pure function of declared inputs, so a resumed run
    can prove — not assume — that a manifest row belongs to this batch.
    """
    return hashlib.sha256(
        f"{job.key()}|{seed}".encode("utf-8")
    ).hexdigest()


def expand_matrix(matrix: Mapping[str, Any]) -> List[JobSpec]:
    """Cross-product shorthand → the explicit job list.

    Keys: ``graphs`` (required), ``tasks`` (default
    ``["connectivity"]``), ``seeds`` (explicit seed values; default one
    derived seed), ``trials`` (N derived-seed repetitions; exclusive
    with ``seeds``), ``transports`` (default ``[None]``), ``params`` (a
    mapping *task name → kwargs* applied to that task's jobs), and
    ``base_seed`` (consumed by :func:`run` as its seed-derivation base
    when the caller does not pass one explicitly).

    Expansion order is graphs ▸ tasks ▸ transports ▸ seeds — the JSONL
    row order of the resulting batch.
    """
    if "graphs" not in matrix or not matrix["graphs"]:
        raise GraphValidationError("job matrix requires a non-empty 'graphs'")
    unknown = set(matrix) - {
        "graphs", "tasks", "seeds", "trials", "transports", "params",
        "base_seed",
    }
    if unknown:
        raise GraphValidationError(
            f"unknown job-matrix field(s) {sorted(unknown)}; valid fields: "
            "graphs, tasks, seeds, trials, transports, params, base_seed"
        )
    if "seeds" in matrix and "trials" in matrix:
        raise GraphValidationError(
            "job matrix takes 'seeds' (explicit) or 'trials' (derived), "
            "not both"
        )
    tasks = list(matrix.get("tasks", ["connectivity"]))
    transports = list(matrix.get("transports", [None]))
    params_by_task = dict(matrix.get("params", {}))
    unknown_param_tasks = set(params_by_task) - set(SESSION_TASKS)
    if unknown_param_tasks:
        raise GraphValidationError(
            f"job-matrix params name unknown task(s) "
            f"{sorted(unknown_param_tasks)}; valid tasks: "
            + ", ".join(SESSION_TASKS)
        )
    if "seeds" in matrix:
        seeds: Sequence[Optional[int]] = list(matrix["seeds"])
    else:
        trials = int(matrix.get("trials", 1))
        if trials < 1:
            raise GraphValidationError("'trials' must be >= 1")
        # Repeated trials stay label-free: the executor's per-job seed
        # derivation (position-aware) already makes them independent,
        # and identical labels keep them one sweep point downstream.
        seeds = [None] * trials
    jobs: List[JobSpec] = []
    for graph in matrix["graphs"]:
        for task in tasks:
            for transport in transports:
                for seed in seeds:
                    jobs.append(
                        JobSpec(
                            graph=graph,
                            task=task,
                            seed=seed,
                            transport=transport,
                            params=dict(params_by_task.get(task, {})),
                        )
                    )
    return jobs


def load_jobs(source: Union[str, Mapping, Sequence]) -> List[JobSpec]:
    """Jobs from a JSON file path, a matrix mapping, or a list of dicts."""
    if isinstance(source, str):
        with open(source, "r", encoding="utf-8") as handle:
            return load_jobs(json.load(handle))
    if isinstance(source, Mapping):
        return expand_matrix(source)
    if isinstance(source, Sequence):
        return [
            job if isinstance(job, JobSpec) else JobSpec.from_dict(job)
            for job in source
        ]
    raise GraphValidationError(
        f"cannot interpret job source {type(source).__name__!r}; expected "
        "a path, a job-matrix mapping, or a list of job dicts"
    )


def _execute_job(session: GraphSession, job: JobSpec, seed: int) -> Result:
    kwargs = dict(job.params)
    if job.transport is not None:
        if job.task == "broadcast":
            kwargs["transport"] = job.transport
        elif job.task == "simulate":
            kwargs["model"] = job.transport
        else:
            raise GraphValidationError(
                f"task {job.task!r} does not take a transport "
                f"(got {job.transport!r})"
            )
    method = getattr(session, job.task)
    return method(seed=seed, **kwargs)


def _error_taxonomy(error: Exception) -> str:
    """Exception → the service protocol's machine-readable category
    (``"graph"`` / ``"library"`` / ``"internal"``), matching
    :func:`repro.service.protocol.error_envelope` semantics."""
    if isinstance(error, GraphValidationError):
        return "graph"
    if isinstance(error, ReproError):
        return "library"
    return "internal"


def _error_result(job: JobSpec, seed: Optional[int], error: Exception) -> Result:
    """A failed job's row: machine-readable, no string parsing needed.

    ``payload["status"] == "error"`` discriminates failure rows from
    real results; ``error_type`` is the service-protocol taxonomy
    category and ``error_name`` the Python exception class, with the
    bare message in ``error`` — consumers no longer have to split a
    ``"ErrorName: msg"`` string.
    """
    return Result(
        task=job.task,
        graph=job.graph,
        fingerprint="",
        n=0,
        m=0,
        seed=seed,
        params={"transport": job.transport, **job.params},
        payload={
            "status": "error",
            "error": str(error),
            "error_type": _error_taxonomy(error),
            "error_name": type(error).__name__,
        },
    )


def is_error_row(result: Result) -> bool:
    """Whether an envelope is a batch error row (see :func:`_error_result`)."""
    return result.payload.get("status") == "error"


def _execute_items(
    items: List[Tuple[int, Dict[str, Any], int]]
) -> List[Tuple[int, Result]]:
    """Run one chunk's jobs through a shared session.

    The one job-execution loop — every backend's chunk runner goes
    through it. *Any* per-job failure (bad params raising TypeError
    included, not just ReproError) becomes an error-row envelope: one
    broken job must not abort the batch. Chunks are same-graph by
    construction, but the session is rebuilt defensively if a mixed
    chunk ever appears.
    """
    rows: List[Tuple[int, Result]] = []
    session: Optional[GraphSession] = None
    session_graph: Optional[str] = None
    for index, job_body, seed in items:
        job = JobSpec.from_dict(job_body)
        try:
            if session is None or session_graph != job.graph:
                session = GraphSession(job.graph)
                session_graph = job.graph
            result = _execute_job(session, job, seed)
        except Exception as error:  # noqa: BLE001 — error row, keep going
            result = _error_result(job, seed, error)
        rows.append((index, result))
    return rows


# -- checkpoint manifest ---------------------------------------------------


def _batch_digest(digests: Sequence[str]) -> str:
    """One hash over the whole resolved batch (all per-job digests, in
    order) — the manifest's fast whole-file identity check."""
    return hashlib.sha256("\n".join(digests).encode("ascii")).hexdigest()


def _manifest_header(digests: Sequence[str]) -> str:
    return json.dumps(
        {
            "kind": _CHECKPOINT_KIND,
            "version": _CHECKPOINT_VERSION,
            "jobs": len(digests),
            "batch": _batch_digest(digests),
        },
        sort_keys=True,
        separators=(",", ":"),
    )


def _manifest_line(index: int, digest: str, row: str) -> str:
    return json.dumps(
        {"i": index, "d": digest, "row": row},
        sort_keys=True,
        separators=(",", ":"),
    )


def _load_checkpoint(path: str, digests: Sequence[str]) -> Dict[int, str]:
    """Completed rows from a manifest: ``{job index: canonical row}``.

    A missing file means a fresh start (``{}``). A manifest written for
    a *different* jobs file — wrong job count, wrong batch digest, or a
    row whose per-job digest disagrees — is rejected loudly. A
    truncated trailing line (the run was killed mid-write) is dropped;
    a malformed line anywhere *before* the end is corruption and fails.
    """
    try:
        with open(path, "r", encoding="utf-8") as handle:
            text = handle.read()
    except FileNotFoundError:
        return {}
    if not text:
        return {}
    lines = text.split("\n")
    # The final element is either "" (file ended on a newline) or a
    # kill-truncated partial record; neither is a complete line.
    lines = lines[:-1]
    if not lines:
        return {}

    def _bad(reason: str) -> GraphValidationError:
        return GraphValidationError(
            f"checkpoint {path!r} does not match this batch: {reason}; "
            "delete the checkpoint (or point --checkpoint elsewhere) to "
            "start fresh"
        )

    try:
        header = json.loads(lines[0])
    except json.JSONDecodeError as exc:
        raise _bad(f"unreadable header ({exc})") from exc
    if (
        not isinstance(header, dict)
        or header.get("kind") != _CHECKPOINT_KIND
    ):
        raise _bad("not a repro-batch checkpoint manifest")
    if header.get("version") != _CHECKPOINT_VERSION:
        raise _bad(
            f"manifest version {header.get('version')!r} != "
            f"{_CHECKPOINT_VERSION}"
        )
    if header.get("jobs") != len(digests):
        raise _bad(
            f"manifest is for {header.get('jobs')} job(s), this batch "
            f"has {len(digests)}"
        )
    if header.get("batch") != _batch_digest(digests):
        raise _bad(
            "batch digest mismatch — the jobs file, base seed, or "
            "explicit seeds changed since the checkpoint was written"
        )
    completed: Dict[int, str] = {}
    for lineno, line in enumerate(lines[1:], start=2):
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            raise _bad(f"corrupt record on line {lineno} ({exc})") from exc
        index, digest, row = (
            record.get("i"), record.get("d"), record.get("row")
        )
        if (
            not isinstance(index, int)
            or not 0 <= index < len(digests)
            or not isinstance(row, str)
        ):
            raise _bad(f"malformed record on line {lineno}")
        if digest != digests[index]:
            raise _bad(
                f"job {index} digest mismatch on line {lineno} — the "
                "manifest row belongs to a different job/seed"
            )
        completed[index] = row
    return completed


# -- the scheduler ---------------------------------------------------------


def _resolve_backend(
    backend: Optional[str],
    workers: Optional[int],
    processes: Optional[int],
) -> Tuple[str, int]:
    """Merge the modern ``backend=``/``workers=`` knobs with the legacy
    ``processes=`` one: ``processes > 1`` maps to ``backend="process"``
    with that worker count, anything else to ``serial``."""
    if workers is None and processes is not None and processes > 1:
        workers = processes
    if backend is None:
        backend = (
            "process" if processes is not None and processes > 1
            else "serial"
        )
    if workers is None:
        workers = 1 if backend == "serial" else default_workers()
    if workers < 1:
        raise GraphValidationError(f"workers must be >= 1, got {workers}")
    return backend, workers


def run(
    jobs: Union[str, Mapping, Sequence],
    base_seed: Optional[int] = None,
    processes: Optional[int] = None,
    jsonl: Optional[IO[str]] = None,
    include_timings: bool = False,
    backend: Optional[str] = None,
    workers: Optional[int] = None,
    checkpoint: Optional[str] = None,
    resume: bool = False,
    stats: Optional[Dict[str, Any]] = None,
) -> List[Result]:
    """Execute a batch; return envelopes in job order.

    ``jobs`` — anything :func:`load_jobs` accepts; a file path is read
    **once** and both ``base_seed`` and the job list come from that one
    parse. ``base_seed`` — seed-derivation base; ``None`` takes the job
    matrix's ``base_seed`` field when ``jobs`` is a matrix (or a file
    containing one), else 0; an explicit argument always wins.

    ``backend`` — an execution plane from the
    :mod:`repro.api.backends` registry (``serial`` / ``process`` /
    ``thread``); ``workers`` sizes its pool. The legacy ``processes``
    parameter maps onto them (``> 1`` → ``backend="process"``). Rows
    are reassembled by job index, so every backend × worker count emits
    byte-identical output.

    ``jsonl`` — a text stream receiving one row per job, written in job
    order *as jobs complete* (an in-order prefix streams out while
    later chunks still run); rows are
    :meth:`~repro.api.envelope.Result.canonical_json` unless
    ``include_timings`` (then timings ride along and byte-identity
    across runs no longer holds).

    ``checkpoint`` — a manifest path write-ahead-logging every
    completed row (flushed per chunk) under its
    ``sha256(job.key() | seed)`` digest. ``resume=True`` reloads the
    manifest before executing: completed jobs are skipped and their
    rows replayed, a manifest for a different jobs file is rejected
    loudly, and the final output is byte-identical to an uninterrupted
    run. ``stats`` — an optional dict populated in place with
    ``backend``, ``workers``, ``chunks``, ``resumed``, ``executed``,
    and the distinct ``worker_pids`` observed (proof of fan-out).
    """
    # One read of the source: base_seed and the job list come from the
    # same parsed object (the old separate reads were a TOCTOU window).
    source: Any = jobs
    if isinstance(source, str):
        with open(source, "r", encoding="utf-8") as handle:
            source = json.load(handle)
    if base_seed is None:
        if isinstance(source, Mapping):
            base_seed = int(source.get("base_seed", 0))
        else:
            base_seed = 0
    job_list = load_jobs(source)
    seeds = [
        job.seed if job.seed is not None else derive_seed(base_seed, i, job)
        for i, job in enumerate(job_list)
    ]
    digests = [job_digest(job, seed) for job, seed in zip(job_list, seeds)]

    backend_name, worker_count = _resolve_backend(backend, workers, processes)
    plane = get_backend(backend_name)

    if checkpoint is not None and include_timings:
        raise GraphValidationError(
            "checkpoint manifests store canonical timing-free rows; "
            "include_timings cannot be combined with a checkpoint"
        )
    if resume and checkpoint is None:
        raise GraphValidationError(
            "resume=True needs a checkpoint= manifest path to resume from"
        )
    completed = _load_checkpoint(checkpoint, digests) if resume else {}

    total = len(job_list)
    ordered: List[Optional[Result]] = [None] * total
    rows: List[Optional[str]] = [None] * total
    for index, row in completed.items():
        ordered[index] = Result.from_dict(json.loads(row))
        rows[index] = row

    # Group the *pending* jobs by graph spec (one GraphSession per
    # chunk), then split oversized groups so even a one-graph sweep
    # fans out across every worker.
    groups: Dict[str, List[Tuple[int, Dict[str, Any], int]]] = {}
    for index, (job, seed) in enumerate(zip(job_list, seeds)):
        if index in completed:
            continue
        groups.setdefault(job.graph, []).append((index, job.to_dict(), seed))
    chunks = make_chunks(groups, worker_count)

    run_stats: Dict[str, Any] = {
        "backend": backend_name,
        "workers": worker_count,
        "jobs": total,
        "resumed": len(completed),
        "executed": total - len(completed),
        "chunks": len(chunks),
        "worker_pids": set(),
    }

    next_write = 0

    def _drain() -> None:
        """Stream the completed in-order prefix to the sink."""
        nonlocal next_write
        while next_write < total and rows[next_write] is not None:
            if jsonl is not None:
                if include_timings:
                    jsonl.write(
                        json.dumps(
                            ordered[next_write].to_dict(include_timings=True),
                            sort_keys=True,
                            separators=(",", ":"),
                        )
                    )
                else:
                    jsonl.write(rows[next_write])
                jsonl.write("\n")
            next_write += 1

    manifest: Optional[IO[str]] = None
    try:
        if checkpoint is not None:
            # Rewrite the manifest from scratch (header + replayed
            # rows): appending after a kill-truncated trailing line
            # would corrupt the file.
            manifest = open(checkpoint, "w", encoding="utf-8")
            manifest.write(_manifest_header(digests) + "\n")
            for index in sorted(completed):
                manifest.write(
                    _manifest_line(index, digests[index], rows[index]) + "\n"
                )
            manifest.flush()
        _drain()
        if chunks:
            for chunk_rows in plane.execute(
                chunks, worker_count, run_stats
            ):
                for index, result, canonical in chunk_rows:
                    ordered[index] = result
                    rows[index] = canonical
                # Write-ahead: the manifest is durable before the sink
                # sees the rows, so a crash between the two replays
                # cleanly on resume.
                if manifest is not None:
                    for index, _, canonical in chunk_rows:
                        manifest.write(
                            _manifest_line(index, digests[index], canonical)
                            + "\n"
                        )
                    manifest.flush()
                _drain()
    finally:
        if manifest is not None:
            manifest.close()

    if stats is not None:
        run_stats["worker_pids"] = sorted(run_stats["worker_pids"])
        stats.update(run_stats)
    return [result for result in ordered if result is not None]


def run_to_jsonl(
    jobs: Union[str, Mapping, Sequence],
    path: str,
    base_seed: Optional[int] = None,
    processes: Optional[int] = None,
    include_timings: bool = False,
    backend: Optional[str] = None,
    workers: Optional[int] = None,
    checkpoint: Optional[str] = None,
    resume: bool = False,
    stats: Optional[Dict[str, Any]] = None,
) -> List[Result]:
    """:func:`run` with rows streamed to a file at ``path``."""
    with open(path, "w", encoding="utf-8") as handle:
        return run(
            jobs,
            base_seed=base_seed,
            processes=processes,
            jsonl=handle,
            include_timings=include_timings,
            backend=backend,
            workers=workers,
            checkpoint=checkpoint,
            resume=resume,
            stats=stats,
        )
