"""Batch executor: fan declarative job specs across processes.

A :class:`JobSpec` names one unit of work — *graph × task × seed ×
transport (+ task kwargs)* — and :func:`run` executes a list of them,
streaming one canonical JSONL row (a serialized
:class:`~repro.api.envelope.Result`) per job, in job order. This is the
substrate every sweep/serving layer sits on:

* **session reuse** — jobs are grouped by graph spec and each group runs
  through one :class:`~repro.api.GraphSession`, so a graph is
  canonicalized once no matter how many tasks hit it;
* **deterministic seeds** — a job without an explicit seed gets one
  derived from ``sha256(base_seed | job index | job key)``, so the same
  spec file always produces byte-identical JSONL (rows are
  :meth:`~repro.api.envelope.Result.canonical_json`: sorted keys, no
  timings);
* **process fan-out** — ``processes > 1`` distributes graph groups over
  a :class:`~concurrent.futures.ProcessPoolExecutor`; rows are
  reassembled in job order, so parallel and serial runs emit identical
  output.

The matrix shorthand :func:`expand_matrix` turns
``{"graphs": [...], "tasks": [...], "seeds": [...]}`` into the full
cross product; ``repro batch jobs.json`` is the CLI face.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Dict, IO, Iterable, List, Mapping, Optional, Sequence, Tuple, Union

from repro.api.envelope import Result
from repro.api.session import SESSION_TASKS, GraphSession
from repro.errors import GraphValidationError

_SEED_SPACE = 2**63


@dataclass
class JobSpec:
    """One declarative unit of batch work.

    ``seed=None`` means "derive deterministically from the batch's
    ``base_seed`` and this job's position/identity"; an explicit int is
    used verbatim. ``transport`` maps to the task's transport-like
    argument (``broadcast``: vertex/edge; ``simulate``: the model).
    ``params`` are extra keyword arguments for the session method.
    """

    graph: str
    task: str = "connectivity"
    seed: Optional[int] = None
    transport: Optional[str] = None
    params: Dict[str, Any] = field(default_factory=dict)
    label: Optional[str] = None

    def __post_init__(self) -> None:
        if self.task not in SESSION_TASKS:
            raise GraphValidationError(
                f"unknown batch task {self.task!r}; valid tasks: "
                + ", ".join(SESSION_TASKS)
            )

    def key(self) -> str:
        """Canonical identity string (seed derivation input)."""
        return json.dumps(
            {
                "graph": self.graph,
                "task": self.task,
                "transport": self.transport,
                "params": self.params,
                "label": self.label,
            },
            sort_keys=True,
            separators=(",", ":"),
        )

    def to_dict(self) -> Dict[str, Any]:
        body: Dict[str, Any] = {"graph": self.graph, "task": self.task}
        if self.seed is not None:
            body["seed"] = self.seed
        if self.transport is not None:
            body["transport"] = self.transport
        if self.params:
            body["params"] = self.params
        if self.label is not None:
            body["label"] = self.label
        return body

    @classmethod
    def from_dict(cls, body: Mapping[str, Any]) -> "JobSpec":
        unknown = set(body) - {
            "graph", "task", "seed", "transport", "params", "label"
        }
        if unknown:
            raise GraphValidationError(
                f"unknown JobSpec field(s) {sorted(unknown)}; valid "
                "fields: graph, task, seed, transport, params, label"
            )
        if "graph" not in body:
            raise GraphValidationError("a JobSpec requires a 'graph' spec")
        return cls(
            graph=body["graph"],
            task=body.get("task", "connectivity"),
            seed=body.get("seed"),
            transport=body.get("transport"),
            params=dict(body.get("params", {})),
            label=body.get("label"),
        )


def derive_seed(base_seed: int, index: int, job: JobSpec) -> int:
    """Deterministic per-job seed: sha256 over base seed, position, and
    the job's canonical identity — stable across runs and processes."""
    digest = hashlib.sha256(
        f"{base_seed}|{index}|{job.key()}".encode("utf-8")
    ).digest()
    return int.from_bytes(digest[:8], "big") % _SEED_SPACE


def expand_matrix(matrix: Mapping[str, Any]) -> List[JobSpec]:
    """Cross-product shorthand → the explicit job list.

    Keys: ``graphs`` (required), ``tasks`` (default
    ``["connectivity"]``), ``seeds`` (explicit seed values; default one
    derived seed), ``trials`` (N derived-seed repetitions; exclusive
    with ``seeds``), ``transports`` (default ``[None]``), ``params`` (a
    mapping *task name → kwargs* applied to that task's jobs), and
    ``base_seed`` (consumed by :func:`run` as its seed-derivation base
    when the caller does not pass one explicitly).

    Expansion order is graphs ▸ tasks ▸ transports ▸ seeds — the JSONL
    row order of the resulting batch.
    """
    if "graphs" not in matrix or not matrix["graphs"]:
        raise GraphValidationError("job matrix requires a non-empty 'graphs'")
    unknown = set(matrix) - {
        "graphs", "tasks", "seeds", "trials", "transports", "params",
        "base_seed",
    }
    if unknown:
        raise GraphValidationError(
            f"unknown job-matrix field(s) {sorted(unknown)}; valid fields: "
            "graphs, tasks, seeds, trials, transports, params, base_seed"
        )
    if "seeds" in matrix and "trials" in matrix:
        raise GraphValidationError(
            "job matrix takes 'seeds' (explicit) or 'trials' (derived), "
            "not both"
        )
    tasks = list(matrix.get("tasks", ["connectivity"]))
    transports = list(matrix.get("transports", [None]))
    params_by_task = dict(matrix.get("params", {}))
    unknown_param_tasks = set(params_by_task) - set(SESSION_TASKS)
    if unknown_param_tasks:
        raise GraphValidationError(
            f"job-matrix params name unknown task(s) "
            f"{sorted(unknown_param_tasks)}; valid tasks: "
            + ", ".join(SESSION_TASKS)
        )
    if "seeds" in matrix:
        seeds: Sequence[Optional[int]] = list(matrix["seeds"])
    else:
        trials = int(matrix.get("trials", 1))
        if trials < 1:
            raise GraphValidationError("'trials' must be >= 1")
        # Repeated trials stay label-free: the executor's per-job seed
        # derivation (position-aware) already makes them independent,
        # and identical labels keep them one sweep point downstream.
        seeds = [None] * trials
    jobs: List[JobSpec] = []
    for graph in matrix["graphs"]:
        for task in tasks:
            for transport in transports:
                for seed in seeds:
                    jobs.append(
                        JobSpec(
                            graph=graph,
                            task=task,
                            seed=seed,
                            transport=transport,
                            params=dict(params_by_task.get(task, {})),
                        )
                    )
    return jobs


def load_jobs(source: Union[str, Mapping, Sequence]) -> List[JobSpec]:
    """Jobs from a JSON file path, a matrix mapping, or a list of dicts."""
    if isinstance(source, str):
        with open(source, "r", encoding="utf-8") as handle:
            return load_jobs(json.load(handle))
    if isinstance(source, Mapping):
        return expand_matrix(source)
    if isinstance(source, Sequence):
        return [
            job if isinstance(job, JobSpec) else JobSpec.from_dict(job)
            for job in source
        ]
    raise GraphValidationError(
        f"cannot interpret job source {type(source).__name__!r}; expected "
        "a path, a job-matrix mapping, or a list of job dicts"
    )


def _execute_job(session: GraphSession, job: JobSpec, seed: int) -> Result:
    kwargs = dict(job.params)
    if job.transport is not None:
        if job.task == "broadcast":
            kwargs["transport"] = job.transport
        elif job.task == "simulate":
            kwargs["model"] = job.transport
        else:
            raise GraphValidationError(
                f"task {job.task!r} does not take a transport "
                f"(got {job.transport!r})"
            )
    method = getattr(session, job.task)
    return method(seed=seed, **kwargs)


def _error_result(job: JobSpec, seed: Optional[int], error: Exception) -> Result:
    return Result(
        task=job.task,
        graph=job.graph,
        fingerprint="",
        n=0,
        m=0,
        seed=seed,
        params={"transport": job.transport, **job.params},
        payload={"error": f"{type(error).__name__}: {error}"},
    )


def _execute_items(
    items: List[Tuple[int, Dict[str, Any], int]]
) -> List[Tuple[int, Result]]:
    """Run one graph's jobs through a single shared session.

    The one job-execution loop — both the serial path and the
    process-pool worker go through it. *Any* per-job failure (bad
    params raising TypeError included, not just ReproError) becomes an
    error-row envelope: one broken job must not abort the batch.
    """
    rows: List[Tuple[int, Result]] = []
    session: Optional[GraphSession] = None
    for index, job_body, seed in items:
        job = JobSpec.from_dict(job_body)
        try:
            if session is None:
                session = GraphSession(job.graph)
            result = _execute_job(session, job, seed)
        except Exception as error:  # noqa: BLE001 — error row, keep going
            result = _error_result(job, seed, error)
        rows.append((index, result))
    return rows


def _run_group(
    graph_spec: str, items: List[Tuple[int, Dict[str, Any], int]]
) -> List[Tuple[int, Dict[str, Any], str]]:
    """Process-pool worker: :func:`_execute_items` over plain dicts.

    The canonical JSONL row is precomputed here so parallel runs
    serialize exactly like serial ones (the ``raw`` object does not
    cross the process boundary).
    """
    return [
        (index, result.to_dict(include_timings=True),
         result.canonical_json())
        for index, result in _execute_items(items)
    ]


def run(
    jobs: Union[str, Mapping, Sequence],
    base_seed: Optional[int] = None,
    processes: Optional[int] = None,
    jsonl: Optional[IO[str]] = None,
    include_timings: bool = False,
) -> List[Result]:
    """Execute a batch; return envelopes in job order.

    ``jobs`` — anything :func:`load_jobs` accepts. ``base_seed`` —
    seed-derivation base; ``None`` takes the job matrix's ``base_seed``
    field when ``jobs`` is a matrix mapping (or a file containing one),
    else 0; an explicit argument always wins. ``processes`` —
    ``None``/``0``/``1`` runs serially in-process (envelopes keep their
    ``raw`` objects); ``> 1`` fans graph groups across a process pool.
    ``jsonl`` — a text stream receiving one row per job, in job order;
    rows are :meth:`~repro.api.envelope.Result.canonical_json` unless
    ``include_timings`` (then timings ride along and byte-identity
    across runs no longer holds).
    """
    if base_seed is None:
        source: Any = jobs
        if isinstance(source, str):
            with open(source, "r", encoding="utf-8") as handle:
                source = json.load(handle)
        if isinstance(source, Mapping):
            base_seed = int(source.get("base_seed", 0))
        else:
            base_seed = 0
    job_list = load_jobs(jobs)
    seeds = [
        job.seed if job.seed is not None else derive_seed(base_seed, i, job)
        for i, job in enumerate(job_list)
    ]

    # Group by graph spec: one GraphSession (one canonicalization) per
    # distinct graph, preserving each group's in-order execution.
    groups: Dict[str, List[Tuple[int, Dict[str, Any], int]]] = {}
    for index, (job, seed) in enumerate(zip(job_list, seeds)):
        groups.setdefault(job.graph, []).append(
            (index, job.to_dict(), seed)
        )

    ordered: List[Optional[Result]] = [None] * len(job_list)
    rows: List[Optional[str]] = [None] * len(job_list)

    if processes is not None and processes > 1 and len(groups) > 1:
        from concurrent.futures import ProcessPoolExecutor

        with ProcessPoolExecutor(max_workers=processes) as pool:
            for group_rows in pool.map(
                _run_group, groups.keys(), groups.values()
            ):
                for index, body, canonical in group_rows:
                    ordered[index] = Result.from_dict(body)
                    rows[index] = canonical
    else:
        # Serial path: same loop, keeping `.raw` on the envelopes.
        for items in groups.values():
            for index, result in _execute_items(items):
                ordered[index] = result
                rows[index] = result.canonical_json()

    results = [result for result in ordered if result is not None]
    if jsonl is not None:
        for result, canonical in zip(results, rows):
            if include_timings:
                jsonl.write(
                    json.dumps(
                        result.to_dict(include_timings=True),
                        sort_keys=True,
                        separators=(",", ":"),
                    )
                )
            else:
                jsonl.write(canonical)
            jsonl.write("\n")
    return results


def run_to_jsonl(
    jobs: Union[str, Mapping, Sequence],
    path: str,
    base_seed: Optional[int] = None,
    processes: Optional[int] = None,
    include_timings: bool = False,
) -> List[Result]:
    """:func:`run` with rows streamed to a file at ``path``."""
    with open(path, "w", encoding="utf-8") as handle:
        return run(
            jobs,
            base_seed=base_seed,
            processes=processes,
            jsonl=handle,
            include_timings=include_timings,
        )
