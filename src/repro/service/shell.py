"""``repro shell`` — an interactive front door to the graph service.

A small GCLI-style grammar (``node list``, ``edge new``, ``graph
open``, …) over the same request/response surface the daemon serves.
Two backends:

* :class:`LocalBackend` — an in-process :class:`ServiceCore`; no
  daemon, no sockets, same envelopes.
* :class:`RemoteBackend` — a client of a running ``repro serve``
  daemon (newline-delimited JSON over TCP).

The shell is scriptable: it reads commands from any line iterable
(stdin in the CLI), prints one result per command — human rendering by
default, the raw envelope JSON with ``--json`` — and its exit status
reports whether any command failed, which is what the CI
``service-smoke`` job drives.

    repro> graph open harary:6,24
    opened harary:6,24  fingerprint=9c0f… n=24 m=72
    repro> estimate k
    k ∈ [5.00, 6.00]  (packing size 5.50, 14 trees)
    repro> edge new 0 12
    edge (0, 12) added  n=24 m=73 fingerprint=4be2…
"""

from __future__ import annotations

import json
import shlex
import socket
import sys
from typing import Any, Dict, Iterable, Optional, TextIO

from repro.errors import ServiceError
from repro.service.core import ServiceCore
from repro.service.protocol import is_error, read_frame, write_frame

HELP_TEXT = """\
commands
  graph open <spec|file.csv>   open (or switch to) a graph; CSV files
                               import GCLI adjacency matrices
  node list                    list node ids
  node nbr <id>                list a node's neighbours
  node n <id>                  neighbour count
  node p <src> <dst>           shortest path
  edge new <a> <b>             add an edge (incremental re-canonicalization)
  edge rmv <a> <b>             remove an edge
  estimate [k]                 Corollary 1.7 vertex-connectivity estimate
  pack [cds|spanning]          fractional tree packing (default: cds)
  simulate [program]           run a scenario program (default: flooding)
  stats                        service/session cache statistics
  seed <n>                     set the seed used by estimate/pack/simulate
  ping                         liveness check
  help                         this text
  quit | exit                  leave the shell"""


def coerce_token(token: str) -> Any:
    """Shell tokens: digit-like → int (node ids agree with generators)."""
    return int(token) if token.lstrip("-").isdigit() and token else token


class LocalBackend:
    """In-process backend: the shell drives a ServiceCore directly."""

    def __init__(self, core: Optional[ServiceCore] = None) -> None:
        self.core = core if core is not None else ServiceCore()

    def request(self, body: Dict[str, Any]) -> Dict[str, Any]:
        return self.core.handle(body)

    def close(self) -> None:
        pass


class RemoteBackend:
    """Client of a running ``repro serve`` daemon."""

    def __init__(self, host: str, port: int, timeout: float = 60.0) -> None:
        try:
            self._sock = socket.create_connection((host, port), timeout)
        except OSError as exc:
            raise ServiceError(
                f"cannot connect to repro-serve at {host}:{port}: {exc}"
            ) from exc
        self._reader = self._sock.makefile("rb")
        self._writer = self._sock.makefile("wb")

    def request(self, body: Dict[str, Any]) -> Dict[str, Any]:
        try:
            write_frame(self._writer, body)
            response = read_frame(self._reader)
        except OSError as exc:
            raise ServiceError(f"connection to daemon lost: {exc}") from exc
        if response is None:
            raise ServiceError("daemon closed the connection")
        return response

    def close(self) -> None:
        for stream in (self._reader, self._writer):
            try:
                stream.close()
            except OSError:
                pass
        try:
            self._sock.close()
        except OSError:
            pass


def parse_connect(text: str) -> tuple:
    """``HOST:PORT`` (or bare ``PORT``) → (host, port)."""
    host, sep, port_text = text.rpartition(":")
    if not sep:
        host, port_text = "127.0.0.1", text
    try:
        port = int(port_text)
    except ValueError:
        raise ServiceError(
            f"--connect wants HOST:PORT or PORT, got {text!r}"
        ) from None
    return host or "127.0.0.1", port


class ReproShell:
    """The REPL: parse one GCLI-style line, run one service request."""

    def __init__(
        self,
        backend,
        out: Optional[TextIO] = None,
        json_mode: bool = False,
        seed: int = 0,
    ) -> None:
        self.backend = backend
        self.out = out if out is not None else sys.stdout
        self.json_mode = json_mode
        self.seed = seed
        self.session: Optional[str] = None  # fingerprint handle
        self.errors = 0
        self.stopped = False

    # -- driving -------------------------------------------------------

    def run(self, lines: Iterable[str], prompt: bool = False) -> int:
        """Execute lines until EOF or ``quit``; returns the error count."""
        if prompt:
            self._prompt()
        for line in lines:
            self.execute(line)
            if self.stopped:
                break
            if prompt:
                self._prompt()
        return self.errors

    def _prompt(self) -> None:
        print("repro> ", end="", file=self.out, flush=True)

    def execute(self, line: str) -> None:
        """Run one command line (comments and blanks are no-ops)."""
        try:
            tokens = shlex.split(line, comments=True)
        except ValueError as exc:
            self._fail(f"cannot parse line: {exc}")
            return
        if not tokens:
            return
        command, args = tokens[0].lower(), tokens[1:]
        try:
            handler = getattr(self, f"_cmd_{command}", None)
            if handler is None:
                self._fail(
                    f"unknown command {command!r} (try 'help')"
                )
                return
            handler(args)
        except ServiceError as exc:
            self._fail(str(exc))

    def open_graph(self, spec: str) -> None:
        """Open a graph spec (CSV paths are translated to ``csv:``)."""
        if spec.endswith(".csv") and ":" not in spec:
            spec = f"csv:{spec}"
        self._request({"op": "open", "graph": spec})

    # -- commands ------------------------------------------------------

    def _cmd_help(self, args) -> None:
        print(HELP_TEXT, file=self.out)

    def _cmd_quit(self, args) -> None:
        self.stopped = True

    _cmd_exit = _cmd_quit

    def _cmd_ping(self, args) -> None:
        self._request({"op": "ping"})

    def _cmd_stats(self, args) -> None:
        self._request({"op": "stats"})

    def _cmd_seed(self, args) -> None:
        if len(args) != 1 or not args[0].lstrip("-").isdigit():
            self._fail("usage: seed <integer>")
            return
        self.seed = int(args[0])
        if not self.json_mode:
            print(f"seed = {self.seed}", file=self.out)

    def _cmd_graph(self, args) -> None:
        if len(args) >= 2 and args[0] == "open":
            self.open_graph(" ".join(args[1:]))
        else:
            self._fail("usage: graph open <spec|file.csv>")

    def _cmd_node(self, args) -> None:
        if not args:
            self._fail("usage: node list | nbr <id> | n <id> | p <s> <d>")
            return
        sub, rest = args[0], args[1:]
        if sub == "list" and not rest:
            self._session_request({"op": "node_list"})
        elif sub in ("nbr", "n") and len(rest) == 1:
            self._session_request(
                {"op": "node_nbr", "node": coerce_token(rest[0])},
                degree_only=(sub == "n"),
            )
        elif sub == "p" and len(rest) == 2:
            self._session_request(
                {
                    "op": "node_path",
                    "source": coerce_token(rest[0]),
                    "target": coerce_token(rest[1]),
                }
            )
        else:
            self._fail("usage: node list | nbr <id> | n <id> | p <s> <d>")

    def _cmd_edge(self, args) -> None:
        if len(args) == 3 and args[0] in ("new", "rmv"):
            op = "edge_new" if args[0] == "new" else "edge_rmv"
            response = self._session_request(
                {
                    "op": op,
                    "a": coerce_token(args[1]),
                    "b": coerce_token(args[2]),
                }
            )
            if response is not None and not is_error(response):
                # The mutation changed the fingerprint; follow the
                # session to its new handle.
                self.session = response["payload"]["fingerprint"]
        else:
            self._fail("usage: edge new <a> <b> | edge rmv <a> <b>")

    def _cmd_estimate(self, args) -> None:
        if args and args != ["k"]:
            self._fail("usage: estimate [k]")
            return
        self._session_request({"op": "estimate", "seed": self.seed})

    def _cmd_pack(self, args) -> None:
        kind = args[0] if args else "cds"
        if len(args) > 1 or kind not in ("cds", "spanning"):
            self._fail("usage: pack [cds|spanning]")
            return
        self._session_request(
            {"op": "pack", "kind": kind, "seed": self.seed}
        )

    def _cmd_simulate(self, args) -> None:
        if len(args) > 1:
            self._fail("usage: simulate [program]")
            return
        program = args[0] if args else "flooding"
        self._session_request(
            {"op": "simulate", "program": program, "seed": self.seed}
        )

    # -- request plumbing ----------------------------------------------

    def _session_request(
        self, body: Dict[str, Any], degree_only: bool = False
    ) -> Optional[Dict[str, Any]]:
        if self.session is None:
            self._fail("no graph open; use: graph open <spec|file.csv>")
            return None
        body = dict(body)
        body["session"] = self.session
        return self._request(body, degree_only=degree_only)

    def _request(
        self, body: Dict[str, Any], degree_only: bool = False
    ) -> Dict[str, Any]:
        response = self.backend.request(body)
        if body.get("op") == "open" and not is_error(response):
            self.session = response["payload"]["fingerprint"]
        if is_error(response):
            self.errors += 1
        self._render(response, degree_only=degree_only)
        return response

    def _fail(self, message: str) -> None:
        self.errors += 1
        if self.json_mode:
            print(
                json.dumps(
                    {"task": "error",
                     "payload": {"error": message, "error_type": "shell"}},
                    sort_keys=True,
                ),
                file=self.out,
            )
        else:
            print(f"error: {message}", file=self.out)

    # -- rendering -----------------------------------------------------

    def _render(
        self, response: Dict[str, Any], degree_only: bool = False
    ) -> None:
        if self.json_mode:
            print(
                json.dumps(response, sort_keys=True, separators=(",", ":")),
                file=self.out,
            )
            return
        task = response.get("task")
        payload = response.get("payload", {})
        out = self.out
        if task == "error":
            print(
                f"error[{payload.get('error_type')}]: "
                f"{payload.get('error')}",
                file=out,
            )
        elif task == "ping":
            print(f"pong (uptime {payload['uptime_s']:.1f}s)", file=out)
        elif task == "graph_open":
            print(
                f"opened {payload['label']}  "
                f"fingerprint={payload['fingerprint']} "
                f"n={payload['n']} m={payload['m']}",
                file=out,
            )
        elif task == "node_list":
            nodes = payload["nodes"]
            shown = " ".join(str(n) for n in nodes[:20])
            suffix = " …" if len(nodes) > 20 else ""
            print(f"{payload['n']} node(s): {shown}{suffix}", file=out)
        elif task == "node_nbr":
            if degree_only:
                print(f"n({payload['node']}) = {payload['degree']}", file=out)
            else:
                neighbors = " ".join(str(n) for n in payload["neighbors"])
                print(
                    f"nbr({payload['node']}) = [{neighbors}]  "
                    f"(degree {payload['degree']})",
                    file=out,
                )
        elif task == "node_path":
            if payload["reachable"]:
                path = " ".join(str(n) for n in payload["path"])
                print(
                    f"path {payload['source']} -> {payload['target']}: "
                    f"{path}  (length {payload['length']})",
                    file=out,
                )
            else:
                print(
                    f"no path {payload['source']} -> {payload['target']}",
                    file=out,
                )
        elif task in ("edge_new", "edge_rmv"):
            a, b = payload["edge"]
            print(
                f"edge ({a}, {b}) {payload['action']}  "
                f"n={payload['n']} m={payload['m']} "
                f"fingerprint={payload['fingerprint']}",
                file=out,
            )
        elif task == "connectivity":
            print(
                f"k ∈ [{payload['lower_bound']:.2f}, "
                f"{payload['upper_bound']:.2f}]  "
                f"(packing size {payload['packing_size']:.2f}, "
                f"{payload['n_trees']} trees)",
                file=out,
            )
        elif task == "pack_cds":
            print(
                f"CDS packing: size={payload['size']:.3f} "
                f"trees={payload['n_trees']} "
                f"max_node_load={payload['max_node_load']:.3f}",
                file=out,
            )
        elif task == "pack_spanning":
            print(
                f"spanning packing: size={payload['size']:.3f} "
                f"trees={payload['n_trees']} lam={payload['lam']} "
                f"max_edge_load={payload['max_edge_load']:.3f}",
                file=out,
            )
        elif task == "simulate":
            print(
                f"{payload['program']} [{payload['model']}]: "
                f"rounds={payload['rounds']} "
                f"messages={payload['messages']} bits={payload['bits']} "
                f"halted={payload['halted']}",
                file=out,
            )
        elif task == "stats":
            cache = payload["cache"]
            print(
                f"uptime {payload['uptime_s']:.1f}s  "
                f"requests={payload['requests']} "
                f"errors={payload['errors']}",
                file=out,
            )
            print(
                f"sessions {cache['sessions']}/{cache['capacity']}  "
                f"hits={cache['hits']} misses={cache['misses']} "
                f"evictions={cache['evictions']}",
                file=out,
            )
            for row in payload["sessions"]:
                stats = row["stats"]
                print(
                    f"  {row['fingerprint']}  {row['graph']}  "
                    f"n={row['n']} m={row['m']} gen={row['generation']} "
                    f"hits={stats['cache_hits']} "
                    f"misses={stats['cache_misses']} "
                    f"evictions={stats['evictions']} "
                    f"mutations={stats['mutations']}",
                    file=out,
                )
        elif task == "shutdown":
            print("daemon stopping", file=out)
        else:  # unknown task: still show something useful
            print(json.dumps(response, sort_keys=True), file=out)


def run_shell(
    backend,
    source: Optional[Iterable[str]] = None,
    graph: Optional[str] = None,
    json_mode: bool = False,
    seed: int = 0,
    out: Optional[TextIO] = None,
) -> int:
    """Drive a shell to completion; returns a process exit code.

    Interactive sessions (stdin is a TTY) always exit 0; scripted runs
    exit 1 if any command failed, so CI piping commands in can gate on
    the result.
    """
    lines = source if source is not None else sys.stdin
    interactive = source is None and sys.stdin.isatty()
    shell = ReproShell(backend, out=out, json_mode=json_mode, seed=seed)
    try:
        if graph is not None:
            shell.open_graph(graph)
            if shell.errors:
                return 1
        shell.run(lines, prompt=interactive)
    finally:
        backend.close()
    if interactive:
        return 0
    return 1 if shell.errors else 0
