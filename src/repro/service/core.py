"""The service core: request dispatch over an LRU of graph sessions.

:class:`ServiceCore` is the daemon's brain, factored out of the socket
layer so the interactive shell can run the *same* request/response
surface in-process (no daemon required) and tests can drive it without
networking. One :meth:`ServiceCore.handle` call maps a request dict to
a :class:`~repro.api.envelope.Result` envelope dict — the codec is
shared with the batch executor and the CLI ``--json`` mode.

Sessions are cached in :class:`SessionCache`, an LRU **keyed by graph
fingerprint**: two spec strings that canonicalize to the same graph
share one warm :class:`~repro.api.GraphSession` (a spec → fingerprint
memo makes the repeat lookup cheap). Mutations (``edge_new`` /
``edge_rmv``) update the session incrementally — the session splices
its ``IndexedGraph`` in place and lazily invalidates the dependent
layers — and the cache re-keys the session under its new fingerprint.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from typing import Any, Dict, Hashable, List, Optional, Tuple

from repro.api.envelope import Result
from repro.api.session import DEFAULT_CACHE_LIMIT, GraphSession
from repro.errors import GraphValidationError, ReproError, ServiceError
from repro.service.protocol import SERVICE_GRAPH, error_envelope

#: Scenario aliases accepted by the ``simulate`` op (shell-friendly
#: names → registry names).
PROGRAM_ALIASES = {"flooding": "flood-min"}

#: Default number of warm sessions the daemon keeps.
DEFAULT_SESSIONS = 8


class SessionCache:
    """Bounded LRU of :class:`GraphSession`s keyed by graph fingerprint.

    ``stats`` counts ``hits`` (fingerprint already warm — including a
    new spec string canonicalizing to a cached graph), ``misses``
    (session built and inserted), and ``evictions`` (LRU overflow).
    """

    def __init__(
        self,
        capacity: int = DEFAULT_SESSIONS,
        session_cache_limit: Optional[int] = DEFAULT_CACHE_LIMIT,
    ) -> None:
        if capacity < 1:
            raise ServiceError(
                f"session cache capacity must be >= 1, got {capacity}"
            )
        self.capacity = capacity
        self._session_cache_limit = session_cache_limit
        self._sessions: "OrderedDict[str, GraphSession]" = OrderedDict()
        self._spec_memo: Dict[str, str] = {}  # spec → fingerprint
        self.stats = {"hits": 0, "misses": 0, "evictions": 0}

    def __len__(self) -> int:
        return len(self._sessions)

    def fingerprints(self) -> List[str]:
        """Cached fingerprints, least- to most-recently used."""
        return list(self._sessions)

    def open(self, spec: str) -> Tuple[GraphSession, str, bool]:
        """The warm session for a graph spec; ``(session, fp, created)``.

        The spec → fingerprint memo short-circuits re-canonicalization
        for specs seen before; an unmemoized spec pays one
        canonicalization, after which a fingerprint collision with a
        cached session (same graph under another spec) still counts as
        a hit and reuses the warm session.
        """
        memoized = self._spec_memo.get(spec)
        if memoized is not None and memoized in self._sessions:
            self.stats["hits"] += 1
            self._sessions.move_to_end(memoized)
            return self._sessions[memoized], memoized, False
        session = GraphSession(
            spec, cache_limit=self._session_cache_limit
        )
        fingerprint = session.fingerprint
        self._spec_memo[spec] = fingerprint
        if fingerprint in self._sessions:
            self.stats["hits"] += 1
            self._sessions.move_to_end(fingerprint)
            return self._sessions[fingerprint], fingerprint, False
        self.stats["misses"] += 1
        self._sessions[fingerprint] = session
        self._evict_overflow()
        return session, fingerprint, True

    def get(self, fingerprint: str) -> GraphSession:
        """The session behind a fingerprint handle (LRU-touched)."""
        session = self._sessions.get(fingerprint)
        if session is None:
            known = ", ".join(self._sessions) or "(none)"
            raise ServiceError(
                f"no open session with fingerprint {fingerprint!r}; "
                f"open sessions: {known}"
            )
        self._sessions.move_to_end(fingerprint)
        return session

    def rekey(self, old_fingerprint: str, new_fingerprint: str) -> None:
        """Move a mutated session under its new fingerprint.

        Spec memo entries pointing at the old fingerprint are purged —
        the spec no longer describes the mutated graph.
        """
        session = self._sessions.pop(old_fingerprint, None)
        if session is None:
            return
        self._spec_memo = {
            spec: fp
            for spec, fp in self._spec_memo.items()
            if fp != old_fingerprint
        }
        self._sessions[new_fingerprint] = session
        self._sessions.move_to_end(new_fingerprint)

    def _evict_overflow(self) -> None:
        while len(self._sessions) > self.capacity:
            evicted_fp, _ = self._sessions.popitem(last=False)
            self._spec_memo = {
                spec: fp
                for spec, fp in self._spec_memo.items()
                if fp != evicted_fp
            }
            self.stats["evictions"] += 1


class ServiceCore:
    """Dispatch request dicts to envelope dicts over cached sessions.

    Thread-safe: one coarse lock serializes dispatch (sessions and
    their caches are not internally synchronized), which is the right
    trade for a cache whose wins come from reuse, not parallelism.
    """

    #: op → (handler name, needs_session)
    OPS = {
        "ping": ("_op_ping", False),
        "open": ("_op_open", True),
        "estimate": ("_op_estimate", True),
        "pack": ("_op_pack", True),
        "simulate": ("_op_simulate", True),
        "node_list": ("_op_node_list", True),
        "node_nbr": ("_op_node_nbr", True),
        "node_path": ("_op_node_path", True),
        "edge_new": ("_op_edge_mutate", True),
        "edge_rmv": ("_op_edge_mutate", True),
        "batch": ("_op_batch", False),
        "stats": ("_op_stats", False),
        "shutdown": ("_op_shutdown", False),
    }

    def __init__(
        self,
        cache_capacity: int = DEFAULT_SESSIONS,
        session_cache_limit: Optional[int] = DEFAULT_CACHE_LIMIT,
    ) -> None:
        self.cache = SessionCache(
            capacity=cache_capacity,
            session_cache_limit=session_cache_limit,
        )
        self._lock = threading.RLock()
        self._started = time.monotonic()
        self._requests = 0
        self._errors = 0
        self._op_counts: Dict[str, int] = {}

    # -- public entry point --------------------------------------------

    def handle(self, request: Dict[str, Any]) -> Dict[str, Any]:
        """One request dict → one envelope dict (never raises).

        Library errors become typed error envelopes
        (``payload["error_type"]``: ``"bad-request"``, ``"graph"``,
        ``"service"``, ``"internal"``); the per-request wall time lands
        in ``timings["request_s"]``.
        """
        start = time.perf_counter()
        op = request.get("op")
        with self._lock:
            self._requests += 1
            if isinstance(op, str):
                self._op_counts[op] = self._op_counts.get(op, 0) + 1
            try:
                envelope = self._dispatch(request)
            except GraphValidationError as exc:
                envelope = error_envelope(str(exc), "graph", op=op)
            except ServiceError as exc:
                envelope = error_envelope(str(exc), "service", op=op)
            except ReproError as exc:
                envelope = error_envelope(str(exc), "library", op=op)
            except Exception as exc:  # noqa: BLE001 — daemon must survive
                envelope = error_envelope(
                    f"{type(exc).__name__}: {exc}", "internal", op=op
                )
            if envelope.task == "error":
                self._errors += 1
        envelope.timings["request_s"] = time.perf_counter() - start
        body = envelope.to_dict()
        if "id" in request:
            body["id"] = request["id"]
        return body

    @property
    def uptime_s(self) -> float:
        return time.monotonic() - self._started

    # -- dispatch ------------------------------------------------------

    def _dispatch(self, request: Dict[str, Any]) -> Result:
        op = request.get("op")
        if not isinstance(op, str) or not op:
            raise ServiceError(
                "request needs an 'op' field; valid ops: "
                + ", ".join(sorted(self.OPS))
            )
        entry = self.OPS.get(op)
        if entry is None:
            raise ServiceError(
                f"unknown op {op!r}; valid ops: "
                + ", ".join(sorted(self.OPS))
            )
        handler_name, needs_session = entry
        handler = getattr(self, handler_name)
        if not needs_session:
            return handler(request)
        session, fingerprint, created = self._resolve_session(request)
        return handler(request, session, fingerprint, created)

    def _resolve_session(
        self, request: Dict[str, Any]
    ) -> Tuple[GraphSession, str, bool]:
        handle = request.get("session")
        if handle is not None:
            if not isinstance(handle, str):
                raise ServiceError(
                    f"'session' must be a fingerprint string, "
                    f"got {type(handle).__name__}"
                )
            return self.cache.get(handle), handle, False
        spec = request.get("graph")
        if spec is None:
            raise ServiceError(
                f"op {request.get('op')!r} needs a 'graph' spec or a "
                "'session' fingerprint handle"
            )
        if not isinstance(spec, str):
            raise ServiceError(
                f"'graph' must be a spec string, got {type(spec).__name__}"
            )
        return self.cache.open(spec)

    # -- envelope helpers ----------------------------------------------

    def _service_envelope(
        self, task: str, payload: Dict[str, Any],
        params: Optional[Dict[str, Any]] = None,
    ) -> Result:
        return Result(
            task=task,
            graph=SERVICE_GRAPH,
            fingerprint="",
            n=0,
            m=0,
            seed=None,
            params=params or {},
            payload=payload,
        )

    def _session_envelope(
        self, task: str, session: GraphSession, payload: Dict[str, Any],
        params: Optional[Dict[str, Any]] = None,
    ) -> Result:
        return Result(
            task=task,
            graph=session.label,
            fingerprint=session.fingerprint,
            n=session.n,
            m=session.m,
            seed=None,
            params=params or {},
            payload=payload,
        )

    @staticmethod
    def _resolve_node(session: GraphSession, node: Hashable) -> Hashable:
        """A wire node label → the graph's label (int fallback for
        digit strings, since shell tokens arrive as text)."""
        graph = session.graph
        if node in graph:
            return node
        if isinstance(node, str):
            stripped = node.strip()
            if stripped.lstrip("-").isdigit():
                candidate = int(stripped)
                if candidate in graph:
                    return candidate
        sample = ", ".join(repr(n) for n in list(graph.nodes())[:8])
        raise GraphValidationError(
            f"node {node!r} is not in the graph; nodes include: {sample}"
        )

    # -- ops -----------------------------------------------------------

    def _op_ping(self, request: Dict[str, Any]) -> Result:
        return self._service_envelope(
            "ping", {"pong": True, "uptime_s": self.uptime_s}
        )

    def _op_open(self, request, session, fingerprint, created) -> Result:
        return self._session_envelope(
            "graph_open", session,
            {
                "fingerprint": fingerprint,
                "label": session.label,
                "n": session.n,
                "m": session.m,
                "created": created,
                "generation": session.generation,
            },
        )

    def _op_estimate(self, request, session, fingerprint, created) -> Result:
        seed = int(request.get("seed", 0))
        exact = bool(request.get("exact", False))
        return session.connectivity(seed=seed, exact=exact)

    def _op_pack(self, request, session, fingerprint, created) -> Result:
        kind = request.get("kind", "cds")
        seed = int(request.get("seed", 0))
        if kind == "cds":
            return session.pack_cds(seed=seed)
        if kind == "spanning":
            return session.pack_spanning(seed=seed)
        raise ServiceError(
            f"unknown packing kind {kind!r}; valid kinds: cds, spanning"
        )

    def _op_simulate(self, request, session, fingerprint, created) -> Result:
        program = request.get("program", "flood-min")
        program = PROGRAM_ALIASES.get(program, program)
        return session.simulate(
            program=program,
            model=request.get("model"),
            seed=int(request.get("seed", 0)),
            max_rounds=int(request.get("max_rounds", 100000)),
            engine=request.get("engine"),
            show_outputs=request.get("show_outputs", 5),
        )

    def _op_node_list(self, request, session, fingerprint, created) -> Result:
        nodes = list(session.graph.nodes())
        return self._session_envelope(
            "node_list", session, {"nodes": nodes, "n": len(nodes)}
        )

    def _op_node_nbr(self, request, session, fingerprint, created) -> Result:
        if "node" not in request:
            raise ServiceError("op 'node_nbr' needs a 'node' field")
        node = self._resolve_node(session, request["node"])
        neighbors = list(session.graph.neighbors(node))
        return self._session_envelope(
            "node_nbr", session,
            {"node": node, "neighbors": neighbors, "degree": len(neighbors)},
            params={"node": node},
        )

    def _op_node_path(self, request, session, fingerprint, created) -> Result:
        import networkx as nx

        for field in ("source", "target"):
            if field not in request:
                raise ServiceError(f"op 'node_path' needs a {field!r} field")
        source = self._resolve_node(session, request["source"])
        target = self._resolve_node(session, request["target"])
        try:
            path = nx.shortest_path(session.graph, source, target)
        except nx.NetworkXNoPath:
            payload = {
                "source": source, "target": target,
                "path": None, "length": None, "reachable": False,
            }
        else:
            payload = {
                "source": source, "target": target,
                "path": list(path), "length": len(path) - 1,
                "reachable": True,
            }
        return self._session_envelope(
            "node_path", session, payload,
            params={"source": source, "target": target},
        )

    def _op_edge_mutate(self, request, session, fingerprint, created) -> Result:
        op = request["op"]
        for field in ("a", "b"):
            if field not in request:
                raise ServiceError(f"op {op!r} needs {field!r} (endpoint)")
        a, b = request["a"], request["b"]
        if op == "edge_new":
            # New labels are allowed (they become new nodes), so only
            # coerce digit strings that name *existing* int nodes.
            a = self._coerce_existing(session, a)
            b = self._coerce_existing(session, b)
            session.add_edge(a, b)
        else:
            a = self._resolve_node(session, a)
            b = self._resolve_node(session, b)
            session.remove_edge(a, b)
        new_fingerprint = session.fingerprint
        if new_fingerprint != fingerprint:
            self.cache.rekey(fingerprint, new_fingerprint)
        return self._session_envelope(
            op, session,
            {
                "edge": [a, b],
                "action": "added" if op == "edge_new" else "removed",
                "fingerprint": new_fingerprint,
                "n": session.n,
                "m": session.m,
                "generation": session.generation,
            },
            params={"a": a, "b": b},
        )

    @staticmethod
    def _coerce_existing(session: GraphSession, node: Hashable) -> Hashable:
        if node in session.graph:
            return node
        if isinstance(node, str):
            stripped = node.strip()
            if stripped.lstrip("-").isdigit():
                candidate = int(stripped)
                if candidate in session.graph:
                    return candidate
                return candidate  # brand-new node: keep the int form
        return node

    def _op_batch(self, request: Dict[str, Any]) -> Result:
        """Run an inline job list/matrix through the batch scheduler.

        The same :func:`repro.api.batch.run` the CLI uses — one
        scheduler for parameter sweeps and service load. Jobs must be
        inline (a list or matrix mapping); a server-side file path is
        refused so a remote client cannot read the daemon's filesystem.
        Rows come back canonical (timing-free), so the payload is as
        deterministic as a ``repro batch`` JSONL file.
        """
        from repro.api import batch as api_batch

        jobs = request.get("jobs")
        if jobs is None:
            raise ServiceError(
                "op 'batch' needs a 'jobs' field (a job list or a "
                "graphs × tasks × seeds matrix mapping)"
            )
        if isinstance(jobs, str):
            raise ServiceError(
                "op 'batch' takes inline jobs (a list or matrix "
                "mapping), not a server-side file path"
            )
        backend = request.get("backend", "serial")
        workers = request.get("workers")
        base_seed = request.get("base_seed")
        stats: Dict[str, Any] = {}
        results = api_batch.run(
            jobs,
            base_seed=int(base_seed) if base_seed is not None else None,
            backend=backend,
            workers=int(workers) if workers is not None else None,
            stats=stats,
        )
        rows = [result.to_dict(include_timings=False) for result in results]
        errors = sum(1 for result in results if api_batch.is_error_row(result))
        return self._service_envelope(
            "batch",
            {
                "rows": rows,
                "jobs": len(rows),
                "errors": errors,
                "backend": stats["backend"],
                "workers": stats["workers"],
                "chunks": stats["chunks"],
            },
            params={"backend": stats["backend"], "workers": stats["workers"]},
        )

    def _op_stats(self, request: Dict[str, Any]) -> Result:
        sessions = []
        for fingerprint in self.cache.fingerprints():
            session = self.cache._sessions[fingerprint]
            sessions.append(
                {
                    "fingerprint": fingerprint,
                    "graph": session.label,
                    "n": session.n,
                    "m": session.m,
                    "generation": session.generation,
                    "stats": dict(session.stats),
                }
            )
        payload = {
            "uptime_s": self.uptime_s,
            "requests": self._requests,
            "errors": self._errors,
            "ops": dict(sorted(self._op_counts.items())),
            "cache": {
                "hits": self.cache.stats["hits"],
                "misses": self.cache.stats["misses"],
                "evictions": self.cache.stats["evictions"],
                "capacity": self.cache.capacity,
                "sessions": len(self.cache),
            },
            "sessions": sessions,
        }
        return self._service_envelope("stats", payload)

    def _op_shutdown(self, request: Dict[str, Any]) -> Result:
        return self._service_envelope(
            "shutdown", {"stopping": True, "uptime_s": self.uptime_s}
        )
