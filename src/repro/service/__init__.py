"""The graph service layer: ``repro serve`` + ``repro shell``.

A persistent daemon (:mod:`repro.service.daemon`) and an interactive
shell (:mod:`repro.service.shell`) over one shared request/response
surface (:mod:`repro.service.core`), speaking newline-delimited JSON
frames of the library's :class:`~repro.api.envelope.Result` envelopes
(:mod:`repro.service.protocol`). Sessions stay warm across requests
and survive edits through incremental re-canonicalization
(:meth:`~repro.api.GraphSession.add_edge` /
:meth:`~repro.api.GraphSession.remove_edge`).
"""

from repro.service.core import (
    DEFAULT_SESSIONS,
    PROGRAM_ALIASES,
    ServiceCore,
    SessionCache,
)
from repro.service.daemon import ReproServer, serve
from repro.service.protocol import (
    MAX_FRAME_BYTES,
    SERVICE_GRAPH,
    encode_frame,
    error_envelope,
    is_error,
    read_frame,
    write_frame,
)
from repro.service.shell import (
    LocalBackend,
    RemoteBackend,
    ReproShell,
    parse_connect,
    run_shell,
)

__all__ = [
    "DEFAULT_SESSIONS",
    "PROGRAM_ALIASES",
    "ServiceCore",
    "SessionCache",
    "ReproServer",
    "serve",
    "MAX_FRAME_BYTES",
    "SERVICE_GRAPH",
    "encode_frame",
    "error_envelope",
    "is_error",
    "read_frame",
    "write_frame",
    "LocalBackend",
    "RemoteBackend",
    "ReproShell",
    "parse_connect",
    "run_shell",
]
