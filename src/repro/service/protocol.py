"""Wire protocol: newline-delimited JSON frames of Result envelopes.

One request per line, one response per line. Requests are plain JSON
objects (``{"op": "estimate", "graph": "harary:6,24", "seed": 3}``);
responses are :class:`repro.api.envelope.Result` envelopes serialized
with the *same codec the batch executor and the CLI ``--json`` mode
use* (:meth:`Result.to_dict` / :meth:`Result.from_dict`), so a daemon
response line, a batch JSONL row, and a ``repro --json`` dump are one
schema. Errors are envelopes too: ``task == "error"`` with
``payload["error"]`` / ``payload["error_type"]`` — a client never needs
a second parser for the failure path.

Framing rules:

* one UTF-8 JSON object per ``\\n``-terminated line;
* a frame larger than ``max_bytes`` (default :data:`MAX_FRAME_BYTES`)
  is a *non-recoverable* :class:`WireProtocolError` — the rest of the
  oversized line is still in the stream, so the server reports the
  error and closes the connection rather than serving desynchronized
  garbage;
* a complete line that fails to parse is a *recoverable*
  :class:`WireProtocolError` — the stream is still line-synchronized,
  so the server answers with an error envelope and keeps serving.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Optional

from repro.api.envelope import Result
from repro.errors import WireProtocolError

#: Hard cap on one wire frame. Generous for envelopes (a simulate
#: payload over a few thousand nodes is well under 1 MiB) while bounding
#: what a hostile client can make the daemon buffer.
MAX_FRAME_BYTES = 8 * 1024 * 1024

#: Graph descriptor used by envelopes for service-level ops (ping,
#: stats, shutdown) that have no session behind them.
SERVICE_GRAPH = "<service>"


def encode_frame(body: Dict[str, Any]) -> bytes:
    """One wire frame: compact JSON + newline, UTF-8."""
    text = json.dumps(body, sort_keys=True, separators=(",", ":"))
    return text.encode("utf-8") + b"\n"


def write_frame(stream, body: Dict[str, Any]) -> None:
    """Write one frame to a binary stream and flush it."""
    stream.write(encode_frame(body))
    stream.flush()


def read_frame(
    stream, max_bytes: int = MAX_FRAME_BYTES
) -> Optional[Dict[str, Any]]:
    """Read one frame from a binary stream; ``None`` on clean EOF.

    Handles partial reads transparently (``readline`` buffers until the
    newline arrives). Raises :class:`WireProtocolError` — recoverable
    for malformed-but-complete lines, non-recoverable for oversized
    frames.
    """
    line = stream.readline(max_bytes + 1)
    if not line:
        return None
    if len(line) > max_bytes:
        raise WireProtocolError(
            f"frame exceeds the {max_bytes}-byte limit", recoverable=False
        )
    try:
        body = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise WireProtocolError(f"malformed JSON frame: {exc}") from exc
    if not isinstance(body, dict):
        raise WireProtocolError(
            f"frame must be a JSON object, got {type(body).__name__}"
        )
    return body


def error_envelope(
    message: str,
    error_type: str = "error",
    op: Optional[str] = None,
    graph: str = SERVICE_GRAPH,
) -> Result:
    """A typed error as a Result envelope (the only error shape on the
    wire). ``error_type`` is a stable machine-readable discriminator
    (``"protocol"``, ``"bad-request"``, ``"graph"``, ``"internal"``)."""
    return Result(
        task="error",
        graph=graph,
        fingerprint="",
        n=0,
        m=0,
        seed=None,
        params={"op": op} if op is not None else {},
        payload={"error": message, "error_type": error_type},
    )


def is_error(body: Dict[str, Any]) -> bool:
    """Whether a wire response reports a failure."""
    return body.get("task") == "error"
