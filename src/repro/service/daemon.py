"""``repro serve`` — a persistent graph service over a TCP socket.

A :class:`ReproServer` is a stdlib ``socketserver.ThreadingTCPServer``
speaking the newline-delimited JSON protocol of
:mod:`repro.service.protocol`, with one shared :class:`ServiceCore`
behind all connections: sessions stay warm across clients, so the
"millions of small queries" workload pays one canonicalization per
graph fingerprint instead of one per process.

Lifecycle guarantees (pinned by the CI ``service-smoke`` job):

* the ``shutdown`` op answers first, then stops the accept loop;
* ``serve()`` always runs ``server_close()`` — the listening socket and
  every per-connection file object are closed on the way out, so a
  clean daemon exit leaks no file descriptors;
* per-connection threads are daemonic: a dying client never wedges the
  process.
"""

from __future__ import annotations

import socketserver
import threading
from typing import Optional, TextIO, Tuple

from repro.errors import WireProtocolError
from repro.service.core import ServiceCore
from repro.service.protocol import (
    MAX_FRAME_BYTES,
    error_envelope,
    read_frame,
    write_frame,
)


class _ServiceHandler(socketserver.StreamRequestHandler):
    """One connection: a loop of frames until EOF or a fatal frame."""

    def handle(self) -> None:  # noqa: D102 — socketserver hook
        server: "ReproServer" = self.server  # type: ignore[assignment]
        while True:
            try:
                request = read_frame(self.rfile, server.max_frame_bytes)
            except WireProtocolError as exc:
                kind = "protocol" if exc.recoverable else "protocol-fatal"
                try:
                    write_frame(
                        self.wfile,
                        error_envelope(str(exc), kind).to_dict(),
                    )
                except (BrokenPipeError, ConnectionResetError, OSError):
                    return
                if exc.recoverable:
                    continue
                return  # stream desynchronized: close the connection
            except (ConnectionResetError, OSError):
                return
            if request is None:
                return  # clean EOF
            response = server.core.handle(request)
            try:
                write_frame(self.wfile, response)
            except (BrokenPipeError, ConnectionResetError, OSError):
                return
            if request.get("op") == "shutdown":
                server.request_shutdown()
                return


class ReproServer(socketserver.ThreadingTCPServer):
    """The daemon: threaded TCP server around one shared ServiceCore."""

    allow_reuse_address = True
    daemon_threads = True

    def __init__(
        self,
        address: Tuple[str, int] = ("127.0.0.1", 0),
        core: Optional[ServiceCore] = None,
        max_frame_bytes: int = MAX_FRAME_BYTES,
    ) -> None:
        self.core = core if core is not None else ServiceCore()
        self.max_frame_bytes = max_frame_bytes
        self._shutdown_started = False
        self._shutdown_lock = threading.Lock()
        super().__init__(address, _ServiceHandler)

    @property
    def host(self) -> str:
        return self.server_address[0]

    @property
    def port(self) -> int:
        return self.server_address[1]

    def request_shutdown(self) -> None:
        """Stop the accept loop without deadlocking the caller.

        ``shutdown()`` blocks until ``serve_forever`` exits, so a
        handler thread must trigger it from a helper thread; idempotent
        across repeated shutdown ops.
        """
        with self._shutdown_lock:
            if self._shutdown_started:
                return
            self._shutdown_started = True
        threading.Thread(target=self.shutdown, daemon=True).start()


def serve(
    host: str = "127.0.0.1",
    port: int = 0,
    cache_capacity: int = 8,
    max_frame_bytes: int = MAX_FRAME_BYTES,
    out: Optional[TextIO] = None,
) -> int:
    """Run the daemon until a ``shutdown`` op or Ctrl-C; returns 0.

    Prints ``repro-serve listening on HOST:PORT`` (flushed) once the
    socket is bound, so wrapper scripts can scrape the ephemeral port.
    """
    import sys

    stream = out if out is not None else sys.stdout
    core = ServiceCore(cache_capacity=cache_capacity)
    server = ReproServer(
        (host, port), core=core, max_frame_bytes=max_frame_bytes
    )
    try:
        print(
            f"repro-serve listening on {server.host}:{server.port} "
            f"(sessions={cache_capacity})",
            file=stream,
            flush=True,
        )
        server.serve_forever(poll_interval=0.1)
    except KeyboardInterrupt:
        pass
    finally:
        server.server_close()
    print("repro-serve stopped", file=stream, flush=True)
    return 0
