"""``python -m repro.service`` — start the daemon directly.

Equivalent to ``repro serve``; accepts the same flags.
"""

from __future__ import annotations

import argparse
import sys

from repro.service.core import DEFAULT_SESSIONS
from repro.service.daemon import serve


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service",
        description="Run the repro graph service daemon.",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument(
        "--port", type=int, default=0,
        help="TCP port (0 picks an ephemeral port, printed on startup)",
    )
    parser.add_argument(
        "--cache-size", type=int, default=DEFAULT_SESSIONS,
        help="number of warm graph sessions the daemon keeps (LRU)",
    )
    args = parser.parse_args(argv)
    return serve(
        host=args.host, port=args.port, cache_capacity=args.cache_size
    )


if __name__ == "__main__":
    sys.exit(main())
