"""Pre-kernel CDS packing — the preserved reference implementation.

This module freezes the centralized fractional CDS / dominating tree
packing pipeline exactly as it existed before the
:mod:`repro.fastgraph` port of :mod:`repro.core.cds_packing`: per-node
dict bookkeeping, the generic label-keyed
:class:`~repro.graphs.union_find.UnionFind`, and ``networkx``-based
validity testing and tree extraction. It is the bit-exactness oracle of
the indexed rewrite:

* ``tests/test_cds_equivalence.py`` pins the kernel-backed
  :func:`repro.core.cds_packing.construct_cds_packing` to this module
  under fixed seeds — same valid classes, same trees, same weights;
* ``benchmarks/bench_cds_packing.py`` times the kernel against this
  loop and writes ``BENCH_cds_packing.json``.

Do not modify the algorithmic content here: any behaviour change breaks
the equivalence gate by construction. The only deltas from the
pre-kernel modules are the ``_reference`` name suffixes and that the
shared result containers (:class:`PackingParameters`,
:class:`CdsPackingResult`, :class:`LayerStats`) are imported rather
than re-declared.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional, Sequence, Set, Tuple

import networkx as nx

from repro.errors import GraphValidationError, PackingConstructionError
from repro.core.bridging import LayerStats
from repro.core.cds_packing import (
    CdsPackingResult,
    PackingParameters,
)
from repro.core.tree_packing import (
    DominatingTreePacking,
    WeightedTree,
    spanning_tree_of,
)
from repro.core.virtual_graph import ClassState, VirtualNode
from repro.graphs.connectivity import is_connected_dominating_set
from repro.utils.rng import RngLike, ensure_rng


class ReferenceVirtualGraph:
    """The pre-kernel :class:`VirtualGraph`: label dicts all the way down."""

    def __init__(self, graph: nx.Graph, layers: int, n_classes: int) -> None:
        if layers < 2 or layers % 2 != 0:
            raise GraphValidationError("layers must be an even number >= 2")
        if n_classes < 1:
            raise GraphValidationError("n_classes must be >= 1")
        self.graph = graph
        self.layers = layers
        self.n_classes = n_classes
        self.assignment: Dict[VirtualNode, int] = {}
        self.classes: List[ClassState] = [
            ClassState(class_id=i) for i in range(n_classes)
        ]
        self.real_classes: Dict[Hashable, Set[int]] = {
            v: set() for v in graph.nodes()
        }

    def assign(self, vnode: VirtualNode, class_id: int) -> None:
        if vnode in self.assignment:
            raise GraphValidationError(f"virtual node {vnode} already assigned")
        if not 0 <= class_id < self.n_classes:
            raise GraphValidationError(f"class id {class_id} out of range")
        self.assignment[vnode] = class_id
        self.classes[class_id].add_real(self.graph, vnode.real)
        self.real_classes[vnode.real].add(class_id)

    def excess_components(self) -> int:
        return sum(state.excess_components() for state in self.classes)

    def projected_class_sets(self) -> List[Set[Hashable]]:
        return [state.active_reals for state in self.classes]

    def virtual_counts_per_class(self) -> List[int]:
        return [state.virtual_count() for state in self.classes]


def _closed_neighborhood(graph: nx.Graph, node: Hashable) -> List[Hashable]:
    return [node, *graph.neighbors(node)]


def jump_start_reference(
    vg: ReferenceVirtualGraph, rng: RngLike = None
) -> None:
    """Pre-kernel :func:`repro.core.bridging.jump_start`."""
    rand = ensure_rng(rng)
    t = vg.n_classes
    for layer in range(1, vg.layers // 2 + 1):
        for real in vg.graph.nodes():
            for vtype in (1, 2, 3):
                vg.assign(VirtualNode(real, layer, vtype), rand.randrange(t))


def _adjacent_components(
    vg: ReferenceVirtualGraph, real: Hashable, class_id: int
) -> Set[Hashable]:
    state = vg.classes[class_id]
    reps: Set[Hashable] = set()
    for w in _closed_neighborhood(vg.graph, real):
        if state.is_active(w):
            reps.add(state.component_of(w))
    return reps


def assign_layer_reference(
    vg: ReferenceVirtualGraph,
    new_layer: int,
    rng: RngLike = None,
    use_deactivation: bool = True,
    require_type3_witness: bool = True,
) -> LayerStats:
    """Pre-kernel :func:`repro.core.bridging.assign_layer`, verbatim."""
    rand = ensure_rng(rng)
    graph = vg.graph
    t = vg.n_classes
    excess_before = vg.excess_components()

    # Step 1: type-1 and type-3 new nodes pick random classes.
    type1_class: Dict[Hashable, int] = {}
    type3_class: Dict[Hashable, int] = {}
    for real in graph.nodes():
        type1_class[real] = rand.randrange(t)
        type3_class[real] = rand.randrange(t)

    # Deactivation (condition (b)).
    deactivated: Set[Tuple[int, Hashable]] = set()
    for real, class_id in type1_class.items():
        reps = _adjacent_components(vg, real, class_id)
        if len(reps) >= 2:
            deactivated.update((class_id, rep) for rep in reps)

    # Suitable components of each type-3 new node (feeds condition (c)).
    suitable3: Dict[Hashable, Set[Hashable]] = {
        real: _adjacent_components(vg, real, class_id)
        for real, class_id in type3_class.items()
    }

    # Steps 2-3: bridging adjacency + greedy maximal matching.
    matched: Set[Tuple[int, Hashable]] = set()
    type2_class: Dict[Hashable, int] = {}
    bridging_candidates = 0
    random_type2 = 0
    order = list(graph.nodes())
    rand.shuffle(order)
    for real in order:
        neighborhood = _closed_neighborhood(graph, real)
        candidates: List[Tuple[int, Hashable]] = []
        seen: Set[Tuple[int, Hashable]] = set()
        for w in neighborhood:
            for class_id in vg.real_classes[w]:
                rep = vg.classes[class_id].component_of(w)
                key = (class_id, rep)
                if key not in seen:
                    seen.add(key)
                    candidates.append(key)
        rand.shuffle(candidates)

        assigned: Optional[int] = None
        for class_id, rep in candidates:
            key = (class_id, rep)
            if use_deactivation and key in deactivated:
                continue
            if key in matched:
                continue
            if require_type3_witness:
                bridged = False
                for u in neighborhood:
                    if type3_class[u] != class_id:
                        continue
                    if any(other != rep for other in suitable3[u]):
                        bridged = True
                        break
                if not bridged:
                    continue
            bridging_candidates += 1
            matched.add(key)
            assigned = class_id
            break
        if assigned is None:
            assigned = rand.randrange(t)
            random_type2 += 1
        type2_class[real] = assigned

    for real in graph.nodes():
        vg.assign(VirtualNode(real, new_layer, 1), type1_class[real])
        vg.assign(VirtualNode(real, new_layer, 2), type2_class[real])
        vg.assign(VirtualNode(real, new_layer, 3), type3_class[real])

    return LayerStats(
        layer=new_layer,
        excess_before=excess_before,
        excess_after=vg.excess_components(),
        deactivated_components=len(deactivated),
        bridging_candidates=bridging_candidates,
        matched=len(matched),
        random_type2=random_type2,
    )


def run_recursion_reference(
    vg: ReferenceVirtualGraph,
    rng: RngLike = None,
    use_deactivation: bool = True,
    require_type3_witness: bool = True,
) -> List[LayerStats]:
    """Pre-kernel :func:`repro.core.bridging.run_recursion`."""
    rand = ensure_rng(rng)
    jump_start_reference(vg, rand)
    history: List[LayerStats] = []
    for layer in range(vg.layers // 2 + 1, vg.layers + 1):
        history.append(
            assign_layer_reference(
                vg,
                layer,
                rand,
                use_deactivation=use_deactivation,
                require_type3_witness=require_type3_witness,
            )
        )
    return history


def build_cds_classes_reference(
    graph: nx.Graph,
    n_classes: int,
    n_layers: int,
    rng: RngLike = None,
) -> Tuple[ReferenceVirtualGraph, List[LayerStats]]:
    """Pre-kernel :func:`repro.core.cds_packing.build_cds_classes`."""
    vg = ReferenceVirtualGraph(graph, layers=n_layers, n_classes=n_classes)
    history = run_recursion_reference(vg, rng)
    return vg, history


def _valid_class_ids_reference(
    graph: nx.Graph, vg: ReferenceVirtualGraph
) -> List[int]:
    """Classes whose real projection is a CDS (the Appendix E criteria)."""
    valid = []
    for state in vg.classes:
        members = state.active_reals
        if members and is_connected_dominating_set(graph, members):
            valid.append(state.class_id)
    return valid


def _packing_from_classes_reference(
    graph: nx.Graph, vg: ReferenceVirtualGraph, class_ids: Sequence[int]
) -> DominatingTreePacking:
    """Project classes to CDSs and weight the resulting dominating trees."""
    class_nodes = {
        class_id: vg.classes[class_id].active_reals for class_id in class_ids
    }
    membership: dict = {v: 0 for v in graph.nodes()}
    for members in class_nodes.values():
        for v in members:
            membership[v] += 1
    weighted = []
    for class_id, members in class_nodes.items():
        tree = spanning_tree_of(graph, members)
        class_max_load = max(membership[v] for v in members)
        weighted.append(
            WeightedTree(
                tree=tree,
                weight=1.0 / max(1, class_max_load),
                class_id=class_id,
            )
        )
    return DominatingTreePacking(graph, weighted)


def construct_cds_packing_reference(
    graph: nx.Graph,
    k_guess: int,
    params: Optional[PackingParameters] = None,
    rng: RngLike = None,
) -> CdsPackingResult:
    """Pre-kernel :func:`repro.core.cds_packing.construct_cds_packing`."""
    if graph.number_of_nodes() < 2:
        raise GraphValidationError("graph must have at least 2 nodes")
    if not nx.is_connected(graph):
        raise GraphValidationError("graph must be connected")
    if k_guess < 1:
        raise GraphValidationError("k_guess must be >= 1")
    params = params or PackingParameters()
    rand = ensure_rng(rng)

    t_requested = params.n_classes(k_guess)
    n_layers = params.n_layers(graph.number_of_nodes())
    t = t_requested
    for attempt in range(1, params.max_attempts + 1):
        vg, history = build_cds_classes_reference(graph, t, n_layers, rand)
        valid = _valid_class_ids_reference(graph, vg)
        if valid:
            packing = _packing_from_classes_reference(graph, vg, valid)
            packing.verify()
            return CdsPackingResult(
                packing=packing,
                virtual_graph=vg,
                valid_classes=valid,
                layer_history=history,
                k_guess=k_guess,
                t_requested=t_requested,
                t_used=t,
                attempts=attempt,
            )
        if t == 1:
            break
        t = max(1, t // 2)
    raise PackingConstructionError(
        f"no valid CDS classes after {params.max_attempts} attempts "
        f"(k_guess={k_guess}); is the graph connected and non-trivial?"
    )


def fractional_cds_packing_reference(
    graph: nx.Graph,
    k: Optional[int] = None,
    params: Optional[PackingParameters] = None,
    rng: RngLike = None,
) -> CdsPackingResult:
    """Pre-kernel :func:`repro.core.cds_packing.fractional_cds_packing`."""
    params = params or PackingParameters()
    rand = ensure_rng(rng)
    if k is not None:
        return construct_cds_packing_reference(graph, k, params, rand)

    n = graph.number_of_nodes()
    guess = max(1, n // 2)
    best: Optional[CdsPackingResult] = None
    while True:
        try:
            result = construct_cds_packing_reference(graph, guess, params, rand)
        except PackingConstructionError:
            result = None
        if result is not None:
            if best is None or result.size > best.size:
                best = result
            accepted = (
                len(result.valid_classes)
                >= params.accept_fraction * result.t_requested
                and result.t_used == result.t_requested
            )
            if accepted:
                return result
        if guess == 1:
            break
        guess //= 2
    if best is not None:
        return best
    raise PackingConstructionError(
        "try-and-error guessing failed for every scale"
    )
