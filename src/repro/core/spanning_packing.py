"""Fractional spanning tree packing (Section 5, Theorem 1.3).

Two layers:

* :func:`mwu_spanning_packing` — the Lagrangian-relaxation / MWU core for
  ``λ = O(log n)`` (Section 5.1): maintain a weighted tree collection of
  total weight 1; per iteration, exponentially penalize loaded edges
  (``c_e = exp(α·z_e)``), compute the MST under these costs, stop when
  ``Cost(MST) > (1−ε)·Σ c_e x_e`` (Lemma F.1 then gives
  ``max_e z_e ≤ 1+O(ε)``), otherwise blend the MST in with weight
  ``β = Θ(1/(α log n))``.
* :func:`fractional_spanning_tree_packing` — the general case
  (Section 5.2): split edges into ``η`` random parts via Karger sampling
  so each part has connectivity ``Θ(log n / ε²)``, pack each part, and
  take the union.

Numerics: ``c_e`` can be astronomically large, but both the MST and the
stopping rule are invariant under dividing all costs by a constant, so we
compute ``c_e = exp(α·(z_e − z_max))`` — exactly the paper's quantities,
renormalized (footnote 6 makes the same point for message size).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Hashable, List, Optional, Tuple

import networkx as nx

from repro.errors import GraphValidationError, PackingConstructionError
from repro.core.tree_packing import SpanningTreePacking, WeightedTree
from repro.graphs.connectivity import edge_connectivity
from repro.graphs.sampling import choose_karger_parts, karger_edge_partition
from repro.utils.mathutil import ceil_div
from repro.utils.rng import RngLike, ensure_rng

Edge = FrozenSet[Hashable]


@dataclass(frozen=True)
class MwuParameters:
    """Constants behind the Θ(·)s of Section 5.1."""

    epsilon: float = 0.1
    alpha_factor: float = 1.0       # α = alpha_factor · ln n
    beta_factor: float = 1.0        # β = beta_factor / (α · ln n)
    max_iterations: Optional[int] = None  # default Θ(log³ n), capped

    def alpha(self, n: int) -> float:
        return max(1.0, self.alpha_factor * math.log(max(n, 2)))

    def beta(self, n: int) -> float:
        return min(0.5, self.beta_factor / (self.alpha(n) * math.log(max(n, 2))))

    def iteration_cap(self, n: int) -> int:
        if self.max_iterations is not None:
            return self.max_iterations
        log_n = math.log(max(n, 2))
        return max(200, int(40 * log_n**3))


@dataclass
class MwuTrace:
    """Per-iteration diagnostics (drives experiment E3)."""

    iterations: int = 0
    max_relative_load: List[float] = field(default_factory=list)
    stopped_early: bool = False


@dataclass
class SpanningPackingResult:
    """Outcome of a spanning tree packing construction."""

    packing: SpanningTreePacking
    lam: int                      # edge connectivity used (per part: a list)
    target: int                   # ⌈(λ−1)/2⌉ — the Tutte/Nash-Williams bound
    parts: int
    traces: List[MwuTrace]

    @property
    def size(self) -> float:
        return self.packing.size

    @property
    def efficiency(self) -> float:
        """Achieved size ÷ Tutte/Nash-Williams bound (→ 1−ε when λ ≥ 3)."""
        return self.size / max(1, self.target)


def _tree_edges(tree: nx.Graph) -> FrozenSet[Edge]:
    return frozenset(frozenset(e) for e in tree.edges())


def mwu_spanning_packing(
    graph: nx.Graph,
    lam: Optional[int] = None,
    params: Optional[MwuParameters] = None,
    class_id_base: int = 0,
) -> Tuple[List[Tuple[FrozenSet[Edge], float]], MwuTrace, int]:
    """Core MWU loop on one (connected) graph; returns raw weighted trees.

    Returns ``(collection, trace, target)`` where ``collection`` maps each
    distinct tree (as an edge set) to its *normalized* weight: weights are
    rescaled by ``1 / max_e x_e`` so the per-edge capacity is met exactly;
    the resulting total weight is the achieved packing size.
    """
    if not nx.is_connected(graph):
        raise GraphValidationError("MWU packing requires a connected graph")
    params = params or MwuParameters()
    n = graph.number_of_nodes()
    if lam is None:
        lam = edge_connectivity(graph)
    target = max(1, ceil_div(max(0, lam - 1), 2))
    alpha = params.alpha(n)
    beta = params.beta(n)
    epsilon = params.epsilon

    edges: List[Edge] = [frozenset(e) for e in graph.edges()]
    loads: Dict[Edge, float] = {e: 0.0 for e in edges}
    collection: Dict[FrozenSet[Edge], float] = {}

    # Initial collection: one arbitrary spanning tree with weight 1.
    first = nx.minimum_spanning_tree(graph)
    first_edges = _tree_edges(first)
    collection[first_edges] = 1.0
    for e in first_edges:
        loads[e] = 1.0

    trace = MwuTrace()
    cap = params.iteration_cap(n)
    for _ in range(cap):
        trace.iterations += 1
        z = {e: loads[e] * target for e in edges}
        z_max = max(z.values())
        trace.max_relative_load.append(z_max / target)
        if trace.iterations > 1 and z_max <= 1.0 + epsilon:
            # Already at the Lemma F.2 guarantee: every edge's relative
            # load is within 1+ε — nothing left to improve.
            trace.stopped_early = True
            break
        costs = {e: math.exp(alpha * (z[e] - z_max)) for e in edges}

        weighted = nx.Graph()
        weighted.add_nodes_from(graph.nodes())
        for e in edges:
            u, v = tuple(e)
            weighted.add_edge(u, v, cost=costs[e])
        mst = nx.minimum_spanning_tree(weighted, weight="cost")
        mst_edges = _tree_edges(mst)
        mst_cost = sum(costs[e] for e in mst_edges)
        fractional_cost = sum(costs[e] * loads[e] for e in edges)

        if mst_cost > (1.0 - epsilon) * fractional_cost:
            trace.stopped_early = True
            break
        # Blend the MST in: old weights ×(1−β), MST gains β.
        for tree_key in collection:
            collection[tree_key] *= 1.0 - beta
        collection[mst_edges] = collection.get(mst_edges, 0.0) + beta
        for e in edges:
            loads[e] *= 1.0 - beta
        for e in mst_edges:
            loads[e] += beta

    # Rescale so the max edge load is exactly 1: the achieved size is
    # target / max_z, which Lemmas F.1/F.2 lower-bound by target/(1+O(ε)).
    max_load = max(loads[e] for e in edges if loads[e] > 0.0)
    scale = 1.0 / max_load
    normalized = [
        (tree_key, weight * scale)
        for tree_key, weight in collection.items()
        if weight * scale > 1e-12
    ]
    return normalized, trace, target


def _edges_to_tree(graph: nx.Graph, tree_edges: FrozenSet[Edge]) -> nx.Graph:
    tree = nx.Graph()
    tree.add_nodes_from(graph.nodes())
    for e in tree_edges:
        u, v = tuple(e)
        tree.add_edge(u, v)
    return tree


def fractional_spanning_tree_packing(
    graph: nx.Graph,
    lam: Optional[int] = None,
    params: Optional[MwuParameters] = None,
    rng: RngLike = None,
) -> SpanningPackingResult:
    """Theorem 1.3: fractional spanning tree packing of size ≈ ⌈(λ−1)/2⌉(1−ε).

    For ``λ`` beyond ``Θ(log n / ε²)``, edges are first split into ``η``
    random parts (Karger, Section 5.2) and each part is packed
    independently; spanning trees of parts are spanning trees of ``graph``
    and parts are edge-disjoint, so the union is a valid packing with size
    the sum of the parts' sizes — at least ``λ(1−ε)/2`` up to sampling loss.
    """
    if graph.number_of_nodes() < 2:
        raise GraphValidationError("graph must have at least 2 nodes")
    if not nx.is_connected(graph):
        raise GraphValidationError("graph must be connected")
    params = params or MwuParameters()
    rand = ensure_rng(rng)
    n = graph.number_of_nodes()
    if lam is None:
        lam = edge_connectivity(graph)

    eta = choose_karger_parts(lam, n, params.epsilon)
    if eta <= 1:
        parts = [graph]
    else:
        parts = karger_edge_partition(graph, eta, rand)

    trees: List[WeightedTree] = []
    traces: List[MwuTrace] = []
    class_id = 0
    packed_parts = 0
    for part in parts:
        if part.number_of_edges() == 0 or not nx.is_connected(part):
            # A disconnected part cannot contribute spanning trees; w.h.p.
            # this never happens for the prescribed η (E12 measures it).
            continue
        part_lam = edge_connectivity(part) if eta > 1 else lam
        normalized, trace, _ = mwu_spanning_packing(part, part_lam, params)
        traces.append(trace)
        packed_parts += 1
        for tree_edges, weight in normalized:
            trees.append(
                WeightedTree(
                    tree=_edges_to_tree(graph, tree_edges),
                    weight=min(1.0, weight),
                    class_id=class_id,
                )
            )
            class_id += 1
    if not trees:
        raise PackingConstructionError(
            "no part produced spanning trees (graph too sparse for η parts?)"
        )
    packing = SpanningTreePacking(graph, trees)
    packing.verify()
    return SpanningPackingResult(
        packing=packing,
        lam=lam,
        target=max(1, ceil_div(max(0, lam - 1), 2)),
        parts=packed_parts,
        traces=traces,
    )
