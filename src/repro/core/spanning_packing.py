"""Fractional spanning tree packing (Section 5, Theorem 1.3).

Two layers:

* :func:`mwu_spanning_packing` — the Lagrangian-relaxation / MWU core for
  ``λ = O(log n)`` (Section 5.1): maintain a weighted tree collection of
  total weight 1; per iteration, exponentially penalize loaded edges
  (``c_e = exp(α·z_e)``), compute the MST under these costs, stop when
  ``Cost(MST) > (1−ε)·Σ c_e x_e`` (Lemma F.1 then gives
  ``max_e z_e ≤ 1+O(ε)``), otherwise blend the MST in with weight
  ``β = Θ(1/(α log n))``.
* :func:`fractional_spanning_tree_packing` — the general case
  (Section 5.2): split edges into ``η`` random parts via Karger sampling
  so each part has connectivity ``Θ(log n / ε²)``, pack each part, and
  take the union.

Numerics: ``c_e`` can be astronomically large, but both the MST and the
stopping rule are invariant under dividing all costs by a constant, so we
compute ``c_e = exp(α·(z_e − z_max))`` — exactly the paper's quantities,
renormalized (footnote 6 makes the same point for message size).

Implementation: the inner loop runs on the :mod:`repro.fastgraph`
kernel — the graph is canonicalized once into an
:class:`~repro.fastgraph.IndexedGraph`, loads/costs live in flat lists
indexed by edge id, the MST is a Kruskal scan over a persistently
near-sorted edge order (cost is a monotone transform of load, so the
order barely moves between iterations), and the per-iteration
``O(|collection|)`` weight decay is replaced by a lazy per-tree replay.
The replay applies, per tree, exactly the multiplication sequence the
eager loop would have, so results are bit-identical to the preserved
pre-kernel implementation
(:mod:`repro.core.spanning_packing_reference`) under fixed seeds —
``tests/test_fastgraph.py`` enforces this. Trees are ``frozenset``\\ s
of edge indices internally and become :class:`networkx.Graph` trees
only at the API boundary.
"""

from __future__ import annotations

import math
import operator
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Hashable, List, Optional, Sequence, Tuple

import networkx as nx

from repro.errors import (
    GraphValidationError,
    PackingConstructionError,
    PackingValidationError,
)
from repro.core.tree_packing import (
    _TOLERANCE,
    SpanningTreePacking,
    WeightedTree,
)
from repro.fastgraph import (
    IndexedGraph,
    IntUnionFind,
    NearSortedEdgeOrder,
    kruskal_from_order,
)
from repro.graphs.connectivity import edge_connectivity
from repro.graphs.sampling import choose_karger_parts, karger_edge_index_partition
from repro.utils.mathutil import ceil_div
from repro.utils.rng import RngLike, ensure_rng

Edge = FrozenSet[Hashable]


@dataclass(frozen=True)
class MwuParameters:
    """Constants behind the Θ(·)s of Section 5.1."""

    epsilon: float = 0.1
    alpha_factor: float = 1.0       # α = alpha_factor · ln n
    beta_factor: float = 1.0        # β = beta_factor / (α · ln n)
    max_iterations: Optional[int] = None  # default Θ(log³ n), capped

    def alpha(self, n: int) -> float:
        return max(1.0, self.alpha_factor * math.log(max(n, 2)))

    def beta(self, n: int) -> float:
        return min(0.5, self.beta_factor / (self.alpha(n) * math.log(max(n, 2))))

    def iteration_cap(self, n: int) -> int:
        if self.max_iterations is not None:
            return self.max_iterations
        log_n = math.log(max(n, 2))
        return max(200, int(40 * log_n**3))


@dataclass
class MwuTrace:
    """Per-iteration diagnostics (drives experiment E3)."""

    iterations: int = 0
    max_relative_load: List[float] = field(default_factory=list)
    stopped_early: bool = False


@dataclass
class SpanningPackingResult:
    """Outcome of a spanning tree packing construction."""

    packing: SpanningTreePacking
    lam: int                      # edge connectivity used (per part: a list)
    target: int                   # ⌈(λ−1)/2⌉ — the Tutte/Nash-Williams bound
    parts: int
    traces: List[MwuTrace]

    @property
    def size(self) -> float:
        return self.packing.size

    @property
    def efficiency(self) -> float:
        """Achieved size ÷ Tutte/Nash-Williams bound (→ 1−ε when λ ≥ 3)."""
        return self.size / max(1, self.target)


def _mwu_indexed(
    graph: IndexedGraph,
    edge_ids: Sequence[int],
    target: int,
    params: MwuParameters,
) -> Tuple[List[Tuple[FrozenSet[int], float]], MwuTrace]:
    """Section 5.1's MWU loop over a (connected) edge subset, index-side.

    ``edge_ids`` must already be in networkx node-major order (see
    :meth:`IndexedGraph.nx_edge_order`) so that cost ties break exactly
    as the pre-kernel implementation's ``nx.minimum_spanning_tree``
    broke them. Returns ``(collection, trace)`` with trees as frozensets
    of *parent* edge indices and normalized weights.
    """
    n = graph.n
    m = len(edge_ids)
    # Compact local endpoint arrays: position p in 0..m-1 is edge
    # edge_ids[p] of the parent graph.
    parent_u = graph.u
    parent_v = graph.v
    u = [parent_u[i] for i in edge_ids]
    v = [parent_v[i] for i in edge_ids]

    alpha = params.alpha(n)
    beta = params.beta(n)
    decay = 1.0 - beta
    epsilon = params.epsilon
    one_minus_eps = 1.0 - epsilon

    uf = IntUnionFind(n)
    first = kruskal_from_order(range(m), u, v, n, uf)
    if len(first) != n - 1:
        raise GraphValidationError("MWU packing requires a connected graph")

    loads = [0.0] * m
    for p in first:
        loads[p] = 1.0
    # Lazy-decay collection: tree -> [value, blend_count_when_last_touched].
    # The eager loop multiplies every weight by (1-β) per blend; here each
    # tree's pending decays are replayed (same multiplications, same
    # order) only when the tree is touched again or at the end.
    collection: Dict[FrozenSet[int], List] = {frozenset(first): [1.0, 0]}
    blends = 0

    edge_order = NearSortedEdgeOrder(m)
    exp = math.exp
    mul = operator.mul

    trace = MwuTrace()
    cap = params.iteration_cap(n)
    for _ in range(cap):
        trace.iterations += 1
        z = [x * target for x in loads]
        z_max = max(z)
        trace.max_relative_load.append(z_max / target)
        if trace.iterations > 1 and z_max <= 1.0 + epsilon:
            # Already at the Lemma F.2 guarantee: every edge's relative
            # load is within 1+ε — nothing left to improve.
            trace.stopped_early = True
            break
        # Loads repeat across edges (same MST-membership history ⇒ same
        # load), so exp runs once per distinct z value, not per edge.
        cost_of = dict.fromkeys(z)
        for zp in cost_of:
            cost_of[zp] = exp(alpha * (zp - z_max))
        costs = [cost_of[zp] for zp in z]

        # Near-sorted persistent order: only the previous MST's edges
        # moved, so this sort is adaptive. (cost, index) reproduces the
        # stable tie-break of nx.minimum_spanning_tree exactly.
        order = edge_order.resort(costs)
        mst = kruskal_from_order(order, u, v, n, uf)
        # fractional_cost runs left-to-right over the same edge order as
        # the reference's built-in sum() — identical floats. mst_cost
        # sums the same terms in acceptance order (the reference
        # iterates a frozenset); the stopping comparison below has the
        # (1−ε) duality gap of slack, and the fixed-seed bit-identity
        # tests pin the outcome.
        mst_cost = sum(map(costs.__getitem__, mst))
        fractional_cost = sum(map(mul, costs, loads))

        if mst_cost > one_minus_eps * fractional_cost:
            trace.stopped_early = True
            break
        # Blend the MST in: old weights ×(1−β) (lazily), MST gains β.
        blends += 1
        key = frozenset(mst)
        entry = collection.get(key)
        if entry is None:
            collection[key] = [beta, blends]
        else:
            value, last = entry
            for _ in range(blends - last):
                value *= decay
            entry[0] = value + beta
            entry[1] = blends
        loads = [x * decay for x in loads]
        for p in mst:
            loads[p] += beta

    # Flush pending decays, then rescale so the max edge load is exactly
    # 1: the achieved size is target / max_z, which Lemmas F.1/F.2
    # lower-bound by target/(1+O(ε)).
    max_load = max(x for x in loads if x > 0.0)
    scale = 1.0 / max_load
    normalized: List[Tuple[FrozenSet[int], float]] = []
    for key, (value, last) in collection.items():
        for _ in range(blends - last):
            value *= decay
        weight = value * scale
        if weight > 1e-12:
            normalized.append(
                (frozenset(edge_ids[p] for p in key), weight)
            )
    return normalized, trace


def mwu_spanning_packing(
    graph: nx.Graph,
    lam: Optional[int] = None,
    params: Optional[MwuParameters] = None,
    class_id_base: int = 0,
) -> Tuple[List[Tuple[FrozenSet[Edge], float]], MwuTrace, int]:
    """Core MWU loop on one (connected) graph; returns raw weighted trees.

    Returns ``(collection, trace, target)`` where ``collection`` maps each
    distinct tree (as an edge set) to its *normalized* weight: weights are
    rescaled by ``1 / max_e x_e`` so the per-edge capacity is met exactly;
    the resulting total weight is the achieved packing size.
    """
    if not nx.is_connected(graph):
        raise GraphValidationError("MWU packing requires a connected graph")
    params = params or MwuParameters()
    n = graph.number_of_nodes()
    if lam is None:
        lam = edge_connectivity(graph)
    target = max(1, ceil_div(max(0, lam - 1), 2))

    indexed = IndexedGraph.from_networkx(graph)
    raw, trace = _mwu_indexed(indexed, range(indexed.m), target, params)
    normalized = [
        (indexed.edges_to_node_sets(key), weight) for key, weight in raw
    ]
    return normalized, trace, target


def _edges_to_tree(graph: nx.Graph, tree_edges: FrozenSet[Edge]) -> nx.Graph:
    tree = nx.Graph()
    tree.add_nodes_from(graph.nodes())
    for e in tree_edges:
        u, v = tuple(e)
        tree.add_edge(u, v)
    return tree


def fractional_spanning_tree_packing(
    graph: nx.Graph,
    lam: Optional[int] = None,
    params: Optional[MwuParameters] = None,
    rng: RngLike = None,
    indexed: Optional[IndexedGraph] = None,
) -> SpanningPackingResult:
    """Theorem 1.3: fractional spanning tree packing of size ≈ ⌈(λ−1)/2⌉(1−ε).

    For ``λ`` beyond ``Θ(log n / ε²)``, edges are first split into ``η``
    random parts (Karger, Section 5.2) and each part is packed
    independently; spanning trees of parts are spanning trees of ``graph``
    and parts are edge-disjoint, so the union is a valid packing with size
    the sum of the parts' sizes — at least ``λ(1−ε)/2`` up to sampling loss.

    The connectivity oracle runs **once**, on ``graph`` (and only when
    ``lam`` is not supplied): each part's connectivity is ``λ/η`` up to
    ``1 ± ε`` by Karger's theorem, so parts are sized with
    ``max(1, λ // η)`` instead of re-running the oracle per part.

    ``indexed`` shares a prebuilt canonicalization (e.g. a
    :class:`repro.api.GraphSession`'s); the RNG stream is unaffected, so
    results are bit-identical with or without it.
    """
    if graph.number_of_nodes() < 2:
        raise GraphValidationError("graph must have at least 2 nodes")
    if not nx.is_connected(graph):
        raise GraphValidationError("graph must be connected")
    params = params or MwuParameters()
    rand = ensure_rng(rng)
    n = graph.number_of_nodes()
    if lam is None:
        lam = edge_connectivity(graph)

    if indexed is None:
        indexed = IndexedGraph.from_networkx(graph)
    eta = choose_karger_parts(lam, n, params.epsilon)
    if eta <= 1:
        part_edge_lists: List[List[int]] = [list(range(indexed.m))]
    else:
        assignment = karger_edge_index_partition(indexed.m, eta, rand)
        buckets: List[List[int]] = [[] for _ in range(eta)]
        for i, part_id in enumerate(assignment):
            buckets[part_id].append(i)
        # Re-order each part the way networkx would report its edges, so
        # MST tie-breaks match a part built as an nx.Graph.
        part_edge_lists = [indexed.nx_edge_order(bucket) for bucket in buckets]

    trees: List[WeightedTree] = []
    traces: List[MwuTrace] = []
    class_id = 0
    packed_parts = 0
    uf = IntUnionFind(indexed.n)
    spanning_size = indexed.n - 1
    edge_load = [0.0] * indexed.m
    for part_edges in part_edge_lists:
        if not part_edges or not indexed.is_connected_via(part_edges, uf):
            # A disconnected part cannot contribute spanning trees; w.h.p.
            # this never happens for the prescribed η (E12 measures it).
            continue
        part_lam = lam if eta <= 1 else max(1, lam // eta)
        part_target = max(1, ceil_div(max(0, part_lam - 1), 2))
        normalized, trace = _mwu_indexed(indexed, part_edges, part_target, params)
        traces.append(trace)
        packed_parts += 1
        for tree_key, weight in normalized:
            # Index-side verification — the same constraints
            # SpanningTreePacking.verify() checks on the nx objects
            # (spanning tree per class, per-edge capacity below), done
            # on edge indices before the boundary conversion.
            if len(tree_key) != spanning_size or not indexed.is_connected_via(
                tree_key, uf
            ):
                raise PackingValidationError(
                    f"tree (class {class_id}) is not a spanning tree of "
                    "the graph"
                )
            weight = min(1.0, weight)
            for i in tree_key:
                edge_load[i] += weight
            trees.append(
                WeightedTree(
                    tree=indexed.tree_graph(tree_key),
                    weight=weight,
                    class_id=class_id,
                )
            )
            class_id += 1
    if not trees:
        raise PackingConstructionError(
            "no part produced spanning trees (graph too sparse for η parts?)"
        )
    max_edge_load = max(edge_load, default=0.0)
    if max_edge_load > 1.0 + _TOLERANCE:
        raise PackingValidationError(
            f"edge capacity violated: max edge load {max_edge_load} > 1"
        )
    packing = SpanningTreePacking(graph, trees)
    return SpanningPackingResult(
        packing=packing,
        lam=lam,
        target=max(1, ceil_div(max(0, lam - 1), 2)),
        parts=packed_parts,
        traces=traces,
    )
