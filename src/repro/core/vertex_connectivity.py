"""Vertex connectivity approximation (Corollary 1.7).

The dominating tree packing works without knowing ``k`` and its size lands
in ``[Ω(k / log n), k]``:

* *upper direction*: any fractional dominating tree packing of size σ
  certifies ``k ≥ σ`` — every dominating tree is connected and dominates
  both sides of any vertex cut ``S``, so it must contain a node of ``S``;
  summing weights, ``σ ≤ |S|`` for every cut.
* *lower direction*: Theorem 1.1 guarantees σ = Ω(k / log n), so
  ``k ≤ σ · O(log n)``.

:func:`approximate_vertex_connectivity` therefore returns the certified
interval ``[σ, σ · c·log n]`` together with a point estimate, achieving the
``O(log n)`` approximation of Corollary 1.7 in ``Õ(m)`` centralized time.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

import networkx as nx

from repro.core.cds_packing import (
    CdsPackingResult,
    PackingParameters,
    fractional_cds_packing,
)
from repro.core.virtual_graph import CdsIndex
from repro.utils.rng import RngLike, ensure_rng


@dataclass(frozen=True)
class VertexConnectivityEstimate:
    """An O(log n)-approximation interval for vertex connectivity."""

    lower_bound: float       # certified: k >= packing size
    upper_bound: float       # w.h.p.: k <= size · O(log n)
    estimate: float          # geometric midpoint of the interval
    packing_size: float
    n_trees: int
    log_factor: float

    def contains(self, k: int) -> bool:
        return self.lower_bound <= k <= self.upper_bound


def approximate_vertex_connectivity(
    graph: nx.Graph,
    params: Optional[PackingParameters] = None,
    rng: RngLike = None,
    approximation_constant: float = 6.0,
    index: Optional[CdsIndex] = None,
) -> VertexConnectivityEstimate:
    """Corollary 1.7: an O(log n)-approximation of vertex connectivity.

    Runs the try-and-error packing of Remark 3.1 (no prior knowledge of
    ``k``) and converts the achieved fractional packing size into a
    certified lower bound and an ``O(log n)``-inflated upper bound.

    ``approximation_constant`` is the concrete constant in the
    ``O(log n)`` stretch — the measured ratio benchmark (E7) reports how
    tight it is in practice. ``index`` shares a prebuilt canonicalization
    (e.g. a :class:`repro.api.GraphSession`'s) across calls.
    """
    # Canonicalize once; the Remark 3.1 guess loop reuses the index for
    # every construction attempt.
    if index is None:
        index = CdsIndex(graph)
    result = fractional_cds_packing(
        graph, k=None, params=params, rng=rng, index=index
    )
    return estimate_from_packing(graph, result, approximation_constant)


def approximate_vertex_connectivity_distributed(
    graph: nx.Graph,
    k_guess: Optional[int] = None,
    params: Optional[PackingParameters] = None,
    rng: RngLike = None,
    approximation_constant: float = 6.0,
):
    """Corollary 1.7, distributed: Õ(D + √n) rounds of V-CONGEST.

    Runs the Appendix B protocol (with the guess loop of Remark 3.1 when
    ``k_guess`` is omitted) and returns
    ``(estimate, DistributedCdsResult)`` so callers can read both the
    approximation interval and the round accounting.
    """
    from repro.core.cds_packing_distributed import distributed_cds_packing
    from repro.errors import PackingConstructionError

    rand = ensure_rng(rng)
    n = graph.number_of_nodes()
    guesses = [k_guess] if k_guess is not None else None
    if guesses is None:
        guesses = []
        g = max(1, n // 2)
        while True:
            guesses.append(g)
            if g == 1:
                break
            g //= 2
    last_error: Optional[Exception] = None
    for guess in guesses:
        try:
            dist = distributed_cds_packing(graph, guess, params, rand)
        except PackingConstructionError as exc:
            last_error = exc
            continue
        estimate = estimate_from_packing(
            graph, dist.result, approximation_constant
        )
        return estimate, dist
    raise last_error if last_error else RuntimeError("no guess attempted")


def estimate_from_packing(
    graph: nx.Graph,
    result: CdsPackingResult,
    approximation_constant: float = 6.0,
) -> VertexConnectivityEstimate:
    """Turn a packing construction into a connectivity estimate."""
    n = graph.number_of_nodes()
    size = result.packing.size
    log_factor = approximation_constant * math.log(max(n, 2))
    lower = max(1.0, size)
    upper = max(lower, size * log_factor)
    # K_n has no cut; connectivity is n-1 and domination makes every class
    # valid, so the bound still holds; clamp to the trivial maximum anyway.
    upper = min(upper, float(n - 1))
    estimate = math.sqrt(lower * max(lower, upper))
    return VertexConnectivityEstimate(
        lower_bound=lower,
        upper_bound=max(lower, upper),
        estimate=estimate,
        packing_size=size,
        n_trees=len(result.packing),
        log_factor=log_factor,
    )
