"""Integral tree packings (Section 1.2, "Integral Tree Packings").

* :func:`integral_cds_packing` — vertex-disjoint CDS packing of size
  ``Ω(κ / log² n)`` via the random layering of [12, Theorem 1.2]: each
  *real* node participates exactly once (one virtual identity with a
  random layer and type), so distinct classes are vertex-disjoint by
  construction; the same bridging/matching recursion connects them.
* :func:`integral_spanning_packing` — edge-disjoint spanning tree packing
  of size ``Ω(λ / log n)`` ("a considerably simpler variant" of
  Theorem 1.3): split the edges into ``Θ(λ / log n)`` random parts; each
  part is connected w.h.p. (Karger), and one spanning tree per connected
  part gives pairwise edge-disjoint spanning trees.

Both functions keep only classes/parts that verify, so outputs are always
valid integral packings; benchmark E15 records achieved vs. bound sizes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional, Set, Tuple

import networkx as nx

from repro.errors import GraphValidationError, PackingConstructionError
from repro.core.tree_packing import (
    DominatingTreePacking,
    SpanningTreePacking,
    WeightedTree,
    spanning_tree_of,
)
from repro.core.bridging import closed_neighborhood
from repro.fastgraph import IndexedGraph, IntUnionFind
from repro.graphs.connectivity import edge_connectivity, is_connected_dominating_set
from repro.graphs.sampling import karger_edge_index_partition
from repro.utils.mathutil import ceil_log2
from repro.utils.rng import RngLike, ensure_rng


@dataclass
class IntegralCdsResult:
    """Outcome of the vertex-disjoint CDS packing."""

    packing: DominatingTreePacking
    t_requested: int
    valid_classes: int

    @property
    def size(self) -> int:
        return len(self.packing)


def _random_layering_classes(
    graph: nx.Graph, t: int, layers: int, rng
) -> List[Set[Hashable]]:
    """One recursion pass where each real node exists exactly once.

    Each node draws a random (layer, type); layers ``1..L/2`` join random
    classes up front, later layers are assigned in order with the same
    bridging-graph logic as the fractional algorithm, restricted to the
    single identity per node (so classes stay vertex-disjoint).
    """
    layer_of = {v: rng.randrange(1, layers + 1) for v in graph.nodes()}
    type_of = {v: rng.randrange(1, 4) for v in graph.nodes()}
    class_of: Dict[Hashable, int] = {}
    for v in graph.nodes():
        if layer_of[v] <= layers // 2:
            class_of[v] = rng.randrange(t)

    for layer in range(layers // 2 + 1, layers + 1):
        new_nodes = [v for v in graph.nodes() if layer_of[v] == layer]
        members: Dict[int, Set[Hashable]] = {}
        for v, c in class_of.items():
            members.setdefault(c, set()).add(v)
        comp_of: Dict[Hashable, Tuple[int, int]] = {}
        comps_per_class: Dict[int, int] = {}
        for c, mset in members.items():
            induced = graph.subgraph(mset)
            for idx, comp in enumerate(nx.connected_components(induced)):
                comps_per_class[c] = idx + 1
                for w in comp:
                    comp_of[w] = (c, idx)

        type1 = {v for v in new_nodes if type_of[v] == 1}
        type3 = {v for v in new_nodes if type_of[v] == 3}
        # Type-1 and type-3 nodes pick random classes immediately.
        pending2 = []
        for v in new_nodes:
            if type_of[v] == 2:
                pending2.append(v)
            else:
                class_of[v] = rng.randrange(t)

        # Deactivation by type-1 bridges.
        deactivated: Set[Tuple[int, int]] = set()
        for u in type1:
            c = class_of[u]
            reps = {
                comp_of[w]
                for w in closed_neighborhood(graph, u)
                if comp_of.get(w, (None,))[0] == c
            }
            if len(reps) >= 2:
                deactivated |= reps
        # Suitable components of type-3 nodes.
        suitable: Dict[Hashable, Set[Tuple[int, int]]] = {}
        for u in type3:
            c = class_of[u]
            suitable[u] = {
                comp_of[w]
                for w in closed_neighborhood(graph, u)
                if comp_of.get(w, (None,))[0] == c
            }
        matched: Set[Tuple[int, int]] = set()
        rng.shuffle(pending2)
        for v in pending2:
            neighborhood = closed_neighborhood(graph, v)
            candidates = []
            seen = set()
            for w in neighborhood:
                key = comp_of.get(w)
                if key is not None and key not in seen:
                    seen.add(key)
                    candidates.append(key)
            rng.shuffle(candidates)
            chosen: Optional[int] = None
            for key in candidates:
                if key in deactivated or key in matched:
                    continue
                c = key[0]
                bridged = any(
                    u in suitable
                    and class_of.get(u) == c
                    and any(other != key for other in suitable[u])
                    for u in neighborhood
                )
                if bridged:
                    matched.add(key)
                    chosen = c
                    break
            class_of[v] = chosen if chosen is not None else rng.randrange(t)

    classes: List[Set[Hashable]] = [set() for _ in range(t)]
    for v, c in class_of.items():
        classes[c].add(v)
    return classes


def integral_cds_packing(
    graph: nx.Graph,
    k: Optional[int] = None,
    class_factor: float = 0.25,
    layer_factor: int = 2,
    max_attempts: int = 5,
    rng: RngLike = None,
) -> IntegralCdsResult:
    """Vertex-disjoint CDS packing of size Ω(κ / log² n).

    ``k`` defaults to the exact vertex connectivity (the oracle is only a
    scale hint here; the paper's try-and-error applies as in the
    fractional case). Invalid classes are discarded; retries halve ``t``.
    """
    from repro.graphs.connectivity import vertex_connectivity

    if graph.number_of_nodes() < 2 or not nx.is_connected(graph):
        raise GraphValidationError("graph must be connected with >= 2 nodes")
    rand = ensure_rng(rng)
    if k is None:
        k = max(1, vertex_connectivity(graph))
    n = graph.number_of_nodes()
    log_n = max(1, ceil_log2(max(2, n)))
    layers = max(4, layer_factor * log_n)
    layers += layers % 2
    t_requested = max(1, round(class_factor * k / max(1, log_n)))

    t = t_requested
    for _ in range(max_attempts):
        classes = _random_layering_classes(graph, t, layers, rand)
        valid = [
            c for c in classes if c and is_connected_dominating_set(graph, c)
        ]
        if valid:
            trees = [
                WeightedTree(
                    tree=spanning_tree_of(graph, members),
                    weight=1.0,
                    class_id=i,
                )
                for i, members in enumerate(valid)
            ]
            packing = DominatingTreePacking(graph, trees)
            packing.verify()
            if not packing.is_vertex_disjoint():
                raise PackingConstructionError(
                    "internal error: random layering produced overlapping classes"
                )
            return IntegralCdsResult(
                packing=packing, t_requested=t_requested, valid_classes=len(valid)
            )
        if t == 1:
            break
        t = max(1, t // 2)
    raise PackingConstructionError(
        "integral CDS packing failed; graph connectivity too small?"
    )


def integral_spanning_packing(
    graph: nx.Graph,
    lam: Optional[int] = None,
    parts_factor: float = 0.5,
    rng: RngLike = None,
    indexed: Optional[IndexedGraph] = None,
) -> SpanningTreePacking:
    """Edge-disjoint spanning tree packing of size Ω(λ / log n).

    Splits edges into ``max(1, parts_factor·λ/ln n)`` random parts and
    takes a spanning tree of each connected part. Parts are edge-disjoint,
    hence so are the trees (all carry weight 1 — an integral packing).

    Runs on the :mod:`repro.fastgraph` kernel: the partition is drawn
    over edge indices (same draw sequence as the graph-object form),
    connectivity is one :class:`IntUnionFind` sweep per part, and the
    BFS spanning trees mirror the traversal
    :func:`~repro.core.tree_packing.spanning_tree_of` performs, so the
    resulting trees are identical to the pre-kernel construction.
    """
    if graph.number_of_nodes() < 2 or not nx.is_connected(graph):
        raise GraphValidationError("graph must be connected with >= 2 nodes")
    rand = ensure_rng(rng)
    if lam is None:
        lam = edge_connectivity(graph)
    n = graph.number_of_nodes()
    parts = max(1, int(parts_factor * lam / math.log(max(n, 2))))
    if indexed is None:
        indexed = IndexedGraph.from_networkx(graph)
    assignment = karger_edge_index_partition(indexed.m, parts, rand)
    buckets: List[List[int]] = [[] for _ in range(parts)]
    for i, part_id in enumerate(assignment):
        buckets[part_id].append(i)
    trees = []
    uf = IntUnionFind(indexed.n)
    for index, bucket in enumerate(buckets):
        if bucket and indexed.is_connected_via(bucket, uf):
            trees.append(
                WeightedTree(
                    tree=indexed.tree_graph(indexed.bfs_tree_edges(bucket)),
                    weight=1.0,
                    class_id=index,
                )
            )
    if not trees:
        raise PackingConstructionError(
            "no connected part; λ too small for the requested split"
        )
    packing = SpanningTreePacking(graph, trees)
    packing.verify()
    if not packing.is_edge_disjoint():
        raise PackingConstructionError(
            "internal error: edge partition produced overlapping trees"
        )
    return packing
