"""Testing a CDS partition (Appendix E / Lemma E.1).

Given a partition of the vertices into classes ``V_1 … V_t`` (in the
paper, of the *virtual* graph's vertices; the protocol is identical on any
graph), test w.h.p. whether every class is a CDS:

* **Domination test** — one round of class-number exchange; a node not
  dominated by some class floods ``domination-failure`` for Θ(D) rounds.
* **Connectivity test** — identify each class's components (Theorem B.2
  subroutine); one round of (class, component-id) exchange; then Θ(log n)
  rounds in which every node broadcasts the component id it knows for a
  *random* class. A node that ever hears two different component ids for
  the same class has detected a disconnection (the "detector paths" of
  the proof guarantee detection w.h.p.); failures flood for Θ(D) rounds.

One-sided error: if every class is a CDS the test always passes; if some
class is not, the test fails w.h.p. (benchmark E11 measures the detection
probability under injected faults). All nodes end with a consistent
verdict.

The centralized twin is deterministic and exact (O(m·t) worst case),
matching the paper's ``O(m')``-steps domination test plus disjoint-set
connectivity.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional, Set, Tuple

import networkx as nx

from repro.errors import GraphValidationError
from repro.fastgraph import IndexedGraph, IntUnionFind
from repro.simulator.algorithms.exchange import exchange_once
from repro.simulator.algorithms.subgraph_flood import identify_components
from repro.simulator.metrics import SimulationMetrics
from repro.simulator.network import Network
from repro.simulator.runner import Model
from repro.utils.mathutil import whp_repeats
from repro.utils.rng import RngLike, ensure_rng


@dataclass
class CdsTestReport:
    """Verdict of a CDS-partition test."""

    passed: bool
    domination_ok: bool
    connectivity_ok: bool
    failing_classes: List[int]
    rounds: int = 0

    def __bool__(self) -> bool:
        return self.passed


def cds_partition_test_centralized(
    graph: nx.Graph, class_of: Dict[Hashable, int], n_classes: int
) -> CdsTestReport:
    """Deterministic exact test: is every class a CDS? (centralized twin).

    Runs on the :mod:`repro.fastgraph` kernel — node classes in a flat
    list, domination as set algebra over int adjacency, connectivity as
    one :class:`IntUnionFind` sweep over the edge array. O(m + n·t)
    with array constants, matching the paper's ``O(m')`` steps.
    """
    if set(class_of) != set(graph.nodes()):
        raise GraphValidationError("class_of must cover exactly the graph nodes")
    indexed = IndexedGraph.from_networkx(graph)
    cls = [class_of[node] for node in indexed.nodes]
    failing: Set[int] = set()
    all_classes = frozenset(range(n_classes))
    failing.update(all_classes.difference(cls))

    # Domination: every node must see every class in its closed neighborhood.
    domination_ok = True
    adjacency = indexed.neighbors()
    for x in range(indexed.n):
        seen = {cls[x]}
        seen.update(cls[y] for y in adjacency[x])
        missing = all_classes - seen
        if missing:
            failing |= missing
            domination_ok = False

    # Connectivity: one union-find sweep over same-class edges.
    uf = IntUnionFind(indexed.n)
    for a, b in zip(indexed.u, indexed.v):
        if cls[a] == cls[b]:
            uf.union(a, b)
    roots: Dict[int, int] = {}
    connectivity_ok = True
    for x in range(indexed.n):
        class_id = cls[x]
        root = uf.find(x)
        if class_id in roots and roots[class_id] != root:
            failing.add(class_id)
            connectivity_ok = False
        roots.setdefault(class_id, root)

    return CdsTestReport(
        passed=not failing,
        domination_ok=domination_ok,
        connectivity_ok=connectivity_ok,
        failing_classes=sorted(failing),
    )


def distributed_cds_partition_test(
    network: Network,
    class_of: Dict[Hashable, int],
    n_classes: int,
    rng: RngLike = None,
    detection_rounds: Optional[int] = None,
) -> CdsTestReport:
    """The randomized distributed test of Appendix E on the simulator.

    Chains the protocol's phases as simulator runs (round counts add up in
    the returned report): class exchange → domination check → component
    identification → component-id exchange → Θ(log n) random-class
    detection rounds. Failure flooding is accounted as one extra
    D-round phase when a failure exists (every node must learn it).
    """
    rand = ensure_rng(rng)
    graph = network.graph
    nodes = network.nodes
    metrics = SimulationMetrics()

    # Phase 1: everyone announces its class; check domination locally.
    heard, res = exchange_once(network, dict(class_of), model=Model.V_CONGEST)
    metrics.merge(res.metrics)
    domination_ok = True
    failing: Set[int] = set()
    for v in nodes:
        seen = {class_of[v]}
        seen.update(heard[v].values())
        for class_id in range(n_classes):
            if class_id not in seen:
                domination_ok = False
                failing.add(class_id)

    # Phase 2: component identification within each class (same-class
    # edges only — every node is in exactly one class, so one flood run
    # covers all classes simultaneously).
    adjacency = {
        v: {u for u in graph.neighbors(v) if class_of[u] == class_of[v]}
        for v in nodes
    }
    comp_of, res = identify_components(network, nodes, adjacency)
    metrics.merge(res.metrics)

    # Phase 3: one round of (class, component-id); then Θ(log n) random
    # detection rounds. known[v][i] is the component id v heard for class i.
    known: Dict[Hashable, Dict[int, int]] = {
        v: {class_of[v]: comp_of[v]} for v in nodes
    }
    connectivity_ok = True

    def _absorb(v: Hashable, class_id: int, comp_id: int) -> bool:
        """Record a heard component id; returns True iff conflict detected."""
        prev = known[v].get(class_id)
        if prev is None:
            known[v][class_id] = comp_id
            return False
        return prev != comp_id

    payloads = {v: (class_of[v], comp_of[v]) for v in nodes}
    heard, res = exchange_once(network, payloads, model=Model.V_CONGEST)
    metrics.merge(res.metrics)
    for v in nodes:
        for class_id, comp_id in heard[v].values():
            if _absorb(v, class_id, comp_id):
                connectivity_ok = False
                failing.add(class_id)

    repeats = (
        detection_rounds
        if detection_rounds is not None
        else 4 * whp_repeats(network.n)
    )
    for _ in range(repeats):
        payloads = {}
        for v in nodes:
            choices = list(known[v])
            class_id = choices[rand.randrange(len(choices))]
            payloads[v] = (class_id, known[v][class_id])
        heard, res = exchange_once(network, payloads, model=Model.V_CONGEST)
        metrics.merge(res.metrics)
        for v in nodes:
            for class_id, comp_id in heard[v].values():
                if _absorb(v, class_id, comp_id):
                    connectivity_ok = False
                    failing.add(class_id)

    rounds = metrics.rounds
    if failing:
        # Failure flooding: Θ(D) extra rounds so all verdicts agree.
        rounds += network.diameter()
    return CdsTestReport(
        passed=not failing,
        domination_ok=domination_ok,
        connectivity_ok=connectivity_ok,
        failing_classes=sorted(failing),
        rounds=rounds,
    )
