"""Pre-kernel MWU spanning packing, preserved as a correctness oracle.

This module is the original ``networkx``-object implementation of
Section 5's fractional spanning tree packing, exactly as it ran before
the :mod:`repro.fastgraph` rewrite of :mod:`repro.core.spanning_packing`.
It is kept for two jobs:

* **oracle** — the property tests assert that the kernel
  implementation returns bit-identical tree collections and weights
  under fixed seeds (``tests/test_fastgraph.py``);
* **baseline** — ``benchmarks/run_benchmarks`` times it against the
  kernel implementation and records the speedup in
  ``BENCH_spanning_packing.json``.

Do not optimize this module; its value is that it stays the slow,
obviously-faithful transliteration of the paper.
"""

from __future__ import annotations

import math
from typing import Dict, FrozenSet, Hashable, List, Optional, Tuple

import networkx as nx

from repro.errors import GraphValidationError, PackingConstructionError
from repro.core.spanning_packing import (
    MwuParameters,
    MwuTrace,
    SpanningPackingResult,
    _edges_to_tree,
)
from repro.core.tree_packing import SpanningTreePacking, WeightedTree
from repro.graphs.connectivity import edge_connectivity
from repro.graphs.sampling import choose_karger_parts, karger_edge_partition
from repro.utils.mathutil import ceil_div
from repro.utils.rng import RngLike, ensure_rng

Edge = FrozenSet[Hashable]


def _tree_edges(tree: nx.Graph) -> FrozenSet[Edge]:
    return frozenset(frozenset(e) for e in tree.edges())


def mwu_spanning_packing_reference(
    graph: nx.Graph,
    lam: Optional[int] = None,
    params: Optional[MwuParameters] = None,
) -> Tuple[List[Tuple[FrozenSet[Edge], float]], MwuTrace, int]:
    """The pre-kernel MWU core (Section 5.1), verbatim."""
    if not nx.is_connected(graph):
        raise GraphValidationError("MWU packing requires a connected graph")
    params = params or MwuParameters()
    n = graph.number_of_nodes()
    if lam is None:
        lam = edge_connectivity(graph)
    target = max(1, ceil_div(max(0, lam - 1), 2))
    alpha = params.alpha(n)
    beta = params.beta(n)
    epsilon = params.epsilon

    edges: List[Edge] = [frozenset(e) for e in graph.edges()]
    loads: Dict[Edge, float] = {e: 0.0 for e in edges}
    collection: Dict[FrozenSet[Edge], float] = {}

    first = nx.minimum_spanning_tree(graph)
    first_edges = _tree_edges(first)
    collection[first_edges] = 1.0
    for e in first_edges:
        loads[e] = 1.0

    trace = MwuTrace()
    cap = params.iteration_cap(n)
    for _ in range(cap):
        trace.iterations += 1
        z = {e: loads[e] * target for e in edges}
        z_max = max(z.values())
        trace.max_relative_load.append(z_max / target)
        if trace.iterations > 1 and z_max <= 1.0 + epsilon:
            trace.stopped_early = True
            break
        costs = {e: math.exp(alpha * (z[e] - z_max)) for e in edges}

        weighted = nx.Graph()
        weighted.add_nodes_from(graph.nodes())
        for e in edges:
            u, v = tuple(e)
            weighted.add_edge(u, v, cost=costs[e])
        mst = nx.minimum_spanning_tree(weighted, weight="cost")
        mst_edges = _tree_edges(mst)
        mst_cost = sum(costs[e] for e in mst_edges)
        fractional_cost = sum(costs[e] * loads[e] for e in edges)

        if mst_cost > (1.0 - epsilon) * fractional_cost:
            trace.stopped_early = True
            break
        for tree_key in collection:
            collection[tree_key] *= 1.0 - beta
        collection[mst_edges] = collection.get(mst_edges, 0.0) + beta
        for e in edges:
            loads[e] *= 1.0 - beta
        for e in mst_edges:
            loads[e] += beta

    max_load = max(loads[e] for e in edges if loads[e] > 0.0)
    scale = 1.0 / max_load
    normalized = [
        (tree_key, weight * scale)
        for tree_key, weight in collection.items()
        if weight * scale > 1e-12
    ]
    return normalized, trace, target


def fractional_spanning_tree_packing_reference(
    graph: nx.Graph,
    lam: Optional[int] = None,
    params: Optional[MwuParameters] = None,
    rng: RngLike = None,
) -> SpanningPackingResult:
    """The pre-kernel Theorem 1.3 construction, verbatim.

    Note this keeps the seed's redundant per-part
    ``edge_connectivity(part)`` oracle calls — part of what the current
    implementation fixed (the oracle result is implied by Karger's
    ``λ/η`` guarantee).
    """
    if graph.number_of_nodes() < 2:
        raise GraphValidationError("graph must have at least 2 nodes")
    if not nx.is_connected(graph):
        raise GraphValidationError("graph must be connected")
    params = params or MwuParameters()
    rand = ensure_rng(rng)
    n = graph.number_of_nodes()
    if lam is None:
        lam = edge_connectivity(graph)

    eta = choose_karger_parts(lam, n, params.epsilon)
    if eta <= 1:
        parts = [graph]
    else:
        parts = karger_edge_partition(graph, eta, rand)

    trees: List[WeightedTree] = []
    traces: List[MwuTrace] = []
    class_id = 0
    packed_parts = 0
    for part in parts:
        if part.number_of_edges() == 0 or not nx.is_connected(part):
            continue
        part_lam = edge_connectivity(part) if eta > 1 else lam
        normalized, trace, _ = mwu_spanning_packing_reference(
            part, part_lam, params
        )
        traces.append(trace)
        packed_parts += 1
        for tree_edges, weight in normalized:
            trees.append(
                WeightedTree(
                    tree=_edges_to_tree(graph, tree_edges),
                    weight=min(1.0, weight),
                    class_id=class_id,
                )
            )
            class_id += 1
    if not trees:
        raise PackingConstructionError(
            "no part produced spanning trees (graph too sparse for η parts?)"
        )
    packing = SpanningTreePacking(graph, trees)
    packing.verify()
    return SpanningPackingResult(
        packing=packing,
        lam=lam,
        target=max(1, ceil_div(max(0, lam - 1), 2)),
        parts=packed_parts,
        traces=traces,
    )
