"""The virtual graph G of Section 3.1, on the fastgraph kernel.

Each real node ``v`` simulates ``3L`` virtual nodes — one per
(layer ∈ 1..L, type ∈ {1,2,3}) pair — and two virtual nodes are adjacent
iff they live on the same real node or on adjacent real nodes
(footnote 5: G is just Θ(log n) reused copies of G).

Key structural fact exploited everywhere: because same-real virtual nodes
are adjacent, the connected components of the class-``i`` virtual subgraph
``G[V_i^ℓ]`` project exactly onto the connected components of the real
induced subgraph ``G[Ψ(V_i^ℓ)]``. The per-class bookkeeping therefore
tracks, per class, the *real* projection (with per-real virtual
multiplicities) plus a union-find over real nodes — the Appendix C data
structure — while :class:`VirtualGraph` records the full per-virtual-node
assignment needed by the distributed output requirements (Section 2) and
the Lemma 4.6 measurements.

Since the kernel port, the graph is canonicalized **once** at pipeline
entry into a :class:`CdsIndex` — integer node indices, flat adjacency in
``graph.neighbors()`` order (the order that pins nx-compatible traversal
and therefore bit-identity with the preserved reference in
:mod:`repro.core.cds_packing_reference`) — and every per-class structure
is an :class:`IndexedClassState`: multiplicities keyed by node index and
an :class:`~repro.fastgraph.IntUnionFind` over indices instead of the
label-dict :class:`~repro.graphs.union_find.UnionFind`. The label-level
API (``active_reals``, ``component_of``, ``real_classes``) survives at
the boundary; hot paths (:mod:`repro.core.bridging`,
:mod:`repro.core.cds_packing`) use the index view.

The pre-kernel :class:`ClassState` is kept verbatim below: it is the
building block of the preserved reference implementation and remains a
supported standalone container.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, List, NamedTuple, Optional, Set

import networkx as nx

from repro.errors import GraphValidationError
from repro.fastgraph import IndexedGraph, IntUnionFind
from repro.graphs.union_find import UnionFind
from repro.utils.mathutil import ceil_log2


class VirtualNode(NamedTuple):
    """A virtual node: (real node, layer in 1..L, type in {1,2,3})."""

    real: Hashable
    layer: int
    vtype: int


class CdsIndex:
    """Canonical integer view of a graph, shared by the CDS pipeline.

    Built once per construction (and reused across the Remark 3.1 guess
    loop); bundles the :class:`~repro.fastgraph.IndexedGraph`
    canonicalization with adjacency lists in ``graph.neighbors()`` order
    — the order every traversal below must follow to stay bit-identical
    to the pre-kernel implementation (nx subgraph/BFS iteration order is
    adjacency-insertion order, not edge-array order).
    """

    __slots__ = ("graph", "indexed", "nodes", "index_of", "adj", "n")

    def __init__(
        self, graph: nx.Graph, indexed: Optional[IndexedGraph] = None
    ) -> None:
        self.graph = graph
        if indexed is None:
            indexed = IndexedGraph.from_networkx(graph)
        elif indexed.n != graph.number_of_nodes() or (
            indexed.m != graph.number_of_edges()
        ):
            raise GraphValidationError(
                "prebuilt IndexedGraph does not match the graph"
            )
        self.indexed = indexed
        self.nodes: List[Hashable] = self.indexed.nodes
        self.index_of: Dict[Hashable, int] = self.indexed.index_of
        index_of = self.index_of
        self.adj: List[List[int]] = [
            [index_of[u] for u in graph.neighbors(v)] for v in self.nodes
        ]
        self.n = self.indexed.n


@dataclass
class ClassState:
    """Per-class projection bookkeeping, label-keyed (pre-kernel form).

    ``multiplicity[v]`` counts how many virtual nodes of real node ``v``
    have joined the class so far; ``components`` is a union-find over the
    active reals, mirroring the disjoint-set structures of Appendix C.
    Kept verbatim for the preserved reference pipeline
    (:mod:`repro.core.cds_packing_reference`) and standalone use; the
    kernel-backed :class:`VirtualGraph` uses :class:`IndexedClassState`.
    """

    class_id: int
    multiplicity: Dict[Hashable, int] = field(default_factory=dict)
    components: UnionFind = field(default_factory=UnionFind)

    @property
    def active_reals(self) -> Set[Hashable]:
        return set(self.multiplicity)

    def is_active(self, real: Hashable) -> bool:
        return real in self.multiplicity

    def component_of(self, real: Hashable) -> Hashable:
        """Representative of the component containing active real ``real``."""
        return self.components.find(real)

    def n_components(self) -> int:
        return self.components.n_components

    def excess_components(self) -> int:
        """``max(0, N_i − 1)`` — this class's contribution to M_ℓ."""
        return max(0, self.components.n_components - 1)

    def virtual_count(self) -> int:
        """Number of virtual nodes in the class (Lemma 4.6 measures this)."""
        return sum(self.multiplicity.values())

    def add_real(self, graph: nx.Graph, real: Hashable) -> None:
        """Account one more virtual node of ``real`` joining the class,
        merging components through every active neighbor."""
        if real in self.multiplicity:
            self.multiplicity[real] += 1
            return
        self.multiplicity[real] = 1
        self.components.add(real)
        for neighbor in graph.neighbors(real):
            if neighbor in self.multiplicity:
                self.components.union(real, neighbor)


class IndexedClassState:
    """Per-class projection bookkeeping on integer node indices.

    The union-find is an :class:`~repro.fastgraph.IntUnionFind` over all
    ``n`` indices; since inactive indices stay singletons, the class's
    component count is ``|active| − merges`` rather than the forest's
    global count. Exposes both the index-side hot-path API (``find``,
    ``is_active_index``, ``multiplicity_by_index``) and the label-level
    accessors of the pre-kernel :class:`ClassState`.
    """

    __slots__ = ("class_id", "_index", "multiplicity_by_index", "_uf",
                 "_active", "_merges")

    def __init__(self, class_id: int, index: CdsIndex) -> None:
        self.class_id = class_id
        self._index = index
        # node index -> number of virtual nodes joined (insertion order
        # = join order, matching the reference's dict bookkeeping).
        self.multiplicity_by_index: Dict[int, int] = {}
        self._uf = IntUnionFind(index.n)
        self._active = 0
        self._merges = 0

    # -- index-side hot-path API --------------------------------------

    def add_index(self, i: int) -> None:
        """One more virtual node of index ``i`` joins; merge through
        every active neighbor (in adjacency order)."""
        mult = self.multiplicity_by_index
        if i in mult:
            mult[i] += 1
            return
        mult[i] = 1
        self._active += 1
        uf = self._uf
        for j in self._index.adj[i]:
            if j in mult and uf.union(i, j):
                self._merges += 1

    def is_active_index(self, i: int) -> bool:
        return i in self.multiplicity_by_index

    def find(self, i: int) -> int:
        """Component representative (index) of active index ``i``."""
        return self._uf.find(i)

    # -- label-level API (pre-kernel compatible) -----------------------

    @property
    def multiplicity(self) -> Dict[Hashable, int]:
        """Label-keyed multiplicities (materialized view)."""
        nodes = self._index.nodes
        return {nodes[i]: c for i, c in self.multiplicity_by_index.items()}

    @property
    def active_reals(self) -> Set[Hashable]:
        nodes = self._index.nodes
        return {nodes[i] for i in self.multiplicity_by_index}

    def is_active(self, real: Hashable) -> bool:
        return self._index.index_of[real] in self.multiplicity_by_index

    def component_of(self, real: Hashable) -> Hashable:
        """Representative *label* of the component containing ``real``."""
        return self._index.nodes[self._uf.find(self._index.index_of[real])]

    def n_components(self) -> int:
        return self._active - self._merges

    def excess_components(self) -> int:
        """``max(0, N_i − 1)`` — this class's contribution to M_ℓ."""
        return max(0, self._active - self._merges - 1)

    def virtual_count(self) -> int:
        """Number of virtual nodes in the class (Lemma 4.6 measures this)."""
        return sum(self.multiplicity_by_index.values())


class VirtualGraph:
    """Assignment record for all virtual nodes plus per-class projections.

    ``index`` lets callers share one :class:`CdsIndex` canonicalization
    across repeated constructions (the Remark 3.1 guess loop builds a
    fresh ``VirtualGraph`` per attempt on the same graph).
    """

    def __init__(
        self,
        graph: nx.Graph,
        layers: int,
        n_classes: int,
        index: Optional[CdsIndex] = None,
    ) -> None:
        if layers < 2 or layers % 2 != 0:
            raise GraphValidationError("layers must be an even number >= 2")
        if n_classes < 1:
            raise GraphValidationError("n_classes must be >= 1")
        self.graph = graph
        self.index = index if index is not None else CdsIndex(graph)
        self.layers = layers
        self.n_classes = n_classes
        self.assignment: Dict[VirtualNode, int] = {}
        self.classes: List[IndexedClassState] = [
            IndexedClassState(i, self.index) for i in range(n_classes)
        ]
        # real node -> set of classes it is active in (inverse projection,
        # needed to enumerate a new node's candidate components quickly);
        # real_classes_at is the same sets by node index (shared objects).
        self.real_classes: Dict[Hashable, Set[int]] = {
            v: set() for v in self.index.nodes
        }
        self.real_classes_at: List[Set[int]] = [
            self.real_classes[v] for v in self.index.nodes
        ]

    def assign(self, vnode: VirtualNode, class_id: int) -> None:
        """Put ``vnode`` into class ``class_id`` and update the projection."""
        self.assign_at(
            self.index.index_of[vnode.real], vnode.layer, vnode.vtype, class_id
        )

    def assign_at(self, i: int, layer: int, vtype: int, class_id: int) -> None:
        """Index-side :meth:`assign` (hot path of the recursion)."""
        vnode = VirtualNode(self.index.nodes[i], layer, vtype)
        if vnode in self.assignment:
            raise GraphValidationError(f"virtual node {vnode} already assigned")
        if not 0 <= class_id < self.n_classes:
            raise GraphValidationError(f"class id {class_id} out of range")
        self.assignment[vnode] = class_id
        self.classes[class_id].add_index(i)
        self.real_classes_at[i].add(class_id)

    def class_of(self, vnode: VirtualNode) -> Optional[int]:
        return self.assignment.get(vnode)

    def excess_components(self) -> int:
        """M_ℓ = Σ_i max(0, N_i − 1) over all classes (Section 3.1)."""
        return sum(state.excess_components() for state in self.classes)

    def projected_class_sets(self) -> List[Set[Hashable]]:
        """Ψ(V_i) for each class: real nodes with ≥ 1 virtual node in it."""
        return [state.active_reals for state in self.classes]

    def classes_per_real(self) -> Dict[Hashable, int]:
        """Number of distinct classes each real node participates in.

        Bounded by 3·layers = O(log n) by construction — this is the
        O(log n) tree-membership bound of Theorem 1.1.
        """
        return {v: len(s) for v, s in self.real_classes.items()}

    def virtual_counts_per_class(self) -> List[int]:
        """Virtual node count per class (Lemma 4.6: O(n log n / k))."""
        return [state.virtual_count() for state in self.classes]


def default_layer_count(n: int, factor: int = 2, minimum: int = 4) -> int:
    """L = Θ(log n), even, at least ``minimum``."""
    layers = max(minimum, factor * max(1, ceil_log2(max(2, n))))
    return layers + (layers % 2)
