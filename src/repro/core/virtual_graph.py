"""The virtual graph G of Section 3.1.

Each real node ``v`` simulates ``3L`` virtual nodes — one per
(layer ∈ 1..L, type ∈ {1,2,3}) pair — and two virtual nodes are adjacent
iff they live on the same real node or on adjacent real nodes
(footnote 5: G is just Θ(log n) reused copies of G).

Key structural fact exploited everywhere: because same-real virtual nodes
are adjacent, the connected components of the class-``i`` virtual subgraph
``G[V_i^ℓ]`` project exactly onto the connected components of the real
induced subgraph ``G[Ψ(V_i^ℓ)]``. The :class:`ClassState` bookkeeping
therefore tracks, per class, the *real* projection (with per-real virtual
multiplicities) plus a union-find over real nodes — the Appendix C data
structure — while :class:`VirtualGraph` records the full per-virtual-node
assignment needed by the distributed output requirements (Section 2) and
the Lemma 4.6 measurements.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, List, NamedTuple, Optional, Set, Tuple

import networkx as nx

from repro.errors import GraphValidationError
from repro.graphs.union_find import UnionFind
from repro.utils.mathutil import ceil_log2


class VirtualNode(NamedTuple):
    """A virtual node: (real node, layer in 1..L, type in {1,2,3})."""

    real: Hashable
    layer: int
    vtype: int


@dataclass
class ClassState:
    """Per-class projection bookkeeping (one instance per class i).

    ``multiplicity[v]`` counts how many virtual nodes of real node ``v``
    have joined the class so far; ``components`` is a union-find over the
    active reals, mirroring the disjoint-set structures of Appendix C.
    """

    class_id: int
    multiplicity: Dict[Hashable, int] = field(default_factory=dict)
    components: UnionFind = field(default_factory=UnionFind)

    @property
    def active_reals(self) -> Set[Hashable]:
        return set(self.multiplicity)

    def is_active(self, real: Hashable) -> bool:
        return real in self.multiplicity

    def component_of(self, real: Hashable) -> Hashable:
        """Representative of the component containing active real ``real``."""
        return self.components.find(real)

    def n_components(self) -> int:
        return self.components.n_components

    def excess_components(self) -> int:
        """``max(0, N_i − 1)`` — this class's contribution to M_ℓ."""
        return max(0, self.components.n_components - 1)

    def virtual_count(self) -> int:
        """Number of virtual nodes in the class (Lemma 4.6 measures this)."""
        return sum(self.multiplicity.values())

    def add_real(self, graph: nx.Graph, real: Hashable) -> None:
        """Account one more virtual node of ``real`` joining the class,
        merging components through every active neighbor."""
        if real in self.multiplicity:
            self.multiplicity[real] += 1
            return
        self.multiplicity[real] = 1
        self.components.add(real)
        for neighbor in graph.neighbors(real):
            if neighbor in self.multiplicity:
                self.components.union(real, neighbor)


class VirtualGraph:
    """Assignment record for all virtual nodes plus per-class projections."""

    def __init__(self, graph: nx.Graph, layers: int, n_classes: int) -> None:
        if layers < 2 or layers % 2 != 0:
            raise GraphValidationError("layers must be an even number >= 2")
        if n_classes < 1:
            raise GraphValidationError("n_classes must be >= 1")
        self.graph = graph
        self.layers = layers
        self.n_classes = n_classes
        self.assignment: Dict[VirtualNode, int] = {}
        self.classes: List[ClassState] = [
            ClassState(class_id=i) for i in range(n_classes)
        ]
        # real node -> set of classes it is active in (inverse projection,
        # needed to enumerate a new node's candidate components quickly).
        self.real_classes: Dict[Hashable, Set[int]] = {
            v: set() for v in graph.nodes()
        }

    def assign(self, vnode: VirtualNode, class_id: int) -> None:
        """Put ``vnode`` into class ``class_id`` and update the projection."""
        if vnode in self.assignment:
            raise GraphValidationError(f"virtual node {vnode} already assigned")
        if not 0 <= class_id < self.n_classes:
            raise GraphValidationError(f"class id {class_id} out of range")
        self.assignment[vnode] = class_id
        self.classes[class_id].add_real(self.graph, vnode.real)
        self.real_classes[vnode.real].add(class_id)

    def class_of(self, vnode: VirtualNode) -> Optional[int]:
        return self.assignment.get(vnode)

    def excess_components(self) -> int:
        """M_ℓ = Σ_i max(0, N_i − 1) over all classes (Section 3.1)."""
        return sum(state.excess_components() for state in self.classes)

    def projected_class_sets(self) -> List[Set[Hashable]]:
        """Ψ(V_i) for each class: real nodes with ≥ 1 virtual node in it."""
        return [state.active_reals for state in self.classes]

    def classes_per_real(self) -> Dict[Hashable, int]:
        """Number of distinct classes each real node participates in.

        Bounded by 3·layers = O(log n) by construction — this is the
        O(log n) tree-membership bound of Theorem 1.1.
        """
        counts: Dict[Hashable, Set[int]] = {v: set() for v in self.graph.nodes()}
        for vnode, class_id in self.assignment.items():
            counts[vnode.real].add(class_id)
        return {v: len(s) for v, s in counts.items()}

    def virtual_counts_per_class(self) -> List[int]:
        """Virtual node count per class (Lemma 4.6: O(n log n / k))."""
        return [state.virtual_count() for state in self.classes]


def default_layer_count(n: int, factor: int = 2, minimum: int = 4) -> int:
    """L = Θ(log n), even, at least ``minimum``."""
    layers = max(minimum, factor * max(1, ceil_log2(max(2, n))))
    return layers + (layers % 2)
