"""Distributed integral spanning tree packing (§1.2, "Integral Tree
Packings" paragraph).

The paper notes that "a considerably simpler variant of the algorithm of
Theorem 1.3 can be adapted to produce a spanning tree packing of size
``Ω(λ / log n)``, with a similar ``Õ(D + √(λn))`` round complexity":
split the edges into ``η = Θ(λ / log n)`` random parts (each part stays
connected w.h.p. by Karger sampling) and build one spanning tree per
part — no MWU iterations needed, because any spanning tree of a part is
a valid packing member.

This module runs that variant *distributedly* on the simulator: the
random edge partition is a zero-round local coin flip per edge (each
edge's smaller-id endpoint draws the part and tells the other endpoint
in one round), and the η spanning trees are computed simultaneously
with the Lemma 5.1 composition
(:func:`~repro.simulator.algorithms.shared_mst.simultaneous_msts`) —
parallel in-part Borůvka plus one shared pipelined completion.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional

import networkx as nx

from repro.core.tree_packing import SpanningTreePacking, WeightedTree
from repro.errors import GraphValidationError, PackingConstructionError
from repro.graphs.connectivity import edge_connectivity
from repro.graphs.sampling import karger_edge_partition
from repro.simulator.algorithms.shared_mst import (
    SharedMstResult,
    simultaneous_msts,
)
from repro.simulator.network import Network
from repro.utils.rng import RngLike, ensure_rng


@dataclass
class DistributedIntegralSpanningResult:
    """An integral packing plus the distributed round accounting."""

    packing: SpanningTreePacking
    parts: int
    connected_parts: int
    mst_rounds: SharedMstResult

    @property
    def size(self) -> int:
        return len(self.packing.trees)

    @property
    def total_rounds(self) -> int:
        # +1: the edge-partition announcement round.
        return 1 + self.mst_rounds.total_rounds


def distributed_integral_spanning_packing(
    graph: nx.Graph,
    lam: Optional[int] = None,
    parts_factor: float = 0.5,
    local_phases: int = 2,
    rng: RngLike = None,
) -> DistributedIntegralSpanningResult:
    """Edge-disjoint spanning trees, one per Karger part, distributedly.

    ``lam`` is the edge connectivity (computed exactly when omitted —
    the distributed algorithm would use the Ghaffari–Kuhn 3-approximation
    here, see DESIGN.md §2). Parts that lose connectivity to sampling
    are dropped, exactly as in the centralized twin
    (:func:`repro.core.integral_packing.integral_spanning_packing`);
    the achieved size is the experiment's measurement.
    """
    if graph.number_of_nodes() < 2 or not nx.is_connected(graph):
        raise GraphValidationError("graph must be connected with >= 2 nodes")
    if parts_factor <= 0:
        raise GraphValidationError("parts_factor must be positive")
    rand = ensure_rng(rng)
    if lam is None:
        lam = edge_connectivity(graph)
    n = graph.number_of_nodes()
    parts = max(1, int(parts_factor * lam / math.log(max(n, 2))))
    subgraphs = karger_edge_partition(graph, parts, rand)

    network = Network(graph, rng=rand)
    mst_result = simultaneous_msts(
        network, subgraphs, local_phases=local_phases
    )

    trees: List[WeightedTree] = []
    connected = 0
    for index, (part, edges) in enumerate(zip(subgraphs, mst_result.forests)):
        if len(edges) != n - 1:
            continue  # part was disconnected; its forest cannot span
        connected += 1
        tree = nx.Graph()
        tree.add_nodes_from(graph.nodes())
        tree.add_edges_from(tuple(e) for e in edges)
        trees.append(WeightedTree(tree=tree, weight=1.0, class_id=index))
    if not trees:
        raise PackingConstructionError(
            "no part stayed connected; λ too small for the requested split"
        )
    packing = SpanningTreePacking(graph, trees)
    packing.verify()
    if not packing.is_edge_disjoint():
        raise PackingConstructionError(
            "internal error: edge partition produced overlapping trees"
        )
    return DistributedIntegralSpanningResult(
        packing=packing,
        parts=parts,
        connected_parts=connected,
        mst_rounds=mst_result,
    )
