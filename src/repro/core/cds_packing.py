"""Fractional CDS / dominating tree packing — centralized driver.

This is Theorem 1.2: an ``Õ(m)`` algorithm producing ``Ω(k)`` connected
dominating sets such that each node is in ``O(log n)`` of them, i.e. a
fractional dominating tree packing of size ``Ω(k / log n)``.

Pipeline (Section 3.1):

1. build the virtual graph with ``L = Θ(log n)`` layers and ``t = Θ(k)``
   classes;
2. jump-start layers ``1..L/2`` randomly (domination, Lemma 4.1);
3. recursively assign layers ``L/2+1..L`` via the bridging graph and a
   maximal matching (connectivity, Lemma 4.4);
4. project classes onto the real graph, turn each CDS into a dominating
   tree (the paper uses a 0/1-weight MST; a per-class BFS spanning tree is
   the same object), and weight trees uniformly at ``1 / max-load`` so the
   vertex capacity 1 is met exactly.

The w.h.p. guarantees require large ``n``; as the paper's Remark 3.1
prescribes, every produced class is *tested* (domination + connectivity)
and the driver retries with fewer classes until the packing verifies, so
the function always returns a valid packing (or raises
:class:`~repro.errors.PackingConstructionError`).

When ``k`` is unknown, :func:`fractional_cds_packing` runs the try-and-error
guessing of Remark 3.1 over ``k ∈ {n/2, n/4, ...}``, accepting the first
guess for which at least half the classes pass the test.

Implementation: the whole pipeline runs on the :mod:`repro.fastgraph`
kernel. The graph is canonicalized **once** at entry into a
:class:`~repro.core.virtual_graph.CdsIndex` (and shared across the guess
loop's repeated constructions); the recursion maintains per-class
:class:`~repro.fastgraph.IntUnionFind` projections
(:mod:`repro.core.bridging`); class validity — domination plus induced
connectivity — is decided on flat index arrays (connectivity is a single
component-count read off the union-find, domination one adjacency scan);
and the per-class BFS dominating trees are extracted index-side,
replicating ``nx.bfs_tree``'s traversal order, before becoming
:class:`networkx.Graph` objects at the API boundary. Results are
bit-identical to the preserved pre-kernel implementation
(:mod:`repro.core.cds_packing_reference`) under fixed seeds —
``tests/test_cds_equivalence.py`` enforces this and
``BENCH_cds_packing.json`` records the speedup.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import networkx as nx

from repro.errors import (
    GraphValidationError,
    PackingConstructionError,
    PackingValidationError,
)
from repro.core.bridging import LayerStats, run_recursion
from repro.core.tree_packing import (
    _TOLERANCE,
    DominatingTreePacking,
    WeightedTree,
)
from repro.core.virtual_graph import CdsIndex, VirtualGraph, default_layer_count
from repro.utils.rng import RngLike, ensure_rng


@dataclass(frozen=True)
class PackingParameters:
    """Tunable constants hidden inside the paper's Θ(·) notation."""

    class_factor: float = 0.5  # t = max(1, round(class_factor · k))
    layer_factor: int = 2      # L = layer_factor · ⌈log₂ n⌉ (even, ≥ min_layers)
    min_layers: int = 4
    max_attempts: int = 5      # halvings of t before giving up
    accept_fraction: float = 0.5  # guess accepted if ≥ this fraction valid

    def n_classes(self, k_guess: int) -> int:
        return max(1, round(self.class_factor * k_guess))

    def n_layers(self, n: int) -> int:
        return default_layer_count(
            n, factor=self.layer_factor, minimum=self.min_layers
        )


@dataclass
class CdsPackingResult:
    """Everything a caller (or experiment) may want from one construction."""

    packing: DominatingTreePacking
    virtual_graph: VirtualGraph
    valid_classes: List[int]
    layer_history: List[LayerStats]
    k_guess: int
    t_requested: int
    t_used: int
    attempts: int

    @property
    def size(self) -> float:
        return self.packing.size


def build_cds_classes(
    graph: nx.Graph,
    n_classes: int,
    n_layers: int,
    rng: RngLike = None,
    index: Optional[CdsIndex] = None,
) -> Tuple[VirtualGraph, List[LayerStats]]:
    """Run the full recursive class assignment; returns the raw classes.

    This is the algorithm of Section 3.1 without the testing/retry wrapper;
    exposed separately for the analysis experiments (E8, E9, E10) that need
    the un-filtered trajectory. ``index`` shares one canonicalization
    across repeated constructions.
    """
    vg = VirtualGraph(graph, layers=n_layers, n_classes=n_classes, index=index)
    history = run_recursion(vg, rng)
    return vg, history


def _valid_class_ids(graph: nx.Graph, vg: VirtualGraph) -> List[int]:
    """Classes whose real projection is a CDS (the Appendix E criteria).

    Index-side: induced connectivity is one component-count read off the
    class union-find (the projection's components are exactly what it
    tracks); domination is a single adjacency scan over non-members.
    """
    index = vg.index
    adj = index.adj
    n = index.n
    member = bytearray(n)
    valid = []
    for state in vg.classes:
        mult = state.multiplicity_by_index
        if not mult or state.n_components() != 1:
            continue
        for i in mult:
            member[i] = 1
        dominated = True
        for j in range(n):
            if member[j]:
                continue
            for u in adj[j]:
                if member[u]:
                    break
            else:
                dominated = False
                break
        for i in mult:
            member[i] = 0
        if dominated:
            valid.append(state.class_id)
    return valid


def _bfs_tree_indices(
    adj: List[List[int]], member: bytearray, root: int, n_members: int
) -> List[Tuple[int, int]]:
    """BFS tree edges over the members, in nx traversal order.

    Visits neighbors in adjacency order from ``root`` — exactly the
    traversal ``nx.bfs_tree(graph.subgraph(members), root)`` performs —
    so the extracted dominating tree matches the reference's
    :func:`~repro.core.tree_packing.spanning_tree_of` edge for edge.
    """
    visited = bytearray(len(member))
    visited[root] = 1
    queue = deque([root])
    edges: List[Tuple[int, int]] = []
    while queue:
        a = queue.popleft()
        for b in adj[a]:
            if member[b] and not visited[b]:
                visited[b] = 1
                edges.append((a, b))
                queue.append(b)
    if len(edges) != n_members - 1:
        raise PackingValidationError(
            "node set does not induce a connected graph"
        )
    return edges


def _members_tree_graph(
    index: CdsIndex, members: Sequence[int], edges: List[Tuple[int, int]]
) -> nx.Graph:
    """A labeled tree graph on exactly ``members`` (ascending index order
    = graph node order, the order the reference's subgraph view reports).

    Materialization runs once per *valid class*, not in the per-layer
    sweep, so the supported networkx API is fast enough here.
    """
    tree = nx.Graph()
    nodes = index.nodes
    tree.add_nodes_from(nodes[i] for i in members)
    tree.add_edges_from((nodes[a], nodes[b]) for a, b in edges)
    return tree


def _packing_from_classes(
    graph: nx.Graph, vg: VirtualGraph, class_ids: Sequence[int]
) -> DominatingTreePacking:
    """Project classes to CDSs and weight the resulting dominating trees.

    Per-class weight ``w_i = 1 / max_{v ∈ S_i} load(v)`` where ``load(v)``
    counts the valid classes containing ``v``. This is always feasible —
    at any node ``v``, ``Σ_{i ∋ v} w_i ≤ Σ_{i ∋ v} 1/load(v) = 1`` — and
    dominates the uniform ``1/max-load`` weighting, tightening the
    achieved Ω(k / log n) size. Trees are per-class BFS spanning trees of
    the CDS (the same object as the paper's 0/1-weight MST trick).

    Index-side verification happens here: domination and induced
    connectivity of every class were established by
    :func:`_valid_class_ids`, the BFS guarantees each tree spans its
    class, and the per-vertex load bound is checked below on flat
    arrays — the same constraints
    :meth:`~repro.core.tree_packing.DominatingTreePacking.verify` checks
    on the nx objects.
    """
    index = vg.index
    adj = index.adj
    n = index.n
    class_members: Dict[int, List[int]] = {
        class_id: sorted(vg.classes[class_id].multiplicity_by_index)
        for class_id in class_ids
    }
    load = [0] * n
    for members in class_members.values():
        for i in members:
            load[i] += 1
    member = bytearray(n)
    vertex_load = [0.0] * n
    weighted = []
    for class_id, members in class_members.items():
        for i in members:
            member[i] = 1
        edges = _bfs_tree_indices(adj, member, members[0], len(members))
        for i in members:
            member[i] = 0
        class_max_load = max(load[i] for i in members)
        weight = 1.0 / max(1, class_max_load)
        for i in members:
            vertex_load[i] += weight
        weighted.append(
            WeightedTree(
                tree=_members_tree_graph(index, members, edges),
                weight=weight,
                class_id=class_id,
            )
        )
    max_load = max(vertex_load, default=0.0)
    if max_load > 1.0 + _TOLERANCE:
        raise PackingValidationError(
            f"vertex capacity violated: max node load {max_load} > 1"
        )
    return DominatingTreePacking(graph, weighted)


def construct_cds_packing(
    graph: nx.Graph,
    k_guess: int,
    params: Optional[PackingParameters] = None,
    rng: RngLike = None,
    index: Optional[CdsIndex] = None,
) -> CdsPackingResult:
    """Build a packing for a known (2-approximate) connectivity guess.

    Retries with halved class counts when too few classes verify — the
    library-level guarantee is that the returned packing is always valid
    (the defining constraints are re-checked index-side during
    construction). ``index`` shares a prebuilt canonicalization.
    """
    if graph.number_of_nodes() < 2:
        raise GraphValidationError("graph must have at least 2 nodes")
    if not nx.is_connected(graph):
        raise GraphValidationError("graph must be connected")
    if k_guess < 1:
        raise GraphValidationError("k_guess must be >= 1")
    params = params or PackingParameters()
    rand = ensure_rng(rng)
    if index is None:
        index = CdsIndex(graph)

    t_requested = params.n_classes(k_guess)
    n_layers = params.n_layers(graph.number_of_nodes())
    t = t_requested
    for attempt in range(1, params.max_attempts + 1):
        vg, history = build_cds_classes(graph, t, n_layers, rand, index=index)
        valid = _valid_class_ids(graph, vg)
        if valid:
            packing = _packing_from_classes(graph, vg, valid)
            return CdsPackingResult(
                packing=packing,
                virtual_graph=vg,
                valid_classes=valid,
                layer_history=history,
                k_guess=k_guess,
                t_requested=t_requested,
                t_used=t,
                attempts=attempt,
            )
        if t == 1:
            break
        t = max(1, t // 2)
    raise PackingConstructionError(
        f"no valid CDS classes after {params.max_attempts} attempts "
        f"(k_guess={k_guess}); is the graph connected and non-trivial?"
    )


def fractional_cds_packing(
    graph: nx.Graph,
    k: Optional[int] = None,
    params: Optional[PackingParameters] = None,
    rng: RngLike = None,
    index: Optional[CdsIndex] = None,
) -> CdsPackingResult:
    """Fractional dominating tree packing (Theorems 1.1/1.2 object).

    ``k`` is an optional 2-approximation of the vertex connectivity; when
    omitted, the try-and-error guessing of Remark 3.1 finds a suitable
    scale: guesses ``n/2, n/4, …`` are tried until at least an
    ``accept_fraction`` of the classes pass the CDS test. The graph is
    canonicalized once and the :class:`CdsIndex` shared across guesses.
    """
    params = params or PackingParameters()
    rand = ensure_rng(rng)
    if index is None:
        index = CdsIndex(graph)
    if k is not None:
        return construct_cds_packing(graph, k, params, rand, index=index)

    n = graph.number_of_nodes()
    guess = max(1, n // 2)
    best: Optional[CdsPackingResult] = None
    while True:
        try:
            result = construct_cds_packing(graph, guess, params, rand, index=index)
        except PackingConstructionError:
            result = None
        if result is not None:
            if best is None or result.size > best.size:
                best = result
            accepted = (
                len(result.valid_classes)
                >= params.accept_fraction * result.t_requested
                and result.t_used == result.t_requested
            )
            if accepted:
                return result
        if guess == 1:
            break
        guess //= 2
    if best is not None:
        return best
    raise PackingConstructionError(
        "try-and-error guessing failed for every scale"
    )
