"""Fractional CDS / dominating tree packing — centralized driver.

This is Theorem 1.2: an ``Õ(m)`` algorithm producing ``Ω(k)`` connected
dominating sets such that each node is in ``O(log n)`` of them, i.e. a
fractional dominating tree packing of size ``Ω(k / log n)``.

Pipeline (Section 3.1):

1. build the virtual graph with ``L = Θ(log n)`` layers and ``t = Θ(k)``
   classes;
2. jump-start layers ``1..L/2`` randomly (domination, Lemma 4.1);
3. recursively assign layers ``L/2+1..L`` via the bridging graph and a
   maximal matching (connectivity, Lemma 4.4);
4. project classes onto the real graph, turn each CDS into a dominating
   tree (the paper uses a 0/1-weight MST; a per-class BFS spanning tree is
   the same object), and weight trees uniformly at ``1 / max-load`` so the
   vertex capacity 1 is met exactly.

The w.h.p. guarantees require large ``n``; as the paper's Remark 3.1
prescribes, every produced class is *tested* (domination + connectivity)
and the driver retries with fewer classes until the packing verifies, so
the function always returns a valid packing (or raises
:class:`~repro.errors.PackingConstructionError`).

When ``k`` is unknown, :func:`fractional_cds_packing` runs the try-and-error
guessing of Remark 3.1 over ``k ∈ {n/2, n/4, ...}``, accepting the first
guess for which at least half the classes pass the test.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Hashable, List, Optional, Sequence, Set, Tuple

import networkx as nx

from repro.errors import GraphValidationError, PackingConstructionError
from repro.core.bridging import LayerStats, run_recursion
from repro.core.tree_packing import (
    DominatingTreePacking,
    WeightedTree,
    spanning_tree_of,
)
from repro.core.virtual_graph import VirtualGraph, default_layer_count
from repro.graphs.connectivity import is_connected_dominating_set
from repro.utils.rng import RngLike, ensure_rng


@dataclass(frozen=True)
class PackingParameters:
    """Tunable constants hidden inside the paper's Θ(·) notation."""

    class_factor: float = 0.5  # t = max(1, round(class_factor · k))
    layer_factor: int = 2      # L = layer_factor · ⌈log₂ n⌉ (even, ≥ min_layers)
    min_layers: int = 4
    max_attempts: int = 5      # halvings of t before giving up
    accept_fraction: float = 0.5  # guess accepted if ≥ this fraction valid

    def n_classes(self, k_guess: int) -> int:
        return max(1, round(self.class_factor * k_guess))

    def n_layers(self, n: int) -> int:
        return default_layer_count(
            n, factor=self.layer_factor, minimum=self.min_layers
        )


@dataclass
class CdsPackingResult:
    """Everything a caller (or experiment) may want from one construction."""

    packing: DominatingTreePacking
    virtual_graph: VirtualGraph
    valid_classes: List[int]
    layer_history: List[LayerStats]
    k_guess: int
    t_requested: int
    t_used: int
    attempts: int

    @property
    def size(self) -> float:
        return self.packing.size


def build_cds_classes(
    graph: nx.Graph,
    n_classes: int,
    n_layers: int,
    rng: RngLike = None,
) -> Tuple[VirtualGraph, List[LayerStats]]:
    """Run the full recursive class assignment; returns the raw classes.

    This is the algorithm of Section 3.1 without the testing/retry wrapper;
    exposed separately for the analysis experiments (E8, E9, E10) that need
    the un-filtered trajectory.
    """
    vg = VirtualGraph(graph, layers=n_layers, n_classes=n_classes)
    history = run_recursion(vg, rng)
    return vg, history


def _valid_class_ids(graph: nx.Graph, vg: VirtualGraph) -> List[int]:
    """Classes whose real projection is a CDS (the Appendix E criteria)."""
    valid = []
    for state in vg.classes:
        members = state.active_reals
        if members and is_connected_dominating_set(graph, members):
            valid.append(state.class_id)
    return valid


def _packing_from_classes(
    graph: nx.Graph, vg: VirtualGraph, class_ids: Sequence[int]
) -> DominatingTreePacking:
    """Project classes to CDSs and weight the resulting dominating trees.

    Per-class weight ``w_i = 1 / max_{v ∈ S_i} load(v)`` where ``load(v)``
    counts the valid classes containing ``v``. This is always feasible —
    at any node ``v``, ``Σ_{i ∋ v} w_i ≤ Σ_{i ∋ v} 1/load(v) = 1`` — and
    dominates the uniform ``1/max-load`` weighting, tightening the
    achieved Ω(k / log n) size. Trees are per-class BFS spanning trees of
    the CDS (the same object as the paper's 0/1-weight MST trick).
    """
    class_nodes = {
        class_id: vg.classes[class_id].active_reals for class_id in class_ids
    }
    membership: dict = {v: 0 for v in graph.nodes()}
    for members in class_nodes.values():
        for v in members:
            membership[v] += 1
    weighted = []
    for class_id, members in class_nodes.items():
        tree = spanning_tree_of(graph, members)
        class_max_load = max(membership[v] for v in members)
        weighted.append(
            WeightedTree(
                tree=tree,
                weight=1.0 / max(1, class_max_load),
                class_id=class_id,
            )
        )
    return DominatingTreePacking(graph, weighted)


def construct_cds_packing(
    graph: nx.Graph,
    k_guess: int,
    params: Optional[PackingParameters] = None,
    rng: RngLike = None,
) -> CdsPackingResult:
    """Build a packing for a known (2-approximate) connectivity guess.

    Retries with halved class counts when too few classes verify — the
    library-level guarantee is that the returned packing is always valid.
    """
    if graph.number_of_nodes() < 2:
        raise GraphValidationError("graph must have at least 2 nodes")
    if not nx.is_connected(graph):
        raise GraphValidationError("graph must be connected")
    if k_guess < 1:
        raise GraphValidationError("k_guess must be >= 1")
    params = params or PackingParameters()
    rand = ensure_rng(rng)

    t_requested = params.n_classes(k_guess)
    n_layers = params.n_layers(graph.number_of_nodes())
    t = t_requested
    for attempt in range(1, params.max_attempts + 1):
        vg, history = build_cds_classes(graph, t, n_layers, rand)
        valid = _valid_class_ids(graph, vg)
        if valid:
            packing = _packing_from_classes(graph, vg, valid)
            packing.verify()
            return CdsPackingResult(
                packing=packing,
                virtual_graph=vg,
                valid_classes=valid,
                layer_history=history,
                k_guess=k_guess,
                t_requested=t_requested,
                t_used=t,
                attempts=attempt,
            )
        if t == 1:
            break
        t = max(1, t // 2)
    raise PackingConstructionError(
        f"no valid CDS classes after {params.max_attempts} attempts "
        f"(k_guess={k_guess}); is the graph connected and non-trivial?"
    )


def fractional_cds_packing(
    graph: nx.Graph,
    k: Optional[int] = None,
    params: Optional[PackingParameters] = None,
    rng: RngLike = None,
) -> CdsPackingResult:
    """Fractional dominating tree packing (Theorems 1.1/1.2 object).

    ``k`` is an optional 2-approximation of the vertex connectivity; when
    omitted, the try-and-error guessing of Remark 3.1 finds a suitable
    scale: guesses ``n/2, n/4, …`` are tried until at least an
    ``accept_fraction`` of the classes pass the CDS test.
    """
    params = params or PackingParameters()
    rand = ensure_rng(rng)
    if k is not None:
        return construct_cds_packing(graph, k, params, rand)

    n = graph.number_of_nodes()
    guess = max(1, n // 2)
    best: Optional[CdsPackingResult] = None
    while True:
        try:
            result = construct_cds_packing(graph, guess, params, rand)
        except PackingConstructionError:
            result = None
        if result is not None:
            if best is None or result.size > best.size:
                best = result
            accepted = (
                len(result.valid_classes)
                >= params.accept_fraction * result.t_requested
                and result.t_used == result.t_requested
            )
            if accepted:
                return result
        if guess == 1:
            break
        guess //= 2
    if best is not None:
        return best
    raise PackingConstructionError(
        "try-and-error guessing failed for every scale"
    )
