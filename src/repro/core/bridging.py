"""The recursive class assignment of one layer (Section 3.1, steps 1–3).

Given the state after layers ``1..ℓ`` (old nodes), this module assigns
classes to the ``3n`` new virtual nodes of layer ``ℓ+1``:

1. type-1 and type-3 new nodes join uniformly random classes;
2. the *bridging graph* is formed between old components and type-2 new
   nodes — ``v`` is adjacent to component ``C`` of class ``i`` iff
   (a) ``v`` has a neighbor in ``C``, (b) ``C`` is not already bridged by
   a type-1 new node of class ``i`` ("deactivated"), and (c) some type-3
   new neighbor ``w`` of ``v`` joined class ``i`` and sees a component
   ``C'' ≠ C`` of class ``i``;
3. a maximal matching between components and type-2 new nodes is found;
   matched type-2 nodes join their component's class, unmatched ones join
   random classes.

Virtual adjacency includes *same-real* pairs (footnote 5), so every
"neighbor" test below uses the **closed** real neighborhood ``N[v]``: a
new virtual node on real ``v`` is adjacent to the old virtual nodes of
``v`` itself.

The greedy sweep in :func:`assign_layer` processes type-2 nodes in random
order and matches each to the first available bridging-adjacent component;
since a pair is skipped only when one endpoint is already matched, the
result is a maximal matching — exactly the structure Lemma 4.4 needs,
and the same matching discipline as the linked-list sweep of Appendix C.

Since the kernel port the sweep runs entirely on the
:class:`~repro.core.virtual_graph.CdsIndex` view: integer node indices,
flat adjacency in ``graph.neighbors()`` order, and
:class:`~repro.fastgraph.IntUnionFind` component representatives. The
RNG consumption sequence and every candidate-enumeration order are the
reference implementation's exactly (node-iteration order = index order,
class sets with identical insertion histories, closed neighborhoods in
adjacency order), so assignments are bit-identical to
:mod:`repro.core.cds_packing_reference` under a fixed seed — the
equivalence suite pins this.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional, Set, Tuple

import networkx as nx

from repro.core.virtual_graph import VirtualGraph
from repro.utils.rng import RngLike, ensure_rng


@dataclass(frozen=True)
class LayerStats:
    """Instrumentation for one layer's assignment (drives experiment E8)."""

    layer: int
    excess_before: int
    excess_after: int
    deactivated_components: int
    bridging_candidates: int
    matched: int
    random_type2: int


def closed_neighborhood(graph: nx.Graph, node: Hashable) -> List[Hashable]:
    """``N[node]`` — the node itself plus its graph neighbors."""
    return [node, *graph.neighbors(node)]


def jump_start(vg: VirtualGraph, rng: RngLike = None) -> None:
    """Assign every virtual node of layers ``1..L/2`` a random class.

    Lemma 4.1 (Domination): after this step each class dominates w.h.p.
    """
    rand = ensure_rng(rng)
    t = vg.n_classes
    n = vg.index.n
    assign_at = vg.assign_at
    for layer in range(1, vg.layers // 2 + 1):
        for i in range(n):
            for vtype in (1, 2, 3):
                assign_at(i, layer, vtype, rand.randrange(t))


def _adjacent_reps(
    adj: List[List[int]], mult: Dict[int, int], rep: List[int], i: int
) -> Set[int]:
    """Old components of one class adjacent to a new node on index ``i``
    (component representative indices, via the closed neighborhood).
    ``mult``/``rep`` are the class's active-index dict and its
    representative table for this layer, unbundled by the caller to keep
    the sweep monomorphic."""
    reps: Set[int] = set()
    if i in mult:
        reps.add(rep[i])
    for j in adj[i]:
        if j in mult:
            reps.add(rep[j])
    return reps


def assign_layer(
    vg: VirtualGraph,
    new_layer: int,
    rng: RngLike = None,
    use_deactivation: bool = True,
    require_type3_witness: bool = True,
) -> LayerStats:
    """Run steps (1)–(3) for layer ``new_layer`` and apply the assignment.

    The two boolean flags exist for the ablation study (benchmarks
    ``bench_ablation.py``): ``use_deactivation=False`` drops condition (b)
    (type-2 nodes may be spent on components already bridged by a type-1
    node), ``require_type3_witness=False`` drops condition (c) (a matched
    type-2 node is no longer guaranteed to merge its component with
    another). Both default to the paper's algorithm.
    """
    rand = ensure_rng(rng)
    index = vg.index
    adj = index.adj
    n = index.n
    t = vg.n_classes
    classes = vg.classes
    real_classes_at = vg.real_classes_at
    excess_before = vg.excess_components()
    # Per-class hot-path views. No class gains members until the final
    # apply loop, so each class's component representatives are constant
    # throughout the sweep: resolve them once per (class, active node)
    # here instead of once per neighborhood visit. ``reps[c][i]`` is only
    # meaningful where ``i`` is active in class ``c``.
    mults: List[Dict[int, int]] = [s.multiplicity_by_index for s in classes]
    reps_table: List[List[int]] = []
    for s in classes:
        rep = [0] * n
        find = s._uf.find
        for i in s.multiplicity_by_index:
            rep[i] = find(i)
        reps_table.append(rep)

    # Step 1: type-1 and type-3 new nodes pick random classes (one t1/t3
    # draw pair per node, in node order — the reference's RNG sequence).
    type1_class: List[int] = [0] * n
    type3_class: List[int] = [0] * n
    for i in range(n):
        type1_class[i] = rand.randrange(t)
        type3_class[i] = rand.randrange(t)

    # Deactivation (condition (b)): a component already bridged to another
    # component of its class by some type-1 new node needs no type-2 spend.
    deactivated: Set[Tuple[int, int]] = set()
    for i in range(n):
        class_id = type1_class[i]
        reps = _adjacent_reps(adj, mults[class_id], reps_table[class_id], i)
        if len(reps) >= 2:
            deactivated.update((class_id, rep) for rep in reps)

    # Suitable components of each type-3 new node (feeds condition (c)).
    suitable3: List[Set[int]] = [
        _adjacent_reps(adj, mults[type3_class[i]], reps_table[type3_class[i]], i)
        for i in range(n)
    ]

    # Steps 2–3: bridging adjacency + greedy maximal matching over type-2
    # new nodes in random order.
    matched: Set[Tuple[int, int]] = set()
    type2_class: List[int] = [0] * n
    bridging_candidates = 0
    random_type2 = 0
    order = list(range(n))
    rand.shuffle(order)
    for i in order:
        neighborhood = [i, *adj[i]]
        # Candidate (class, component) pairs satisfying condition (a).
        candidates: List[Tuple[int, int]] = []
        seen: Set[Tuple[int, int]] = set()
        for w in neighborhood:
            for class_id in real_classes_at[w]:
                key = (class_id, reps_table[class_id][w])
                if key not in seen:
                    seen.add(key)
                    candidates.append(key)
        rand.shuffle(candidates)

        assigned: Optional[int] = None
        for class_id, rep in candidates:
            key = (class_id, rep)
            if use_deactivation and key in deactivated:
                continue
            if key in matched:
                continue
            # Condition (c): a type-3 new neighbor of the same class that
            # sees a *different* component of that class.
            if require_type3_witness:
                bridged = False
                for u in neighborhood:
                    if type3_class[u] != class_id:
                        continue
                    if any(other != rep for other in suitable3[u]):
                        bridged = True
                        break
                if not bridged:
                    continue
            bridging_candidates += 1
            matched.add(key)
            assigned = class_id
            break
        if assigned is None:
            assigned = rand.randrange(t)
            random_type2 += 1
        type2_class[i] = assigned

    # Apply all 3n assignments (projections update under the hood).
    assign_at = vg.assign_at
    for i in range(n):
        assign_at(i, new_layer, 1, type1_class[i])
        assign_at(i, new_layer, 2, type2_class[i])
        assign_at(i, new_layer, 3, type3_class[i])

    return LayerStats(
        layer=new_layer,
        excess_before=excess_before,
        excess_after=vg.excess_components(),
        deactivated_components=len(deactivated),
        bridging_candidates=bridging_candidates,
        matched=len(matched),
        random_type2=random_type2,
    )


def run_recursion(
    vg: VirtualGraph,
    rng: RngLike = None,
    use_deactivation: bool = True,
    require_type3_witness: bool = True,
) -> List[LayerStats]:
    """Jump-start layers 1..L/2, then assign layers L/2+1..L recursively."""
    rand = ensure_rng(rng)
    jump_start(vg, rand)
    history: List[LayerStats] = []
    for layer in range(vg.layers // 2 + 1, vg.layers + 1):
        history.append(
            assign_layer(
                vg,
                layer,
                rand,
                use_deactivation=use_deactivation,
                require_type3_witness=require_type3_witness,
            )
        )
    return history
