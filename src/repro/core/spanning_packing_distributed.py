"""Distributed fractional spanning tree packing (Section 5.1 / Lemma 5.1).

The MWU loop of :mod:`repro.core.spanning_packing`, executed as an
E-CONGEST protocol:

* per iteration, every node knows the loads ``x_e`` of its incident edges
  (it stores the trees it belongs to), hence the costs ``c_e`` — the
  message-size trick of footnote 6 (send ``z_e``, not ``c_e``) is
  respected since our MST substitute compares costs locally;
* the MST under the costs is computed by the distributed Borůvka of
  :mod:`repro.simulator.algorithms.boruvka` (substituting Kutten–Peleg;
  DESIGN.md §2);
* the termination test ``Cost(MST) > (1−ε)·Σ c_e·x_e`` is decided at a
  leader: both sums are aggregated up a BFS tree by convergecast and the
  verdict broadcast back down (the paper's exact mechanism).

For general ``λ`` the edges are Karger-partitioned into ``η`` parts
(Section 5.2); parts are **edge-disjoint**, so their protocols run in
parallel without interference, and the per-iteration round cost is the
*maximum* over parts plus the pipelined ``O(D + η)`` decision upcast of
Lemma 5.1 — this is how the combined metrics are accounted.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Hashable, List, Optional, Tuple

import networkx as nx

from repro.errors import GraphValidationError, PackingConstructionError
from repro.core.spanning_packing import (
    MwuParameters,
    MwuTrace,
    SpanningPackingResult,
    _edges_to_tree,
)
from repro.core.tree_packing import SpanningTreePacking, WeightedTree
from repro.graphs.connectivity import edge_connectivity
from repro.graphs.sampling import choose_karger_parts, karger_edge_partition
from repro.simulator.algorithms.bfs import build_bfs_tree
from repro.simulator.algorithms.boruvka import distributed_mst
from repro.simulator.algorithms.convergecast import converge_sum
from repro.simulator.metrics import (
    AnalyticRoundCost,
    RoundReport,
    SimulationMetrics,
)
from repro.simulator.network import Network
from repro.simulator.runner import Model
from repro.utils.mathutil import ceil_div
from repro.utils.rng import RngLike, ensure_rng

Edge = FrozenSet[Hashable]


@dataclass
class DistributedSpanningResult:
    """Packing plus round accounting for the distributed construction."""

    result: SpanningPackingResult
    report: RoundReport
    iterations_per_part: List[int]

    @property
    def packing(self) -> SpanningTreePacking:
        return self.result.packing


def _distributed_mwu_one_part(
    part: nx.Graph,
    lam: int,
    params: MwuParameters,
    rng,
    max_iterations: int,
) -> Tuple[List[Tuple[FrozenSet[Edge], float]], MwuTrace, SimulationMetrics]:
    """Section 5.1 on one connected part; returns normalized trees,
    the trace, and the measured metrics for this part's protocol."""
    network = Network(part, rng=rng)
    n = network.n
    target = max(1, ceil_div(max(0, lam - 1), 2))
    alpha = params.alpha(n)
    beta = params.beta(n)
    epsilon = params.epsilon
    metrics = SimulationMetrics()

    # Leader + BFS tree for the decision aggregation (O(D) preprocessing).
    root = max(network.nodes, key=network.node_id)
    bfs, bfs_result = build_bfs_tree(network, root)
    metrics.merge(bfs_result.metrics)

    edges: List[Edge] = [frozenset(e) for e in part.edges()]
    loads: Dict[Edge, float] = {e: 0.0 for e in edges}
    collection: Dict[FrozenSet[Edge], float] = {}
    # Each edge is owned by its smaller-id endpoint (static — computed
    # once from the topology core's id map instead of per iteration).
    owner_of: Dict[Edge, Hashable] = {}
    endpoints_of: Dict[Edge, Tuple[Hashable, Hashable]] = {}
    for e in edges:
        u, v = tuple(e)
        owner_of[e] = u if network.node_id(u) < network.node_id(v) else v
        endpoints_of[e] = (u, v)

    first = distributed_mst(network, lambda u, v: 1.0, model=Model.E_CONGEST)
    metrics.merge(first.metrics)
    collection[frozenset(first.edges)] = 1.0
    for e in first.edges:
        loads[e] = 1.0

    trace = MwuTrace()
    for _ in range(max_iterations):
        trace.iterations += 1
        z_max = max(loads[e] * target for e in edges)
        trace.max_relative_load.append(z_max / target)
        if trace.iterations > 1 and z_max <= 1.0 + epsilon:
            trace.stopped_early = True
            break

        def cost(u: Hashable, v: Hashable) -> float:
            return math.exp(alpha * (loads[frozenset((u, v))] * target - z_max))

        mst = distributed_mst(network, cost, model=Model.E_CONGEST)
        metrics.merge(mst.metrics)
        mst_edges = frozenset(mst.edges)

        # Convergecast the two sums to the leader. Each edge is owned by
        # its smaller-id endpoint; values scaled to ints for the payload
        # (the footnote-6 rounding to multiples of Θ(1/n)).
        scale = max(1, n) * 1000
        owner_mst: Dict[Hashable, int] = {v: 0 for v in network.nodes}
        owner_frac: Dict[Hashable, int] = {v: 0 for v in network.nodes}
        for e in edges:
            u, v = endpoints_of[e]
            owner = owner_of[e]
            c = cost(u, v)
            if e in mst_edges:
                owner_mst[owner] += int(round(c * scale))
            owner_frac[owner] += int(round(c * loads[e] * scale))
        mst_cost, res1 = converge_sum(network, bfs, owner_mst)
        metrics.merge(res1.metrics)
        frac_cost, res2 = converge_sum(network, bfs, owner_frac)
        metrics.merge(res2.metrics)
        # Leader's verdict travels back down the BFS tree: O(depth) rounds.
        metrics.record_round(0, 0, 0)
        for _ in range(bfs.depth):
            metrics.record_round(network.n, network.n, 1)

        if mst_cost > (1.0 - epsilon) * frac_cost:
            trace.stopped_early = True
            break
        for key in collection:
            collection[key] *= 1.0 - beta
        collection[mst_edges] = collection.get(mst_edges, 0.0) + beta
        for e in edges:
            loads[e] *= 1.0 - beta
        for e in mst_edges:
            loads[e] += beta

    max_load = max(loads[e] for e in edges if loads[e] > 0.0)
    normalized = [
        (key, weight / max_load)
        for key, weight in collection.items()
        if weight / max_load > 1e-12
    ]
    return normalized, trace, metrics


def distributed_spanning_packing(
    graph: nx.Graph,
    lam: Optional[int] = None,
    params: Optional[MwuParameters] = None,
    rng: RngLike = None,
    max_iterations: int = 30,
) -> DistributedSpanningResult:
    """Theorem 1.3's distributed construction with Lemma 5.1 accounting.

    ``max_iterations`` defaults well below the Θ(log³ n) cap — the
    simulation is faithful but slow, and the early-stopping rule usually
    fires long before the cap on the tested families; pass a larger value
    to run to the analytic schedule.
    """
    if graph.number_of_nodes() < 2 or not nx.is_connected(graph):
        raise GraphValidationError("graph must be connected with >= 2 nodes")
    params = params or MwuParameters()
    rand = ensure_rng(rng)
    n = graph.number_of_nodes()
    if lam is None:
        lam = edge_connectivity(graph)
    eta = choose_karger_parts(lam, n, params.epsilon)
    parts = (
        [graph] if eta <= 1 else karger_edge_partition(graph, eta, rand)
    )

    trees: List[WeightedTree] = []
    traces: List[MwuTrace] = []
    part_metrics: List[SimulationMetrics] = []
    iterations: List[int] = []
    class_id = 0
    for part in parts:
        if part.number_of_edges() == 0 or not nx.is_connected(part):
            continue
        # The oracle ran once on the whole graph; Karger's theorem pins
        # each part's connectivity at λ/η (1 ± ε), so parts are sized
        # from that instead of re-running the oracle per part.
        part_lam = lam if eta <= 1 else max(1, lam // eta)
        normalized, trace, metrics = _distributed_mwu_one_part(
            part, part_lam, params, rand, max_iterations
        )
        traces.append(trace)
        part_metrics.append(metrics)
        iterations.append(trace.iterations)
        for tree_edges, weight in normalized:
            trees.append(
                WeightedTree(
                    tree=_edges_to_tree(graph, tree_edges),
                    weight=min(1.0, weight),
                    class_id=class_id,
                )
            )
            class_id += 1
    if not trees:
        raise PackingConstructionError("no part produced spanning trees")

    packing = SpanningTreePacking(graph, trees)
    packing.verify()
    result = SpanningPackingResult(
        packing=packing,
        lam=lam,
        target=max(1, ceil_div(max(0, lam - 1), 2)),
        parts=len(part_metrics),
        traces=traces,
    )
    # Parallel composition over edge-disjoint parts: measured rounds =
    # max over parts, plus the pipelined decision upcast O(D + η) per
    # iteration (Lemma 5.1).
    combined = SimulationMetrics()
    if part_metrics:
        slowest = max(part_metrics, key=lambda m: m.rounds)
        combined.merge(slowest)
        pipeline_extra = (nx.diameter(graph) + eta) * max(iterations)
        for _ in range(pipeline_extra if eta > 1 else 0):
            combined.record_round(0, 0, 0)
    diameter = nx.diameter(graph)
    log_n = math.log2(max(n, 2))
    analytic = [
        AnalyticRoundCost(
            "lemma-5.1",
            (diameter + math.sqrt(n * max(1, lam)) / max(1.0, log_n))
            * log_n**3,
        )
    ]
    return DistributedSpanningResult(
        result=result,
        report=RoundReport(measured=combined, analytic=analytic),
        iterations_per_part=iterations,
    )
