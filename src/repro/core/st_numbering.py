"""st-numbering and the Itai–Rodeh two vertex independent trees.

Section 1.4.1 of the paper relates dominating tree packings to *vertex
independent trees* and cites Itai–Rodeh [28]: every 2-vertex-connected
graph has two spanning trees, rooted at any node ``r``, such that for
every vertex ``v`` the two ``r``–``v`` tree paths are internally
vertex-disjoint. This module implements that classical construction —
the ``k = 2`` case of the Zehavi–Itai conjecture the paper's integral
packing approximates for general ``k``.

The engine is an *st-numbering* (Lempel–Even–Cederbaum): an ordering
``ν(s) = 1 < … < ν(t) = n`` such that every other vertex has both a
lower-numbered and a higher-numbered neighbor. We compute it with the
Even–Tarjan/Ebert linear-time scheme: one DFS records parents and
lowpoints, then vertices are spliced into a list before or after their
parent according to a sign bit. Given the numbering, the two trees are
immediate: tree A points every vertex at a lower-numbered neighbor
(descending to ``s``), tree B points every vertex except ``t`` at a
higher-numbered neighbor and ``t`` back at ``s`` along the ``st`` edge.
Paths to the root through A use only vertices numbered below ``v``,
through B only above — hence internally disjoint.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional, Tuple

import networkx as nx

from repro.errors import GraphValidationError


def st_numbering(
    graph: nx.Graph, s: Hashable, t: Hashable
) -> Dict[Hashable, int]:
    """An st-numbering of a 2-connected ``graph`` for adjacent ``s, t``.

    Returns ``ν : V → {1..n}`` with ``ν(s) = 1``, ``ν(t) = n``, and every
    other vertex adjacent to both a lower and a higher number. Raises
    :class:`GraphValidationError` if the preconditions fail (``s ≁ t``,
    or the graph is not 2-connected, in which case the produced ordering
    would violate the property — we verify before returning).
    """
    if s == t:
        raise GraphValidationError("s and t must differ")
    if not graph.has_edge(s, t):
        raise GraphValidationError("s and t must be adjacent")
    n = graph.number_of_nodes()
    if n < 3:
        raise GraphValidationError("st-numbering needs at least 3 nodes")

    parent, preorder, low_vertex = _dfs_lowpoints(graph, s, t)

    # Splice vertices into a doubly linked list around their parents
    # (Ebert / Even–Tarjan sign trick).
    successor: Dict[Hashable, Optional[Hashable]] = {s: t, t: None}
    predecessor: Dict[Hashable, Optional[Hashable]] = {s: None, t: s}
    sign: Dict[Hashable, int] = {s: -1}

    def insert_before(v: Hashable, anchor: Hashable) -> None:
        before = predecessor[anchor]
        predecessor[v] = before
        successor[v] = anchor
        predecessor[anchor] = v
        if before is not None:
            successor[before] = v

    def insert_after(v: Hashable, anchor: Hashable) -> None:
        after = successor[anchor]
        successor[v] = after
        predecessor[v] = anchor
        successor[anchor] = v
        if after is not None:
            predecessor[after] = v

    for v in preorder:
        if v == s or v == t:
            continue
        p = parent[v]
        if sign.get(low_vertex[v], 1) == 1:
            insert_after(v, p)
            sign[p] = -1
        else:
            insert_before(v, p)
            sign[p] = 1

    numbering: Dict[Hashable, int] = {}
    cursor: Optional[Hashable] = s
    count = 0
    while cursor is not None:
        count += 1
        numbering[cursor] = count
        cursor = successor[cursor]
    if count != n:
        raise GraphValidationError(
            "graph is disconnected; st-numbering undefined"
        )
    _verify_st_numbering(graph, numbering, s, t)
    return numbering


def _dfs_lowpoints(
    graph: nx.Graph, s: Hashable, t: Hashable
) -> Tuple[
    Dict[Hashable, Hashable], List[Hashable], Dict[Hashable, Hashable]
]:
    """Iterative DFS from ``s`` taking ``t`` first.

    Returns parent pointers, the preorder sequence, and for each vertex
    the *vertex* attaining its lowpoint (smallest preorder reachable via
    tree edges then one back edge).
    """
    parent: Dict[Hashable, Hashable] = {}
    pre: Dict[Hashable, int] = {s: 0}
    preorder: List[Hashable] = [s]
    low: Dict[Hashable, int] = {s: 0}
    low_vertex: Dict[Hashable, Hashable] = {s: s}
    by_pre: List[Hashable] = [s]

    def neighbor_order(v: Hashable) -> List[Hashable]:
        neighbors = list(graph.neighbors(v))
        if v == s and t in neighbors:
            # Visit t first so the trunk edge (s, t) is a tree edge.
            neighbors.remove(t)
            neighbors.insert(0, t)
        return neighbors

    stack: List[Tuple[Hashable, iter]] = [(s, iter(neighbor_order(s)))]
    while stack:
        v, neighbors = stack[-1]
        advanced = False
        for u in neighbors:
            if u not in pre:
                parent[u] = v
                pre[u] = len(preorder)
                preorder.append(u)
                by_pre.append(u)
                low[u] = pre[u]
                low_vertex[u] = u
                stack.append((u, iter(neighbor_order(u))))
                advanced = True
                break
            if u != parent.get(v) and pre[u] < low[v]:
                low[v] = pre[u]
                low_vertex[v] = u
        if not advanced:
            stack.pop()
            if stack:
                p = stack[-1][0]
                if low[v] < low[p]:
                    low[p] = low[v]
                    low_vertex[p] = low_vertex[v]
    return parent, preorder, low_vertex


def _verify_st_numbering(
    graph: nx.Graph,
    numbering: Dict[Hashable, int],
    s: Hashable,
    t: Hashable,
) -> None:
    n = graph.number_of_nodes()
    if numbering[s] != 1 or numbering[t] != n:
        raise GraphValidationError(
            "not 2-connected: endpoints not extremal in the ordering"
        )
    for v in graph.nodes():
        if v in (s, t):
            continue
        values = [numbering[u] for u in graph.neighbors(v)]
        if not values or min(values) >= numbering[v] or max(values) <= numbering[v]:
            raise GraphValidationError(
                "not 2-connected: st-numbering property fails at a vertex"
            )


def itai_rodeh_independent_trees(
    graph: nx.Graph, root: Hashable
) -> Tuple[nx.Graph, nx.Graph]:
    """Two vertex independent spanning trees rooted at ``root`` [28].

    Requires a 2-vertex-connected graph. Returns ``(down_tree, up_tree)``:
    in ``down_tree`` every non-root vertex points to a lower-numbered
    neighbor, in ``up_tree`` to a higher-numbered one (with the top
    vertex wired back to the root along the st edge). For every vertex
    ``v``, the two ``root``–``v`` paths share no internal vertex — the
    defining property of Section 1.4.1.
    """
    if not graph.has_node(root):
        raise GraphValidationError("root must be a graph node")
    if graph.number_of_nodes() < 3:
        raise GraphValidationError("need at least 3 nodes")
    neighbors = list(graph.neighbors(root))
    if not neighbors:
        raise GraphValidationError("root has no neighbors")
    top = min(neighbors, key=str)
    numbering = st_numbering(graph, root, top)

    down = nx.Graph()
    up = nx.Graph()
    down.add_nodes_from(graph.nodes())
    up.add_nodes_from(graph.nodes())
    for v in graph.nodes():
        if v == root:
            continue
        nv = numbering[v]
        lower = min(
            (u for u in graph.neighbors(v) if numbering[u] < nv),
            key=lambda u: numbering[u],
        )
        down.add_edge(v, lower)
        if v == top:
            up.add_edge(top, root)  # the st edge closes the up tree
            continue
        higher = max(
            (u for u in graph.neighbors(v) if numbering[u] > nv),
            key=lambda u: numbering[u],
        )
        up.add_edge(v, higher)
    return down, up


def verify_independent_pair(
    graph: nx.Graph,
    root: Hashable,
    down: nx.Graph,
    up: nx.Graph,
) -> bool:
    """Exhaustively check the independence property for a tree pair.

    For every vertex ``v``, the unique ``root``–``v`` paths in the two
    trees must intersect only at ``root`` and ``v``.
    """
    if not (nx.is_tree(down) and nx.is_tree(up)):
        return False
    if set(down.nodes()) != set(graph.nodes()):
        return False
    if set(up.nodes()) != set(graph.nodes()):
        return False
    for v in graph.nodes():
        if v == root:
            continue
        path_a = nx.shortest_path(down, root, v)
        path_b = nx.shortest_path(up, root, v)
        internal_a = set(path_a[1:-1])
        internal_b = set(path_b[1:-1])
        if internal_a & internal_b:
            return False
    return True
