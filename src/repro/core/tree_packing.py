"""Tree packing containers and full validity verification (Section 2).

A *fractional dominating tree packing* assigns weights ``x_τ ∈ [0, 1]`` to
dominating trees so that every vertex carries total weight at most 1; its
*size* is ``Σ x_τ``. A *fractional spanning tree packing* is the same with
spanning trees and per-edge capacity. These containers hold the trees,
compute sizes/loads, and :meth:`verify` every defining constraint, raising
:class:`~repro.errors.PackingValidationError` on the first violation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Hashable, List, Optional, Tuple

import networkx as nx

from repro.errors import PackingValidationError
from repro.graphs.connectivity import is_dominating_tree, is_spanning_tree

_TOLERANCE = 1e-9


@dataclass
class WeightedTree:
    """One tree of a packing: the tree, its weight, and its class id."""

    tree: nx.Graph
    weight: float
    class_id: int

    def __post_init__(self) -> None:
        if not 0.0 <= self.weight <= 1.0 + _TOLERANCE:
            raise PackingValidationError(
                f"tree weight {self.weight} outside [0, 1]"
            )

    @property
    def nodes(self) -> FrozenSet[Hashable]:
        return frozenset(self.tree.nodes())

    @property
    def edges(self) -> FrozenSet[FrozenSet[Hashable]]:
        return frozenset(frozenset(e) for e in self.tree.edges())

    def diameter(self) -> int:
        if self.tree.number_of_nodes() <= 1:
            return 0
        return nx.diameter(self.tree)


class _BasePacking:
    """Shared machinery for both packing kinds."""

    def __init__(self, graph: nx.Graph, trees: List[WeightedTree]) -> None:
        self.graph = graph
        self.trees = list(trees)

    @property
    def size(self) -> float:
        """Total weight — the packing size κ of Section 2."""
        return sum(t.weight for t in self.trees)

    def __len__(self) -> int:
        return len(self.trees)

    def __iter__(self):
        return iter(self.trees)

    def max_diameter(self) -> int:
        """Largest tree diameter (Theorem 1.1 bounds this by Õ(n/k))."""
        return max((t.diameter() for t in self.trees), default=0)


class DominatingTreePacking(_BasePacking):
    """A fractional dominating tree packing (Section 2).

    Constraints verified by :meth:`verify`:

    * every tree is a dominating tree of ``graph`` (footnote 1);
    * every weight lies in ``[0, 1]``;
    * every vertex carries total weight ≤ 1.
    """

    def node_loads(self) -> Dict[Hashable, float]:
        """Total tree weight carried by each vertex."""
        loads: Dict[Hashable, float] = {v: 0.0 for v in self.graph.nodes()}
        for wt in self.trees:
            for v in wt.tree.nodes():
                loads[v] += wt.weight
        return loads

    def trees_per_node(self) -> Dict[Hashable, int]:
        """How many trees contain each vertex (Theorem 1.1: O(log n))."""
        counts: Dict[Hashable, int] = {v: 0 for v in self.graph.nodes()}
        for wt in self.trees:
            for v in wt.tree.nodes():
                counts[v] += 1
        return counts

    def max_node_load(self) -> float:
        loads = self.node_loads()
        return max(loads.values()) if loads else 0.0

    def verify(self) -> None:
        """Raise :class:`PackingValidationError` unless all constraints hold."""
        for index, wt in enumerate(self.trees):
            if not is_dominating_tree(self.graph, wt.tree):
                raise PackingValidationError(
                    f"tree #{index} (class {wt.class_id}) is not a "
                    "dominating tree of the graph"
                )
        load = self.max_node_load()
        if load > 1.0 + _TOLERANCE:
            raise PackingValidationError(
                f"vertex capacity violated: max node load {load} > 1"
            )

    def is_vertex_disjoint(self) -> bool:
        """Whether the trees are pairwise vertex-disjoint (integral packing)."""
        seen: set = set()
        for wt in self.trees:
            nodes = set(wt.tree.nodes())
            if seen & nodes:
                return False
            seen |= nodes
        return True


class SpanningTreePacking(_BasePacking):
    """A fractional spanning tree packing (Section 2).

    Constraints verified by :meth:`verify`:

    * every tree is a spanning tree of ``graph``;
    * every weight lies in ``[0, 1]``;
    * every edge carries total weight ≤ 1.
    """

    def edge_loads(self) -> Dict[FrozenSet[Hashable], float]:
        loads: Dict[FrozenSet[Hashable], float] = {
            frozenset(e): 0.0 for e in self.graph.edges()
        }
        for wt in self.trees:
            for e in wt.tree.edges():
                loads[frozenset(e)] += wt.weight
        return loads

    def trees_per_edge(self) -> Dict[FrozenSet[Hashable], int]:
        """How many trees use each edge (Theorem 1.3: O(log³ n))."""
        counts: Dict[FrozenSet[Hashable], int] = {
            frozenset(e): 0 for e in self.graph.edges()
        }
        for wt in self.trees:
            for e in wt.tree.edges():
                counts[frozenset(e)] += 1
        return counts

    def max_edge_load(self) -> float:
        loads = self.edge_loads()
        return max(loads.values()) if loads else 0.0

    def verify(self) -> None:
        """Raise :class:`PackingValidationError` unless all constraints hold."""
        for index, wt in enumerate(self.trees):
            if not is_spanning_tree(self.graph, wt.tree):
                raise PackingValidationError(
                    f"tree #{index} (class {wt.class_id}) is not a spanning "
                    "tree of the graph"
                )
        load = self.max_edge_load()
        if load > 1.0 + _TOLERANCE:
            raise PackingValidationError(
                f"edge capacity violated: max edge load {load} > 1"
            )

    def is_edge_disjoint(self) -> bool:
        """Whether the trees are pairwise edge-disjoint (integral packing)."""
        seen: set = set()
        for wt in self.trees:
            edges = {frozenset(e) for e in wt.tree.edges()}
            if seen & edges:
                return False
            seen |= edges
        return True


def spanning_tree_of(graph: nx.Graph, nodes=None) -> nx.Graph:
    """A BFS spanning tree of ``graph`` (or of ``graph[nodes]``).

    Helper used to turn a connected CDS into a dominating tree and a
    connected edge-part into a spanning tree.
    """
    sub = graph if nodes is None else graph.subgraph(nodes)
    if sub.number_of_nodes() == 0:
        raise PackingValidationError("cannot build a tree on an empty node set")
    root = next(iter(sub.nodes()))
    tree = nx.bfs_tree(sub, root).to_undirected()
    result = nx.Graph()
    result.add_nodes_from(sub.nodes())
    result.add_edges_from(tree.edges())
    if not nx.is_tree(result):
        raise PackingValidationError("node set does not induce a connected graph")
    return result
