"""Distributed fractional CDS packing (Appendix B, Theorem B.1).

The same recursion as :mod:`repro.core.cds_packing`, executed as a
protocol on the round simulator. Per layer:

1. **Component identification** (B.1) — parallel per-class min-id floods
   (the Theorem B.2 subroutine; one multi-key flood run covers all
   classes a node is active in).
2. **Bridging graph creation** (B.2) — type-1/3 new nodes pick random
   classes locally; an exchange round spreads (class, component-id)
   pairs; type-1 bridges deactivate their adjacent components, the
   deactivation bit is flooded inside components; type-3 nodes send their
   ``m_w`` messages (class + component id or the ``connector`` symbol);
   type-2 nodes assemble their neighbor lists ``List_v``.
3. **Maximal matching** (B.3) — O(log n) stages of Luby-style proposals:
   each unmatched type-2 node draws a random value per listed component,
   proposes to the best; components flood their maximum received proposal
   and broadcast the winner; accepted proposers join the component's
   class; losers prune their lists. Leftovers join random classes.

**Meta-round accounting.** Every real node simulates ``3L`` virtual
nodes; one simulated round here carries each node's vector of per-class
entries — i.e. one *meta-round* = ``3L`` real V-CONGEST rounds (Section
3.1). The result reports measured meta-rounds and the derived real-round
estimate, plus the analytic Theorem B.2 bounds for the substituted
component-identification subroutine (DESIGN.md Section 2/5).

**Transports.** The protocol runs under ``Model.V_CONGEST`` (the paper's
model) or ``Model.CONGESTED_CLIQUE`` (every broadcast reaches all n−1
nodes). Protocol *decisions* consume only traffic from graph neighbors —
every heard map is filtered through :func:`_from_neighbors`, in
deterministic ``graph.neighbors()`` order — so under a fixed seed both
transports produce the **same packing**; only the message/bit accounting
differs. The scenario layer exposes this as the registered
``cds_packing`` program (``repro simulate … --program cds_packing``),
backed by :func:`run_cds_packing_scenario`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Hashable, List, Optional, Set, Tuple

import networkx as nx

from repro.errors import GraphValidationError, PackingConstructionError
from repro.core.bridging import LayerStats
from repro.core.cds_packing import (
    CdsPackingResult,
    PackingParameters,
    _packing_from_classes,
    _valid_class_ids,
)
from repro.core.virtual_graph import VirtualGraph, VirtualNode
from repro.simulator.algorithms.exchange import exchange_once
from repro.simulator.algorithms.multikey_flood import multikey_flood
from repro.simulator.metrics import (
    AnalyticRoundCost,
    RoundReport,
    SimulationMetrics,
)
from repro.simulator.network import Network
from repro.simulator.runner import Model, SimulationResult
from repro.utils.mathutil import whp_repeats
from repro.utils.rng import RngLike, ensure_rng

_CONNECTOR = -1  # the special "connector" symbol of Appendix B.2

# Communication models the Appendix B protocol is defined for.
_SUPPORTED_MODELS = (Model.V_CONGEST, Model.CONGESTED_CLIQUE)


@dataclass
class DistributedCdsResult:
    """Result of the distributed construction, with round accounting."""

    result: CdsPackingResult
    report: RoundReport
    meta_rounds: int
    real_round_estimate: int

    @property
    def packing(self):
        return self.result.packing


def _from_neighbors(
    network: Network, heard: Dict[Hashable, Dict[Hashable, Any]]
) -> Dict[Hashable, Dict[Hashable, Any]]:
    """Restrict heard maps to graph neighbors, in adjacency order.

    Under ``CONGESTED_CLIQUE`` a broadcast reaches every node; the
    protocol's decisions must stay graph-local, so each node discards
    non-neighbor traffic. The fixed iteration order also makes every
    downstream set-insertion sequence transport-independent, which is
    what pins the same-seed same-packing guarantee across transports.
    """
    graph = network.graph
    return {
        v: {
            u: heard_v[u]
            for u in graph.neighbors(v)
            if u in heard_v
        }
        for v, heard_v in ((v, heard[v]) for v in network.nodes)
    }


def _identify_class_components(
    network: Network,
    vg: VirtualGraph,
    metrics: SimulationMetrics,
    model: Model,
    tracer=None,
    max_rounds: int = 100000,
) -> Dict[Hashable, Dict[int, int]]:
    """Per-class component ids for every active (node, class) pair.

    Component id = smallest node id in the component (Appendix B.1).
    """
    values: Dict[Hashable, Dict[int, int]] = {}
    allowed: Dict[Hashable, Dict[int, Set[Hashable]]] = {}
    graph = network.graph
    for v in network.nodes:
        classes = vg.real_classes[v]
        values[v] = {c: network.node_id(v) for c in classes}
        allowed[v] = {
            c: {u for u in graph.neighbors(v) if c in vg.real_classes[u]}
            for c in classes
        }
    keys_bound = max((len(vg.real_classes[v]) for v in network.nodes), default=1)
    result = multikey_flood(
        network, values, allowed, minimize=True, keys_bound=keys_bound,
        model=model, tracer=tracer, max_rounds=max_rounds,
    )
    metrics.merge(result.metrics)
    metrics.record_phase("component-identification", result.metrics.rounds)
    return {v: (result.outputs[v] or {}) for v in network.nodes}


def _flood_deactivation(
    network: Network,
    vg: VirtualGraph,
    deactivated_seed: Dict[Hashable, Set[int]],
    metrics: SimulationMetrics,
    model: Model,
    tracer=None,
    max_rounds: int = 100000,
) -> Dict[Hashable, Set[int]]:
    """Spread per-class deactivation bits inside components (max-flood)."""
    graph = network.graph
    values: Dict[Hashable, Dict[int, int]] = {}
    allowed: Dict[Hashable, Dict[int, Set[Hashable]]] = {}
    for v in network.nodes:
        classes = vg.real_classes[v]
        values[v] = {
            c: (1 if c in deactivated_seed.get(v, ()) else 0) for c in classes
        }
        allowed[v] = {
            c: {u for u in graph.neighbors(v) if c in vg.real_classes[u]}
            for c in classes
        }
    keys_bound = max((len(vg.real_classes[v]) for v in network.nodes), default=1)
    result = multikey_flood(
        network, values, allowed, minimize=False, keys_bound=keys_bound,
        model=model, tracer=tracer, max_rounds=max_rounds,
    )
    metrics.merge(result.metrics)
    metrics.record_phase("deactivation-flood", result.metrics.rounds)
    out: Dict[Hashable, Set[int]] = {}
    for v in network.nodes:
        final = result.outputs[v] or {}
        out[v] = {c for c, bit in final.items() if bit}
    return out


def _matching_stages(
    network: Network,
    vg: VirtualGraph,
    comp_of: Dict[Hashable, Dict[int, int]],
    lists: Dict[Hashable, List[Tuple[int, int]]],
    metrics: SimulationMetrics,
    rand,
    model: Model,
    tracer=None,
    max_rounds: int = 100000,
) -> Dict[Hashable, Optional[int]]:
    """Appendix B.3: staged proposal matching; returns type-2 class choices
    (None where the node stayed unmatched)."""
    graph = network.graph
    n = network.n
    stages = 2 * whp_repeats(n)
    value_bits = 4 * max(8, n.bit_length())
    assigned: Dict[Hashable, Optional[int]] = {v: None for v in network.nodes}
    matched_components: Set[Tuple[int, int]] = set()

    for _ in range(stages):
        # Unmatched type-2 nodes propose to their best-valued listed component.
        proposals: Dict[Hashable, Optional[Tuple[int, int, int, int]]] = {}
        for v in network.nodes:
            if assigned[v] is not None or not lists[v]:
                proposals[v] = None
                continue
            best = None
            for class_id, comp_id in lists[v]:
                draw = rand.getrandbits(value_bits)
                if best is None or draw > best[0]:
                    best = (draw, class_id, comp_id)
            draw, class_id, comp_id = best
            proposals[v] = (class_id, comp_id, draw, network.node_id(v))
        heard, res = exchange_once(network, proposals, model=model, tracer=tracer)
        heard = _from_neighbors(network, heard)
        metrics.merge(res.metrics)

        # Component members absorb the best proposal addressed to them.
        seed: Dict[Hashable, Dict[int, Tuple[int, int]]] = {}
        for v in network.nodes:
            mine: Dict[int, Tuple[int, int]] = {}
            for payload in heard[v].values():
                if payload is None:
                    continue
                class_id, comp_id, draw, proposer = payload
                if comp_of[v].get(class_id) != comp_id:
                    continue
                if (class_id, comp_id) in matched_components:
                    continue
                cand = (draw, proposer)
                if class_id not in mine or cand > mine[class_id]:
                    mine[class_id] = cand
            seed[v] = mine

        # Flood the maximum proposal inside each component.
        values = {
            v: {c: seed[v].get(c) for c in vg.real_classes[v]}
            for v in network.nodes
        }
        allowed = {
            v: {
                c: {u for u in graph.neighbors(v) if c in vg.real_classes[u]}
                for c in vg.real_classes[v]
            }
            for v in network.nodes
        }
        keys_bound = max(
            (len(vg.real_classes[v]) for v in network.nodes), default=1
        )
        flood = multikey_flood(
            network, values, allowed, minimize=False, keys_bound=keys_bound,
            model=model, tracer=tracer, max_rounds=max_rounds,
        )
        metrics.merge(flood.metrics)
        metrics.record_phase("matching-flood", flood.metrics.rounds)

        # Members announce acceptances; proposers learn outcomes.
        accept_payloads: Dict[Hashable, Optional[tuple]] = {}
        for v in network.nodes:
            final = flood.outputs[v] or {}
            items = tuple(
                (c, comp_of[v][c], best[0], best[1])
                for c, best in final.items()
                if best is not None and c in comp_of[v]
            )
            accept_payloads[v] = items if items else None
        heard, res = exchange_once(
            network, accept_payloads, model=model, tracer=tracer
        )
        heard = _from_neighbors(network, heard)
        metrics.merge(res.metrics)

        for v in network.nodes:
            accepted_here: Set[Tuple[int, int]] = set()
            won: Optional[int] = None
            my_id = network.node_id(v)
            for payload in heard[v].values():
                if payload is None:
                    continue
                for class_id, comp_id, draw, proposer in payload:
                    accepted_here.add((class_id, comp_id))
                    if proposer == my_id and assigned[v] is None:
                        won = class_id
            # Own acceptance state counts too (v may be a member itself).
            own = accept_payloads[v] or ()
            for class_id, comp_id, draw, proposer in own:
                accepted_here.add((class_id, comp_id))
                if proposer == my_id and assigned[v] is None:
                    won = class_id
            if won is not None:
                assigned[v] = won
            if accepted_here:
                matched_components.update(accepted_here)
                lists[v] = [
                    pair for pair in lists[v] if pair not in accepted_here
                ]
    return assigned


def _distributed_layer(
    network: Network,
    vg: VirtualGraph,
    new_layer: int,
    metrics: SimulationMetrics,
    rand,
    model: Model,
    tracer=None,
    max_rounds: int = 100000,
) -> LayerStats:
    """One full layer of the Appendix B protocol."""
    graph = network.graph
    t = vg.n_classes
    excess_before = vg.excess_components()

    # B.1: identify components of old nodes.
    comp_of = _identify_class_components(
        network, vg, metrics, model, tracer, max_rounds
    )

    # Local random choices for type-1 / type-3 new nodes.
    type1_class = {v: rand.randrange(t) for v in network.nodes}
    type3_class = {v: rand.randrange(t) for v in network.nodes}

    # Everyone announces (class, component-id) pairs: one meta-round.
    comp_payloads = {
        v: tuple(sorted(comp_of[v].items())) or None for v in network.nodes
    }
    heard_comps, res = exchange_once(
        network, comp_payloads, model=model, tracer=tracer
    )
    heard_comps = _from_neighbors(network, heard_comps)
    metrics.merge(res.metrics)

    def classes_seen(v: Hashable) -> Dict[int, Set[int]]:
        """class -> set of component ids visible from v's closed nbhd."""
        seen: Dict[int, Set[int]] = {}
        for class_id, comp_id in comp_of[v].items():
            seen.setdefault(class_id, set()).add(comp_id)
        for payload in heard_comps[v].values():
            if payload is None:
                continue
            for class_id, comp_id in payload:
                seen.setdefault(class_id, set()).add(comp_id)
        return seen

    # B.2 deactivation: type-1 bridges mark all their class components.
    deact_seed: Dict[Hashable, Set[int]] = {v: set() for v in network.nodes}
    deactivated_pairs: Set[Tuple[int, int]] = set()
    for u in network.nodes:
        class_id = type1_class[u]
        comps = classes_seen(u).get(class_id, set())
        if len(comps) >= 2:
            # In the protocol u broadcasts (i, "connector"); adjacent
            # members of class i seed the deactivation flood.
            deactivated_pairs.update((class_id, c) for c in comps)
            for w in [u, *graph.neighbors(u)]:
                if comp_of[w].get(class_id) in comps:
                    deact_seed[w].add(class_id)
    # One meta-round for the (i, connector) broadcasts themselves.
    connector_payloads = {
        v: ((type1_class[v], _CONNECTOR),)
        if len(classes_seen(v).get(type1_class[v], ())) >= 2
        else None
        for v in network.nodes
    }
    _, res = exchange_once(network, connector_payloads, model=model, tracer=tracer)
    metrics.merge(res.metrics)
    deactivated_at = _flood_deactivation(
        network, vg, deact_seed, metrics, model, tracer, max_rounds
    )

    # Activity + component announcement (members tell neighbors whether
    # their component is still active): one meta-round.
    activity_payloads = {}
    for v in network.nodes:
        items = tuple(
            (c, comp_id, 0 if c in deactivated_at[v] else 1)
            for c, comp_id in comp_of[v].items()
        )
        activity_payloads[v] = items if items else None
    heard_activity, res = exchange_once(
        network, activity_payloads, model=model, tracer=tracer
    )
    heard_activity = _from_neighbors(network, heard_activity)
    metrics.merge(res.metrics)

    # B.2 type-3 messages m_w: (class, comp-id | connector).
    type3_payloads: Dict[Hashable, Optional[tuple]] = {}
    suitable3: Dict[Hashable, Set[int]] = {}
    for w in network.nodes:
        class_id = type3_class[w]
        comps = classes_seen(w).get(class_id, set())
        suitable3[w] = comps
        if not comps:
            type3_payloads[w] = None
        elif len(comps) == 1:
            type3_payloads[w] = (class_id, next(iter(comps)))
        else:
            type3_payloads[w] = (class_id, _CONNECTOR)
    heard_type3, res = exchange_once(
        network, type3_payloads, model=model, tracer=tracer
    )
    heard_type3 = _from_neighbors(network, heard_type3)
    metrics.merge(res.metrics)

    # Assemble List_v for every type-2 new node (conditions (a)-(c)).
    lists: Dict[Hashable, List[Tuple[int, int]]] = {}
    for v in network.nodes:
        candidates: List[Tuple[int, int]] = []
        active_pairs: Set[Tuple[int, int]] = set()
        for c, comp_id in comp_of[v].items():
            if c not in deactivated_at[v]:
                active_pairs.add((c, comp_id))
        for payload in heard_activity[v].values():
            if payload is None:
                continue
            for c, comp_id, active in payload:
                if active:
                    active_pairs.add((c, comp_id))
        # Type-3 evidence: class -> set of (comp-id | connector) heard.
        evidence: Dict[int, Set[int]] = {}
        own3 = type3_payloads[v]
        if own3 is not None:
            evidence.setdefault(own3[0], set()).add(own3[1])
        for payload in heard_type3[v].values():
            if payload is None:
                continue
            class_id, token = payload
            evidence.setdefault(class_id, set()).add(token)
        for class_id, comp_id in active_pairs:
            tokens = evidence.get(class_id, set())
            if any(tok == _CONNECTOR or tok != comp_id for tok in tokens):
                candidates.append((class_id, comp_id))
        rand.shuffle(candidates)
        lists[v] = candidates

    bridging_candidates = sum(len(lst) for lst in lists.values())

    # B.3: staged maximal matching.
    type2_assigned = _matching_stages(
        network, vg, comp_of, lists, metrics, rand, model, tracer, max_rounds
    )
    matched = sum(1 for c in type2_assigned.values() if c is not None)
    random_type2 = 0
    type2_class: Dict[Hashable, int] = {}
    for v in network.nodes:
        if type2_assigned[v] is not None:
            type2_class[v] = type2_assigned[v]
        else:
            type2_class[v] = rand.randrange(t)
            random_type2 += 1

    for v in network.nodes:
        vg.assign(VirtualNode(v, new_layer, 1), type1_class[v])
        vg.assign(VirtualNode(v, new_layer, 2), type2_class[v])
        vg.assign(VirtualNode(v, new_layer, 3), type3_class[v])

    return LayerStats(
        layer=new_layer,
        excess_before=excess_before,
        excess_after=vg.excess_components(),
        deactivated_components=len(deactivated_pairs),
        bridging_candidates=bridging_candidates,
        matched=matched,
        random_type2=random_type2,
    )


def distributed_cds_packing(
    graph: nx.Graph,
    k_guess: int,
    params: Optional[PackingParameters] = None,
    rng: RngLike = None,
    model: Model = Model.V_CONGEST,
    network: Optional[Network] = None,
    tracer=None,
    max_rounds: int = 100000,
) -> DistributedCdsResult:
    """Theorem B.1: the fractional CDS packing as a simulator protocol.

    Returns the packing plus a :class:`RoundReport` with measured
    meta-rounds, the derived real-round estimate (×3L multiplexing), and
    the analytic Theorem B.2 costs of the substituted subroutine.

    ``model`` selects the transport (``V_CONGEST`` or
    ``CONGESTED_CLIQUE``; decisions are graph-local either way, so the
    packing is seed-identical across the two). ``network`` reuses an
    existing :class:`Network` (the scenario layer passes its own; it
    must wrap the same graph object when both are given); ``tracer``
    records every subroutine's round schedule into one transcript;
    ``max_rounds`` caps each inner flood subroutine (a runaway flood
    raises :class:`~repro.errors.SimulationError` instead of spinning).
    """
    if model not in _SUPPORTED_MODELS:
        raise GraphValidationError(
            f"distributed CDS packing runs on {[m.value for m in _SUPPORTED_MODELS]}; "
            f"got {model.value!r}"
        )
    if network is not None:
        if graph is not None and graph is not network.graph:
            raise GraphValidationError(
                "graph and network.graph disagree; pass one or the other "
                "(or the same graph object)"
            )
        graph = network.graph
    if graph.number_of_nodes() < 2 or not nx.is_connected(graph):
        raise GraphValidationError("graph must be connected with >= 2 nodes")
    if k_guess < 1:
        raise GraphValidationError("k_guess must be >= 1")
    params = params or PackingParameters()
    rand = ensure_rng(rng)
    if network is None:
        network = Network(graph, rng=rand)
    n = graph.number_of_nodes()
    n_layers = params.n_layers(n)
    t_requested = params.n_classes(k_guess)

    t = t_requested
    metrics = SimulationMetrics()
    for attempt in range(1, params.max_attempts + 1):
        vg = VirtualGraph(graph, layers=n_layers, n_classes=t)
        # Jump-start layers 1..L/2: purely local random choices.
        for layer in range(1, n_layers // 2 + 1):
            for v in graph.nodes():
                for vtype in (1, 2, 3):
                    vg.assign(VirtualNode(v, layer, vtype), rand.randrange(t))
        history: List[LayerStats] = []
        for layer in range(n_layers // 2 + 1, n_layers + 1):
            history.append(
                _distributed_layer(
                    network, vg, layer, metrics, rand, model, tracer,
                    max_rounds,
                )
            )
        valid = _valid_class_ids(graph, vg)
        if valid:
            packing = _packing_from_classes(graph, vg, valid)
            result = CdsPackingResult(
                packing=packing,
                virtual_graph=vg,
                valid_classes=valid,
                layer_history=history,
                k_guess=k_guess,
                t_requested=t_requested,
                t_used=t,
                attempts=attempt,
            )
            diameter = network.diameter()
            analytic = [
                AnalyticRoundCost.thurimella_components(
                    n, diameter, d_prime=n
                )
            ]
            report = RoundReport(measured=metrics, analytic=analytic)
            multiplex = 3 * n_layers
            return DistributedCdsResult(
                result=result,
                report=report,
                meta_rounds=metrics.rounds,
                real_round_estimate=metrics.rounds * multiplex,
            )
        if t == 1:
            break
        t = max(1, t // 2)
    raise PackingConstructionError(
        "distributed CDS packing produced no valid class; "
        "graph too small or k_guess too large"
    )


def run_cds_packing_scenario(
    network: Network,
    model: Model = Model.V_CONGEST,
    rng: RngLike = None,
    tracer=None,
    k_guess: Optional[int] = None,
    params: Optional[PackingParameters] = None,
    max_rounds: int = 100000,
) -> SimulationResult:
    """Scenario-layer entry point for the registered ``cds_packing`` program.

    Runs :func:`distributed_cds_packing` on an existing network and
    shapes the outcome as a :class:`SimulationResult`: each node's output
    is the sorted tuple of *valid* class ids it belongs to — Section 2's
    distributed output requirement (every node knows which dominating
    trees contain it) — and the metrics are the accumulated meta-round
    accounting. ``k_guess`` defaults to the minimum degree (a cheap local
    upper bound on ``k``; the Remark 3.1 retry loop corrects
    overestimates by halving the class count).
    """
    graph = network.graph
    if k_guess is None:
        k_guess = max(1, min(d for _, d in graph.degree()))
    dist = distributed_cds_packing(
        graph,
        k_guess,
        params,
        rng,
        model=model,
        network=network,
        tracer=tracer,
        max_rounds=max_rounds,
    )
    valid = set(dist.result.valid_classes)
    vg = dist.result.virtual_graph
    outputs = {
        v: tuple(sorted(vg.real_classes[v] & valid)) for v in network.nodes
    }
    return SimulationResult(
        outputs=outputs, metrics=dist.report.measured, halted=True
    )
