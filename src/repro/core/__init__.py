"""The paper's contribution: connectivity decompositions into tree packings.

* :mod:`repro.core.cds_packing` — Section 3 / Appendix C: the fractional
  CDS (dominating tree) packing, centralized driver.
* :mod:`repro.core.cds_packing_distributed` — Appendix B: the distributed
  driver on the V-CONGEST simulator.
* :mod:`repro.core.spanning_packing` — Section 5: the fractional spanning
  tree packing (MWU over MSTs + Karger sampling).
* :mod:`repro.core.integral_packing` — the integral variants of §1.2.
* :mod:`repro.core.packing_tester` — Appendix E tester.
* :mod:`repro.core.vertex_connectivity` — Corollary 1.7 approximation.
* :mod:`repro.core.tree_packing` — packing containers and verification.
* :mod:`repro.core.connector_paths` — Section 4.1 analysis toolbox.
* :mod:`repro.core.st_numbering` — §1.4.1's exact k = 2 case: st-numbering
  and the Itai–Rodeh two vertex independent trees.
* :mod:`repro.core.integral_packing_distributed` — the distributed
  integral spanning variant (Karger parts + Lemma 5.1 MSTs).
"""

from repro.core.tree_packing import (
    DominatingTreePacking,
    SpanningTreePacking,
    WeightedTree,
)
from repro.core.cds_packing import (
    CdsPackingResult,
    PackingParameters,
    fractional_cds_packing,
)
from repro.core.spanning_packing import (
    SpanningPackingResult,
    fractional_spanning_tree_packing,
)
from repro.core.vertex_connectivity import (
    VertexConnectivityEstimate,
    approximate_vertex_connectivity,
)
from repro.core.st_numbering import (
    itai_rodeh_independent_trees,
    st_numbering,
)

__all__ = [
    "WeightedTree",
    "DominatingTreePacking",
    "SpanningTreePacking",
    "PackingParameters",
    "CdsPackingResult",
    "fractional_cds_packing",
    "SpanningPackingResult",
    "fractional_spanning_tree_packing",
    "VertexConnectivityEstimate",
    "approximate_vertex_connectivity",
    "st_numbering",
    "itai_rodeh_independent_trees",
]
