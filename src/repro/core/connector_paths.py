"""Connector paths (Section 4.1) — the analysis toolbox.

A *potential connector path* for a component ``C`` of class ``i`` at layer
``ℓ`` is a path ``P`` in the real graph with (A) one endpoint in ``Ψ(C)``
and the other in ``Ψ(V_i^ℓ \\ C)``, (B) at most two internal vertices, and
(C) minimality: if ``P = s, u, w, t`` then ``w`` has no neighbor in
``Ψ(C)`` and ``u`` has no neighbor in ``Ψ(V_i^ℓ \\ C)``.

The algorithm never computes these paths (that is its novelty over [12]);
the *analysis* does. This module computes them so the test suite and
benchmark E9 can check Lemma 4.3 (every non-singleton component of a
dominating class has ≥ k internally vertex-disjoint connector paths) and
the fast/slow component split of Lemma 4.4.

Internal vertices of connector paths are outside ``Ψ(V_i^ℓ)`` by
construction (Menger paths are shortened through non-class vertices), so
two *short* paths are internally disjoint iff their internal vertices
differ, and a maximum internally-disjoint family of short paths is simply
one per eligible internal vertex. For *long* paths, internally-disjoint
selection is a maximum matching problem on (u, w) pairs; we report the
exact value via networkx matching.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, List, Set, Tuple

import networkx as nx


@dataclass(frozen=True)
class ConnectorPathCount:
    """Disjoint connector path counts for one component."""

    short: int      # internally vertex-disjoint short paths (1 internal node)
    long: int       # internally vertex-disjoint long paths (2 internal nodes)

    @property
    def total(self) -> int:
        return self.short + self.long


def short_connector_internals(
    graph: nx.Graph,
    component: Set[Hashable],
    class_members: Set[Hashable],
) -> Set[Hashable]:
    """Internal vertices of short potential connector paths for ``component``.

    A vertex ``u ∉ Ψ(V_i)`` is such an internal vertex iff it neighbors
    both ``Ψ(C)`` and ``Ψ(V_i \\ C)``.
    """
    rest = class_members - component
    internals: Set[Hashable] = set()
    for u in graph.nodes():
        if u in class_members:
            continue
        sees_component = False
        sees_rest = False
        for nb in graph.neighbors(u):
            if nb in component:
                sees_component = True
            elif nb in rest:
                sees_rest = True
            if sees_component and sees_rest:
                internals.add(u)
                break
    return internals


def long_connector_pairs(
    graph: nx.Graph,
    component: Set[Hashable],
    class_members: Set[Hashable],
) -> List[Tuple[Hashable, Hashable]]:
    """Internal vertex pairs ``(u, w)`` of long potential connector paths.

    Condition (C) minimality: ``u`` neighbors ``Ψ(C)`` but not
    ``Ψ(V_i \\ C)``; ``w`` neighbors ``Ψ(V_i \\ C)`` but not ``Ψ(C)``;
    ``u ~ w``; both outside ``Ψ(V_i)``.
    """
    rest = class_members - component
    side_c: Set[Hashable] = set()
    side_rest: Set[Hashable] = set()
    for u in graph.nodes():
        if u in class_members:
            continue
        sees_component = any(nb in component for nb in graph.neighbors(u))
        sees_rest = any(nb in rest for nb in graph.neighbors(u))
        if sees_component and not sees_rest:
            side_c.add(u)
        elif sees_rest and not sees_component:
            side_rest.add(u)
    pairs = []
    for u in side_c:
        for w in graph.neighbors(u):
            if w in side_rest:
                pairs.append((u, w))
    return pairs


def count_disjoint_connector_paths(
    graph: nx.Graph,
    component: Set[Hashable],
    class_members: Set[Hashable],
) -> ConnectorPathCount:
    """Maximum internally vertex-disjoint connector path family sizes.

    Short paths: one per eligible internal vertex. Long paths: a maximum
    matching on the (u, w) pair graph, over vertices not already used by
    the short family (short and long internals are disjoint sets by
    minimality, so no interaction).
    """
    shorts = short_connector_internals(graph, component, class_members)
    pairs = long_connector_pairs(graph, component, class_members)
    pair_graph = nx.Graph()
    pair_graph.add_edges_from(
        (u, w) for u, w in pairs if u not in shorts and w not in shorts
    )
    matching = nx.max_weight_matching(pair_graph, maxcardinality=True)
    return ConnectorPathCount(short=len(shorts), long=len(matching))


def component_connector_profile(
    graph: nx.Graph, class_members: Set[Hashable]
) -> List[Tuple[Set[Hashable], ConnectorPathCount]]:
    """Connector path counts for every component of ``graph[class_members]``.

    Only meaningful when the class has ≥ 2 components (otherwise there is
    nothing to connect and the list of counts is empty).
    """
    induced = graph.subgraph(class_members)
    components = [set(c) for c in nx.connected_components(induced)]
    if len(components) < 2:
        return []
    return [
        (comp, count_disjoint_connector_paths(graph, comp, class_members))
        for comp in components
    ]
