"""Connector paths (Section 4.1) — the analysis toolbox.

A *potential connector path* for a component ``C`` of class ``i`` at layer
``ℓ`` is a path ``P`` in the real graph with (A) one endpoint in ``Ψ(C)``
and the other in ``Ψ(V_i^ℓ \\ C)``, (B) at most two internal vertices, and
(C) minimality: if ``P = s, u, w, t`` then ``w`` has no neighbor in
``Ψ(C)`` and ``u`` has no neighbor in ``Ψ(V_i^ℓ \\ C)``.

The algorithm never computes these paths (that is its novelty over [12]);
the *analysis* does. This module computes them so the test suite and
benchmark E9 can check Lemma 4.3 (every non-singleton component of a
dominating class has ≥ k internally vertex-disjoint connector paths) and
the fast/slow component split of Lemma 4.4.

Internal vertices of connector paths are outside ``Ψ(V_i^ℓ)`` by
construction (Menger paths are shortened through non-class vertices), so
two *short* paths are internally disjoint iff their internal vertices
differ, and a maximum internally-disjoint family of short paths is simply
one per eligible internal vertex. For *long* paths, internally-disjoint
selection is a maximum matching problem on (u, w) pairs; we report the
exact value via networkx matching.

The vertex scans run on the :class:`~repro.core.virtual_graph.CdsIndex`
canonicalization — flat membership arrays over integer node indices
instead of per-vertex set lookups — with labels restored at the API
boundary. :func:`component_connector_profile` canonicalizes once and
reuses the index for every component.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Hashable, List, Optional, Set, Tuple

import networkx as nx

from repro.core.virtual_graph import CdsIndex


@dataclass(frozen=True)
class ConnectorPathCount:
    """Disjoint connector path counts for one component."""

    short: int      # internally vertex-disjoint short paths (1 internal node)
    long: int       # internally vertex-disjoint long paths (2 internal nodes)

    @property
    def total(self) -> int:
        return self.short + self.long


def _side_flags(
    index: CdsIndex,
    component: Set[Hashable],
    class_members: Set[Hashable],
) -> Tuple[bytearray, bytearray]:
    """Flat membership flags: (in ``Ψ(C)``, in ``Ψ(V_i \\ C)``)."""
    n = index.n
    index_of = index.index_of
    in_comp = bytearray(n)
    in_rest = bytearray(n)
    for v in class_members:
        if v in component:
            in_comp[index_of[v]] = 1
        else:
            in_rest[index_of[v]] = 1
    return in_comp, in_rest


def short_connector_internals(
    graph: nx.Graph,
    component: Set[Hashable],
    class_members: Set[Hashable],
    index: Optional[CdsIndex] = None,
) -> Set[Hashable]:
    """Internal vertices of short potential connector paths for ``component``.

    A vertex ``u ∉ Ψ(V_i)`` is such an internal vertex iff it neighbors
    both ``Ψ(C)`` and ``Ψ(V_i \\ C)``.
    """
    index = index if index is not None else CdsIndex(graph)
    in_comp, in_rest = _side_flags(index, component, class_members)
    adj = index.adj
    nodes = index.nodes
    internals: Set[Hashable] = set()
    for u in range(index.n):
        if in_comp[u] or in_rest[u]:
            continue
        sees_component = False
        sees_rest = False
        for nb in adj[u]:
            if in_comp[nb]:
                sees_component = True
            elif in_rest[nb]:
                sees_rest = True
            if sees_component and sees_rest:
                internals.add(nodes[u])
                break
    return internals


def long_connector_pairs(
    graph: nx.Graph,
    component: Set[Hashable],
    class_members: Set[Hashable],
    index: Optional[CdsIndex] = None,
) -> List[Tuple[Hashable, Hashable]]:
    """Internal vertex pairs ``(u, w)`` of long potential connector paths.

    Condition (C) minimality: ``u`` neighbors ``Ψ(C)`` but not
    ``Ψ(V_i \\ C)``; ``w`` neighbors ``Ψ(V_i \\ C)`` but not ``Ψ(C)``;
    ``u ~ w``; both outside ``Ψ(V_i)``.
    """
    index = index if index is not None else CdsIndex(graph)
    in_comp, in_rest = _side_flags(index, component, class_members)
    adj = index.adj
    nodes = index.nodes
    n = index.n
    # 1 = sees only the component side, 2 = sees only the rest side.
    side = bytearray(n)
    for u in range(n):
        if in_comp[u] or in_rest[u]:
            continue
        sees_component = False
        sees_rest = False
        for nb in adj[u]:
            if in_comp[nb]:
                sees_component = True
            elif in_rest[nb]:
                sees_rest = True
        if sees_component and not sees_rest:
            side[u] = 1
        elif sees_rest and not sees_component:
            side[u] = 2
    pairs: List[Tuple[Hashable, Hashable]] = []
    for u in range(n):
        if side[u] != 1:
            continue
        for w in adj[u]:
            if side[w] == 2:
                pairs.append((nodes[u], nodes[w]))
    return pairs


def count_disjoint_connector_paths(
    graph: nx.Graph,
    component: Set[Hashable],
    class_members: Set[Hashable],
    index: Optional[CdsIndex] = None,
) -> ConnectorPathCount:
    """Maximum internally vertex-disjoint connector path family sizes.

    Short paths: one per eligible internal vertex. Long paths: a maximum
    matching on the (u, w) pair graph, over vertices not already used by
    the short family (short and long internals are disjoint sets by
    minimality, so no interaction).
    """
    index = index if index is not None else CdsIndex(graph)
    shorts = short_connector_internals(graph, component, class_members, index)
    pairs = long_connector_pairs(graph, component, class_members, index)
    pair_graph = nx.Graph()
    pair_graph.add_edges_from(
        (u, w) for u, w in pairs if u not in shorts and w not in shorts
    )
    matching = nx.max_weight_matching(pair_graph, maxcardinality=True)
    return ConnectorPathCount(short=len(shorts), long=len(matching))


def component_connector_profile(
    graph: nx.Graph, class_members: Set[Hashable]
) -> List[Tuple[Set[Hashable], ConnectorPathCount]]:
    """Connector path counts for every component of ``graph[class_members]``.

    Only meaningful when the class has ≥ 2 components (otherwise there is
    nothing to connect and the list of counts is empty).
    """
    index = CdsIndex(graph)
    adj = index.adj
    nodes = index.nodes
    member = bytearray(index.n)
    member_indices = [index.index_of[v] for v in class_members]
    for i in member_indices:
        member[i] = 1
    # Components of the induced subgraph, discovered in node order (the
    # same order nx.connected_components reports them).
    seen = bytearray(index.n)
    components: List[Set[Hashable]] = []
    for start in sorted(member_indices):
        if seen[start]:
            continue
        seen[start] = 1
        queue = deque([start])
        comp: Set[Hashable] = set()
        while queue:
            a = queue.popleft()
            comp.add(nodes[a])
            for b in adj[a]:
                if member[b] and not seen[b]:
                    seen[b] = 1
                    queue.append(b)
        components.append(comp)
    if len(components) < 2:
        return []
    return [
        (comp, count_disjoint_connector_paths(graph, comp, class_members, index))
        for comp in components
    ]
