"""Vertex independent trees from dominating tree packings (Section 1.4.1).

Zehavi and Itai [51] conjectured that every k-vertex-connected graph has
``k`` *vertex independent trees*: spanning trees rooted at a common root
``r`` such that for every vertex ``v``, the r→v paths in different trees
are internally vertex-disjoint. The conjecture is open for ``k ≥ 4``.

The paper observes that vertex-disjoint dominating trees are *strictly
stronger*: given ``k'`` vertex-disjoint dominating trees, attaching every
remaining vertex as a leaf to each tree (possible by domination) yields
``k'`` vertex independent trees for any root — each r→v path uses
internal vertices only from its own dominating tree. Combined with the
integral packing of :mod:`repro.core.integral_packing`, this makes [12]'s
polylog approximation of the conjecture *algorithmic* with near-optimal
complexity (Section 1.4.1, last paragraph).

:func:`independent_trees_from_packing` performs that conversion and
:func:`verify_vertex_independent` checks the independence property
exactly (used by the tests).
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional

import networkx as nx

from repro.errors import GraphValidationError, PackingValidationError
from repro.core.tree_packing import DominatingTreePacking


def attach_leaves(
    graph: nx.Graph, tree: nx.Graph, root_hint: Optional[Hashable] = None
) -> nx.Graph:
    """Extend a dominating tree to a spanning tree by attaching every
    non-tree vertex as a leaf to one of its dominating neighbors."""
    spanning = nx.Graph()
    spanning.add_nodes_from(graph.nodes())
    spanning.add_edges_from(tree.edges())
    members = set(tree.nodes())
    for v in graph.nodes():
        if v in members:
            continue
        anchor = next(
            (u for u in graph.neighbors(v) if u in members), None
        )
        if anchor is None:
            raise PackingValidationError(
                f"node {v!r} has no neighbor in the dominating tree"
            )
        spanning.add_edge(v, anchor)
    if not nx.is_tree(spanning):
        raise PackingValidationError("leaf attachment did not yield a tree")
    return spanning


def independent_trees_from_packing(
    packing: DominatingTreePacking, root: Hashable
) -> List[nx.Graph]:
    """Turn a *vertex-disjoint* dominating tree packing into vertex
    independent spanning trees rooted at ``root`` (Section 1.4.1).

    Requires the packing to be vertex-disjoint (integral); raises
    :class:`GraphValidationError` otherwise, since overlapping trees
    cannot guarantee internally disjoint paths.
    """
    if root not in packing.graph:
        raise GraphValidationError(f"root {root!r} not in graph")
    if not packing.is_vertex_disjoint():
        raise GraphValidationError(
            "independent trees require a vertex-disjoint packing; "
            "use repro.core.integral_packing"
        )
    return [attach_leaves(packing.graph, wt.tree) for wt in packing.trees]


def verify_vertex_independent(
    graph: nx.Graph, trees: List[nx.Graph], root: Hashable
) -> bool:
    """Exact check of the vertex-independence property.

    For every vertex ``v``, the unique root→v paths in the different
    trees must be pairwise internally vertex-disjoint.
    """
    if not trees:
        return True
    for tree in trees:
        if set(tree.nodes()) != set(graph.nodes()) or not nx.is_tree(tree):
            return False
    paths_per_tree: List[Dict[Hashable, List[Hashable]]] = []
    for tree in trees:
        paths = nx.single_source_shortest_path(tree, root)
        paths_per_tree.append(paths)
    for v in graph.nodes():
        if v == root:
            continue
        internals = []
        for paths in paths_per_tree:
            internal = set(paths[v][1:-1])
            internals.append(internal)
        for i in range(len(internals)):
            for j in range(i + 1, len(internals)):
                if internals[i] & internals[j]:
                    return False
    return True
