"""Dinic's blocking-flow maximum-flow algorithm.

This is the flow substrate every exact connectivity baseline in
:mod:`repro.baselines` is built on. It is deliberately self-contained —
adjacency lists of edge records with explicit residual twins — so the
exact baselines do not depend on networkx internals and the tests can
cross-check the two implementations against each other.

Dinic's algorithm runs in ``O(V²E)`` in general and ``O(E·√V)`` on the
unit-capacity networks produced by vertex splitting, which is exactly the
regime of the Even–Tarjan vertex connectivity baseline.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Hashable, List, Set, Tuple

from repro.errors import GraphValidationError

#: Capacity value treated as "unbounded" (edges of the split digraph that
#: must never be saturated by a minimum cut).
INFINITE_CAPACITY = 1 << 60


class _Edge:
    """One directed arc plus a pointer to its residual twin."""

    __slots__ = ("target", "capacity", "flow", "twin_index")

    def __init__(self, target: int, capacity: int, twin_index: int) -> None:
        self.target = target
        self.capacity = capacity
        self.flow = 0
        self.twin_index = twin_index

    @property
    def residual(self) -> int:
        return self.capacity - self.flow


class FlowNetwork:
    """A directed capacitated network with hashable node names.

    Nodes are added implicitly by :meth:`add_edge`. Each call creates the
    forward arc and a zero-capacity residual twin; antiparallel arcs are
    supported (each gets its own twin).
    """

    def __init__(self) -> None:
        self._index: Dict[Hashable, int] = {}
        self._names: List[Hashable] = []
        self._adjacency: List[List[_Edge]] = []

    @property
    def node_count(self) -> int:
        return len(self._names)

    @property
    def arc_count(self) -> int:
        """Number of forward arcs (residual twins excluded)."""
        return sum(len(edges) for edges in self._adjacency) // 2

    def node_index(self, node: Hashable) -> int:
        """Internal index of ``node``, creating it on first use."""
        if node not in self._index:
            self._index[node] = len(self._names)
            self._names.append(node)
            self._adjacency.append([])
        return self._index[node]

    def has_node(self, node: Hashable) -> bool:
        return node in self._index

    def add_edge(self, source: Hashable, target: Hashable, capacity: int) -> None:
        """Add a directed arc ``source → target`` with the given capacity."""
        if capacity < 0:
            raise GraphValidationError("capacity must be non-negative")
        if source == target:
            raise GraphValidationError("self-loop arcs are not allowed")
        u = self.node_index(source)
        v = self.node_index(target)
        forward = _Edge(v, capacity, len(self._adjacency[v]))
        backward = _Edge(u, 0, len(self._adjacency[u]))
        self._adjacency[u].append(forward)
        self._adjacency[v].append(backward)

    def reset_flow(self) -> None:
        """Zero out all flow, restoring the network to its initial state."""
        for edges in self._adjacency:
            for edge in edges:
                edge.flow = 0

    # -- Dinic -----------------------------------------------------------

    def _bfs_levels(self, source: int, sink: int) -> List[int]:
        """Level graph: BFS distance from ``source`` along residual arcs.

        Returns -1 for unreachable nodes; the search stops early once the
        sink has been levelled (deeper levels cannot be on a shortest
        augmenting path).
        """
        levels = [-1] * self.node_count
        levels[source] = 0
        queue = deque([source])
        while queue:
            u = queue.popleft()
            if u == sink:
                break
            for edge in self._adjacency[u]:
                if edge.residual > 0 and levels[edge.target] < 0:
                    levels[edge.target] = levels[u] + 1
                    queue.append(edge.target)
        return levels

    def _blocking_flow(
        self,
        source: int,
        sink: int,
        levels: List[int],
        pointers: List[int],
    ) -> int:
        """Find one augmenting path in the level graph and push flow.

        Explicit-stack DFS with per-node arc pointers (the classical
        "current arc" optimization); iterative so that long augmenting
        paths (up to V arcs) cannot exhaust Python's recursion limit.
        Returns the amount pushed, 0 if the level graph is exhausted.
        """
        path: List[_Edge] = []
        u = source
        while True:
            if u == sink:
                amount = min(edge.residual for edge in path)
                for edge in path:
                    edge.flow += amount
                    self._adjacency[edge.target][edge.twin_index].flow -= amount
                return amount
            adjacency = self._adjacency[u]
            advanced = False
            while pointers[u] < len(adjacency):
                edge = adjacency[pointers[u]]
                if edge.residual > 0 and levels[edge.target] == levels[u] + 1:
                    path.append(edge)
                    u = edge.target
                    advanced = True
                    break
                pointers[u] += 1
            if advanced:
                continue
            if u == source:
                return 0
            # Dead end: retreat and retire the arc that led here.
            dead_end_arc = path.pop()
            u = self._adjacency[dead_end_arc.target][dead_end_arc.twin_index].target
            pointers[u] += 1

    def max_flow(self, source: Hashable, sink: Hashable) -> int:
        """Maximum ``source → sink`` flow value.

        Flow state persists on the network afterwards, which is what
        :meth:`source_side_of_min_cut` reads; call :meth:`reset_flow` to
        reuse the network for a different terminal pair.
        """
        if source == sink:
            raise GraphValidationError("source and sink must differ")
        if not self.has_node(source) or not self.has_node(sink):
            raise GraphValidationError("source and sink must be network nodes")
        s = self._index[source]
        t = self._index[sink]
        total = 0
        while True:
            levels = self._bfs_levels(s, t)
            if levels[t] < 0:
                return total
            pointers = [0] * self.node_count
            while True:
                pushed = self._blocking_flow(s, t, levels, pointers)
                if pushed == 0:
                    break
                total += pushed

    def source_side_of_min_cut(self, source: Hashable) -> Set[Hashable]:
        """Nodes residual-reachable from ``source`` after a max-flow run.

        By max-flow/min-cut duality the arcs leaving this set form a
        minimum cut.
        """
        if not self.has_node(source):
            raise GraphValidationError("source must be a network node")
        start = self._index[source]
        seen = [False] * self.node_count
        seen[start] = True
        queue = deque([start])
        while queue:
            u = queue.popleft()
            for edge in self._adjacency[u]:
                if edge.residual > 0 and not seen[edge.target]:
                    seen[edge.target] = True
                    queue.append(edge.target)
        return {self._names[i] for i in range(self.node_count) if seen[i]}


def max_flow(network: FlowNetwork, source: Hashable, sink: Hashable) -> int:
    """Functional wrapper: maximum flow value from ``source`` to ``sink``."""
    return network.max_flow(source, sink)


def min_cut(
    network: FlowNetwork, source: Hashable, sink: Hashable
) -> Tuple[int, Set[Hashable]]:
    """Minimum ``source``/``sink`` cut: ``(value, source-side node set)``.

    The second component is the set of nodes on the source side of one
    minimum cut (the residual-reachable set after a max-flow run).
    """
    value = network.max_flow(source, sink)
    return value, network.source_side_of_min_cut(source)
