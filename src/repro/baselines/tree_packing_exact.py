"""Roskind–Tarjan matroid-union packing of edge-disjoint spanning trees.

Tutte [50] and Nash-Williams [40] prove every graph with edge
connectivity ``λ`` contains ``⌈(λ−1)/2⌉`` edge-disjoint spanning trees;
the paper's Theorem 1.3 matches that bound fractionally. This module is
the *exact integral* comparator: the matroid-union augmenting-path
algorithm of Roskind & Tarjan (1985), which packs the maximum possible
number of edge-disjoint spanning trees (Gabow–Westermann [19] is the
asymptotically faster descendant of the same scheme).

Algorithm sketch. Maintain ``k`` edge-disjoint forests ``F₁ … F_k``.
For each graph edge ``e`` in turn, search for an *augmenting sequence*:
a breadth-first search over edges where scanning edge ``g`` against
forest ``F_i`` either finds ``g`` joins two trees of ``F_i`` (augment:
insert ``g`` and unwind the label chain, swapping each predecessor into
the slot its successor vacated) or labels the edges of the fundamental
cycle of ``g`` in ``F_i``. By the matroid-union theorem the union ends
maximal: its total size equals ``min(k·(n−1), rank of the k-fold graphic
matroid sum)``, so the graph has ``k`` edge-disjoint spanning trees
exactly when every forest finishes with ``n − 1`` edges.

Complexity here is the textbook ``O(k·m²)`` bound (we re-run BFS for
forest path queries rather than maintaining dynamic trees), which is
comfortable at reproduction scale and keeps the code auditable.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, FrozenSet, Hashable, List, Optional, Set, Tuple

import networkx as nx

from repro.errors import GraphValidationError

_Edge = FrozenSet[Hashable]


def _edge(u: Hashable, v: Hashable) -> _Edge:
    return frozenset((u, v))


class _Forest:
    """One forest of the union: adjacency sets plus path queries."""

    def __init__(self, nodes) -> None:
        self.adjacency: Dict[Hashable, Set[Hashable]] = {v: set() for v in nodes}
        self.edge_count = 0

    def has_edge(self, e: _Edge) -> bool:
        u, v = tuple(e)
        return v in self.adjacency[u]

    def add(self, e: _Edge) -> None:
        u, v = tuple(e)
        self.adjacency[u].add(v)
        self.adjacency[v].add(u)
        self.edge_count += 1

    def remove(self, e: _Edge) -> None:
        u, v = tuple(e)
        self.adjacency[u].discard(v)
        self.adjacency[v].discard(u)
        self.edge_count -= 1

    def path(self, source: Hashable, target: Hashable) -> Optional[List[_Edge]]:
        """Edges of the tree path ``source → target``; None if separated."""
        if source == target:
            return []
        parents: Dict[Hashable, Hashable] = {source: source}
        queue = deque([source])
        while queue:
            x = queue.popleft()
            for y in self.adjacency[x]:
                if y in parents:
                    continue
                parents[y] = x
                if y == target:
                    path = []
                    while y != source:
                        path.append(_edge(y, parents[y]))
                        y = parents[y]
                    return path
                queue.append(y)
        return None

    def connected(self, source: Hashable, target: Hashable) -> bool:
        return self.path(source, target) is not None

    def to_graph(self) -> nx.Graph:
        graph = nx.Graph()
        graph.add_nodes_from(self.adjacency)
        for u, neighbors in self.adjacency.items():
            for v in neighbors:
                graph.add_edge(u, v)
        return graph


def _try_augment(forests: List[_Forest], new_edge: _Edge) -> bool:
    """Attempt to add ``new_edge`` to the union of ``forests``.

    Breadth-first search over labelled edges. ``labels[g] = (parent, i)``
    records that ``g`` lies on the fundamental cycle created by ``parent``
    in forest ``F_i``. When some scanned edge fits into a forest without
    creating a cycle, the label chain is unwound: each edge is moved into
    the forest where its *child* in the chain just freed a slot.

    Returns True iff the union grew by one edge.
    """
    labels: Dict[_Edge, Tuple[Optional[_Edge], int]] = {new_edge: (None, -1)}
    queue = deque([new_edge])
    while queue:
        g = queue.popleft()
        gu, gv = tuple(g)
        for i, forest in enumerate(forests):
            cycle_path = forest.path(gu, gv)
            if cycle_path is None:
                # g joins two trees of F_i: augment along the label chain.
                _apply_swaps(forests, labels, g, i)
                return True
            for cycle_edge in cycle_path:
                if cycle_edge not in labels:
                    labels[cycle_edge] = (g, i)
                    queue.append(cycle_edge)
    return False


def _apply_swaps(
    forests: List[_Forest],
    labels: Dict[_Edge, Tuple[Optional[_Edge], int]],
    edge: _Edge,
    forest_index: int,
) -> None:
    """Unwind the label chain, performing the exchange sequence.

    ``edge`` enters ``forests[forest_index]``. If ``edge`` carried a label
    ``(parent, i)`` it currently lives in ``F_i``'s cycle for ``parent``;
    it leaves ``F_i`` and ``parent`` recursively takes its place there.
    """
    while True:
        parent, parent_forest = labels[edge]
        if parent is None:
            forests[forest_index].add(edge)
            return
        forests[parent_forest].remove(edge)
        forests[forest_index].add(edge)
        edge = parent
        forest_index = parent_forest


def edge_disjoint_spanning_forests(
    graph: nx.Graph, k: int
) -> List[nx.Graph]:
    """A maximum union of ``k`` edge-disjoint forests of ``graph``.

    The returned forests partition a maximum-size subset of the edges
    into ``k`` forests (the ``k``-fold graphic matroid sum). The graph
    has ``k`` edge-disjoint spanning trees iff every returned forest is
    spanning (``n − 1`` edges each, Tutte/Nash-Williams via matroid
    union).
    """
    if k < 1:
        raise GraphValidationError("k must be >= 1")
    if graph.number_of_nodes() == 0:
        raise GraphValidationError("graph must be non-empty")
    forests = [_Forest(graph.nodes()) for _ in range(k)]
    for u, v in graph.edges():
        _try_augment(forests, _edge(u, v))
    return [forest.to_graph() for forest in forests]


def spanning_tree_packing_number(graph: nx.Graph) -> int:
    """The maximum number of edge-disjoint spanning trees of ``graph``.

    Incrementally raises ``k`` until the matroid union can no longer keep
    every forest spanning. Returns 0 for disconnected graphs.
    """
    n = graph.number_of_nodes()
    if n == 0:
        raise GraphValidationError("graph must be non-empty")
    if n == 1:
        # A single node is spanned by the empty tree arbitrarily often;
        # conventionally the packing number is unbounded — report the
        # only meaningful finite answer for downstream ratio computations.
        return 0
    if not nx.is_connected(graph):
        return 0
    # λ is an upper bound (each spanning tree crosses every cut), and the
    # packing number is at least 1 for a connected graph.
    best = 1
    while True:
        k = best + 1
        if k * (n - 1) > graph.number_of_edges():
            return best
        forests = edge_disjoint_spanning_forests(graph, k)
        if all(f.number_of_edges() == n - 1 for f in forests):
            best = k
        else:
            return best


def max_spanning_tree_packing(graph: nx.Graph) -> List[nx.Graph]:
    """The largest collection of edge-disjoint spanning trees of ``graph``.

    Returns ``T`` spanning trees where ``T`` is the packing number; an
    empty list when the graph is disconnected.
    """
    count = spanning_tree_packing_number(graph)
    if count == 0:
        return []
    forests = edge_disjoint_spanning_forests(graph, count)
    return forests
