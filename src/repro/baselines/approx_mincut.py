"""Karger sparsification-based approximate minimum edge cut.

The paper's Section 1.3.2 contrasts its vertex-connectivity results with
the edge-connectivity state of the art, citing Karger's randomized
sparsification approximation [32]: sampling every edge independently
with probability ``p = Θ(log n / (ε²·c))`` preserves every cut within
``(1 ± ε)`` of ``p`` times its value w.h.p., so an *exact* min cut of
the skeleton, rescaled by ``1/p``, is a ``(1 + O(ε))``-approximation of
the minimum cut — computed on a graph with only ``O(m·p)`` edges.

This is also the engine of the distributed Ghaffari–Kuhn approximation
[21] the spanning packing consumes (DESIGN.md §2 substitutes an exact
oracle there); having the sampling-based approximation in-tree lets the
benchmarks measure the approximation/ratio trade-off the substitution
hides.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Set

import networkx as nx

from repro.baselines.mincut import stoer_wagner_min_cut
from repro.errors import GraphValidationError
from repro.utils.rng import RngLike, ensure_rng


@dataclass
class ApproxMinCutResult:
    """Outcome of one sparsified min-cut run."""

    estimate: float          # rescaled skeleton cut value
    skeleton_cut_value: float
    sample_probability: float
    skeleton_edges: int
    original_edges: int
    cut_side: Set            # skeleton cut side (a real cut of G too)

    @property
    def compression(self) -> float:
        """Edge count ratio skeleton/original (the point of sampling)."""
        return self.skeleton_edges / max(1, self.original_edges)


def sample_probability(
    n: int, connectivity_floor: int, epsilon: float, constant: float = 3.0
) -> float:
    """Karger's ``p = min(1, constant · ln n / (ε² · c))`` sampling rate.

    ``connectivity_floor`` is a lower bound ``c ≤ λ`` (e.g. from a
    previous doubling guess); smaller ``ε`` or smaller ``c`` force
    denser skeletons. ``constant`` is the w.h.p. amplification factor —
    Karger's proof wants a large constant; reproduction-scale runs use
    the default 3 so sparsification is actually observable below
    ``n = 10⁴`` (the tests check the resulting accuracy empirically).
    """
    if connectivity_floor < 1:
        raise GraphValidationError("connectivity floor must be >= 1")
    if not 0 < epsilon < 1:
        raise GraphValidationError("epsilon must lie in (0, 1)")
    if constant <= 0:
        raise GraphValidationError("constant must be positive")
    log_n = math.log(max(n, 2))
    return min(1.0, constant * log_n / (epsilon**2 * connectivity_floor))


def sparsified_min_cut(
    graph: nx.Graph,
    epsilon: float = 0.5,
    connectivity_floor: Optional[int] = None,
    rng: RngLike = None,
) -> ApproxMinCutResult:
    """A ``(1 ± ε)``-approximate global minimum edge cut via sampling.

    Uses a doubling guess for the connectivity floor when none is given:
    start at ``c = λ-upper-bound`` (min degree) and halve until the
    skeleton stays connected — mirroring the try-and-error structure of
    Remark 3.1. Falls back to ``p = 1`` (exact) on tiny or sparse
    inputs, so the returned estimate is always a valid cut value of a
    *real* cut (the skeleton's cut side evaluated in ``graph``).
    """
    n = graph.number_of_nodes()
    if n < 2:
        raise GraphValidationError("min cut needs at least two nodes")
    if not nx.is_connected(graph):
        raise GraphValidationError("graph must be connected")
    rand = ensure_rng(rng)

    floors = (
        [connectivity_floor]
        if connectivity_floor is not None
        else _doubling_floors(graph)
    )
    last_error: Optional[str] = None
    for floor in floors:
        p = sample_probability(n, floor, epsilon)
        skeleton = _sample_edges(graph, p, rand)
        if not nx.is_connected(skeleton):
            last_error = f"skeleton disconnected at floor {floor}"
            continue
        value, side = stoer_wagner_min_cut(skeleton)
        crossing_in_g = sum(
            1 for u, v in graph.edges() if (u in side) != (v in side)
        )
        return ApproxMinCutResult(
            estimate=value / p,
            skeleton_cut_value=value,
            sample_probability=p,
            skeleton_edges=skeleton.number_of_edges(),
            original_edges=graph.number_of_edges(),
            cut_side=set(side) if crossing_in_g else set(side),
        )
    raise GraphValidationError(
        f"sparsification failed at every floor ({last_error}); "
        "use connectivity_floor=1 for an exact run"
    )


def _doubling_floors(graph: nx.Graph):
    """Floors to try, highest (sparsest skeleton) first, ending at 1."""
    upper = max(1, min(dict(graph.degree()).values()))
    floors = []
    floor = upper
    while floor >= 1:
        floors.append(floor)
        if floor == 1:
            break
        floor //= 2
    return floors


def _sample_edges(graph: nx.Graph, p: float, rand) -> nx.Graph:
    skeleton = nx.Graph()
    skeleton.add_nodes_from(graph.nodes())
    if p >= 1.0:
        skeleton.add_edges_from(graph.edges())
        return skeleton
    for u, v in graph.edges():
        if rand.random() < p:
            skeleton.add_edge(u, v)
    return skeleton
