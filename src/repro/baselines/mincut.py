"""Stoer–Wagner global minimum edge cut.

The exact oracle for edge connectivity ``λ``, implemented from scratch.
The paper's edge-connectivity results (Theorem 1.3, Section 5) are all
phrased relative to ``λ``; the benchmark harness uses this oracle to
measure the achieved spanning-tree-packing sizes against the
Tutte/Nash-Williams bound ``⌈(λ−1)/2⌉``, and the Karger-sampling
experiment (E12) uses it to check per-subgraph connectivity
concentration.

The algorithm repeats ``n − 1`` *minimum-cut-phases*. Each phase grows a
set ``A`` by most-tightly-connected insertion; the cut that separates the
last-added vertex is a candidate ("cut-of-the-phase"), and the last two
vertices are merged. The best candidate over all phases is a global
minimum cut (Stoer & Wagner, JACM 1997). ``O(n·m + n² log n)`` with a
heap; this implementation uses a simple ``O(n²)`` selection per phase,
which is plenty at reproduction scale and has no tie-breaking subtleties.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Hashable, List, Set, Tuple

import networkx as nx

from repro.errors import GraphValidationError


def stoer_wagner_min_cut(
    graph: nx.Graph, weight_attribute: str = "weight"
) -> Tuple[float, Set[Hashable]]:
    """Global minimum edge cut: ``(weight, one side of the partition)``.

    Edge weights default to 1 (so on unweighted graphs the value is the
    edge connectivity ``λ``); a different per-edge attribute can be named
    via ``weight_attribute``. Requires a connected graph with at least
    two nodes — a disconnected input has a trivial cut of weight 0, which
    callers should detect directly.
    """
    n = graph.number_of_nodes()
    if n < 2:
        raise GraphValidationError("min cut needs at least two nodes")
    if not nx.is_connected(graph):
        raise GraphValidationError(
            "graph is disconnected; the minimum cut is trivially 0"
        )

    # Contracted-graph adjacency: weights[u][v] = total weight between
    # super-nodes u and v. members[u] = original vertices merged into u.
    weights: Dict[Hashable, Dict[Hashable, float]] = {
        v: {} for v in graph.nodes()
    }
    for u, v, data in graph.edges(data=True):
        w = float(data.get(weight_attribute, 1.0))
        if w < 0:
            raise GraphValidationError("edge weights must be non-negative")
        weights[u][v] = weights[u].get(v, 0.0) + w
        weights[v][u] = weights[v].get(u, 0.0) + w
    members: Dict[Hashable, Set[Hashable]] = {
        v: {v} for v in graph.nodes()
    }

    best_value = float("inf")
    best_side: Set[Hashable] = set()
    while len(weights) > 1:
        value, last, second_last = _minimum_cut_phase(weights)
        if value < best_value:
            best_value = value
            best_side = set(members[last])
        _merge(weights, members, second_last, last)
    return best_value, best_side


def _minimum_cut_phase(
    weights: Dict[Hashable, Dict[Hashable, float]],
) -> Tuple[float, Hashable, Hashable]:
    """One maximum-adjacency sweep.

    Returns ``(cut_of_the_phase, last_added, second_to_last_added)``.
    """
    nodes = list(weights)
    start = nodes[0]
    in_a = {start}
    # connection[v] = total weight from v into the growing set A.
    connection: Dict[Hashable, float] = {
        v: weights[start].get(v, 0.0) for v in nodes if v != start
    }
    order: List[Hashable] = [start]
    while connection:
        tightest = max(connection, key=lambda v: connection[v])
        tight_value = connection.pop(tightest)
        in_a.add(tightest)
        order.append(tightest)
        for neighbor, w in weights[tightest].items():
            if neighbor not in in_a:
                connection[neighbor] = connection.get(neighbor, 0.0) + w
        last_connection = tight_value
    return last_connection, order[-1], order[-2]


def _merge(
    weights: Dict[Hashable, Dict[Hashable, float]],
    members: Dict[Hashable, Set[Hashable]],
    keep: Hashable,
    absorb: Hashable,
) -> None:
    """Contract super-node ``absorb`` into ``keep``."""
    for neighbor, w in weights[absorb].items():
        if neighbor == keep:
            continue
        weights[keep][neighbor] = weights[keep].get(neighbor, 0.0) + w
        weights[neighbor][keep] = weights[keep][neighbor]
        del weights[neighbor][absorb]
    weights[keep].pop(absorb, None)
    del weights[absorb]
    members[keep] |= members[absorb]
    del members[absorb]


def edge_connectivity_exact(graph: nx.Graph) -> int:
    """Edge connectivity ``λ`` of an unweighted graph via Stoer–Wagner.

    Returns 0 for disconnected or single-node graphs.
    """
    if graph.number_of_nodes() == 0:
        raise GraphValidationError("graph must be non-empty")
    if graph.number_of_nodes() == 1 or not nx.is_connected(graph):
        return 0
    value, _ = stoer_wagner_min_cut(graph)
    return int(round(value))


def crossing_edges(
    graph: nx.Graph, side: Set[Hashable]
) -> List[FrozenSet[Hashable]]:
    """The edges crossing the cut ``(side, V − side)``.

    Convenience used by tests and the oblivious-routing bench to convert
    a cut side into the actual bottleneck edge set.
    """
    inside = set(side)
    return [
        frozenset((u, v))
        for u, v in graph.edges()
        if (u in inside) != (v in inside)
    ]
