"""Even–Tarjan exact vertex connectivity via vertex splitting + max-flow.

The paper's Section 1.3.2 frames its ``O(log n)``-approximation against
the classical exact algorithms [16, 18, 20, 26, 27, 48], all of which
reduce vertex connectivity to unit-capacity maximum flow on the *split
digraph*: every vertex ``v`` becomes an arc ``v_in → v_out`` of capacity
1, and every undirected edge ``{u, v}`` becomes two unbounded arcs
``u_out → v_in`` and ``v_out → u_in``. Menger's theorem then says that
the ``s``–``t`` max-flow in this digraph equals the maximum number of
internally vertex-disjoint ``s``–``t`` paths.

The global connectivity loop is the Even–Tarjan schedule: scan vertices
``v₁, v₂, …`` in order and compute ``κ(vᵢ, u)`` for every non-neighbor
``u``; once ``i`` exceeds the best cut value found so far, stop. This is
correct because a minimum vertex cut ``C`` has ``|C| = κ`` nodes, so at
least one of the first ``κ + 1`` scanned vertices lies outside ``C``;
from that vertex, every vertex in another component of ``G − C`` is
non-adjacent and yields a flow of exactly ``κ``.

This module is the exact oracle used by experiment E7 (the approximation
ratio of Corollary 1.7) and the cut extraction used by experiment E13.
"""

from __future__ import annotations

from typing import Hashable, Optional, Set, Tuple

import networkx as nx

from repro.baselines.maxflow import INFINITE_CAPACITY, FlowNetwork
from repro.errors import GraphValidationError


def _split_digraph(graph: nx.Graph) -> FlowNetwork:
    """Build the unit-capacity split digraph of ``graph``.

    Node ``v`` appears as ``("in", v)`` and ``("out", v)``.
    """
    network = FlowNetwork()
    for v in graph.nodes():
        network.add_edge(("in", v), ("out", v), 1)
    for u, v in graph.edges():
        network.add_edge(("out", u), ("in", v), INFINITE_CAPACITY)
        network.add_edge(("out", v), ("in", u), INFINITE_CAPACITY)
    return network


def local_vertex_connectivity_flow(
    graph: nx.Graph, source: Hashable, target: Hashable
) -> int:
    """``κ(source, target)``: max internally vertex-disjoint path count.

    For adjacent terminals the value is defined as
    ``1 + κ_{G − {source,target} edge}(source, target)`` following the
    usual convention; the decomposition experiments only query
    non-adjacent pairs, where this is simply the split-digraph max-flow.
    """
    if source == target:
        raise GraphValidationError("source and target must differ")
    if not graph.has_node(source) or not graph.has_node(target):
        raise GraphValidationError("terminals must be graph nodes")
    if graph.has_edge(source, target):
        reduced = graph.copy()
        reduced.remove_edge(source, target)
        return 1 + local_vertex_connectivity_flow(reduced, source, target)
    network = _split_digraph(graph)
    return network.max_flow(("out", source), ("in", target))


def _min_terminal_cut(
    graph: nx.Graph, source: Hashable, target: Hashable
) -> Tuple[int, Set[Hashable]]:
    """``(κ(s,t), cut)`` for a non-adjacent pair, via the residual graph.

    The cut is the set of original vertices whose internal
    ``in → out`` arc is saturated and crosses the residual boundary.
    """
    network = _split_digraph(graph)
    value = network.max_flow(("out", source), ("in", target))
    source_side = network.source_side_of_min_cut(("out", source))
    cut = {
        v
        for v in graph.nodes()
        if ("in", v) in source_side and ("out", v) not in source_side
    }
    return value, cut


def even_tarjan_vertex_connectivity(
    graph: nx.Graph, with_cut: bool = False
) -> Tuple[int, Optional[Set[Hashable]]]:
    """Exact vertex connectivity ``κ(G)``, optionally with a minimum cut.

    Returns ``(k, cut)``; ``cut`` is ``None`` when ``with_cut`` is false
    or when the graph is complete (complete graphs have no vertex cut and
    connectivity ``n − 1`` by convention) or disconnected (``k = 0``).
    """
    n = graph.number_of_nodes()
    if n == 0:
        raise GraphValidationError("graph must be non-empty")
    if n == 1:
        return 0, None
    if not nx.is_connected(graph):
        return 0, None
    if graph.number_of_edges() == n * (n - 1) // 2:
        return n - 1, None

    # Scanning lowest-degree vertices first tightens `best` quickly: the
    # minimum degree is an upper bound on κ, reached on the first scan.
    order = sorted(graph.nodes(), key=lambda v: (graph.degree(v), str(v)))
    best = n - 1
    best_cut: Optional[Set[Hashable]] = None
    for scanned, source in enumerate(order):
        if scanned > best:
            break
        non_neighbors = [
            u
            for u in graph.nodes()
            if u != source and not graph.has_edge(source, u)
        ]
        for target in non_neighbors:
            value, cut = _min_terminal_cut(graph, source, target)
            if value < best:
                best = value
                best_cut = cut
    return best, (best_cut if with_cut else None)
