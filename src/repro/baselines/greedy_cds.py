"""Guha–Khuller-style greedy connected dominating set.

The paper's discussion of Ene et al. [15] notes their fractional CDS
packing leans on the Min-Cost-CDS approximation of Guha and Khuller
[23]. This module implements the classical greedy CDS construction from
that line of work: it is the *quality* comparator for individual classes
of our CDS packing — a packing class should not be wildly larger than a
greedily-built CDS, and the greedy set's size calibrates the
``O(n log n / k)`` class-size bound of Lemma 4.6.

The algorithm is the two-color growth process: start from a maximum
degree vertex; repeatedly pick the gray (dominated, unselected) vertex
covering the most white (undominated) vertices and color it black
(selected). Selected vertices always form a connected subgraph because
only dominated vertices are ever selected. This is the
``2(1 + H(Δ))``-approximation variant of Guha–Khuller (first phase
only), ample for a size baseline.
"""

from __future__ import annotations

from typing import Hashable, List, Set

import networkx as nx

from repro.errors import GraphValidationError


def greedy_connected_dominating_set(graph: nx.Graph) -> Set[Hashable]:
    """A small connected dominating set of ``graph`` via greedy growth.

    Requires a connected graph. For a single node, returns that node.
    The result is guaranteed to be a CDS (the tests check it against
    :func:`repro.graphs.connectivity.is_connected_dominating_set`).
    """
    n = graph.number_of_nodes()
    if n == 0:
        raise GraphValidationError("graph must be non-empty")
    if not nx.is_connected(graph):
        raise GraphValidationError("graph must be connected")
    if n == 1:
        return set(graph.nodes())
    if n == 2:
        return {next(iter(graph.nodes()))}

    white: Set[Hashable] = set(graph.nodes())
    gray: Set[Hashable] = set()
    black: Set[Hashable] = set()

    def color_black(v: Hashable) -> None:
        white.discard(v)
        gray.discard(v)
        black.add(v)
        for u in graph.neighbors(v):
            if u in white:
                white.remove(u)
                gray.add(u)

    start = max(graph.nodes(), key=lambda v: (graph.degree(v), str(v)))
    color_black(start)
    while white:
        # Pick the gray vertex dominating the most white vertices; break
        # ties deterministically so the baseline is reproducible.
        def coverage(v: Hashable) -> int:
            return sum(1 for u in graph.neighbors(v) if u in white)

        candidate = max(gray, key=lambda v: (coverage(v), str(v)))
        if coverage(candidate) == 0:
            # Every white vertex is isolated from the gray frontier,
            # impossible in a connected graph.
            raise GraphValidationError(
                "greedy CDS stalled; graph is not connected"
            )
        color_black(candidate)
    return _prune_leaves(graph, black)


def _prune_leaves(graph: nx.Graph, cds: Set[Hashable]) -> Set[Hashable]:
    """Drop redundant members whose removal keeps the set a CDS.

    One pass over the members in increasing-degree order; classical
    cleanup that often shaves the greedy set by a constant factor.
    """
    from repro.graphs.connectivity import is_connected_dominating_set

    result = set(cds)
    for v in sorted(cds, key=lambda v: (graph.degree(v), str(v))):
        if len(result) == 1:
            break
        trial = result - {v}
        if is_connected_dominating_set(graph, trial):
            result = trial
    return result


def greedy_cds_partition(
    graph: nx.Graph, limit: int
) -> List[Set[Hashable]]:
    """Greedily peel up to ``limit`` vertex-disjoint CDSs off ``graph``.

    The natural integral comparator for the CDS packing (experiment E15):
    repeatedly build a greedy CDS among the still-unused vertices,
    requiring it to dominate the *full* graph; stop when no further CDS
    exists. Returns the (possibly empty) list of disjoint CDSs.
    """
    if limit < 1:
        raise GraphValidationError("limit must be >= 1")
    from repro.graphs.connectivity import is_connected_dominating_set

    available = set(graph.nodes())
    classes: List[Set[Hashable]] = []
    while len(classes) < limit:
        candidate = _grow_restricted_cds(graph, available)
        if candidate is None:
            break
        classes.append(candidate)
        available -= candidate
    return classes


def _grow_restricted_cds(
    graph: nx.Graph, allowed: Set[Hashable]
) -> "Set[Hashable] | None":
    """A CDS of ``graph`` using only ``allowed`` vertices, or ``None``.

    Same two-color greedy as :func:`greedy_connected_dominating_set`, but
    the black set must stay inside ``allowed`` while dominating all of
    ``graph``.
    """
    from repro.graphs.connectivity import is_connected_dominating_set

    if not allowed:
        return None
    white: Set[Hashable] = set(graph.nodes())
    gray: Set[Hashable] = set()
    black: Set[Hashable] = set()

    def color_black(v: Hashable) -> None:
        white.discard(v)
        gray.discard(v)
        black.add(v)
        for u in graph.neighbors(v):
            if u in white:
                white.remove(u)
                gray.add(u)

    start_pool = [v for v in allowed]
    if not start_pool:
        return None
    start = max(start_pool, key=lambda v: (graph.degree(v), str(v)))
    color_black(start)
    while white:
        candidates = [v for v in gray if v in allowed]

        def coverage(v: Hashable) -> int:
            return sum(1 for u in graph.neighbors(v) if u in white)

        candidates = [v for v in candidates if coverage(v) > 0]
        if not candidates:
            return None
        color_black(max(candidates, key=lambda v: (coverage(v), str(v))))
    if not is_connected_dominating_set(graph, black):
        return None
    return black
