"""Classical baseline algorithms the paper compares against.

The paper positions its decompositions against a line of classical
centralized algorithms. This subpackage implements those comparators from
scratch (no networkx flow/cut calls) so the benchmark harness can measure
our decompositions against independent, exact ground truth:

* :mod:`repro.baselines.maxflow` — Dinic's blocking-flow maximum flow,
  the workhorse underneath every exact connectivity computation.
* :mod:`repro.baselines.vertex_connectivity_exact` — Even–Tarjan exact
  vertex connectivity via vertex splitting and max-flow (the lineage of
  [16, 18, 20, 26, 27, 48] in the paper's Section 1.3.2).
* :mod:`repro.baselines.mincut` — Stoer–Wagner global minimum edge cut,
  the exact oracle for edge connectivity ``λ``.
* :mod:`repro.baselines.tree_packing_exact` — Roskind–Tarjan matroid-union
  packing of edge-disjoint spanning trees, the exact realization of the
  Tutte/Nash-Williams bound (the paper's [50], [40], [19]).
* :mod:`repro.baselines.greedy_cds` — Guha–Khuller-style greedy connected
  dominating set (the paper's [23], used by the Ene et al. comparison).
"""

from repro.baselines.approx_mincut import sparsified_min_cut
from repro.baselines.maxflow import FlowNetwork, max_flow, min_cut
from repro.baselines.mincut import stoer_wagner_min_cut
from repro.baselines.tree_packing_exact import (
    edge_disjoint_spanning_forests,
    max_spanning_tree_packing,
    spanning_tree_packing_number,
)
from repro.baselines.vertex_connectivity_exact import (
    even_tarjan_vertex_connectivity,
    local_vertex_connectivity_flow,
)
from repro.baselines.greedy_cds import greedy_connected_dominating_set

__all__ = [
    "sparsified_min_cut",
    "FlowNetwork",
    "max_flow",
    "min_cut",
    "stoer_wagner_min_cut",
    "edge_disjoint_spanning_forests",
    "max_spanning_tree_packing",
    "spanning_tree_packing_number",
    "even_tarjan_vertex_connectivity",
    "local_vertex_connectivity_flow",
    "greedy_connected_dominating_set",
]
