"""Tree-routed broadcast (Appendix A; Corollaries 1.4 and 1.5).

Every message is assigned to one tree of a packing (at random, with
probability proportional to tree weight — this is what makes the routing
*oblivious*), and is then flooded within that tree. Trees share vertices
(dominating tree packings) or edges (spanning tree packings) and
time-share them; the schedulers here simulate that token flow at the
model's granularity:

* :func:`vertex_broadcast` (V-CONGEST) — per round, each node transmits
  at most one (tree, message) token as a local broadcast; neighbors in
  the same tree continue the flood, and *all* neighbors record receipt —
  so domination delivers every message to every node.
* :func:`edge_broadcast` (E-CONGEST) — per round, each directed edge
  carries at most one token; floods follow tree edges, and since trees
  are spanning, every node is reached directly.

The schedulers are deliberately *not* NodeProgram simulations: the packing
fixes the routes, so only the queueing is left, and a token-level model
measures throughput/congestion orders of magnitude faster while enforcing
the identical per-round capacity constraints.

Every entry point's ``rng`` defaults to seed 0 (not OS entropy): a
workload that omits the argument is still exactly reproducible, and
passing one seed pins the whole run — tree assignment included.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Hashable, List, Optional, Sequence, Set, Tuple

import networkx as nx

from repro.errors import GraphValidationError
from repro.core.tree_packing import (
    DominatingTreePacking,
    SpanningTreePacking,
    WeightedTree,
)
from repro.utils.rng import RngLike, ensure_rng


@dataclass
class BroadcastOutcome:
    """What a broadcast run measured."""

    rounds: int
    n_messages: int
    tree_assignment: Dict[int, int]          # message -> tree index
    node_transmissions: Dict[Hashable, int]  # vertex congestion
    edge_transmissions: Dict[FrozenSet[Hashable], int]  # edge congestion

    @property
    def throughput(self) -> float:
        """Messages delivered to all nodes per round."""
        return self.n_messages / max(1, self.rounds)

    @property
    def max_vertex_congestion(self) -> int:
        return max(self.node_transmissions.values(), default=0)

    @property
    def max_edge_congestion(self) -> int:
        return max(self.edge_transmissions.values(), default=0)


def assign_messages_to_trees(
    trees: Sequence[WeightedTree],
    n_messages: int,
    rng: RngLike = 0,
) -> Dict[int, int]:
    """Oblivious assignment: each message picks a tree ∝ its weight."""
    if not trees:
        raise GraphValidationError("packing has no trees")
    rand = ensure_rng(rng)
    weights = [max(t.weight, 0.0) for t in trees]
    total = sum(weights)
    if total <= 0:
        weights = [1.0] * len(trees)
        total = float(len(trees))
    assignment = {}
    for msg in range(n_messages):
        draw = rand.random() * total
        acc = 0.0
        chosen = len(trees) - 1
        for index, w in enumerate(weights):
            acc += w
            if draw <= acc:
                chosen = index
                break
        assignment[msg] = chosen
    return assignment


def vertex_broadcast(
    packing: DominatingTreePacking,
    sources: Dict[int, Hashable],
    rng: RngLike = 0,
    max_rounds: int = 1_000_000,
) -> BroadcastOutcome:
    """Broadcast ``sources`` (message id → origin node) via random trees
    of a dominating tree packing, under V-CONGEST token capacities.

    Per round each node sends at most one token (fair round-robin over
    its pending (tree, message) queue); a token transmission is a local
    broadcast: same-tree neighbors extend the flood, every neighbor
    records receipt. Terminates when all nodes received all messages.
    """
    graph = packing.graph
    rand = ensure_rng(rng)
    trees = packing.trees
    assignment = assign_messages_to_trees(trees, len(sources), rand)
    # message ids are re-keyed to 0..N-1 in iteration order of `sources`.
    messages = list(sources.items())

    tree_nodes: List[Set[Hashable]] = [set(t.tree.nodes()) for t in trees]
    tree_adj: List[Dict[Hashable, Set[Hashable]]] = [
        {v: set(t.tree.neighbors(v)) for v in t.tree.nodes()} for t in trees
    ]

    received: Dict[Hashable, Set[int]] = {v: set() for v in graph.nodes()}
    queues: Dict[Hashable, deque] = {v: deque() for v in graph.nodes()}
    queued: Dict[Hashable, Set[Tuple[int, int]]] = {
        v: set() for v in graph.nodes()
    }
    node_tx: Dict[Hashable, int] = {v: 0 for v in graph.nodes()}
    edge_tx: Dict[FrozenSet[Hashable], int] = {}

    def enqueue(v: Hashable, tree_index: int, msg: int) -> None:
        token = (tree_index, msg)
        if token not in queued[v]:
            queued[v].add(token)
            queues[v].append(token)

    n_messages = len(messages)
    # Message injection: the source holds the token; if the source is not
    # in the tree, its first transmission hands the token to dominating
    # tree neighbors (a legal V-CONGEST broadcast).
    for index, (msg_id, source) in enumerate(messages):
        tree_index = assignment[index]
        received[source].add(index)
        enqueue(source, tree_index, index)

    target = n_messages
    rounds = 0
    while any(len(received[v]) < target for v in graph.nodes()):
        rounds += 1
        if rounds > max_rounds:
            raise GraphValidationError(
                "broadcast did not complete; is the packing dominating?"
            )
        transmissions = []
        for v in graph.nodes():
            if queues[v]:
                transmissions.append((v, queues[v].popleft()))
        if not transmissions:
            raise GraphValidationError(
                "broadcast stalled with undelivered messages"
            )
        for v, (tree_index, msg) in transmissions:
            node_tx[v] += 1
            in_tree = v in tree_nodes[tree_index]
            for u in graph.neighbors(v):
                edge = frozenset((v, u))
                edge_tx[edge] = edge_tx.get(edge, 0) + 1
                if msg not in received[u]:
                    received[u].add(msg)
                # Flood continuation: only along tree edges.
                if (
                    in_tree
                    and u in tree_adj[tree_index].get(v, ())
                    and (tree_index, msg) not in queued[u]
                ):
                    enqueue(u, tree_index, msg)
            if not in_tree:
                # Source outside the tree: hand the token to every
                # dominating neighbor inside the tree.
                for u in graph.neighbors(v):
                    if u in tree_nodes[tree_index]:
                        enqueue(u, tree_index, msg)

    return BroadcastOutcome(
        rounds=rounds,
        n_messages=n_messages,
        tree_assignment=assignment,
        node_transmissions=node_tx,
        edge_transmissions=edge_tx,
    )


def edge_broadcast(
    packing: SpanningTreePacking,
    sources: Dict[int, Hashable],
    rng: RngLike = 0,
    max_rounds: int = 1_000_000,
) -> BroadcastOutcome:
    """Broadcast via random trees of a spanning tree packing under
    E-CONGEST capacities (one token per directed edge per round)."""
    graph = packing.graph
    rand = ensure_rng(rng)
    trees = packing.trees
    assignment = assign_messages_to_trees(trees, len(sources), rand)
    messages = list(sources.items())
    tree_adj: List[Dict[Hashable, Set[Hashable]]] = [
        {v: set(t.tree.neighbors(v)) for v in t.tree.nodes()} for t in trees
    ]

    received: Dict[Hashable, Set[int]] = {v: set() for v in graph.nodes()}
    # pending[v] = deque of (tree, msg, next-neighbors-to-serve)
    queues: Dict[Hashable, deque] = {v: deque() for v in graph.nodes()}
    queued: Dict[Hashable, Set[Tuple[int, int]]] = {
        v: set() for v in graph.nodes()
    }
    node_tx: Dict[Hashable, int] = {v: 0 for v in graph.nodes()}
    edge_tx: Dict[FrozenSet[Hashable], int] = {}

    def enqueue(v: Hashable, tree_index: int, msg: int, origin) -> None:
        token = (tree_index, msg)
        if token in queued[v]:
            return
        queued[v].add(token)
        targets = [u for u in tree_adj[tree_index].get(v, ()) if u != origin]
        if targets:
            queues[v].append((tree_index, msg, deque(targets)))

    n_messages = len(messages)
    for index, (msg_id, source) in enumerate(messages):
        tree_index = assignment[index]
        received[source].add(index)
        enqueue(source, tree_index, index, origin=None)

    rounds = 0
    while any(len(received[v]) < n_messages for v in graph.nodes()):
        rounds += 1
        if rounds > max_rounds:
            raise GraphValidationError(
                "broadcast did not complete; is the packing spanning?"
            )
        progressed = False
        for v in graph.nodes():
            # E-CONGEST: each incident edge carries at most one token this
            # round; a node may serve all its edges simultaneously.
            used_edges: Set[Hashable] = set()
            pending = list(queues[v])
            queues[v].clear()
            for tree_index, msg, targets in pending:
                blocked: deque = deque()
                while targets:
                    u = targets.popleft()
                    if u in used_edges:
                        blocked.append(u)
                        continue
                    used_edges.add(u)
                    progressed = True
                    node_tx[v] += 1
                    edge = frozenset((v, u))
                    edge_tx[edge] = edge_tx.get(edge, 0) + 1
                    received[u].add(msg)
                    enqueue(u, tree_index, msg, origin=v)
                if blocked:
                    queues[v].append((tree_index, msg, blocked))
        if not progressed:
            raise GraphValidationError(
                "broadcast stalled with undelivered messages"
            )

    return BroadcastOutcome(
        rounds=rounds,
        n_messages=n_messages,
        tree_assignment=assignment,
        node_transmissions=node_tx,
        edge_transmissions=edge_tx,
    )
