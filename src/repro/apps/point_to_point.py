"""Point-to-point oblivious routing: the Θ(√n) contrast (Section 1.3.1).

Corollary 1.6 is remarkable *because* of what it sidesteps: the paper
cites Hajiaghayi–Kleinberg–Räcke–Leighton [24] — **no point-to-point
oblivious routing can have o(√n) vertex-congestion competitiveness**.
This module makes the phenomenon measurable on its canonical instance,
the √n × √n grid with the classic row-column oblivious scheme:

* :func:`row_column_route` — the textbook oblivious point-to-point
  route: along the source's row to the target's column, then along the
  column. Route depends only on (s, t): oblivious by construction.
* :func:`adversarial_grid_demands` — the demand set that breaks it:
  all r sources in row 0, targets a permutation of row r−1. Every
  row-column route crawls along row 0, so some row-0 vertex carries
  Θ(r) = Θ(√n) messages…
* :func:`staircase_route` — …while the offline optimum routes the same
  demands with O(1) vertex congestion via disjoint staircase paths
  (down column j to row j, across row j, down the target column).

The resulting measured competitiveness grows as Θ(√n) with the grid
side, while the broadcast-based oblivious routing of Corollary 1.6
(measured by :mod:`repro.apps.oblivious_routing`) stays O(log n) — the
bench E22 prints both curves side by side.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, List, Sequence, Tuple

import networkx as nx

from repro.errors import GraphValidationError
from repro.utils.rng import RngLike, ensure_rng

GridNode = Tuple[int, int]
Demand = Tuple[GridNode, GridNode]


def grid_graph(side: int) -> nx.Graph:
    """The side × side grid with (row, col) tuple nodes."""
    if side < 2:
        raise GraphValidationError("side must be >= 2")
    return nx.grid_2d_graph(side, side)


def row_column_route(source: GridNode, target: GridNode) -> List[GridNode]:
    """The oblivious row-then-column path from ``source`` to ``target``."""
    (r0, c0), (r1, c1) = source, target
    path = [(r0, c0)]
    step = 1 if c1 >= c0 else -1
    for c in range(c0 + step, c1 + step, step):
        path.append((r0, c))
    step = 1 if r1 >= r0 else -1
    for r in range(r0 + step, r1 + step, step):
        path.append((r, c1))
    return path


def staircase_route(
    source: GridNode, target: GridNode, bend_row: int
) -> List[GridNode]:
    """Column–row–column path bending at ``bend_row``.

    Used by the offline schedule: demand ``j`` bends at row ``j``, which
    makes the paths of the adversarial demand set vertex-disjoint except
    at unavoidable endpoints.
    """
    (r0, c0), (r1, c1) = source, target
    path = [(r0, c0)]
    step = 1 if bend_row >= r0 else -1
    for r in range(r0 + step, bend_row + step, step):
        path.append((r, c0))
    step = 1 if c1 >= c0 else -1
    for c in range(c0 + step, c1 + step, step):
        path.append((bend_row, c))
    step = 1 if r1 >= bend_row else -1
    for r in range(bend_row + step, r1 + step, step):
        path.append((r, c1))
    return path


def adversarial_grid_demands(
    side: int, rng: RngLike = None
) -> List[Demand]:
    """Row-0 sources to row side−1 targets under the reversal permutation.

    With ``σ(j) = side−1−j`` every row-column route's horizontal segment
    covers the middle column, so the middle vertex of row 0 carries all
    ``side`` messages — the Θ(√n) congestion witness. Passing ``rng``
    replaces the reversal by a random permutation (still bad in
    expectation, ≈ side/2, but not worst-case).
    """
    if rng is None:
        targets = list(reversed(range(side)))
    else:
        rand = ensure_rng(rng)
        targets = list(range(side))
        rand.shuffle(targets)
    return [((0, j), (side - 1, targets[j])) for j in range(side)]


def vertex_congestion_of_routes(
    routes: Sequence[Sequence[GridNode]],
) -> int:
    """Max over vertices of the number of routes visiting it."""
    load: Dict[GridNode, int] = {}
    for route in routes:
        for node in route:
            load[node] = load.get(node, 0) + 1
    return max(load.values(), default=0)


@dataclass
class PointToPointReport:
    """Oblivious vs offline congestion for one demand set."""

    side: int
    n_demands: int
    oblivious_congestion: int
    offline_congestion: int

    @property
    def competitiveness(self) -> float:
        return self.oblivious_congestion / max(1, self.offline_congestion)


def grid_competitiveness(side: int, rng: RngLike = None) -> PointToPointReport:
    """Measure the row-column scheme against the staircase offline
    schedule on the adversarial demand set.

    The report's competitiveness grows linearly in ``side = √n``: the
    measurable content of the [24] lower bound the paper quotes.
    """
    demands = adversarial_grid_demands(side, rng)
    oblivious = [row_column_route(s, t) for s, t in demands]
    offline = [
        staircase_route(s, t, bend_row=j)
        for j, (s, t) in enumerate(demands)
    ]
    graph = grid_graph(side)
    for route_set in (oblivious, offline):
        for route in route_set:
            _validate_route(graph, route)
    return PointToPointReport(
        side=side,
        n_demands=len(demands),
        oblivious_congestion=vertex_congestion_of_routes(oblivious),
        offline_congestion=vertex_congestion_of_routes(offline),
    )


def _validate_route(graph: nx.Graph, route: Sequence[GridNode]) -> None:
    if not route:
        raise GraphValidationError("empty route")
    for node in route:
        if not graph.has_node(node):
            raise GraphValidationError(f"route leaves the grid at {node!r}")
    for a, b in zip(route, route[1:]):
        if not graph.has_edge(a, b):
            raise GraphValidationError(f"route uses non-edge {a!r}-{b!r}")
