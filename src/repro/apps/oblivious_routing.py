"""Oblivious routing congestion (Corollary 1.6).

Routing every message along an independently random tree of the packing
is *oblivious*: routes do not depend on the load. Corollary 1.6 claims
vertex-congestion competitiveness ``O(log n)`` (dominating tree packing)
and edge-congestion competitiveness ``O(1)`` (spanning tree packing)
against the offline optimum.

The offline optimum is intractable in general, so — as is standard for
congestion competitiveness measurements — we compare against *certified
lower bounds* on any broadcast schedule:

* vertex congestion ≥ ``N / k`` (all N messages cross every vertex cut;
  some cut vertex forwards ≥ N/k of them) and ≥ ``N·(n−1)/Σ_v deg(v)``
  (total receptions ≥ N(n−1); one transmission creates ≤ deg receptions);
* edge congestion ≥ ``N / λ`` and ≥ ``N·(n−1)/(2m)``.

``competitiveness = measured / lower_bound`` is then an upper bound on
the true competitive ratio — if it is O(log n) resp. O(1), the corollary
is confirmed a fortiori.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Hashable, Optional

import networkx as nx

from repro.apps.broadcast import (
    BroadcastOutcome,
    edge_broadcast,
    vertex_broadcast,
)
from repro.core.tree_packing import DominatingTreePacking, SpanningTreePacking
from repro.utils.rng import RngLike, ensure_rng


@dataclass
class CongestionReport:
    """Measured congestion vs certified lower bound."""

    measured: int
    lower_bound: float
    n_messages: int
    log_n: float

    @property
    def competitiveness(self) -> float:
        """Upper bound on the competitive ratio."""
        return self.measured / max(self.lower_bound, 1e-12)

    @property
    def normalized_by_log(self) -> float:
        """Competitiveness ÷ log n (should be O(1) for Corollary 1.6a)."""
        return self.competitiveness / max(self.log_n, 1.0)


def vertex_congestion_report(
    packing: DominatingTreePacking,
    sources: Dict[int, Hashable],
    k: int,
    rng: RngLike = 0,
    outcome: Optional[BroadcastOutcome] = None,
) -> CongestionReport:
    """Vertex-congestion competitiveness of random-tree broadcast routing."""
    graph = packing.graph
    if outcome is None:
        outcome = vertex_broadcast(packing, sources, rng=rng)
    n = graph.number_of_nodes()
    n_messages = len(sources)
    degree_sum = sum(d for _, d in graph.degree())
    lower = max(
        n_messages / max(1, k),
        n_messages * (n - 1) / max(1, degree_sum),
        1.0,
    )
    return CongestionReport(
        measured=outcome.max_vertex_congestion,
        lower_bound=lower,
        n_messages=n_messages,
        log_n=math.log(max(n, 2)),
    )


def edge_congestion_report(
    packing: SpanningTreePacking,
    sources: Dict[int, Hashable],
    lam: int,
    rng: RngLike = 0,
    outcome: Optional[BroadcastOutcome] = None,
) -> CongestionReport:
    """Edge-congestion competitiveness of random-tree broadcast routing."""
    graph = packing.graph
    if outcome is None:
        outcome = edge_broadcast(packing, sources, rng=rng)
    n = graph.number_of_nodes()
    m = graph.number_of_edges()
    n_messages = len(sources)
    lower = max(
        n_messages / max(1, lam),
        n_messages * (n - 1) / max(1, 2 * m),
        1.0,
    )
    return CongestionReport(
        measured=outcome.max_edge_congestion,
        lower_bound=lower,
        n_messages=n_messages,
        log_n=math.log(max(n, 2)),
    )
