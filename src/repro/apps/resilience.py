"""Fault-resilience sweeps for flooding protocols, built on scenarios.

The paper's model is synchronous and reliable; robust-computation work
(e.g. Censor-Hillel et al., "Two for One and One for All") asks what
survives when it is not. This app measures that question for the
simplest primitive — extremum flooding — under two kinds of loss:

* **i.i.d. noise**: every delivery is dropped independently with
  probability ``p`` (the :class:`~repro.simulator.faults.FaultPlan`
  ``drop_probability``);
* **adversarial cuts**: a deterministic per-edge drop schedule destroys
  *every* delivery across a chosen node cut for a window of rounds —
  exactly reproducible, no randomness involved
  (:func:`cut_drop_schedule`).

Each run is a declarative :class:`~repro.simulator.scenario.Scenario`
over the loss-tolerant
:class:`~repro.simulator.faults.RetransmittingFloodProgram`; the report
records *coverage* — the fraction of nodes that learned the true global
minimum — next to the round/message cost, so the sweep shows where
retransmission stops compensating for loss.

:func:`flood_corruption_sweep` extends the question from erasures to
*corruptions* (:class:`~repro.simulator.adversary.AdversaryPlan`):
deliveries arrive altered, not missing, and the interesting failure is
no longer a node that learned nothing but a node that confidently holds
a **wrong answer** — for a minimum flood, a value *below* the true
minimum, which no honest execution can produce. The sweep therefore
reports ``wrong_rate`` next to ``coverage``, and runs each corruption
rate over the uncoded flood and the coded defenses of
:mod:`repro.apps.coded` (checksummed drop-on-bad, repetition voting) so
the coded-vs-uncoded gap is one table.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Hashable, Iterable, List, Sequence, Tuple

import networkx as nx

from repro.errors import GraphValidationError
from repro.simulator.adversary import AdversaryPlan
from repro.simulator.faults import FaultPlan, RetransmittingFloodProgram
from repro.simulator.network import Network
from repro.simulator.scenario import Scenario, ScenarioRun
from repro.utils.rng import RngLike

DirectedEdge = Tuple[Hashable, Hashable]


@dataclass(frozen=True)
class ResilienceReport:
    """One sweep point: loss setting vs flood completion."""

    label: str
    drop_probability: float
    scheduled_edges: int
    coverage: float  # fraction of nodes holding the true minimum
    completed: bool  # coverage == 1.0
    rounds: int
    messages: int

    @property
    def failed_nodes(self) -> float:
        return 1.0 - self.coverage


def validate_schedule_edges(
    graph: nx.Graph,
    schedule: Dict[DirectedEdge, FrozenSet[int]],
) -> Dict[DirectedEdge, FrozenSet[int]]:
    """Reject drop schedules naming edges that do not exist in ``graph``.

    The engine accepts arbitrary directed pairs (the congested clique
    makes every ordered pair a deliverable edge), so a typo'd node id in
    a hand-written schedule would silently schedule drops on a
    nonexistent edge and the "cut" run would quietly be loss-free. App-
    and CLI-level schedules target concrete graphs, where that is always
    a bug — validate here, loudly. Returns ``schedule`` unchanged.
    """
    known = set(graph.nodes())
    bad = sorted(
        repr(edge)
        for edge in schedule
        if edge[0] not in known
        or edge[1] not in known
        or not graph.has_edge(edge[0], edge[1])
    )
    if bad:
        raise GraphValidationError(
            f"drop schedule names non-edges of the network: {bad}"
        )
    return schedule


def cut_drop_schedule(
    graph: nx.Graph,
    side: Iterable[Hashable],
    rounds: Iterable[int],
) -> Dict[DirectedEdge, FrozenSet[int]]:
    """A deterministic drop schedule severing the cut around ``side``.

    Every delivery crossing the cut — in *both* directions — is
    destroyed in each of the given rounds. Combined with
    ``RetransmittingFloodProgram`` this makes adversarial-partition
    tests exactly reproducible: the schedule, not a seed, decides which
    messages die.

    A ``side`` that yields no crossing edges (empty, the whole node
    set, or an isolated union of components) is rejected: the intended
    blockade would silently not exist.
    """
    side_set = set(side)
    unknown = side_set - set(graph.nodes())
    if unknown:
        raise GraphValidationError(f"cut side contains unknown nodes: {unknown!r}")
    round_set = frozenset(rounds)
    schedule: Dict[DirectedEdge, FrozenSet[int]] = {}
    for u, v in graph.edges():
        if (u in side_set) != (v in side_set):
            schedule[(u, v)] = round_set
            schedule[(v, u)] = round_set
    if not schedule:
        raise GraphValidationError(
            "cut side produces no crossing edges — the blockade would be "
            f"a silent no-op (side covers {len(side_set)} of "
            f"{graph.number_of_nodes()} nodes)"
        )
    return validate_schedule_edges(graph, schedule)


def _flood_scenario(
    graph: nx.Graph,
    plan: FaultPlan,
    horizon: int,
    seed: RngLike,
) -> Scenario:
    def build(network: Network):
        return lambda node: RetransmittingFloodProgram(
            network.node_id(node), horizon=horizon
        )

    return Scenario(
        topology=graph,
        program=build,
        seed=seed,
        fault_plan=plan,
        name="resilience-flood",
    )


def _report(label: str, plan: FaultPlan, run: ScenarioRun) -> ResilienceReport:
    network = run.network
    true_min = min(network.node_id(v) for v in network.nodes)
    holders = sum(
        1 for v in network.nodes if run.result.output_of(v) == true_min
    )
    coverage = holders / network.n
    return ResilienceReport(
        label=label,
        drop_probability=plan.drop_probability,
        scheduled_edges=len(plan.drop_schedule),
        coverage=coverage,
        completed=coverage == 1.0,
        rounds=run.rounds,
        messages=run.result.metrics.messages,
    )


def flood_loss_sweep(
    graph: nx.Graph,
    drop_probabilities: Sequence[float],
    horizon: int = 0,
    seed: RngLike = 0,
) -> List[ResilienceReport]:
    """Retransmitting flood under increasing i.i.d. loss.

    ``horizon = 0`` auto-sizes to ``4·D + 8`` rounds — comfortably above
    the ``D/(1−p)`` repair bound for moderate ``p``, so failures in the
    report are *informative* (loss beat retransmission), not an
    undersized horizon.
    """
    if horizon <= 0:
        horizon = 4 * nx.diameter(graph) + 8
    reports = []
    for p in drop_probabilities:
        plan = FaultPlan(drop_probability=p)
        run = _flood_scenario(graph, plan, horizon, seed).run()
        reports.append(_report(f"iid p={p:g}", plan, run))
    return reports


def flood_partition_test(
    graph: nx.Graph,
    side: Iterable[Hashable],
    blocked_rounds: Iterable[int],
    horizon: int = 0,
    seed: RngLike = 0,
) -> ResilienceReport:
    """Retransmitting flood against a deterministic cut blockade.

    The cut around ``side`` drops every crossing delivery during
    ``blocked_rounds``. With a horizon extending past the blockade the
    flood must recover (coverage 1.0); with the blockade covering the
    whole run, the minimum stays confined to its side — both outcomes
    are exact, replayable facts rather than w.h.p. events.
    """
    blocked = frozenset(blocked_rounds)
    if horizon <= 0:
        horizon = 2 * nx.diameter(graph) + 4 + (max(blocked, default=0))
    schedule = cut_drop_schedule(graph, side, blocked)
    plan = FaultPlan(drop_schedule=schedule)
    run = _flood_scenario(graph, plan, horizon, seed).run()
    return _report(
        f"cut blockade rounds {min(blocked, default=0)}..{max(blocked, default=0)}",
        plan,
        run,
    )


# ----------------------------------------------------------------------
# Corruption sweeps (adversarial channels)
# ----------------------------------------------------------------------

#: The flood variants a corruption sweep compares. ``uncoded`` is the
#: retransmitting flood (loss-tolerant, corruption-defenseless);
#: ``checksum``/``vote`` are the coded defenses of
#: :mod:`repro.apps.coded`.
FLOOD_VARIANTS = ("uncoded", "checksum", "vote")


@dataclass(frozen=True)
class CorruptionReport:
    """One corruption-sweep point: adversary setting vs flood outcome.

    ``coverage`` is the fraction of nodes holding the *true* minimum.
    ``wrong_rate`` is the fraction holding a value strictly **below**
    it — a state no honest execution can reach, so any nonzero value is
    direct evidence the adversary poisoned the answer (as opposed to
    merely delaying it, which shows up in coverage alone).
    """

    label: str
    variant: str
    corruption_rate: float
    coverage: float
    wrong_rate: float
    completed: bool  # coverage == 1.0 and wrong_rate == 0.0
    rounds: int
    messages: int
    bits: int


def _variant_factory(variant: str, horizon: int, votes: int):
    """Per-node program factory builder for one flood variant."""
    from repro.apps.coded import ChecksummedFloodProgram, VotedFloodProgram

    def build(network: Network):
        if variant == "uncoded":
            return lambda node: RetransmittingFloodProgram(
                network.node_id(node), horizon=horizon
            )
        if variant == "checksum":
            return lambda node: ChecksummedFloodProgram(
                network.node_id(node), horizon=horizon
            )
        if variant == "vote":
            return lambda node: VotedFloodProgram(
                network.node_id(node), horizon=horizon, votes=votes
            )
        raise GraphValidationError(
            f"unknown flood variant {variant!r}; valid: "
            + ", ".join(FLOOD_VARIANTS)
        )

    return build


def _corruption_report(
    label: str, variant: str, rate: float, run: ScenarioRun
) -> CorruptionReport:
    network = run.network
    true_min = min(network.node_id(v) for v in network.nodes)
    holders = 0
    poisoned = 0
    for v in network.nodes:
        output = run.result.output_of(v)
        if output == true_min:
            holders += 1
        elif isinstance(output, int) and output < true_min:
            poisoned += 1
    coverage = holders / network.n
    wrong_rate = poisoned / network.n
    metrics = run.result.metrics
    return CorruptionReport(
        label=label,
        variant=variant,
        corruption_rate=rate,
        coverage=coverage,
        wrong_rate=wrong_rate,
        completed=coverage == 1.0 and wrong_rate == 0.0,
        rounds=metrics.rounds,
        messages=metrics.messages,
        bits=metrics.bits,
    )


def flood_corruption_sweep(
    graph: nx.Graph,
    corruption_rates: Sequence[float],
    variants: Sequence[str] = FLOOD_VARIANTS,
    horizon: int = 0,
    seed: RngLike = 0,
    kinds: Tuple[str, ...] = ("flip",),
    votes: int = 2,
) -> List[CorruptionReport]:
    """Extremum flood under increasing channel corruption, coded vs not.

    Every ``(rate, variant)`` point runs the same topology and seed, so
    node ids — and hence the true minimum — are identical across the
    whole sweep and the corruption coins of different rates are nested
    (a delivery corrupted at rate ``p`` is corrupted at every ``p' > p``
    too). The uncoded flood is expected to *poison* (nonzero
    ``wrong_rate``) at rates the coded variants shrug off: a single
    flipped payload below the true minimum propagates like an honest
    improvement, while the checksum detects it and the vote never sees
    it twice.
    """
    if horizon <= 0:
        horizon = 4 * nx.diameter(graph) + 8
    unknown = [v for v in variants if v not in FLOOD_VARIANTS]
    if unknown:
        raise GraphValidationError(
            f"unknown flood variant(s) {unknown!r}; valid: "
            + ", ".join(FLOOD_VARIANTS)
        )
    reports = []
    for rate in corruption_rates:
        for variant in variants:
            plan = AdversaryPlan(corruption_probability=rate, kinds=kinds)
            run = Scenario(
                topology=graph,
                program=_variant_factory(variant, horizon, votes),
                seed=seed,
                adversary_plan=plan,
                name=f"corruption-{variant}",
            ).run()
            reports.append(
                _corruption_report(
                    f"{variant} p={rate:g}", variant, rate, run
                )
            )
    return reports


def gossip_corruption_sweep(
    graph: nx.Graph,
    corruption_rates: Sequence[float],
    variants: Sequence[str] = ("plain", "checksum", "vote"),
    horizon: int = 0,
    seed: RngLike = 0,
    kinds: Tuple[str, ...] = ("flip",),
    votes: int = 2,
) -> List[CorruptionReport]:
    """Token gossip under channel corruption, coded vs not.

    ``coverage`` counts exactly-correct committed ``(origin, value)``
    pairs over all ``n²`` (node, origin) slots; ``wrong_rate`` counts
    slots committed to a value that differs from the origin's true
    token. The plain variant commits the first claim it hears, so a
    corrupted token poisons every node downstream of the first bad
    delivery.
    """
    from repro.apps.coded import TokenGossipProgram

    if horizon <= 0:
        horizon = graph.number_of_nodes() * (nx.diameter(graph) + 1) + 4

    def builder_for(variant: str):
        def build(network: Network):
            return lambda node: TokenGossipProgram(
                origin=network.node_id(node),
                value=network.node_id(node),
                horizon=horizon,
                variant=variant,
                votes=votes,
            )

        return build

    reports = []
    for rate in corruption_rates:
        for variant in variants:
            plan = AdversaryPlan(corruption_probability=rate, kinds=kinds)
            run = Scenario(
                topology=graph,
                program=builder_for(variant),
                seed=seed,
                adversary_plan=plan,
                name=f"gossip-corruption-{variant}",
            ).run()
            network = run.network
            truth = {
                network.node_id(v): network.node_id(v)
                for v in network.nodes
            }
            slots = network.n * network.n
            correct = 0
            wrong = 0
            for v in network.nodes:
                committed = dict(run.result.output_of(v))
                for origin, value in committed.items():
                    if truth.get(origin) == value:
                        correct += 1
                    else:
                        wrong += 1
            metrics = run.result.metrics
            reports.append(
                CorruptionReport(
                    label=f"gossip-{variant} p={rate:g}",
                    variant=variant,
                    corruption_rate=rate,
                    coverage=correct / slots,
                    wrong_rate=wrong / slots,
                    completed=correct == slots,
                    rounds=metrics.rounds,
                    messages=metrics.messages,
                    bits=metrics.bits,
                )
            )
    return reports
