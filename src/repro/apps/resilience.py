"""Fault-resilience sweeps for flooding protocols, built on scenarios.

The paper's model is synchronous and reliable; robust-computation work
(e.g. Censor-Hillel et al., "Two for One and One for All") asks what
survives when it is not. This app measures that question for the
simplest primitive — extremum flooding — under two kinds of loss:

* **i.i.d. noise**: every delivery is dropped independently with
  probability ``p`` (the :class:`~repro.simulator.faults.FaultPlan`
  ``drop_probability``);
* **adversarial cuts**: a deterministic per-edge drop schedule destroys
  *every* delivery across a chosen node cut for a window of rounds —
  exactly reproducible, no randomness involved
  (:func:`cut_drop_schedule`).

Each run is a declarative :class:`~repro.simulator.scenario.Scenario`
over the loss-tolerant
:class:`~repro.simulator.faults.RetransmittingFloodProgram`; the report
records *coverage* — the fraction of nodes that learned the true global
minimum — next to the round/message cost, so the sweep shows where
retransmission stops compensating for loss.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Hashable, Iterable, List, Sequence, Tuple

import networkx as nx

from repro.errors import GraphValidationError
from repro.simulator.faults import FaultPlan, RetransmittingFloodProgram
from repro.simulator.network import Network
from repro.simulator.scenario import Scenario, ScenarioRun
from repro.utils.rng import RngLike

DirectedEdge = Tuple[Hashable, Hashable]


@dataclass(frozen=True)
class ResilienceReport:
    """One sweep point: loss setting vs flood completion."""

    label: str
    drop_probability: float
    scheduled_edges: int
    coverage: float  # fraction of nodes holding the true minimum
    completed: bool  # coverage == 1.0
    rounds: int
    messages: int

    @property
    def failed_nodes(self) -> float:
        return 1.0 - self.coverage


def cut_drop_schedule(
    graph: nx.Graph,
    side: Iterable[Hashable],
    rounds: Iterable[int],
) -> Dict[DirectedEdge, FrozenSet[int]]:
    """A deterministic drop schedule severing the cut around ``side``.

    Every delivery crossing the cut — in *both* directions — is
    destroyed in each of the given rounds. Combined with
    ``RetransmittingFloodProgram`` this makes adversarial-partition
    tests exactly reproducible: the schedule, not a seed, decides which
    messages die.
    """
    side_set = set(side)
    unknown = side_set - set(graph.nodes())
    if unknown:
        raise GraphValidationError(f"cut side contains unknown nodes: {unknown!r}")
    round_set = frozenset(rounds)
    schedule: Dict[DirectedEdge, FrozenSet[int]] = {}
    for u, v in graph.edges():
        if (u in side_set) != (v in side_set):
            schedule[(u, v)] = round_set
            schedule[(v, u)] = round_set
    return schedule


def _flood_scenario(
    graph: nx.Graph,
    plan: FaultPlan,
    horizon: int,
    seed: RngLike,
) -> Scenario:
    def build(network: Network):
        return lambda node: RetransmittingFloodProgram(
            network.node_id(node), horizon=horizon
        )

    return Scenario(
        topology=graph,
        program=build,
        seed=seed,
        fault_plan=plan,
        name="resilience-flood",
    )


def _report(label: str, plan: FaultPlan, run: ScenarioRun) -> ResilienceReport:
    network = run.network
    true_min = min(network.node_id(v) for v in network.nodes)
    holders = sum(
        1 for v in network.nodes if run.result.output_of(v) == true_min
    )
    coverage = holders / network.n
    return ResilienceReport(
        label=label,
        drop_probability=plan.drop_probability,
        scheduled_edges=len(plan.drop_schedule),
        coverage=coverage,
        completed=coverage == 1.0,
        rounds=run.rounds,
        messages=run.result.metrics.messages,
    )


def flood_loss_sweep(
    graph: nx.Graph,
    drop_probabilities: Sequence[float],
    horizon: int = 0,
    seed: RngLike = 0,
) -> List[ResilienceReport]:
    """Retransmitting flood under increasing i.i.d. loss.

    ``horizon = 0`` auto-sizes to ``4·D + 8`` rounds — comfortably above
    the ``D/(1−p)`` repair bound for moderate ``p``, so failures in the
    report are *informative* (loss beat retransmission), not an
    undersized horizon.
    """
    if horizon <= 0:
        horizon = 4 * nx.diameter(graph) + 8
    reports = []
    for p in drop_probabilities:
        plan = FaultPlan(drop_probability=p)
        run = _flood_scenario(graph, plan, horizon, seed).run()
        reports.append(_report(f"iid p={p:g}", plan, run))
    return reports


def flood_partition_test(
    graph: nx.Graph,
    side: Iterable[Hashable],
    blocked_rounds: Iterable[int],
    horizon: int = 0,
    seed: RngLike = 0,
) -> ResilienceReport:
    """Retransmitting flood against a deterministic cut blockade.

    The cut around ``side`` drops every crossing delivery during
    ``blocked_rounds``. With a horizon extending past the blockade the
    flood must recover (coverage 1.0); with the blockade covering the
    whole run, the minimum stays confined to its side — both outcomes
    are exact, replayable facts rather than w.h.p. events.
    """
    blocked = frozenset(blocked_rounds)
    if horizon <= 0:
        horizon = 2 * nx.diameter(graph) + 4 + (max(blocked, default=0))
    schedule = cut_drop_schedule(graph, side, blocked)
    plan = FaultPlan(drop_schedule=schedule)
    run = _flood_scenario(graph, plan, horizon, seed).run()
    return _report(
        f"cut blockade rounds {min(blocked, default=0)}..{max(blocked, default=0)}",
        plan,
        run,
    )
