"""Coded defenses against channel corruption.

The :mod:`repro.simulator.adversary` layer delivers *wrong* messages,
not missing ones, so retransmission alone no longer helps: a single
flipped payload can poison an extremum flood forever (a corrupted value
below the true minimum propagates exactly like an honest one). This
module provides the two classical remedies in their simplest coded
form, mirroring the error-detecting / error-correcting split of
"Two for One, One for All" (PAPERS.md):

* **error detection** — :class:`ChecksummedFloodProgram` and the
  ``"checksum"`` gossip variant append a short hash of the payload
  (:func:`token_checksum`) and *drop on mismatch*: a flipped or forged
  payload fails verification with probability ``1 − 2^−bits`` and is
  treated exactly like an erasure, which retransmission already
  repairs. The blind spot is **replay**: a stale payload was honestly
  checksummed once, so it verifies — harmless for monotone extremum
  floods (an old best is never *better*), but a real gap in general.
* **error correction** — :class:`VotedFloodProgram` and the ``"vote"``
  gossip variant accept a candidate value only after seeing it
  ``votes`` independent times (across rounds and neighbors). Corrupted
  payloads almost never repeat — the flip mask and forge material
  change with every ``(edge, round)`` digest — so they never reach the
  vote threshold, while honest values are retransmitted every round
  and cross it quickly. No per-message overhead at all; the cost is
  latency (a value must be sighted ``votes`` times) and the residual
  risk that a *targeted* adversary repeats one forgery.

Overhead accounting rides the existing
:func:`~repro.simulator.message.payload_bits` algebra: a checksummed
payload is simply a wider tuple, so the honest-bits overhead of each
defense is read directly off ``SimulationMetrics.bits`` — see
``benchmarks/bench_resilience.py`` for the measured ratios.

All programs here transmit a bare payload broadcast per round (legal
under V-CONGEST, E-CONGEST, and the congested clique alike) and halt at
a fixed ``horizon``, so runs are deterministic in length and enroll
cleanly in the engine-equivalence differential matrix.
"""

from __future__ import annotations

import hashlib
from typing import Any, Dict, Hashable, Tuple

from repro.errors import GraphValidationError
from repro.simulator.message import Message
from repro.simulator.node import Context, NodeProgram

#: Default checksum width. 16 bits keeps a checksummed (origin, value,
#: checksum) tuple well inside the O(log n) budget while letting a
#: random corruption slip through only once per ~65k attempts.
DEFAULT_CHECKSUM_BITS = 16

#: Cap on the candidate-sighting table of the voting programs: an
#: adversary forging fresh values every round must not grow node state
#: without bound. New candidates are ignored while the table is full —
#: honest values enter early (round 1) and are unaffected.
MAX_TRACKED_CANDIDATES = 4096


def token_checksum(value: Any, bits: int = DEFAULT_CHECKSUM_BITS) -> int:
    """A ``bits``-wide checksum of a payload-legal value.

    sha256 over ``repr(value)`` — stable across processes and hash
    seeds, the same canonicalization the fault/adversary digests use —
    truncated to ``bits`` bits.
    """
    if bits < 1 or bits > 64:
        raise GraphValidationError("checksum bits must lie in [1, 64]")
    digest = hashlib.sha256(repr(value).encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") % (1 << bits)


class _ExtremumBase(NodeProgram):
    """Shared compare/halt scaffolding of the coded flood variants."""

    def __init__(self, value: Any, horizon: int, minimize: bool) -> None:
        if horizon < 1:
            raise GraphValidationError("horizon must be >= 1")
        self._best = value
        self._horizon = horizon
        self._minimize = minimize

    def _better(self, candidate: Any) -> bool:
        if self._best is None:
            return candidate is not None
        if candidate is None:
            return False
        if self._minimize:
            return candidate < self._best
        return candidate > self._best


class ChecksummedFloodProgram(_ExtremumBase):
    """Error-*detecting* extremum flood: ``(value, checksum)`` payloads,
    drop-on-bad, retransmit every round until ``horizon``.

    Corrupted deliveries (flipped value, flipped checksum, or a forged
    pair) fail verification w.p. ``1 − 2^−checksum_bits`` and are
    discarded — corruption degrades to loss, which the per-round
    retransmission repairs. Overhead: ``checksum_bits`` (plus tuple
    framing) per message.
    """

    def __init__(
        self,
        value: Any,
        horizon: int,
        checksum_bits: int = DEFAULT_CHECKSUM_BITS,
        minimize: bool = True,
    ) -> None:
        super().__init__(value, horizon, minimize)
        self._bits = checksum_bits

    def _sealed(self) -> Tuple[Any, int]:
        return (self._best, token_checksum(self._best, self._bits))

    def on_start(self, ctx: Context):
        ctx.output = self._best
        return self._sealed()

    def on_round(self, ctx: Context, inbox: Dict[Hashable, Message]):
        for message in inbox.values():
            payload = message.payload
            if (
                not isinstance(payload, tuple)
                or len(payload) != 2
                or payload[1] != token_checksum(payload[0], self._bits)
            ):
                continue  # detected corruption: treat as an erasure
            if self._better(payload[0]):
                self._best = payload[0]
        ctx.output = self._best
        if ctx.round >= self._horizon:
            ctx.halt(self._best)
            return None
        return self._sealed()


class VotedFloodProgram(_ExtremumBase):
    """Error-*correcting* extremum flood: repetition voting.

    Broadcasts the current best every round (bare value, zero payload
    overhead); an improving candidate is adopted only once it has been
    sighted ``votes`` times in total — across rounds and across
    neighbors. Honest improvements are rebroadcast by every holder
    every round, so they cross the threshold in one or two rounds;
    one-shot corruptions (whose flip masks differ per round) don't.
    """

    def __init__(
        self,
        value: Any,
        horizon: int,
        votes: int = 2,
        minimize: bool = True,
    ) -> None:
        super().__init__(value, horizon, minimize)
        if votes < 1:
            raise GraphValidationError("votes must be >= 1")
        self._votes = votes
        self._sightings: Dict[Any, int] = {}

    def _ingest(self, candidate: Any) -> None:
        if not self._better(candidate):
            return
        count = self._sightings.get(candidate)
        if count is None:
            if len(self._sightings) >= MAX_TRACKED_CANDIDATES:
                return  # table full: ignore the (adversarial) flood
            count = 0
        count += 1
        if count >= self._votes:
            self._best = candidate
            # Everything tracked was only better than the *old* best;
            # re-filter against the new one to keep the table small.
            self._sightings = {
                value: seen
                for value, seen in self._sightings.items()
                if self._better(value)
            }
        else:
            self._sightings[candidate] = count

    def on_start(self, ctx: Context):
        ctx.output = self._best
        return self._best

    def on_round(self, ctx: Context, inbox: Dict[Hashable, Message]):
        for message in inbox.values():
            self._ingest(message.payload)
        ctx.output = self._best
        if ctx.round >= self._horizon:
            ctx.halt(self._best)
            return None
        return self._best


class TokenGossipProgram(NodeProgram):
    """All-to-all token gossip with a pluggable defense ``variant``.

    Every node owns one ``(origin, value)`` token and the goal is for
    every node to learn every token. Each round a node broadcasts one
    known token, round-robin over its committed origins (sorted, indexed
    by round number — deterministic, one token per round, CONGEST-legal).

    ``variant`` selects the commit rule for incoming tokens:

    * ``"plain"`` — first value seen for an origin wins (uncoded;
      corruptible: one flipped token poisons that origin everywhere
      downstream);
    * ``"checksum"`` — payloads carry ``token_checksum((origin,
      value))``; bad checksums are dropped, first *valid* value wins;
    * ``"vote"`` — an ``(origin, value)`` pair commits after ``votes``
      sightings; first pair to reach the threshold wins its origin.

    Output: sorted tuple of committed ``(origin, value)`` pairs.
    """

    VARIANTS = ("plain", "checksum", "vote")

    def __init__(
        self,
        origin: Hashable,
        value: Any,
        horizon: int,
        variant: str = "plain",
        votes: int = 2,
        checksum_bits: int = DEFAULT_CHECKSUM_BITS,
    ) -> None:
        if variant not in self.VARIANTS:
            raise GraphValidationError(
                f"unknown gossip variant {variant!r}; valid: "
                + ", ".join(self.VARIANTS)
            )
        if horizon < 1:
            raise GraphValidationError("horizon must be >= 1")
        if votes < 1:
            raise GraphValidationError("votes must be >= 1")
        self._variant = variant
        self._votes = votes
        self._bits = checksum_bits
        self._horizon = horizon
        self._tokens: Dict[Hashable, Any] = {origin: value}
        self._sightings: Dict[Tuple[Hashable, Any], int] = {}

    def _emit(self, round_index: int):
        origins = sorted(self._tokens, key=repr)
        origin = origins[round_index % len(origins)]
        token = (origin, self._tokens[origin])
        if self._variant == "checksum":
            return (origin, self._tokens[origin],
                    token_checksum(token, self._bits))
        return token

    def _ingest(self, payload: Any) -> None:
        if self._variant == "checksum":
            if (
                not isinstance(payload, tuple)
                or len(payload) != 3
                or payload[2]
                != token_checksum((payload[0], payload[1]), self._bits)
            ):
                return  # detected corruption
            origin, value = payload[0], payload[1]
        else:
            if not isinstance(payload, tuple) or len(payload) != 2:
                return  # malformed (e.g. forged int): ignore
            origin, value = payload
        if origin in self._tokens:
            return  # committed (first-wins in every variant)
        if self._variant == "vote":
            key = (origin, value)
            count = self._sightings.get(key)
            if count is None:
                if len(self._sightings) >= MAX_TRACKED_CANDIDATES:
                    return
                count = 0
            count += 1
            if count < self._votes:
                self._sightings[key] = count
                return
            self._sightings = {
                k: seen for k, seen in self._sightings.items()
                if k[0] != origin
            }
        self._tokens[origin] = value

    def _output(self) -> Tuple[Tuple[Hashable, Any], ...]:
        return tuple(sorted(self._tokens.items(), key=repr))

    def on_start(self, ctx: Context):
        ctx.output = self._output()
        return self._emit(0)

    def on_round(self, ctx: Context, inbox: Dict[Hashable, Message]):
        for message in inbox.values():
            self._ingest(message.payload)
        ctx.output = self._output()
        if ctx.round >= self._horizon:
            ctx.halt(self._output())
            return None
        return self._emit(ctx.round)
