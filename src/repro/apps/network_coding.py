"""Random linear network coding (RLNC) comparison baseline.

The paper's introduction motivates connectivity decomposition by the
shortcoming of network coding in CONGEST-style models: *"in standard
distributed networks each message can contain at most O(log n) bits and
thus, because of the coefficients, network coding can only support a flow
of O(log n) messages per round"* (Section 1). This module makes that
claim measurable: it simulates gossip-by-RLNC over GF(2) under the same
per-message bit budget the simulator enforces, accounting the coefficient
vector against the budget, so the benchmark harness (experiment E17) can
plot coded throughput against the tree-packing broadcast of Appendix A
and locate the crossover the paper predicts.

On-wire format of a coded packet for ``N`` source messages of ``B``
payload bits: ``N`` coefficient bits + ``B`` payload bits. One packet
therefore occupies a link for ``⌈(N + B) / budget⌉`` CONGEST rounds; the
tree-routed scheme's packets carry ``⌈log₂ N⌉ + B`` bits and almost
always fit in one round. The linear algebra is GF(2) row reduction over
Python integers used as bit vectors.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional

import networkx as nx

from repro.errors import GraphValidationError
from repro.simulator.runner import default_message_budget
from repro.utils.mathutil import ceil_div, ceil_log2
from repro.utils.rng import RngLike, ensure_rng


class Gf2Basis:
    """A subspace of GF(2)^dimension kept in row-echelon form.

    Vectors are Python ints; bit ``i`` is coordinate ``i``. Insertion
    reduces against existing rows and keeps one row per leading bit, so
    rank queries and membership tests are O(rank) word operations.
    """

    def __init__(self, dimension: int) -> None:
        if dimension < 1:
            raise GraphValidationError("dimension must be >= 1")
        self.dimension = dimension
        # rows[b] = the basis row whose leading (highest set) bit is b.
        self._rows: Dict[int, int] = {}

    @property
    def rank(self) -> int:
        return len(self._rows)

    @property
    def is_full(self) -> bool:
        return self.rank == self.dimension

    def reduce(self, vector: int) -> int:
        """Reduce ``vector`` against the basis; 0 iff already spanned."""
        while vector:
            lead = vector.bit_length() - 1
            row = self._rows.get(lead)
            if row is None:
                return vector
            vector ^= row
        return 0

    def insert(self, vector: int) -> bool:
        """Add ``vector`` to the span. True iff the rank grew."""
        if vector < 0 or vector.bit_length() > self.dimension:
            raise GraphValidationError(
                "vector does not fit the basis dimension"
            )
        reduced = self.reduce(vector)
        if reduced == 0:
            return False
        self._rows[reduced.bit_length() - 1] = reduced
        return True

    def contains(self, vector: int) -> bool:
        return self.reduce(vector) == 0

    def random_combination(self, rng) -> int:
        """A uniformly random vector of the span (possibly 0 for the
        empty basis). Used as the coded payload a node transmits."""
        combination = 0
        for row in self._rows.values():
            if rng.getrandbits(1):
                combination ^= row
        return combination


@dataclass
class CodedBroadcastOutcome:
    """Measurements of one RLNC gossip run."""

    slots: int
    rounds_per_packet: int
    n_messages: int
    packet_bits: int
    budget_bits: int

    @property
    def rounds(self) -> int:
        """CONGEST rounds consumed: every slot ships one packet per node,
        each packet occupying its links for ``rounds_per_packet``."""
        return self.slots * self.rounds_per_packet

    @property
    def throughput(self) -> float:
        """Messages delivered to all nodes per CONGEST round."""
        return self.n_messages / max(1, self.rounds)


def coded_packet_bits(n_messages: int, payload_bits: int) -> int:
    """On-wire size of one RLNC packet: coefficients + payload."""
    return n_messages + payload_bits


def routed_packet_bits(n_messages: int, payload_bits: int) -> int:
    """On-wire size of one routed packet: message id + payload."""
    return ceil_log2(max(2, n_messages)) + payload_bits


def rlnc_gossip(
    graph: nx.Graph,
    sources: Dict[int, Hashable],
    payload_bits: Optional[int] = None,
    budget_bits: Optional[int] = None,
    rng: RngLike = 0,
    max_slots: int = 1_000_000,
) -> CodedBroadcastOutcome:
    """All-to-all dissemination of ``sources`` by RLNC gossip.

    ``sources`` maps message ids ``0..N-1`` to their origin nodes. Every
    slot, every node broadcasts one uniformly random GF(2) combination of
    its received span to all neighbors (the V-CONGEST discipline: one
    transmission per node per slot). The run ends when every node's
    coefficient space has full rank ``N`` — i.e. every node can decode
    all messages by Gaussian elimination.

    Rounds are derived from slots via the packet/budget ratio; see the
    module docstring. Raises if dissemination cannot complete (e.g. the
    graph is disconnected).
    """
    if not sources:
        raise GraphValidationError("sources must be non-empty")
    if graph.number_of_nodes() == 0:
        raise GraphValidationError("graph must be non-empty")
    missing = [v for v in sources.values() if not graph.has_node(v)]
    if missing:
        raise GraphValidationError(f"source nodes not in graph: {missing!r}")
    if not nx.is_connected(graph):
        raise GraphValidationError("graph must be connected")
    n_messages = len(sources)
    expected_ids = set(range(n_messages))
    if set(sources) != expected_ids:
        raise GraphValidationError(
            "message ids must be exactly 0..N-1 for the coefficient space"
        )
    rand = ensure_rng(rng)
    n = graph.number_of_nodes()
    budget = (
        budget_bits if budget_bits is not None else default_message_budget(n)
    )
    payload = payload_bits if payload_bits is not None else budget
    if budget < 1 or payload < 1:
        raise GraphValidationError("budgets must be positive")

    spans: Dict[Hashable, Gf2Basis] = {
        v: Gf2Basis(n_messages) for v in graph.nodes()
    }
    for message_id, origin in sources.items():
        spans[origin].insert(1 << message_id)

    slots = 0
    while any(not spans[v].is_full for v in graph.nodes()):
        slots += 1
        if slots > max_slots:
            raise GraphValidationError(
                "RLNC gossip did not converge; graph may be disconnected"
            )
        # All transmissions within a slot are simultaneous: snapshot the
        # outgoing combinations before anyone updates their span.
        outgoing = {
            v: spans[v].random_combination(rand) for v in graph.nodes()
        }
        for v, coded in outgoing.items():
            if coded == 0:
                continue
            for u in graph.neighbors(v):
                spans[u].insert(coded)

    packet = coded_packet_bits(n_messages, payload)
    return CodedBroadcastOutcome(
        slots=slots,
        rounds_per_packet=ceil_div(packet, budget),
        n_messages=n_messages,
        packet_bits=packet,
        budget_bits=budget,
    )


@dataclass
class ThroughputComparison:
    """Side-by-side throughput of RLNC and tree-packing broadcast."""

    coded: CodedBroadcastOutcome
    tree_rounds: int
    n_messages: int

    @property
    def coded_throughput(self) -> float:
        return self.coded.throughput

    @property
    def tree_throughput(self) -> float:
        return self.n_messages / max(1, self.tree_rounds)

    @property
    def tree_advantage(self) -> float:
        """Tree throughput ÷ coded throughput (> 1 means trees win)."""
        return self.tree_throughput / max(self.coded_throughput, 1e-12)


def compare_with_tree_broadcast(
    graph: nx.Graph,
    packing,
    sources: Dict[int, Hashable],
    payload_bits: Optional[int] = None,
    budget_bits: Optional[int] = None,
    rng: RngLike = 0,
) -> ThroughputComparison:
    """Run both dissemination schemes on identical workloads.

    ``packing`` is a :class:`~repro.core.tree_packing.DominatingTreePacking`;
    the tree side runs :func:`repro.apps.broadcast.vertex_broadcast` and
    its rounds are scaled by the (usually 1) packet/budget ratio of the
    routed format so both sides pay for their headers.
    """
    from repro.apps.broadcast import vertex_broadcast

    rand = ensure_rng(rng)
    coded = rlnc_gossip(
        graph,
        sources,
        payload_bits=payload_bits,
        budget_bits=budget_bits,
        rng=rand,
    )
    outcome = vertex_broadcast(packing, sources, rng=rand)
    routed_cost = ceil_div(
        routed_packet_bits(len(sources), coded.packet_bits - len(sources)),
        coded.budget_bits,
    )
    return ThroughputComparison(
        coded=coded,
        tree_rounds=outcome.rounds * routed_cost,
        n_messages=len(sources),
    )
