"""Applications of the decompositions (Section 1.3, Appendix A).

* :mod:`repro.apps.broadcast` — broadcast by routing each message along a
  random tree of a packing (Corollaries 1.4/1.5), with V-CONGEST and
  E-CONGEST token-level schedulers.
* :mod:`repro.apps.gossip` — the gossiping / k-token dissemination of
  Appendix A (Corollary A.1).
* :mod:`repro.apps.oblivious_routing` — congestion measurements for the
  oblivious routing claims of Corollary 1.6.
* :mod:`repro.apps.network_coding` — RLNC gossip under the CONGEST bit
  budget (the Section 1 network-coding comparison).
* :mod:`repro.apps.point_to_point` — the [24] Θ(√n) point-to-point
  oblivious-routing witness on the grid.
* :mod:`repro.apps.resilience` — flood resilience under i.i.d. loss and
  adversarial cut blockades, built on the scenario layer.
"""

from repro.apps.broadcast import (
    BroadcastOutcome,
    edge_broadcast,
    vertex_broadcast,
)
from repro.apps.gossip import GossipOutcome, gossip
from repro.apps.oblivious_routing import (
    CongestionReport,
    edge_congestion_report,
    vertex_congestion_report,
)
from repro.apps.network_coding import (
    CodedBroadcastOutcome,
    compare_with_tree_broadcast,
    rlnc_gossip,
)
from repro.apps.point_to_point import grid_competitiveness
from repro.apps.resilience import (
    ResilienceReport,
    cut_drop_schedule,
    flood_loss_sweep,
    flood_partition_test,
)

__all__ = [
    "BroadcastOutcome",
    "vertex_broadcast",
    "edge_broadcast",
    "GossipOutcome",
    "gossip",
    "CongestionReport",
    "vertex_congestion_report",
    "edge_congestion_report",
    "CodedBroadcastOutcome",
    "rlnc_gossip",
    "compare_with_tree_broadcast",
    "grid_competitiveness",
    "ResilienceReport",
    "cut_drop_schedule",
    "flood_loss_sweep",
    "flood_partition_test",
]
