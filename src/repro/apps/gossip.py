"""Gossiping / k-token dissemination (Appendix A, Corollary A.1).

``N`` messages sit in arbitrary nodes, at most ``η`` per node; the claim
is completion in ``Õ(η + (N + n)/k)`` rounds of V-CONGEST by handing
each message to a random dominating tree and broadcasting inside it.
:func:`gossip` builds the message placement and runs the
:func:`repro.apps.broadcast.vertex_broadcast` scheduler; experiment E5
sweeps ``N`` and ``k`` against the bound. ``rng`` defaults to seed 0
(not OS entropy), so an omitted seed still yields a reproducible run.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional

from repro.errors import GraphValidationError
from repro.apps.broadcast import BroadcastOutcome, vertex_broadcast
from repro.core.tree_packing import DominatingTreePacking
from repro.utils.rng import RngLike, ensure_rng


@dataclass
class GossipOutcome:
    """Result of a gossip run plus the paper's reference bound."""

    broadcast: BroadcastOutcome
    n_messages: int
    max_per_node: int
    reference_rounds: float  # η + (N + n)/σ with σ = packing size

    @property
    def rounds(self) -> int:
        return self.broadcast.rounds

    @property
    def slowdown(self) -> float:
        """Measured rounds ÷ reference bound (the Õ(·) factor)."""
        return self.rounds / max(1.0, self.reference_rounds)


def place_messages(
    nodes: List[Hashable],
    n_messages: int,
    max_per_node: int,
    rng: RngLike = 0,
) -> Dict[int, Hashable]:
    """Scatter ``n_messages`` over ``nodes`` with per-node cap η."""
    rand = ensure_rng(rng)
    if n_messages > max_per_node * len(nodes):
        raise GraphValidationError("cannot place N messages with this η cap")
    load: Dict[Hashable, int] = {v: 0 for v in nodes}
    placement: Dict[int, Hashable] = {}
    for msg in range(n_messages):
        while True:
            v = nodes[rand.randrange(len(nodes))]
            if load[v] < max_per_node:
                load[v] += 1
                placement[msg] = v
                break
    return placement


def gossip(
    packing: DominatingTreePacking,
    n_messages: Optional[int] = None,
    max_per_node: int = 1,
    rng: RngLike = 0,
) -> GossipOutcome:
    """All-to-all dissemination through a dominating tree packing.

    Defaults to the classical gossip instance: one message per node
    (``N = n``, ``η = 1``).
    """
    rand = ensure_rng(rng)
    nodes = list(packing.graph.nodes())
    n = len(nodes)
    if n_messages is None:
        n_messages = n
        placement = {i: v for i, v in enumerate(nodes)}
    else:
        placement = place_messages(nodes, n_messages, max_per_node, rand)
    outcome = vertex_broadcast(packing, placement, rng=rand)
    sigma = max(packing.size, 1e-9)
    reference = max_per_node + (n_messages + n) / sigma
    return GossipOutcome(
        broadcast=outcome,
        n_messages=n_messages,
        max_per_node=max_per_node,
        reference_rounds=reference,
    )
