"""Indexed edge-array graph kernel for the packing hot paths.

The paper's constructions iterate thousands of times over the *same*
graph: the MWU spanning packing (Section 5.1) recomputes an MST per
iteration, the integral packing (Section 1.2) partitions edges and
spans the parts, and the tester (Appendix E) sweeps same-class edges.
Doing that over :class:`networkx.Graph` objects keyed by
``frozenset``-of-``frozenset`` edges pays dictionary hashing and graph
reconstruction costs on every pass.

This subpackage canonicalizes a graph **once** into integer node ids
and a flat edge array, after which every hot-path operation is an array
scan:

* :class:`~repro.fastgraph.indexed.IndexedGraph` — the canonical form:
  node labels ↔ contiguous ints, edges as parallel ``u[i]``/``v[i]``
  index lists, conversion back to :mod:`networkx` only at API
  boundaries;
* :class:`~repro.fastgraph.union_find.IntUnionFind` — disjoint sets
  over ``0..n-1`` backed by flat lists (no hashing);
* :mod:`~repro.fastgraph.kruskal` — Kruskal's MST as a scan over an
  edge *order*, plus :class:`~repro.fastgraph.kruskal.NearSortedEdgeOrder`
  which keeps the MWU's cost-sorted order alive across iterations
  (costs are a monotone transform of the slowly-changing loads, so each
  re-sort is adaptive instead of from-scratch).

Trees and edge subsets are plain ``list``/``frozenset`` of edge
indices; :meth:`IndexedGraph.tree_graph` rebuilds a labeled
:class:`networkx.Graph` when a packing result crosses the public API.
"""

from repro.fastgraph.indexed import IndexedGraph
from repro.fastgraph.union_find import IntUnionFind
from repro.fastgraph.kruskal import NearSortedEdgeOrder, kruskal_from_order

__all__ = [
    "IndexedGraph",
    "IntUnionFind",
    "NearSortedEdgeOrder",
    "kruskal_from_order",
]
