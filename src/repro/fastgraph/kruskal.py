"""Kruskal's MST as a scan over an explicit edge order.

Kruskal's algorithm depends on edge costs only through their *order*:
scan edges from cheapest to costliest, accept an edge iff it joins two
components. The MWU loop of Section 5.1 exploits this twice:

* costs ``c_e = exp(α·(z_e − z_max))`` are a monotone transform of the
  loads, and ``networkx`` breaks cost ties stably by edge-insertion
  order — so sorting edge indices by ``(cost, index)`` reproduces the
  exact tree ``networkx.minimum_spanning_tree`` would return, without
  ever materializing a weighted graph;
* between MWU iterations all loads scale by the same ``1 − β`` and only
  the ``n − 1`` tree edges gain ``β``, so the cost order barely changes.
  :class:`NearSortedEdgeOrder` keeps the previous order alive and
  re-sorts it in place — Timsort detects the long already-sorted runs,
  making the per-iteration sort adaptive (≈ linear) instead of a full
  ``m log m`` from scratch.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.fastgraph.union_find import IntUnionFind


def kruskal_from_order(
    order: Sequence[int],
    u: Sequence[int],
    v: Sequence[int],
    n: int,
    uf: Optional[IntUnionFind] = None,
) -> List[int]:
    """Kruskal over ``order``: the accepted edge indices, cheapest first.

    ``order`` must list edge indices from cheapest to costliest (ties
    already broken); ``u``/``v`` are the graph's endpoint arrays. On a
    connected graph the result is the MST under any cost function that
    sorts edges into ``order``; on a disconnected one it is a spanning
    forest. Passing a reusable ``uf`` avoids reallocating the
    union-find in tight loops (it is reset here).
    """
    uf = IntUnionFind(n) if uf is None else uf.reset()
    tree: List[int] = []
    need = n - 1
    if need <= 0:
        return tree
    # The union-find is inlined: the scan visits most edges every MWU
    # iteration, and two method calls per edge would dominate it.
    parent = uf.parent
    size = uf.size
    append = tree.append
    for i in order:
        x = u[i]
        root_x = x
        while parent[root_x] != root_x:
            root_x = parent[root_x]
        while parent[x] != root_x:
            parent[x], x = root_x, parent[x]
        y = v[i]
        root_y = y
        while parent[root_y] != root_y:
            root_y = parent[root_y]
        while parent[y] != root_y:
            parent[y], y = root_y, parent[y]
        if root_x == root_y:
            continue
        if size[root_x] < size[root_y]:
            root_x, root_y = root_y, root_x
        parent[root_y] = root_x
        size[root_x] += size[root_y]
        append(i)
        if len(tree) == need:
            break
    uf.n_components = n - len(tree)
    return tree


class NearSortedEdgeOrder:
    """A persistent ascending edge order, re-sorted adaptively.

    Holds a permutation of ``range(m)`` sorted by the previous
    iteration's keys. :meth:`resort` sorts it under fresh keys with the
    tie-break ``(key, index)``; because the permutation is already
    nearly sorted for MWU-style key updates, Timsort's run detection
    does close to linear work. The result is exactly
    ``sorted(range(m), key=lambda i: (keys[i], i))`` regardless of the
    starting order — the persistence only buys speed, never changes the
    answer.
    """

    __slots__ = ("order",)

    def __init__(self, m: int) -> None:
        self.order: List[int] = list(range(m))

    def resort(self, keys: Sequence[float]) -> List[int]:
        """Sort the persistent order by ``(keys[i], i)`` and return it."""
        keyed = list(zip(keys, range(len(self.order))))
        self.order.sort(key=keyed.__getitem__)
        return self.order
