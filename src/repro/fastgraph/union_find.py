"""Integer-specialized disjoint-set forest.

The general-purpose :class:`repro.graphs.union_find.UnionFind` accepts
arbitrary hashable elements and therefore pays two dict lookups per
parent-pointer hop. The packing hot paths only ever union contiguous
integer node ids, so this variant stores parents and sizes in flat
lists — ``find`` is a pure list-indexing loop with path compression,
``union`` is union-by-size. ``reset`` reuses the allocation so one
instance can serve thousands of MWU iterations.
"""

from __future__ import annotations

from typing import List


class IntUnionFind:
    """Disjoint-set forest over the integers ``0 .. n-1``."""

    __slots__ = ("parent", "size", "n", "n_components")

    def __init__(self, n: int) -> None:
        if n < 0:
            raise ValueError("n must be non-negative")
        self.n = n
        self.parent: List[int] = list(range(n))
        self.size: List[int] = [1] * n
        self.n_components = n

    def reset(self) -> "IntUnionFind":
        """Return every element to its own singleton set, reusing storage."""
        parent = self.parent
        size = self.size
        for i in range(self.n):
            parent[i] = i
            size[i] = 1
        self.n_components = self.n
        return self

    def find(self, x: int) -> int:
        """Representative of ``x``'s set (with full path compression)."""
        parent = self.parent
        root = x
        while parent[root] != root:
            root = parent[root]
        while parent[x] != root:
            parent[x], x = root, parent[x]
        return root

    def union(self, x: int, y: int) -> bool:
        """Merge the sets of ``x`` and ``y``; ``True`` iff a merge happened."""
        rx = self.find(x)
        ry = self.find(y)
        if rx == ry:
            return False
        size = self.size
        if size[rx] < size[ry]:
            rx, ry = ry, rx
        self.parent[ry] = rx
        size[rx] += size[ry]
        self.n_components -= 1
        return True

    def connected(self, x: int, y: int) -> bool:
        return self.find(x) == self.find(y)

    def component_size(self, x: int) -> int:
        return self.size[self.find(x)]
