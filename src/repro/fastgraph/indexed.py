"""Canonical integer-indexed graph with a flat edge array.

Built once per construction from a :class:`networkx.Graph`; every
hot-path pass afterwards works on ``u[i]``/``v[i]`` int lists and edge
indices. Edge index ``i`` corresponds to the ``i``-th edge reported by
``graph.edges()`` — the same order :func:`networkx.minimum_spanning_tree`
uses as its stable tie-break, which is what lets the kernel reproduce
networkx results bit-for-bit (see :mod:`repro.fastgraph.kruskal`).
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from collections import deque
from typing import Dict, FrozenSet, Hashable, Iterable, List, Optional, Sequence, Tuple

import networkx as nx

from repro.fastgraph.union_find import IntUnionFind

Edge = FrozenSet[Hashable]


class IndexedGraph:
    """A graph canonicalized to integer node ids and an edge array.

    Attributes:
        nodes: original node labels, position = integer id;
        index_of: label → integer id;
        u, v: parallel lists, edge ``i`` joins ``u[i]`` and ``v[i]``;
        n, m: node and edge counts;
        generation: mutation counter — bumped by :meth:`add_edge` /
            :meth:`remove_edge`, so caches derived from this index can
            detect staleness without holding back-references.

    A :meth:`from_networkx` index can also be maintained *incrementally*:
    :meth:`add_edge` / :meth:`remove_edge` splice the canonical edge
    array (and the cached adjacency lists) exactly where a from-scratch
    re-canonicalization of the equally-mutated ``nx.Graph`` would place
    the edge, so ``IndexedGraph.from_networkx(g)`` and an incrementally
    edited index never diverge (``tests/test_incremental_index.py`` pins
    this bit for bit).
    """

    __slots__ = (
        "nodes", "index_of", "u", "v", "n", "m", "generation",
        "_neighbors", "_canonical",
    )

    def __init__(
        self,
        nodes: Sequence[Hashable],
        edges: Iterable[Tuple[int, int]],
    ) -> None:
        self.nodes: List[Hashable] = list(nodes)
        self.index_of: Dict[Hashable, int] = {
            node: i for i, node in enumerate(self.nodes)
        }
        if len(self.index_of) != len(self.nodes):
            raise ValueError("duplicate node labels")
        self.n = len(self.nodes)
        self.u: List[int] = []
        self.v: List[int] = []
        for a, b in edges:
            self.u.append(a)
            self.v.append(b)
        self.m = len(self.u)
        self.generation = 0
        self._neighbors: Optional[List[List[int]]] = None
        self._canonical: Optional[bool] = None

    @classmethod
    def from_networkx(cls, graph: nx.Graph) -> "IndexedGraph":
        """Canonicalize ``graph``; edge ``i`` is the ``i``-th of ``graph.edges()``."""
        nodes = list(graph.nodes())
        index_of = {node: i for i, node in enumerate(nodes)}
        edges = [(index_of[a], index_of[b]) for a, b in graph.edges()]
        return cls(nodes, edges)

    # ------------------------------------------------------------------
    # Edge/adjacency views
    # ------------------------------------------------------------------

    def endpoints(self, i: int) -> Tuple[Hashable, Hashable]:
        """Original labels of edge ``i``'s endpoints."""
        return self.nodes[self.u[i]], self.nodes[self.v[i]]

    def neighbors(self) -> List[List[int]]:
        """Adjacency as int lists (cached; insertion order = edge order)."""
        if self._neighbors is None:
            adj: List[List[int]] = [[] for _ in range(self.n)]
            for a, b in zip(self.u, self.v):
                adj[a].append(b)
                if b != a:
                    adj[b].append(a)
            self._neighbors = adj
        return self._neighbors

    # ------------------------------------------------------------------
    # Incremental mutation (mirrors networkx canonical edge order)
    # ------------------------------------------------------------------

    def _require_canonical(self) -> None:
        """Mutation needs the ``from_networkx`` order invariant.

        In any index canonicalized from a ``networkx`` graph, edge ``i``
        is reported by the endpoint appearing *earlier* in node-insertion
        order, so ``u[i] < v[i]`` and ``u`` is non-decreasing (edges of
        one reporting node are contiguous). The splice arithmetic below
        is only correct under that invariant, so indexes built with an
        arbitrary hand-rolled edge order refuse to mutate.
        """
        if self._canonical is None:
            u = self.u
            v = self.v
            self._canonical = all(
                u[i] < v[i] for i in range(self.m)
            ) and all(u[i] <= u[i + 1] for i in range(self.m - 1))
        if not self._canonical:
            raise ValueError(
                "cannot mutate an IndexedGraph whose edge array is not in "
                "networkx canonical order; rebuild via from_networkx()"
            )

    def has_edge(self, a: Hashable, b: Hashable) -> bool:
        """Whether the edge ``{a, b}`` (original labels) is present."""
        ia = self.index_of.get(a)
        ib = self.index_of.get(b)
        if ia is None or ib is None:
            return False
        first, second = (ia, ib) if ia < ib else (ib, ia)
        lo = bisect_left(self.u, first)
        hi = bisect_right(self.u, first, lo=lo)
        return any(self.v[i] == second for i in range(lo, hi))

    def add_edge(self, a: Hashable, b: Hashable) -> int:
        """Splice edge ``{a, b}`` in at its canonical position.

        Unknown labels become new nodes (appended in ``a``, ``b`` order —
        exactly where ``nx.Graph.add_edge`` puts them). Returns the new
        edge's index. The cached adjacency lists, when built, are
        updated in place; every other derived structure must be
        invalidated by the caller (:attr:`generation` is bumped so
        caches can notice).
        """
        if a == b:
            raise ValueError(f"self-loop {a!r}-{b!r} is not allowed")
        self._require_canonical()
        if self.has_edge(a, b):
            raise ValueError(f"edge {a!r}-{b!r} already exists")
        for label in (a, b):
            if label not in self.index_of:
                self.index_of[label] = self.n
                self.nodes.append(label)
                self.n += 1
                if self._neighbors is not None:
                    self._neighbors.append([])
        ia, ib = self.index_of[a], self.index_of[b]
        first, second = (ia, ib) if ia < ib else (ib, ia)
        # networkx appends to ``adj[first]``, so a fresh canonicalization
        # reports the new edge *last* in ``first``'s contiguous block.
        position = bisect_right(self.u, first)
        self.u.insert(position, first)
        self.v.insert(position, second)
        self.m += 1
        if self._neighbors is not None:
            adjacency = self._neighbors
            # Every existing edge incident to ``first`` lives in a block
            # at or before ``first``'s, i.e. strictly before the new
            # edge: append keeps adjacency in edge order.
            adjacency[first].append(second)
            # ``second``'s neighbors with a smaller endpoint than
            # ``second`` form a strictly increasing prefix (one edge per
            # block); the new edge follows exactly those with c <= first.
            spot = 0
            for c in adjacency[second]:
                if c <= first:
                    spot += 1
                else:
                    break
            adjacency[second].insert(spot, first)
        self.generation += 1
        return position

    def remove_edge(self, a: Hashable, b: Hashable) -> int:
        """Remove edge ``{a, b}``; returns the edge index it occupied.

        Nodes are never removed (matching ``nx.Graph.remove_edge``).
        """
        ia = self.index_of.get(a)
        ib = self.index_of.get(b)
        if ia is None or ib is None:
            raise KeyError(f"edge {a!r}-{b!r} is not in the graph")
        self._require_canonical()
        first, second = (ia, ib) if ia < ib else (ib, ia)
        lo = bisect_left(self.u, first)
        hi = bisect_right(self.u, first, lo=lo)
        for i in range(lo, hi):
            if self.v[i] == second:
                break
        else:
            raise KeyError(f"edge {a!r}-{b!r} is not in the graph")
        del self.u[i]
        del self.v[i]
        self.m -= 1
        if self._neighbors is not None:
            self._neighbors[first].remove(second)
            self._neighbors[second].remove(first)
        self.generation += 1
        return i

    def edge_frozenset(self, i: int) -> Edge:
        """Edge ``i`` as the ``frozenset``-of-labels key of the legacy API."""
        return frozenset((self.nodes[self.u[i]], self.nodes[self.v[i]]))

    def edges_to_node_sets(self, edge_ids: Iterable[int]) -> FrozenSet[Edge]:
        """Edge-index set → the legacy ``frozenset``-of-``frozenset`` form."""
        nodes = self.nodes
        u = self.u
        v = self.v
        return frozenset(
            frozenset((nodes[u[i]], nodes[v[i]])) for i in edge_ids
        )

    # ------------------------------------------------------------------
    # Subset structure
    # ------------------------------------------------------------------

    def nx_edge_order(self, edge_ids: Iterable[int]) -> List[int]:
        """Reorder ``edge_ids`` as ``networkx`` would report them.

        A ``networkx.Graph`` holding all our nodes plus exactly these
        edges (inserted in the given order) reports ``graph.edges()`` in
        node-major adjacency order, which is the stable tie-break order
        of its Kruskal. This reproduces that order on indices, so
        subgraphs built index-side stay bit-compatible with subgraphs
        built graph-side.
        """
        adj: List[List[Tuple[int, int]]] = [[] for _ in range(self.n)]
        u = self.u
        v = self.v
        for i in edge_ids:
            a, b = u[i], v[i]
            adj[a].append((b, i))
            if b != a:
                adj[b].append((a, i))
        order: List[int] = []
        reported = [False] * self.n
        for a in range(self.n):
            for b, i in adj[a]:
                if not reported[b]:
                    order.append(i)
            reported[a] = True
        return order

    def is_connected_via(
        self, edge_ids: Optional[Iterable[int]] = None, uf: Optional[IntUnionFind] = None
    ) -> bool:
        """Whether the given edges (default: all) connect all ``n`` nodes."""
        if self.n <= 1:
            return True
        uf = IntUnionFind(self.n) if uf is None else uf.reset()
        u = self.u
        v = self.v
        if edge_ids is None:
            edge_ids = range(self.m)
        for i in edge_ids:
            uf.union(u[i], v[i])
            if uf.n_components == 1:
                return True
        return uf.n_components == 1

    def bfs_tree_edges(self, edge_ids: Sequence[int], root: int = 0) -> List[int]:
        """Edge indices of a BFS spanning tree over the given edge subset.

        Visits neighbors in edge-subset insertion order from ``root`` —
        the same traversal :func:`networkx.bfs_tree` performs on a graph
        built by inserting these edges in the same order, so the
        resulting tree matches the legacy
        :func:`repro.core.tree_packing.spanning_tree_of` edge for edge.
        Only the nodes reachable from ``root`` are spanned; callers
        check connectivity first.
        """
        adj: List[List[Tuple[int, int]]] = [[] for _ in range(self.n)]
        u = self.u
        v = self.v
        for i in edge_ids:
            a, b = u[i], v[i]
            adj[a].append((b, i))
            if b != a:
                adj[b].append((a, i))
        tree: List[int] = []
        visited = [False] * self.n
        visited[root] = True
        queue = deque([root])
        while queue:
            a = queue.popleft()
            for b, i in adj[a]:
                if not visited[b]:
                    visited[b] = True
                    tree.append(i)
                    queue.append(b)
        return tree

    # ------------------------------------------------------------------
    # API boundary: back to networkx
    # ------------------------------------------------------------------

    def tree_graph(self, edge_ids: Iterable[int]) -> nx.Graph:
        """A labeled :class:`networkx.Graph` with all nodes + these edges.

        Packings materialize one graph per tree, so this writes the
        adjacency structure directly when the networkx internals look
        like plain dicts (they have since 2.0) and falls back to the
        public API otherwise. Both paths produce byte-equivalent graphs
        (no node/edge data, default factories).
        """
        graph = nx.Graph()
        nodes = self.nodes
        u = self.u
        v = self.v
        node_attrs = getattr(graph, "_node", None)
        adjacency = getattr(graph, "_adj", None)
        if type(node_attrs) is dict and type(adjacency) is dict:
            for label in nodes:
                node_attrs[label] = {}
                adjacency[label] = {}
            for i in edge_ids:
                a = nodes[u[i]]
                b = nodes[v[i]]
                data: Dict = {}
                adjacency[a][b] = data
                adjacency[b][a] = data
        else:  # pragma: no cover - exotic networkx configuration
            graph.add_nodes_from(nodes)
            graph.add_edges_from((nodes[u[i]], nodes[v[i]]) for i in edge_ids)
        return graph

    def to_networkx(self) -> nx.Graph:
        """The full graph back as a labeled :class:`networkx.Graph`."""
        return self.tree_graph(range(self.m))
