"""Canonical integer-indexed graph with a flat edge array.

Built once per construction from a :class:`networkx.Graph`; every
hot-path pass afterwards works on ``u[i]``/``v[i]`` int lists and edge
indices. Edge index ``i`` corresponds to the ``i``-th edge reported by
``graph.edges()`` — the same order :func:`networkx.minimum_spanning_tree`
uses as its stable tie-break, which is what lets the kernel reproduce
networkx results bit-for-bit (see :mod:`repro.fastgraph.kruskal`).
"""

from __future__ import annotations

from collections import deque
from typing import Dict, FrozenSet, Hashable, Iterable, List, Optional, Sequence, Tuple

import networkx as nx

from repro.fastgraph.union_find import IntUnionFind

Edge = FrozenSet[Hashable]


class IndexedGraph:
    """A graph canonicalized to integer node ids and an edge array.

    Attributes:
        nodes: original node labels, position = integer id;
        index_of: label → integer id;
        u, v: parallel lists, edge ``i`` joins ``u[i]`` and ``v[i]``;
        n, m: node and edge counts.
    """

    __slots__ = ("nodes", "index_of", "u", "v", "n", "m", "_neighbors")

    def __init__(
        self,
        nodes: Sequence[Hashable],
        edges: Iterable[Tuple[int, int]],
    ) -> None:
        self.nodes: List[Hashable] = list(nodes)
        self.index_of: Dict[Hashable, int] = {
            node: i for i, node in enumerate(self.nodes)
        }
        if len(self.index_of) != len(self.nodes):
            raise ValueError("duplicate node labels")
        self.n = len(self.nodes)
        self.u: List[int] = []
        self.v: List[int] = []
        for a, b in edges:
            self.u.append(a)
            self.v.append(b)
        self.m = len(self.u)
        self._neighbors: Optional[List[List[int]]] = None

    @classmethod
    def from_networkx(cls, graph: nx.Graph) -> "IndexedGraph":
        """Canonicalize ``graph``; edge ``i`` is the ``i``-th of ``graph.edges()``."""
        nodes = list(graph.nodes())
        index_of = {node: i for i, node in enumerate(nodes)}
        edges = [(index_of[a], index_of[b]) for a, b in graph.edges()]
        return cls(nodes, edges)

    # ------------------------------------------------------------------
    # Edge/adjacency views
    # ------------------------------------------------------------------

    def endpoints(self, i: int) -> Tuple[Hashable, Hashable]:
        """Original labels of edge ``i``'s endpoints."""
        return self.nodes[self.u[i]], self.nodes[self.v[i]]

    def neighbors(self) -> List[List[int]]:
        """Adjacency as int lists (cached; insertion order = edge order)."""
        if self._neighbors is None:
            adj: List[List[int]] = [[] for _ in range(self.n)]
            for a, b in zip(self.u, self.v):
                adj[a].append(b)
                if b != a:
                    adj[b].append(a)
            self._neighbors = adj
        return self._neighbors

    def edge_frozenset(self, i: int) -> Edge:
        """Edge ``i`` as the ``frozenset``-of-labels key of the legacy API."""
        return frozenset((self.nodes[self.u[i]], self.nodes[self.v[i]]))

    def edges_to_node_sets(self, edge_ids: Iterable[int]) -> FrozenSet[Edge]:
        """Edge-index set → the legacy ``frozenset``-of-``frozenset`` form."""
        nodes = self.nodes
        u = self.u
        v = self.v
        return frozenset(
            frozenset((nodes[u[i]], nodes[v[i]])) for i in edge_ids
        )

    # ------------------------------------------------------------------
    # Subset structure
    # ------------------------------------------------------------------

    def nx_edge_order(self, edge_ids: Iterable[int]) -> List[int]:
        """Reorder ``edge_ids`` as ``networkx`` would report them.

        A ``networkx.Graph`` holding all our nodes plus exactly these
        edges (inserted in the given order) reports ``graph.edges()`` in
        node-major adjacency order, which is the stable tie-break order
        of its Kruskal. This reproduces that order on indices, so
        subgraphs built index-side stay bit-compatible with subgraphs
        built graph-side.
        """
        adj: List[List[Tuple[int, int]]] = [[] for _ in range(self.n)]
        u = self.u
        v = self.v
        for i in edge_ids:
            a, b = u[i], v[i]
            adj[a].append((b, i))
            if b != a:
                adj[b].append((a, i))
        order: List[int] = []
        reported = [False] * self.n
        for a in range(self.n):
            for b, i in adj[a]:
                if not reported[b]:
                    order.append(i)
            reported[a] = True
        return order

    def is_connected_via(
        self, edge_ids: Optional[Iterable[int]] = None, uf: Optional[IntUnionFind] = None
    ) -> bool:
        """Whether the given edges (default: all) connect all ``n`` nodes."""
        if self.n <= 1:
            return True
        uf = IntUnionFind(self.n) if uf is None else uf.reset()
        u = self.u
        v = self.v
        if edge_ids is None:
            edge_ids = range(self.m)
        for i in edge_ids:
            uf.union(u[i], v[i])
            if uf.n_components == 1:
                return True
        return uf.n_components == 1

    def bfs_tree_edges(self, edge_ids: Sequence[int], root: int = 0) -> List[int]:
        """Edge indices of a BFS spanning tree over the given edge subset.

        Visits neighbors in edge-subset insertion order from ``root`` —
        the same traversal :func:`networkx.bfs_tree` performs on a graph
        built by inserting these edges in the same order, so the
        resulting tree matches the legacy
        :func:`repro.core.tree_packing.spanning_tree_of` edge for edge.
        Only the nodes reachable from ``root`` are spanned; callers
        check connectivity first.
        """
        adj: List[List[Tuple[int, int]]] = [[] for _ in range(self.n)]
        u = self.u
        v = self.v
        for i in edge_ids:
            a, b = u[i], v[i]
            adj[a].append((b, i))
            if b != a:
                adj[b].append((a, i))
        tree: List[int] = []
        visited = [False] * self.n
        visited[root] = True
        queue = deque([root])
        while queue:
            a = queue.popleft()
            for b, i in adj[a]:
                if not visited[b]:
                    visited[b] = True
                    tree.append(i)
                    queue.append(b)
        return tree

    # ------------------------------------------------------------------
    # API boundary: back to networkx
    # ------------------------------------------------------------------

    def tree_graph(self, edge_ids: Iterable[int]) -> nx.Graph:
        """A labeled :class:`networkx.Graph` with all nodes + these edges.

        Packings materialize one graph per tree, so this writes the
        adjacency structure directly when the networkx internals look
        like plain dicts (they have since 2.0) and falls back to the
        public API otherwise. Both paths produce byte-equivalent graphs
        (no node/edge data, default factories).
        """
        graph = nx.Graph()
        nodes = self.nodes
        u = self.u
        v = self.v
        node_attrs = getattr(graph, "_node", None)
        adjacency = getattr(graph, "_adj", None)
        if type(node_attrs) is dict and type(adjacency) is dict:
            for label in nodes:
                node_attrs[label] = {}
                adjacency[label] = {}
            for i in edge_ids:
                a = nodes[u[i]]
                b = nodes[v[i]]
                data: Dict = {}
                adjacency[a][b] = data
                adjacency[b][a] = data
        else:  # pragma: no cover - exotic networkx configuration
            graph.add_nodes_from(nodes)
            graph.add_edges_from((nodes[u[i]], nodes[v[i]]) for i in edge_ids)
        return graph

    def to_networkx(self) -> nx.Graph:
        """The full graph back as a labeled :class:`networkx.Graph`."""
        return self.tree_graph(range(self.m))
