"""Exception hierarchy for the ``repro`` library.

Every error raised intentionally by the library derives from
:class:`ReproError`, so callers can catch library failures with a single
``except`` clause while letting programming errors (``TypeError`` etc.)
propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class GraphValidationError(ReproError):
    """An input graph violates a precondition (e.g. not connected)."""


class PackingValidationError(ReproError):
    """A tree packing violates its defining constraints.

    Raised by the verification helpers in :mod:`repro.core.tree_packing`
    when a packing fails domination, connectivity, disjointness, or
    weight-capacity checks.
    """


class PackingConstructionError(ReproError):
    """The packing algorithm could not produce a valid packing.

    The w.h.p. guarantees of the paper hold for large ``n``; on tiny or
    adversarial inputs the retry loop may exhaust its attempts, in which
    case this error is raised rather than returning an invalid packing.
    """


class SimulationError(ReproError):
    """A distributed simulation violated a model constraint.

    For example, a node program sent a message exceeding the ``O(log n)``
    bit budget, or attempted per-neighbor messages in the V-CONGEST model
    (which only permits local broadcast).
    """


class ModelViolationError(SimulationError):
    """A node program broke a V-CONGEST / E-CONGEST congestion rule."""


class ProtocolError(ReproError):
    """A two-party protocol (Appendix G reduction) was misused."""
