"""Exception hierarchy for the ``repro`` library.

Every error raised intentionally by the library derives from
:class:`ReproError`, so callers can catch library failures with a single
``except`` clause while letting programming errors (``TypeError`` etc.)
propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class GraphValidationError(ReproError):
    """An input graph violates a precondition (e.g. not connected)."""


class PackingValidationError(ReproError):
    """A tree packing violates its defining constraints.

    Raised by the verification helpers in :mod:`repro.core.tree_packing`
    when a packing fails domination, connectivity, disjointness, or
    weight-capacity checks.
    """


class PackingConstructionError(ReproError):
    """The packing algorithm could not produce a valid packing.

    The w.h.p. guarantees of the paper hold for large ``n``; on tiny or
    adversarial inputs the retry loop may exhaust its attempts, in which
    case this error is raised rather than returning an invalid packing.
    """


class SimulationError(ReproError):
    """A distributed simulation violated a model constraint.

    For example, a node program sent a message exceeding the ``O(log n)``
    bit budget, or attempted per-neighbor messages in the V-CONGEST model
    (which only permits local broadcast).
    """


class ModelViolationError(SimulationError):
    """A node program broke a V-CONGEST / E-CONGEST congestion rule."""


class ProtocolError(ReproError):
    """A two-party protocol (Appendix G reduction) was misused."""


class BatchExecutionError(ReproError):
    """The batch scheduler's execution plane failed as a whole.

    Raised when a backend cannot complete a chunk for infrastructure
    reasons — e.g. a process-pool worker was killed and the pool broke —
    as opposed to a single job failing, which becomes an error *row*
    (the batch keeps going). The message names the chunk (graph spec and
    job-index span) and chains the underlying pool exception.
    """


class ServiceError(ReproError):
    """The graph service (``repro serve`` / ``repro shell``) was misused.

    Raised for unknown operations, missing session handles, and client
    connection failures. The daemon converts these into typed error
    envelopes on the wire instead of letting them kill the connection.
    """


class WireProtocolError(ServiceError):
    """A wire frame violated the newline-delimited JSON protocol.

    ``recoverable`` distinguishes a malformed-but-complete frame (the
    stream is still line-synchronized; the server answers with an error
    envelope and keeps the connection) from an oversized frame (the
    remainder of the line is still buffered, so the server must close
    the connection after reporting the error).
    """

    def __init__(self, message: str, recoverable: bool = True) -> None:
        super().__init__(message)
        self.recoverable = recoverable
