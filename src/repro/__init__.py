"""repro — a reproduction of *Distributed Connectivity Decomposition*.

Censor-Hillel, Ghaffari, Kuhn (PODC 2014; arXiv:1311.5317).

The front door is the :mod:`repro.api` session layer:

>>> import repro
>>> session = repro.GraphSession("harary:6,24")
>>> session.connectivity(seed=3).payload["lower_bound"]
>>> session.pack_cds(seed=3).payload["size"]
>>> session.broadcast(messages=24, seed=3).payload["rounds"]

One :class:`~repro.api.GraphSession` canonicalizes the graph once and
serves the whole pipeline; :class:`~repro.api.JobSpec` plus
:func:`~repro.api.run` fan job matrices across processes. Underneath:

* :func:`repro.core.cds_packing.fractional_cds_packing` — fractional
  dominating tree packing of size ``Ω(k / log n)`` (Theorems 1.1/1.2).
* :func:`repro.core.spanning_packing.fractional_spanning_tree_packing` —
  fractional spanning tree packing of size ``⌈(λ−1)/2⌉(1−ε)``
  (Theorem 1.3).
* :mod:`repro.core.integral_packing` — integral (vertex-/edge-disjoint)
  variants.
* :mod:`repro.apps` — broadcast, gossip, and oblivious routing built on
  the packings (Corollaries 1.4–1.6, Appendix A).
* :mod:`repro.core.vertex_connectivity` — the ``O(log n)`` vertex
  connectivity approximation (Corollary 1.7).
* :mod:`repro.simulator` — the V-CONGEST / E-CONGEST round simulator the
  distributed algorithms run on.
* :mod:`repro.lowerbounds` — the Appendix G lower-bound construction and
  two-party simulation.

The session-layer names below are lazy (PEP 562): importing
:mod:`repro` stays cheap; the heavy modules load on first attribute
access.
"""

__version__ = "1.1.0"

from repro.errors import (
    GraphValidationError,
    ModelViolationError,
    PackingConstructionError,
    PackingValidationError,
    ReproError,
    SimulationError,
)

# Lazily-exported public API: attribute name → "module:attr". Keeps
# `import repro` light while making `repro.GraphSession(...)` work.
_LAZY_EXPORTS = {
    # session layer
    "GraphSession": ("repro.api", "GraphSession"),
    "Result": ("repro.api", "Result"),
    "JobSpec": ("repro.api", "JobSpec"),
    "run": ("repro.api", "run"),
    "run_to_jsonl": ("repro.api", "run_to_jsonl"),
    "expand_matrix": ("repro.api", "expand_matrix"),
    "load_jobs": ("repro.api", "load_jobs"),
    "parse_graph_spec": ("repro.api", "parse_graph_spec"),
    "available_families": ("repro.api", "available_families"),
    # paper-construction free functions (the session methods' substrate)
    "fractional_cds_packing": (
        "repro.core.cds_packing", "fractional_cds_packing"
    ),
    "fractional_spanning_tree_packing": (
        "repro.core.spanning_packing", "fractional_spanning_tree_packing"
    ),
    "integral_cds_packing": (
        "repro.core.integral_packing", "integral_cds_packing"
    ),
    "integral_spanning_packing": (
        "repro.core.integral_packing", "integral_spanning_packing"
    ),
    "approximate_vertex_connectivity": (
        "repro.core.vertex_connectivity", "approximate_vertex_connectivity"
    ),
}

__all__ = [
    "__version__",
    "ReproError",
    "GraphValidationError",
    "PackingValidationError",
    "PackingConstructionError",
    "SimulationError",
    "ModelViolationError",
    *_LAZY_EXPORTS,
]


def __getattr__(name: str):
    """PEP 562 lazy loader for the public API names."""
    try:
        module_name, attr = _LAZY_EXPORTS[name]
    except KeyError:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        ) from None
    import importlib

    value = getattr(importlib.import_module(module_name), attr)
    globals()[name] = value  # cache: __getattr__ runs once per name
    return value


def __dir__():
    return sorted(set(globals()) | set(__all__))
