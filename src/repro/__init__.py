"""repro — a reproduction of *Distributed Connectivity Decomposition*.

Censor-Hillel, Ghaffari, Kuhn (PODC 2014; arXiv:1311.5317).

The library decomposes a graph's connectivity into trees:

* :func:`repro.core.cds_packing.fractional_cds_packing` — fractional
  dominating tree packing of size ``Ω(k / log n)`` (Theorems 1.1/1.2).
* :func:`repro.core.spanning_packing.fractional_spanning_tree_packing` —
  fractional spanning tree packing of size ``⌈(λ−1)/2⌉(1−ε)``
  (Theorem 1.3).
* :mod:`repro.core.integral_packing` — integral (vertex-/edge-disjoint)
  variants.
* :mod:`repro.apps` — broadcast, gossip, and oblivious routing built on
  the packings (Corollaries 1.4–1.6, Appendix A).
* :mod:`repro.core.vertex_connectivity` — the ``O(log n)`` vertex
  connectivity approximation (Corollary 1.7).
* :mod:`repro.simulator` — the V-CONGEST / E-CONGEST round simulator the
  distributed algorithms run on.
* :mod:`repro.lowerbounds` — the Appendix G lower-bound construction and
  two-party simulation.
"""

__version__ = "1.0.0"

from repro.errors import (
    GraphValidationError,
    ModelViolationError,
    PackingConstructionError,
    PackingValidationError,
    ReproError,
    SimulationError,
)

__all__ = [
    "__version__",
    "ReproError",
    "GraphValidationError",
    "PackingValidationError",
    "PackingConstructionError",
    "SimulationError",
    "ModelViolationError",
]
