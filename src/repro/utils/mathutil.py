"""Small integer/math helpers used across the library."""

from __future__ import annotations

import math


def ceil_div(a: int, b: int) -> int:
    """Ceiling division for non-negative integers."""
    if b <= 0:
        raise ValueError("divisor must be positive")
    return -(-a // b)


def ilog2(n: int) -> int:
    """Floor of log2(n) for n >= 1."""
    if n < 1:
        raise ValueError("n must be >= 1")
    return n.bit_length() - 1


def ceil_log2(n: int) -> int:
    """Ceiling of log2(n) for n >= 1 (0 for n == 1)."""
    if n < 1:
        raise ValueError("n must be >= 1")
    return (n - 1).bit_length()


def int_log(n: int, base: float = math.e) -> float:
    """Natural (or ``base``) logarithm of ``max(n, 2)``.

    The paper's bounds all carry ``log n`` factors that are meaningless for
    n < 2; clamping keeps ratio computations well-defined on tiny graphs.
    """
    return math.log(max(n, 2), base)


def whp_repeats(n: int, c: float = 1.0) -> int:
    """Number of independent repetitions giving failure probability n^-c.

    For an event with constant success probability, ``Θ(log n)`` repeats
    amplify to with-high-probability success; this returns a concrete count.
    """
    return max(1, math.ceil(c * math.log(max(n, 2)) / math.log(2)))
