"""Shared low-level helpers: randomness plumbing and math utilities."""

from repro.utils.rng import ensure_rng, fresh_seed, spawn_rngs
from repro.utils.mathutil import ceil_div, ceil_log2, ilog2, int_log, whp_repeats

__all__ = [
    "ensure_rng",
    "fresh_seed",
    "spawn_rngs",
    "ceil_div",
    "ceil_log2",
    "ilog2",
    "int_log",
    "whp_repeats",
]
