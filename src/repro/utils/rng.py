"""Randomness plumbing.

All randomized algorithms in the library take a ``rng`` argument that may be
``None`` (use a fresh nondeterministic generator), an ``int`` seed, or an
existing :class:`random.Random` instance. This module centralizes that
coercion so every algorithm is reproducible under an explicit seed.
"""

from __future__ import annotations

import random
from typing import List, Optional, Union

RngLike = Union[None, int, random.Random]

_SEED_SPACE = 2**63


def ensure_rng(rng: RngLike = None) -> random.Random:
    """Coerce ``rng`` into a :class:`random.Random` instance.

    ``None`` yields a fresh generator seeded from OS entropy; an ``int``
    yields a deterministic generator; a :class:`random.Random` is returned
    unchanged (so state is shared with the caller).
    """
    if rng is None:
        return random.Random()
    if isinstance(rng, random.Random):
        return rng
    if isinstance(rng, bool) or not isinstance(rng, int):
        raise TypeError(f"rng must be None, int, or random.Random, got {type(rng)!r}")
    return random.Random(rng)


def fresh_seed(rng: random.Random) -> int:
    """Draw a seed suitable for constructing an independent child generator."""
    return rng.randrange(_SEED_SPACE)


def spawn_rngs(rng: RngLike, count: int) -> List[random.Random]:
    """Create ``count`` independent child generators from ``rng``.

    Used when an experiment fans out into repeated trials that must not
    share generator state (e.g. parallel parameter sweeps).
    """
    if count < 0:
        raise ValueError("count must be non-negative")
    parent = ensure_rng(rng)
    return [random.Random(fresh_seed(parent)) for _ in range(count)]
