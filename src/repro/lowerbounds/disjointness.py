"""Two-party simulation and the disjointness reduction (Appendix G.2).

Lemma G.5/G.6: Alice (knowing the initial states of ``V'_A(0)``) and Bob
(``V'_B(0)``) can jointly simulate ``T ≤ ℓ`` rounds of any distributed
protocol on ``G(X, Y)`` in which nodes ``a`` and ``b`` send ``≤ B``-bit
local broadcasts, by exchanging only those two nodes' messages —
``≤ 2·B·T`` bits total. The knowledge frontier shrinks by one path
column per round, exactly as in the induction of the lemma.

:func:`simulate_protocol_two_party` executes that simulation concretely:
it runs a round-based protocol twice — once from Alice's side, once from
Bob's — where each party only ever evaluates nodes it provably knows, and
the *only* cross-party information is the payload of ``a``'s and ``b``'s
messages (bit-counted). The result certifies the 2BT bound and that both
parties reconstruct the states the lemma promises.

:func:`decide_disjointness_via_connectivity` closes the reduction loop of
Theorem G.2: deciding ``X ∩ Y = ∅`` by thresholding the vertex
connectivity of ``G(X, Y)`` (cut 4 vs ≥ w, Lemma G.4).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Hashable, List, Optional, Set, Tuple

import networkx as nx

from repro.errors import ProtocolError
from repro.graphs.connectivity import vertex_connectivity
from repro.lowerbounds.construction import LowerBoundInstance
from repro.simulator.message import payload_bits

# A protocol is a function: (node, round, inbox {neighbor: payload}) ->
# payload broadcast to all neighbors (or None). It must be deterministic
# given the shared randomness (we fix seeds outside).
Protocol = Callable[[Hashable, int, Dict[Hashable, object]], object]


@dataclass
class TwoPartySimulation:
    """Outcome of the Lemma G.6 simulation."""

    rounds: int
    bits_exchanged: int
    bit_budget: int            # 2·B·T with B = max a/b message bits seen
    alice_states: Dict[Hashable, Dict[Hashable, object]]
    bob_states: Dict[Hashable, Dict[Hashable, object]]

    @property
    def within_budget(self) -> bool:
        return self.bits_exchanged <= self.bit_budget


def _knowledge_frontier(
    instance: LowerBoundInstance, rounds: int
) -> Tuple[List[Set[Hashable]], List[Set[Hashable]]]:
    """V'_A(r), V'_B(r) for r = 0..rounds (the lemma's shrinking sets)."""
    ell = instance.ell

    def column(v: Hashable) -> Optional[int]:
        if isinstance(v, tuple) and len(v) in (2, 3) and isinstance(v[0], int):
            return v[1]
        return None

    alice_sets, bob_sets = [], []
    base_a = instance.left_nodes()
    base_b = instance.right_nodes()
    for r in range(rounds + 1):
        alice_sets.append(
            {v for v in base_a if column(v) is None or column(v) < 2 * ell - r}
        )
        bob_sets.append(
            {v for v in base_b if column(v) is None or column(v) > r + 1}
        )
    return alice_sets, bob_sets


def simulate_protocol_two_party(
    instance: LowerBoundInstance,
    protocol: Protocol,
    rounds: int,
) -> TwoPartySimulation:
    """Run the Alice/Bob simulation of Lemma G.6 for ``rounds ≤ ℓ − 1``.

    Internally the full protocol execution is computed once (ground
    truth); Alice's and Bob's views are then *replayed* strictly from
    their knowledge sets plus the exchanged a/b messages, and checked
    against ground truth — a discrepancy would mean the lemma's induction
    failed, and raises :class:`ProtocolError`.
    """
    if rounds > instance.ell:
        raise ProtocolError("Lemma G.6 requires T <= ell")
    graph = instance.graph
    node_a, node_b = instance.node_a, instance.node_b
    alice_sets, bob_sets = _knowledge_frontier(instance, rounds)

    # Ground-truth execution (payload of every node per round).
    sent: List[Dict[Hashable, object]] = []
    inboxes: Dict[Hashable, Dict[Hashable, object]] = {
        v: {} for v in graph.nodes()
    }
    max_ab_bits = 1
    bits_exchanged = 0
    for r in range(rounds):
        outgoing = {v: protocol(v, r, inboxes[v]) for v in graph.nodes()}
        sent.append(outgoing)
        for special in (node_a, node_b):
            payload = outgoing[special]
            bits = payload_bits(payload) if payload is not None else 1
            max_ab_bits = max(max_ab_bits, bits)
            # The only cross-party traffic: a's message to Bob, b's to Alice.
            bits_exchanged += bits
        inboxes = {v: {} for v in graph.nodes()}
        for v in graph.nodes():
            payload = outgoing[v]
            if payload is None:
                continue
            for u in graph.neighbors(v):
                inboxes[u][v] = payload

    # Alice's replay: she may only read nodes in V'_A(r) at round r; the
    # messages of b reach her via the exchanged transcript.
    def replay(party_sets: List[Set[Hashable]], other_special: Hashable):
        states: Dict[Hashable, Dict[Hashable, object]] = {
            v: {} for v in graph.nodes()
        }
        for r in range(rounds):
            known = party_sets[r]
            outgoing = {}
            for v in known:
                outgoing[v] = protocol(v, r, states[v])
            outgoing[other_special] = sent[r][other_special]
            next_states: Dict[Hashable, Dict[Hashable, object]] = {
                v: {} for v in graph.nodes()
            }
            for v in party_sets[r + 1] if r + 1 < len(party_sets) else known:
                for u in graph.neighbors(v):
                    if u in outgoing and outgoing[u] is not None:
                        next_states[v][u] = outgoing[u]
            states = next_states
        return states

    alice_states = replay(alice_sets, node_b)
    bob_states = replay(bob_sets, node_a)

    # Consistency check against ground truth on the final knowledge sets.
    final_alice = alice_sets[rounds] if rounds < len(alice_sets) else set()
    for v in final_alice:
        if alice_states[v] != inboxes[v]:
            raise ProtocolError(
                f"Alice's replayed state of {v!r} diverged — the Lemma G.6 "
                "induction was violated"
            )
    final_bob = bob_sets[rounds] if rounds < len(bob_sets) else set()
    for v in final_bob:
        if bob_states[v] != inboxes[v]:
            raise ProtocolError(
                f"Bob's replayed state of {v!r} diverged — the Lemma G.6 "
                "induction was violated"
            )

    return TwoPartySimulation(
        rounds=rounds,
        bits_exchanged=bits_exchanged,
        bit_budget=2 * max_ab_bits * rounds,
        alice_states=alice_states,
        bob_states=bob_states,
    )


def decide_disjointness_via_connectivity(
    instance: LowerBoundInstance, threshold: Optional[int] = None
) -> bool:
    """Theorem G.2's decision step: ``X ∩ Y = ∅`` iff κ(G(X,Y)) > threshold.

    Default threshold 4 (the Lemma G.4 gap: 4 vs ≥ w). Only valid under
    the promise ``|X ∩ Y| ≤ 1``.
    """
    if threshold is None:
        threshold = 4
    kappa = vertex_connectivity(instance.graph)
    return kappa > threshold
