"""The lower-bound graph family of Appendix G.1.

``H(X, Y)`` for sets ``X, Y ⊆ [h]``:

* ``h + 1`` paths (numbered ``0..h``), each of ``2ℓ`` *heavy* nodes of
  weight ``w``: nodes ``(p, q)`` for ``p ∈ {0..h}``, ``q ∈ [2ℓ]``;
* left encoding: for ``x ∈ X``, a weight-1 node ``u_x`` adjacent to
  ``(0,1)`` and ``(x,1)``; for ``x ∉ X`` a direct edge ``(0,1)–(x,1)``;
* right encoding symmetric with ``v_y``, ``(0,2ℓ)`` and ``(y,2ℓ)``;
* diameter gadget: nodes ``a`` (adjacent to all ``u_x`` and all ``(p,q)``
  with ``q ≤ ℓ``) and ``b`` (all ``v_y`` and ``q > ℓ``), plus edge ``a–b``.

``G(X, Y)`` replaces every heavy node by a ``w``-clique and every edge by
a complete bipartite graph (Section G.1, transformation 1–2).

Lemma G.3/G.4: if ``X ∩ Y = ∅`` every vertex cut has size ≥ ``w``; if
``X ∩ Y = {z}`` the unique minimum cut is ``{a, b, u_z, v_z}`` of size 4;
and the diameter is ≤ 3. Benchmark E13 verifies all of this exhaustively
over instance grids with the exact oracles.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import FrozenSet, Hashable, List, Set, Tuple

import networkx as nx

from repro.errors import GraphValidationError


@dataclass(frozen=True)
class LowerBoundInstance:
    """A constructed instance with the landmarks the reduction needs."""

    graph: nx.Graph
    h: int
    ell: int
    w: int
    x_set: FrozenSet[int]
    y_set: FrozenSet[int]
    node_a: Hashable
    node_b: Hashable

    @property
    def intersection(self) -> FrozenSet[int]:
        return self.x_set & self.y_set

    def left_nodes(self) -> Set[Hashable]:
        """V'_A(0) = {a} ∪ V_X ∪ {(p,q): q < 2ℓ} — what Alice knows."""
        return {
            v
            for v in self.graph.nodes()
            if v != self.node_b
            and not (_is_right_encoding(v) or _is_right_end(v, self.ell))
        }

    def right_nodes(self) -> Set[Hashable]:
        """V'_B(0) = {b} ∪ V_Y ∪ {(p,q): q > 1} — what Bob knows."""
        return {
            v
            for v in self.graph.nodes()
            if v != self.node_a
            and not (_is_left_encoding(v) or _is_left_end(v))
        }


def _is_left_encoding(v: Hashable) -> bool:
    return isinstance(v, tuple) and len(v) == 2 and v[0] == "u"


def _is_right_encoding(v: Hashable) -> bool:
    return isinstance(v, tuple) and len(v) == 2 and v[0] == "v"


def _is_left_end(v: Hashable) -> bool:
    # Heavy node (p, 1, copy) or weighted node (p, 1).
    return (
        isinstance(v, tuple)
        and len(v) in (2, 3)
        and isinstance(v[0], int)
        and v[1] == 1
    )


def _is_right_end(v: Hashable, ell: int) -> bool:
    return (
        isinstance(v, tuple)
        and len(v) in (2, 3)
        and isinstance(v[0], int)
        and v[1] == 2 * ell
    )


def build_h_xy(h: int, ell: int, x_set, y_set) -> LowerBoundInstance:
    """The weighted prototype ``H(X, Y)`` (weights as node attributes).

    Heavy nodes carry ``weight=w`` conceptually; here ``w`` is symbolic
    (attribute ``heavy=True``) since ``H`` is only used for inspection —
    the reduction runs on the blow-up ``G(X, Y)``.
    """
    x_fs, y_fs = frozenset(x_set), frozenset(y_set)
    _validate_sets(h, x_fs, y_fs)
    if ell < 1:
        raise GraphValidationError("ell must be >= 1")
    graph = nx.Graph()
    for p in range(h + 1):
        for q in range(1, 2 * ell + 1):
            graph.add_node((p, q), heavy=True)
            if q > 1:
                graph.add_edge((p, q - 1), (p, q))
    graph.add_node("a", heavy=False)
    graph.add_node("b", heavy=False)
    graph.add_edge("a", "b")
    _add_encoding(graph, h, ell, x_fs, y_fs)
    for p in range(h + 1):
        for q in range(1, 2 * ell + 1):
            graph.add_edge((p, q), "a" if q <= ell else "b")
    return LowerBoundInstance(
        graph=graph,
        h=h,
        ell=ell,
        w=1,
        x_set=x_fs,
        y_set=y_fs,
        node_a="a",
        node_b="b",
    )


def _add_encoding(graph: nx.Graph, h: int, ell: int, x_fs, y_fs) -> None:
    for x in range(1, h + 1):
        if x in x_fs:
            graph.add_node(("u", x), heavy=False)
            graph.add_edge(("u", x), (0, 1))
            graph.add_edge(("u", x), (x, 1))
        else:
            graph.add_edge((0, 1), (x, 1))
        if x in y_fs:
            graph.add_node(("v", x), heavy=False)
            graph.add_edge(("v", x), (0, 2 * ell))
            graph.add_edge(("v", x), (x, 2 * ell))
        else:
            graph.add_edge((0, 2 * ell), (x, 2 * ell))
    for x in x_fs:
        graph.add_edge(("u", x), "a")
    for y in y_fs:
        graph.add_edge(("v", y), "b")


def build_g_xy(h: int, ell: int, w: int, x_set, y_set) -> LowerBoundInstance:
    """The unweighted blow-up ``G(X, Y)``: heavy nodes become w-cliques,
    edges become complete bipartite graphs."""
    x_fs, y_fs = frozenset(x_set), frozenset(y_set)
    _validate_sets(h, x_fs, y_fs)
    if ell < 1 or w < 1:
        raise GraphValidationError("ell and w must be >= 1")
    proto = build_h_xy(h, ell, x_fs, y_fs)
    graph = nx.Graph()

    def copies(v: Hashable) -> List[Hashable]:
        if proto.graph.nodes[v].get("heavy"):
            p, q = v
            return [(p, q, c) for c in range(w)]
        return [v]

    for v in proto.graph.nodes():
        members = copies(v)
        graph.add_nodes_from(members)
        graph.add_edges_from(itertools.combinations(members, 2))
    for v1, v2 in proto.graph.edges():
        graph.add_edges_from(
            (a, b) for a in copies(v1) for b in copies(v2)
        )
    return LowerBoundInstance(
        graph=graph,
        h=h,
        ell=ell,
        w=w,
        x_set=x_fs,
        y_set=y_fs,
        node_a="a",
        node_b="b",
    )


def _validate_sets(h: int, x_fs: FrozenSet[int], y_fs: FrozenSet[int]) -> None:
    if h < 1:
        raise GraphValidationError("h must be >= 1")
    universe = set(range(1, h + 1))
    if not (x_fs <= universe and y_fs <= universe):
        raise GraphValidationError("X and Y must be subsets of [h] = {1..h}")


def expected_min_cut(instance: LowerBoundInstance) -> Tuple[int, Set[Hashable]]:
    """Lemma G.4's prediction: (cut size, the cut when |X∩Y| = 1)."""
    inter = instance.intersection
    if len(inter) == 1:
        z = next(iter(inter))
        return 4, {instance.node_a, instance.node_b, ("u", z), ("v", z)}
    return instance.w, set()
