"""Appendix G: lower-bound construction and two-party reduction.

* :mod:`repro.lowerbounds.construction` — the weighted family ``H(X,Y)``
  and its unweighted blow-up ``G(X,Y)`` (Section G.1), whose vertex-cut
  structure encodes set disjointness (Lemmas G.3/G.4).
* :mod:`repro.lowerbounds.disjointness` — set-disjointness instances and
  the Alice/Bob round-by-round simulation of Lemmas G.5/G.6, with exact
  bit accounting (``≤ 2·B·T`` bits for T simulated rounds).
"""

from repro.lowerbounds.construction import (
    LowerBoundInstance,
    build_g_xy,
    build_h_xy,
)
from repro.lowerbounds.disjointness import (
    TwoPartySimulation,
    decide_disjointness_via_connectivity,
    simulate_protocol_two_party,
)

__all__ = [
    "LowerBoundInstance",
    "build_h_xy",
    "build_g_xy",
    "TwoPartySimulation",
    "simulate_protocol_two_party",
    "decide_disjointness_via_connectivity",
]
