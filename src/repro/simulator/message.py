"""Message payloads and their bit-size accounting.

The CONGEST models bound message size at ``O(log n)`` *bits*, so the
simulator needs a concrete bit-cost for whatever Python value a node
program sends. Payloads are restricted to a small algebra of primitives
(ints, bools, short strings, None, floats) and tuples thereof; this keeps
cost estimation honest and prevents programs from smuggling unbounded
state inside one "message".
"""

from __future__ import annotations

from typing import Any, Dict, Hashable, Tuple

from repro.errors import ModelViolationError

_FLOAT_BITS = 64
_TAG_BITS = 2  # per-element structural overhead

# Memo for flat scalar tuples — by far the dominant payload shape
# (protocols broadcast the same (id, value) tuple to every neighbor,
# round after round). Keys carry the element types alongside the tuple
# because equal-comparing payloads can have different bit sizes
# ((1,) vs (True,): 2 bits vs 1 bit), and dict lookup goes by equality.
_SCALAR_TYPES = frozenset((int, bool, float, str, type(None)))
_FLAT_TUPLE_BITS: Dict[Tuple[tuple, tuple], int] = {}
_FLAT_TUPLE_BITS_MAX = 8192


def payload_bits(payload: Any) -> int:
    """Bit size of a message payload.

    Ints cost their two's-complement width, bools and None one bit,
    floats 64 bits, strings 8 bits per character, and tuples/lists the sum
    of their elements plus a small structural tag per element. Any other
    type is rejected. Flat tuples of scalars are memoized, so repeated
    payloads (one per neighbor per round in broadcast-style protocols)
    cost one dict lookup instead of a recursion.
    """
    if payload is None or isinstance(payload, bool):
        return 1
    if isinstance(payload, int):
        return max(1, payload.bit_length() + 1)
    if isinstance(payload, float):
        return _FLOAT_BITS
    if isinstance(payload, str):
        return 8 * len(payload) + _TAG_BITS
    if isinstance(payload, tuple):
        types = tuple(type(item) for item in payload)
        if _SCALAR_TYPES.issuperset(types):
            key = (payload, types)
            bits = _FLAT_TUPLE_BITS.get(key)
            if bits is None:
                bits = sum(payload_bits(item) + _TAG_BITS for item in payload)
                if len(_FLAT_TUPLE_BITS) >= _FLAT_TUPLE_BITS_MAX:
                    _FLAT_TUPLE_BITS.clear()
                _FLAT_TUPLE_BITS[key] = bits
            return bits
        return sum(payload_bits(item) + _TAG_BITS for item in payload)
    if isinstance(payload, (list, frozenset)):
        return sum(payload_bits(item) + _TAG_BITS for item in payload)
    raise ModelViolationError(
        f"unsupported payload type {type(payload).__name__}; messages must be "
        "built from ints, floats, bools, strings, None, and tuples of those"
    )


class Message:
    """A delivered message: sender id, payload, and its bit size.

    A plain ``__slots__`` class rather than a dataclass: the engine
    builds one per distinct payload per sender per round, so
    construction cost is part of the round-loop hot path. Treat
    instances as immutable.
    """

    __slots__ = ("sender", "payload", "bits")

    def __init__(self, sender: Hashable, payload: Any, bits: int) -> None:
        self.sender = sender
        self.payload = payload
        self.bits = bits

    def __repr__(self) -> str:
        return (
            f"Message(sender={self.sender!r}, payload={self.payload!r}, "
            f"bits={self.bits!r})"
        )

    def __eq__(self, other: Any) -> bool:
        if not isinstance(other, Message):
            return NotImplemented
        return (
            self.sender == other.sender
            and self.payload == other.payload
            and self.bits == other.bits
        )

    def __hash__(self) -> int:
        # Same contract as the frozen dataclass this class replaced:
        # hashable whenever the payload is.
        return hash((self.sender, self.payload, self.bits))

    @classmethod
    def build(cls, sender: Hashable, payload: Any) -> "Message":
        return cls(sender, payload, payload_bits(payload))
