"""Synchronous message-passing simulator for V-CONGEST and E-CONGEST.

The paper's two models (Section 1.2):

* **V-CONGEST** — per round, each node sends *one* ``O(log n)``-bit message
  to *all* of its neighbors (local broadcast). Congestion lives on vertices.
* **E-CONGEST** (the classical CONGEST model) — per round, one
  ``O(log n)``-bit message may cross each direction of each edge
  (per-neighbor messages allowed). Congestion lives on edges.

:class:`~repro.simulator.runner.SyncRunner` executes
:class:`~repro.simulator.node.NodeProgram` instances in lock-step rounds,
*enforcing* the model constraints (raising
:class:`~repro.errors.ModelViolationError` on violations) and accounting
rounds, messages, and bits in
:class:`~repro.simulator.metrics.SimulationMetrics`.

Composite algorithms (BFS + convergecast, Borůvka MST, the CDS-packing
layers of Appendix B) chain multiple runs; metrics are additive via
:meth:`SimulationMetrics.merge`.
"""

from repro.simulator.message import Message, payload_bits
from repro.simulator.metrics import SimulationMetrics
from repro.simulator.network import Network
from repro.simulator.node import Context, NodeProgram
from repro.simulator.runner import (
    Model,
    ShardedRunner,
    SimulationResult,
    SyncRunner,
    available_engines,
    engine_context,
    set_default_engine,
    simulate,
)
from repro.simulator.transport import (
    CliqueTransport,
    ECongestTransport,
    Transport,
    VCongestTransport,
    build_transport,
)
from repro.simulator.faults import FaultPlan, simulate_with_faults
from repro.simulator.scenario import (
    Scenario,
    ScenarioProgram,
    ScenarioRun,
    register_program,
    run_scenario,
)
from repro.simulator.tracing import RoundTrace, Tracer

__all__ = [
    "FaultPlan",
    "simulate_with_faults",
    "Tracer",
    "RoundTrace",
    "Message",
    "payload_bits",
    "SimulationMetrics",
    "Network",
    "Context",
    "NodeProgram",
    "Model",
    "SimulationResult",
    "SyncRunner",
    "ShardedRunner",
    "simulate",
    "available_engines",
    "engine_context",
    "set_default_engine",
    "Transport",
    "VCongestTransport",
    "ECongestTransport",
    "CliqueTransport",
    "build_transport",
    "Scenario",
    "ScenarioProgram",
    "ScenarioRun",
    "register_program",
    "run_scenario",
]
