"""The pre-engine round loop, preserved as the ``"reference"`` engine.

This module is a byte-faithful port of the original
:class:`~repro.simulator.runner.SyncRunner` loop: per-round dicts keyed
by Hashable node labels, per-receiver message dicts, model branching
inline. It exists for one reason — it is the *oracle* of the
engine-equivalence suite (``tests/test_engine_equivalence.py``): under a
fixed seed, the indexed engine must produce an identical
:class:`~repro.simulator.runner.SimulationResult` and an identical
:class:`~repro.simulator.tracing.Tracer` transcript for every algorithm
in :mod:`repro.simulator.algorithms`. It also anchors the rounds/sec
speedup measured by ``benchmarks/bench_simulator.py``.

Determinism contract shared with the indexed engine (do not change):

* per-node context RNGs are seeded by ``fresh_seed`` draws in
  ``Network.nodes`` order;
* broadcast fan-out follows the neighbor order of ``Network.neighbors``;
* fault-plan drop decisions are evaluated once per (message, receiver)
  delivery attempt of non-crashed senders via
  :meth:`~repro.simulator.faults.FaultPlan.drops` — a pure function of
  (plan seed, directed edge, round), so iteration order cannot matter.

Use :func:`repro.simulator.runner.engine_context` to route a composite
algorithm through this loop::

    with engine_context("reference"):
        result = flood_extremum(network, values)

Only ``Model.V_CONGEST`` and ``Model.E_CONGEST`` are supported — the
congested clique postdates this loop.
"""

from __future__ import annotations

import random
from typing import Any, Callable, Dict, Hashable

from repro.errors import ModelViolationError, SimulationError
from repro.simulator.message import Message
from repro.simulator.metrics import SimulationMetrics
from repro.simulator.node import Context, NodeProgram
from repro.simulator.runner import Model, SimulationResult, register_engine
from repro.utils.rng import fresh_seed


def _run_reference(
    runner,
    program_factory: Callable[[Hashable], NodeProgram],
    max_rounds: int,
    quiescence_halts: bool,
) -> SimulationResult:
    """The legacy dict-per-round loop (pre-engine ``SyncRunner.run``)."""
    if runner.model not in (Model.V_CONGEST, Model.E_CONGEST):
        raise SimulationError(
            "the reference engine only implements V-CONGEST and E-CONGEST; "
            f"got {runner.model!r}"
        )
    net = runner.network
    plan = runner.fault_plan
    adversary = runner.adversary_plan
    if plan is not None and getattr(plan, "drop_schedule", None):
        # The legacy loop predates per-edge drop schedules; running one
        # here would silently report a fault-free run.
        raise SimulationError(
            "the reference engine does not implement FaultPlan.drop_schedule;"
            " run scheduled-drop plans on the indexed engine"
        )
    programs: Dict[Hashable, NodeProgram] = {}
    contexts: Dict[Hashable, Context] = {}
    for node in net.nodes:
        contexts[node] = Context(
            node=node,
            node_id=net.node_id(node),
            neighbors=net.neighbors(node),
            n=net.n,
            rng=random.Random(fresh_seed(runner._rng)),
        )
        programs[node] = program_factory(node)

    metrics = SimulationMetrics(runs=1)
    # outbound[v] = validated traffic produced by v this round.
    outbound: Dict[Hashable, Dict[Hashable, Message]] = {}
    for node in net.nodes:
        ctx = contexts[node]
        raw = programs[node].on_start(ctx)
        outbound[node] = _validate(runner, node, ctx, raw)

    for round_no in range(1, max_rounds + 1):
        inboxes: Dict[Hashable, Dict[Hashable, Message]] = {
            node: {} for node in net.nodes
        }
        round_messages = 0
        round_bits = 0
        round_max_bits = 0
        for sender, traffic in outbound.items():
            if plan is not None and plan.is_crashed(sender, round_no):
                continue
            for receiver, message in traffic.items():
                if plan is not None and plan.drops(sender, receiver, round_no):
                    continue
                inboxes[receiver][sender] = (
                    message
                    if adversary is None
                    else adversary.apply(sender, receiver, round_no, message)
                )
                # Metrics charge the honest transmission, never the
                # corrupted replacement — same contract as the indexed
                # engine.
                round_messages += 1
                round_bits += message.bits
                if message.bits > round_max_bits:
                    round_max_bits = message.bits
        if round_messages or any(not contexts[v].halted for v in net.nodes):
            metrics.record_round(round_messages, round_bits, round_max_bits)

        any_traffic = round_messages > 0
        all_halted = True
        next_outbound: Dict[Hashable, Dict[Hashable, Message]] = {}
        for node in net.nodes:
            ctx = contexts[node]
            if ctx.halted:
                next_outbound[node] = {}
                continue
            if plan is not None and plan.is_crashed(node, round_no):
                # Crash-stop: no execution, no traffic; counts as
                # terminated so live nodes can still end the run.
                next_outbound[node] = {}
                continue
            ctx.round = round_no
            raw = programs[node].on_round(ctx, inboxes[node])
            if ctx.halted:
                next_outbound[node] = {}
            else:
                next_outbound[node] = _validate(runner, node, ctx, raw)
                all_halted = False
        outbound = next_outbound

        if all_halted:
            return SimulationResult(
                outputs={v: contexts[v].output for v in net.nodes},
                metrics=metrics,
                halted=True,
            )
        if (
            quiescence_halts
            and not any_traffic
            and not any(traffic for traffic in outbound.values())
        ):
            return SimulationResult(
                outputs={v: contexts[v].output for v in net.nodes},
                metrics=metrics,
                halted=False,
            )
    raise SimulationError(
        f"simulation did not terminate within {max_rounds} rounds"
    )


def _validate(
    runner, node: Hashable, ctx: Context, raw: Any
) -> Dict[Hashable, Message]:
    """Turn a program's return value into per-receiver messages,
    enforcing the model's congestion rules (legacy dict form)."""
    if raw is None:
        return {}
    neighbors = ctx.neighbors
    if isinstance(raw, dict):
        if runner.model is Model.V_CONGEST:
            raise ModelViolationError(
                f"node {node!r} attempted per-neighbor messages in "
                "V-CONGEST; only a single local broadcast is allowed"
            )
        traffic = {}
        # Programs often address every neighbor with the same payload
        # object; build (and size-check) one Message per object, not
        # one per receiver. Keyed by id(): the payloads stay alive in
        # `raw` for the duration of the loop.
        built: Dict[int, Message] = {}
        for receiver, payload in raw.items():
            if receiver not in neighbors:
                raise ModelViolationError(
                    f"node {node!r} addressed non-neighbor {receiver!r}"
                )
            if payload is None:
                continue
            message = built.get(id(payload))
            if message is None or message.payload is not payload:
                message = Message.build(node, payload)
                _check_size(runner, node, message)
                built[id(payload)] = message
            traffic[receiver] = message
        return traffic
    # Bare payload: broadcast to all neighbors (legal in both models).
    message = Message.build(node, raw)
    _check_size(runner, node, message)
    return {receiver: message for receiver in neighbors}


def _check_size(runner, node: Hashable, message: Message) -> None:
    if message.bits > runner.bits_per_message:
        raise ModelViolationError(
            f"node {node!r} sent a {message.bits}-bit message; budget is "
            f"{runner.bits_per_message} bits (O(log n))"
        )


register_engine("reference", _run_reference)
