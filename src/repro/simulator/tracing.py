"""Round-by-round execution traces for the simulator.

The metrics object aggregates; debugging a distributed protocol needs
the *sequence*: who sent what, when, and when each node halted. The
:class:`Tracer` wraps a program factory, transparently recording every
node's outgoing traffic per round without perturbing the protocol (it
observes return values; it never copies payloads into the messages).

Typical use::

    tracer = Tracer()
    result = simulate(network, tracer.wrap(factory), model=model)
    print(tracer.trace.render(limit=20))

Traces are also the substrate of the regression tests that pin protocol
*schedules* (e.g. that a BFS wave reaches distance-d nodes exactly at
round d), which aggregate metrics cannot express.

The sharded engine's shard-local harvest rides on one hook:
:func:`trace_sink` exposes the tracer a wrapped factory advertises, so
each forked worker records its own nodes' events locally (events are
per-node facts — sender, round, summary — never cross-shard state) and
ships them home once, at run end, outside the per-round columnar
barrier. The parent merges round-major, shard-major, which equals the
single-process transcript because shards are contiguous index ranges;
the equivalence matrix byte-compares the merged transcripts, columnar
and scalar worker loops alike.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Hashable, List, Optional, Tuple

from repro.simulator.node import Context, NodeProgram


@dataclass(frozen=True)
class TraceEvent:
    """One node's activity in one round."""

    round_no: int
    node: Hashable
    sent: bool
    payload_summary: str
    halted: bool


@dataclass
class RoundTrace:
    """The recorded schedule of one simulation."""

    events: List[TraceEvent] = field(default_factory=list)

    def rounds(self) -> int:
        return max((e.round_no for e in self.events), default=0)

    def events_in_round(self, round_no: int) -> List[TraceEvent]:
        return [e for e in self.events if e.round_no == round_no]

    def senders_in_round(self, round_no: int) -> List[Hashable]:
        return [
            e.node for e in self.events_in_round(round_no) if e.sent
        ]

    def first_send_round(self, node: Hashable) -> Optional[int]:
        """The first round ``node`` transmitted, or None if silent."""
        sends = [e.round_no for e in self.events if e.node == node and e.sent]
        return min(sends, default=None)

    def halt_round(self, node: Hashable) -> Optional[int]:
        halts = [
            e.round_no for e in self.events if e.node == node and e.halted
        ]
        return min(halts, default=None)

    def activity_profile(self) -> Dict[int, int]:
        """round → number of transmitting nodes (the load curve)."""
        profile: Dict[int, int] = {}
        for event in self.events:
            if event.sent:
                profile[event.round_no] = profile.get(event.round_no, 0) + 1
        return profile

    def render(self, limit: int = 50) -> str:
        """Human-readable trace listing (capped at ``limit`` events)."""
        lines = ["round  node        action"]
        for event in self.events[:limit]:
            action = "HALT" if event.halted else (
                f"send {event.payload_summary}" if event.sent else "idle"
            )
            lines.append(f"{event.round_no:>5}  {str(event.node):<10}  {action}")
        if len(self.events) > limit:
            lines.append(f"... ({len(self.events) - limit} more events)")
        return "\n".join(lines)


def _summarize(payload: Any, max_chars: int = 40) -> str:
    text = repr(payload)
    if len(text) > max_chars:
        return text[: max_chars - 1] + "…"
    return text


class _TracedProgram(NodeProgram):
    """Decorator program: delegates and records."""

    def __init__(self, inner: NodeProgram, trace: RoundTrace) -> None:
        self._inner = inner
        self._trace = trace

    def on_start(self, ctx: Context):
        raw = self._inner.on_start(ctx)
        self._record(ctx, 0, raw)
        return raw

    def on_round(self, ctx: Context, inbox):
        raw = self._inner.on_round(ctx, inbox)
        self._record(ctx, ctx.round, raw)
        return raw

    def _record(self, ctx: Context, round_no: int, raw: Any) -> None:
        sent = raw is not None and raw != {}
        self._trace.events.append(
            TraceEvent(
                round_no=round_no,
                node=ctx.node,
                sent=sent,
                payload_summary=_summarize(raw) if sent else "",
                halted=ctx.halted,
            )
        )


class Tracer:
    """Wraps a program factory so every node's schedule is recorded."""

    def __init__(self) -> None:
        self.trace = RoundTrace()

    def wrap(
        self, factory: Callable[[Hashable], NodeProgram]
    ) -> Callable[[Hashable], NodeProgram]:
        def traced_factory(node: Hashable) -> NodeProgram:
            return _TracedProgram(factory(node), self.trace)

        # Advertise the sink on the factory itself so engines that run
        # programs in worker processes (the sharded engine) can find the
        # trace to merge harvested events into — without constructing a
        # probe program. See :func:`trace_sink`.
        traced_factory._repro_trace_sink = self.trace
        return traced_factory


def trace_sink(
    factory: Callable[[Hashable], NodeProgram]
) -> Optional[RoundTrace]:
    """The :class:`RoundTrace` a :meth:`Tracer.wrap`-ped factory records
    into, or ``None`` for an unwrapped factory.

    Multiprocess engines use this twice: a worker locates its (forked)
    copy of the trace to ship new events home, and the parent locates
    the original object to merge them into. Re-wrapping a traced factory
    in another closure hides the sink — keep the Tracer's factory
    outermost when tracing a sharded run.
    """
    return getattr(factory, "_repro_trace_sink", None)
