"""Declarative scenario layer of the simulation engine.

A :class:`Scenario` bundles everything one simulation run needs —
*topology spec × program × model/transport × fault plan × sinks* — into
a single declarative object with a ``run()`` method. The CLI
(``repro simulate``), the apps (:mod:`repro.apps.resilience`), and the
benchmarks (``benchmarks/bench_simulator.py``) all build runs through
scenarios instead of hand-wiring :class:`~repro.simulator.runner.SyncRunner`,
so a workload is one value that can be named, swept, serialized into a
bench row, or replayed under a different engine.

Topologies are given as CLI graph-spec strings (``"harary:6,24"``), as
prebuilt :class:`networkx.Graph` objects, or as zero-argument builders.
Programs are given as registry names (see :data:`PROGRAM_REGISTRY`) or
as *builders* — callables receiving the constructed
:class:`~repro.simulator.network.Network` and returning the per-node
program factory. The registry is open: :func:`register_program` adds
new named workloads, which immediately become available to
``repro simulate`` and the benchmark sweep.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from typing import Any, Callable, Dict, Hashable, List, Optional, Union

import networkx as nx

from repro.errors import GraphValidationError
from repro.fastgraph import IndexedGraph
from repro.simulator.adversary import AdversaryPlan
from repro.simulator.faults import FaultPlan
from repro.simulator.network import Network
from repro.simulator.node import NodeProgram
from repro.simulator.runner import (
    Model,
    SimulationResult,
    SyncRunner,
    Transport,
)
from repro.simulator.tracing import RoundTrace, Tracer
from repro.utils.rng import RngLike, ensure_rng

TopologySpec = Union[str, nx.Graph, Callable[[], nx.Graph]]
ProgramFactory = Callable[[Hashable], NodeProgram]
ProgramBuilder = Callable[[Network], ProgramFactory]
# A composite workload: drives its own (possibly many) simulations on the
# prebuilt network and returns one aggregate SimulationResult.
ProgramDriver = Callable[..., SimulationResult]


@dataclass(frozen=True)
class ScenarioProgram:
    """A named, registry-resident workload.

    Exactly one of ``build`` / ``driver`` is set. ``build(network)``
    returns the per-node program factory the runner executes directly;
    ``driver(network, model=…, rng=…, tracer=…, max_rounds=…)`` runs a
    *composite* protocol (e.g. the Appendix B CDS packing, which chains
    many floods and exchanges) and returns the aggregate
    :class:`SimulationResult`. ``model`` is the program's natural
    communication model (a scenario may override it).
    """

    name: str
    description: str
    build: Optional[ProgramBuilder] = None
    model: Model = Model.V_CONGEST
    driver: Optional[ProgramDriver] = None


PROGRAM_REGISTRY: Dict[str, ScenarioProgram] = {}


def register_program(program: ScenarioProgram) -> ScenarioProgram:
    """Add a workload to the registry (name collisions overwrite)."""
    PROGRAM_REGISTRY[program.name] = program
    return program


def resolve_program(name: str) -> ScenarioProgram:
    try:
        return PROGRAM_REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(PROGRAM_REGISTRY))
        raise GraphValidationError(
            f"unknown scenario program {name!r}; registered: {known}"
        )


@dataclass
class ScenarioRun:
    """Outcome of :meth:`Scenario.run`: result + instrumentation."""

    scenario: "Scenario"
    network: Network
    result: SimulationResult
    trace: Optional[RoundTrace]
    wall_seconds: float

    @property
    def rounds(self) -> int:
        return self.result.metrics.rounds

    @property
    def rounds_per_sec(self) -> float:
        return self.rounds / max(self.wall_seconds, 1e-9)

    def summary(self) -> Dict[str, Any]:
        """Flat dict of the run's headline numbers (bench/CLI rows)."""
        metrics = self.result.metrics
        return {
            "n": self.network.n,
            "m": self.network.m,
            "rounds": metrics.rounds,
            "messages": metrics.messages,
            "bits": metrics.bits,
            "max_message_bits": metrics.max_message_bits,
            "halted": self.result.halted,
            "wall_seconds": self.wall_seconds,
            "rounds_per_sec": self.rounds_per_sec,
        }


@dataclass
class Scenario:
    """One simulation run, declaratively.

    ``topology`` — graph-spec string, graph, or builder;
    ``program`` — registry name or :class:`ScenarioProgram`/builder;
    ``model`` — communication model (``None``: the program's default);
    ``fault_plan`` — optional :class:`FaultPlan` (its RNG is derived
    from ``seed`` when unset, so one seed pins the faulty run);
    ``adversary_plan`` — optional :class:`AdversaryPlan` corrupting
    delivered payloads (seed derivation as for ``fault_plan``);
    ``trace`` — record a :class:`RoundTrace` alongside the result;
    ``engine`` — round-loop implementation (``None``: module default);
    ``shards`` — worker-process count for multiprocess engines
    (``engine="sharded"``; composite drivers shard their inner runs via
    the same value);
    ``indexed`` — prebuilt :class:`~repro.fastgraph.IndexedGraph`
    canonicalization of the topology (e.g. a
    :class:`repro.api.GraphSession`'s), shared with the network instead
    of re-canonicalizing; the run RNG stream is unaffected.
    """

    topology: TopologySpec
    program: Union[str, ScenarioProgram, ProgramBuilder]
    model: Optional[Model] = None
    seed: RngLike = 0
    bits_per_message: Optional[int] = None
    fault_plan: Optional[FaultPlan] = None
    adversary_plan: Optional[AdversaryPlan] = None
    max_rounds: int = 100000
    trace: bool = False
    engine: Optional[str] = None
    shards: Optional[int] = None
    transport: Optional[Transport] = None
    name: str = ""
    indexed: Optional["IndexedGraph"] = None

    def with_overrides(self, **changes: Any) -> "Scenario":
        """A copy with the given fields replaced (sweep helper)."""
        return replace(self, **changes)

    # -- assembly ------------------------------------------------------

    def build_graph(self) -> nx.Graph:
        if isinstance(self.topology, nx.Graph):
            return self.topology
        if callable(self.topology):
            return self.topology()
        if isinstance(self.topology, str):
            from repro.api.specs import parse_graph_spec  # lazy: avoid cycle

            return parse_graph_spec(self.topology)
        raise GraphValidationError(
            f"cannot interpret topology spec {self.topology!r}"
        )

    def resolve(self) -> ScenarioProgram:
        """The scenario's program as a :class:`ScenarioProgram`."""
        if isinstance(self.program, ScenarioProgram):
            return self.program
        if isinstance(self.program, str):
            return resolve_program(self.program)
        if callable(self.program):
            return ScenarioProgram(
                name=self.name or "<inline>",
                description="inline program builder",
                build=self.program,
                model=self.model or Model.V_CONGEST,
            )
        raise GraphValidationError(
            f"cannot interpret program {self.program!r}"
        )

    # -- execution -----------------------------------------------------

    def run(self) -> ScenarioRun:
        """Build the network + runner and execute the scenario."""
        program = self.resolve()
        rand = ensure_rng(self.seed)
        network = Network(self.build_graph(), rng=rand, indexed=self.indexed)
        if program.driver is not None:
            return self._run_driver(program, network, rand)
        if program.build is None:
            raise GraphValidationError(
                f"program {program.name!r} has neither build nor driver"
            )
        # An unseeded fault plan gets its drop generator derived from
        # the run rng inside SyncRunner (one fresh_seed draw per run).
        plan = self.fault_plan
        factory = program.build(network)
        tracer = Tracer() if self.trace else None
        if tracer is not None:
            factory = tracer.wrap(factory)
        runner = SyncRunner(
            network,
            model=self.model or program.model,
            bits_per_message=self.bits_per_message,
            rng=rand,
            fault_plan=plan,
            adversary_plan=self.adversary_plan,
            transport=self.transport,
            engine=self.engine,
            shards=self.shards,
        )
        start = time.perf_counter()
        result = runner.run(factory, max_rounds=self.max_rounds)
        wall = time.perf_counter() - start
        return ScenarioRun(
            scenario=self,
            network=network,
            result=result,
            trace=tracer.trace if tracer is not None else None,
            wall_seconds=wall,
        )

    def _run_driver(
        self, program: ScenarioProgram, network: Network, rand
    ) -> ScenarioRun:
        """Execute a composite driver program on the prebuilt network."""
        if self.fault_plan is not None:
            raise GraphValidationError(
                f"program {program.name!r} is a composite driver and does "
                "not support fault plans"
            )
        if self.adversary_plan is not None:
            raise GraphValidationError(
                f"program {program.name!r} is a composite driver and does "
                "not support adversary plans (drivers that model corruption "
                "build their own plans internally)"
            )
        if self.transport is not None:
            raise GraphValidationError(
                f"program {program.name!r} selects its transport via the "
                "model; custom transports are not supported"
            )
        if self.bits_per_message is not None:
            raise GraphValidationError(
                f"program {program.name!r} sizes its own message budgets; "
                "bits_per_message is not supported"
            )
        from contextlib import nullcontext

        from repro.simulator.runner import engine_context

        tracer = Tracer() if self.trace else None
        engine = (
            engine_context(self.engine)
            if self.engine is not None
            else nullcontext()
        )
        if self.shards is not None:
            # Drivers build their own inner runners; the context pins
            # the worker count each inner sharded run forks.
            from repro.simulator.runner_sharded import shards_context

            shards = shards_context(self.shards)
        else:
            shards = nullcontext()
        start = time.perf_counter()
        with engine, shards:
            result = program.driver(
                network,
                model=self.model or program.model,
                rng=rand,
                tracer=tracer,
                max_rounds=self.max_rounds,
            )
        wall = time.perf_counter() - start
        return ScenarioRun(
            scenario=self,
            network=network,
            result=result,
            trace=tracer.trace if tracer is not None else None,
            wall_seconds=wall,
        )


def run_scenario(scenario: Scenario) -> ScenarioRun:
    """Function form of :meth:`Scenario.run` (sweep/map ergonomics)."""
    return scenario.run()


# ----------------------------------------------------------------------
# Stock programs
# ----------------------------------------------------------------------


def _flood_builder(minimize: bool) -> ProgramBuilder:
    def build(network: Network) -> ProgramFactory:
        from repro.simulator.algorithms.flooding import ExtremumFloodProgram

        return lambda node: ExtremumFloodProgram(
            network.node_id(node), minimize=minimize
        )

    return build


def _retransmit_flood_builder(network: Network) -> ProgramFactory:
    from repro.simulator.faults import RetransmittingFloodProgram

    horizon = 2 * network.diameter() + 4
    return lambda node: RetransmittingFloodProgram(
        network.node_id(node), horizon=horizon
    )


def _bfs_builder(network: Network) -> ProgramFactory:
    from repro.simulator.algorithms.bfs import BfsProgram

    root = min(network.nodes, key=network.node_id)
    return lambda node: BfsProgram(is_root=(node == root))


def _mis_builder(network: Network) -> ProgramFactory:
    from repro.simulator.algorithms.luby_mis import LubyMisProgram

    return lambda node: LubyMisProgram()


def _clique_min_builder(network: Network) -> ProgramFactory:
    from repro.simulator.algorithms.clique import CliqueExtremumProgram

    return lambda node: CliqueExtremumProgram(
        network.node_id(node), minimize=True
    )


register_program(
    ScenarioProgram(
        name="flood-min",
        description="extremum flood of the minimum random node id",
        build=_flood_builder(minimize=True),
    )
)
register_program(
    ScenarioProgram(
        name="flood-max",
        description="extremum flood of the maximum id (leader election)",
        build=_flood_builder(minimize=False),
    )
)
register_program(
    ScenarioProgram(
        name="retransmit-flood",
        description="loss-tolerant flood, rebroadcasts for 2D+4 rounds",
        build=_retransmit_flood_builder,
    )
)
register_program(
    ScenarioProgram(
        name="bfs",
        description="BFS wave from the minimum-id node",
        build=_bfs_builder,
    )
)
register_program(
    ScenarioProgram(
        name="mis",
        description="Luby's maximal independent set",
        build=_mis_builder,
    )
)
register_program(
    ScenarioProgram(
        name="clique-min",
        description="global minimum in one Congested-Clique round",
        build=_clique_min_builder,
        model=Model.CONGESTED_CLIQUE,
    )
)


def _coded_flood_builder(variant: str) -> ProgramBuilder:
    def build(network: Network) -> ProgramFactory:
        from repro.apps.coded import (
            ChecksummedFloodProgram,
            VotedFloodProgram,
        )

        horizon = 2 * network.diameter() + 4
        if variant == "checksum":
            return lambda node: ChecksummedFloodProgram(
                network.node_id(node), horizon=horizon
            )
        return lambda node: VotedFloodProgram(
            network.node_id(node), horizon=horizon + 2, votes=2
        )

    return build


def _gossip_builder(variant: str) -> ProgramBuilder:
    def build(network: Network) -> ProgramFactory:
        from repro.apps.coded import TokenGossipProgram

        horizon = network.n * (network.diameter() + 1) + 4
        return lambda node: TokenGossipProgram(
            origin=network.node_id(node),
            value=network.node_id(node),
            horizon=horizon,
            variant=variant,
        )

    return build


register_program(
    ScenarioProgram(
        name="flood-checksum",
        description="min flood with checksummed drop-on-bad payloads",
        build=_coded_flood_builder("checksum"),
    )
)
register_program(
    ScenarioProgram(
        name="flood-vote",
        description="min flood committing values after 2 sightings",
        build=_coded_flood_builder("vote"),
    )
)
register_program(
    ScenarioProgram(
        name="gossip-tokens",
        description="all-to-all token gossip, first claim wins (uncoded)",
        build=_gossip_builder("plain"),
    )
)
register_program(
    ScenarioProgram(
        name="gossip-checksum",
        description="token gossip dropping checksum-invalid tokens",
        build=_gossip_builder("checksum"),
    )
)
register_program(
    ScenarioProgram(
        name="gossip-vote",
        description="token gossip committing tokens after 2 sightings",
        build=_gossip_builder("vote"),
    )
)


def _resilience_sweep_driver(
    network: Network,
    model: Model = Model.V_CONGEST,
    rng: RngLike = None,
    tracer=None,
    max_rounds: int = 100000,
) -> "SimulationResult":
    """Composite driver: a small corruption grid on the given network.

    Runs the uncoded/checksum/vote floods under a clean channel and a
    flip adversary, one inner :class:`SyncRunner` per point sharing one
    RNG stream (so the whole grid reproduces from one seed on every
    engine). Outputs are per-point summary dicts keyed by
    ``"{variant}@p={rate}"``; metrics are the merged cost of the grid.
    """
    from repro.apps.coded import ChecksummedFloodProgram, VotedFloodProgram
    from repro.simulator.faults import RetransmittingFloodProgram
    from repro.simulator.metrics import SimulationMetrics

    rand = ensure_rng(rng)
    horizon = 4 * network.diameter() + 8
    factories = {
        "uncoded": lambda node: RetransmittingFloodProgram(
            network.node_id(node), horizon=horizon
        ),
        "checksum": lambda node: ChecksummedFloodProgram(
            network.node_id(node), horizon=horizon
        ),
        "vote": lambda node: VotedFloodProgram(
            network.node_id(node), horizon=horizon, votes=2
        ),
    }
    true_min = min(network.node_id(v) for v in network.nodes)
    outputs: Dict[Hashable, Any] = {}
    merged = SimulationMetrics()
    halted = True
    for rate in (0.0, 0.05):
        for variant, factory in factories.items():
            plan = AdversaryPlan(corruption_probability=rate)
            runner = SyncRunner(
                network, model=model, rng=rand, adversary_plan=plan
            )
            wrapped = tracer.wrap(factory) if tracer is not None else factory
            result = runner.run(wrapped, max_rounds=max_rounds)
            holders = sum(
                1
                for v in network.nodes
                if result.output_of(v) == true_min
            )
            poisoned = sum(
                1
                for v in network.nodes
                if isinstance(result.output_of(v), int)
                and result.output_of(v) < true_min
            )
            outputs[f"{variant}@p={rate:g}"] = {
                "coverage": holders / network.n,
                "wrong_rate": poisoned / network.n,
                "rounds": result.metrics.rounds,
                "messages": result.metrics.messages,
                "bits": result.metrics.bits,
            }
            merged.merge(result.metrics)
            halted = halted and result.halted
    return SimulationResult(outputs=outputs, metrics=merged, halted=halted)


register_program(
    ScenarioProgram(
        name="resilience-sweep",
        description="corruption grid: coded vs uncoded flood coverage",
        driver=_resilience_sweep_driver,
    )
)


def _cds_packing_driver(
    network: Network,
    model: Model = Model.V_CONGEST,
    rng: RngLike = None,
    tracer=None,
    max_rounds: int = 100000,
) -> "SimulationResult":
    from repro.core.cds_packing_distributed import run_cds_packing_scenario

    return run_cds_packing_scenario(
        network, model=model, rng=rng, tracer=tracer, max_rounds=max_rounds
    )


register_program(
    ScenarioProgram(
        name="cds_packing",
        description="Appendix B distributed fractional CDS packing (Thm B.1)",
        driver=_cds_packing_driver,
    )
)


def available_programs() -> List[ScenarioProgram]:
    """Registry contents, sorted by name (CLI listing)."""
    return [PROGRAM_REGISTRY[name] for name in sorted(PROGRAM_REGISTRY)]
