"""Node program interface and per-node execution context.

A :class:`NodeProgram` is the local algorithm a node runs. The runner
calls :meth:`NodeProgram.on_start` once (round 0 output) and then
:meth:`NodeProgram.on_round` every round with the inbox of messages that
arrived. The return value is the node's outgoing traffic:

* under **V-CONGEST**: a single payload (broadcast to all neighbors) or
  ``None`` (silence);
* under **E-CONGEST**: a ``dict`` mapping neighbor → payload (or ``None``).

A node signals completion with :meth:`Context.halt`; its ``output``
becomes part of the :class:`~repro.simulator.runner.SimulationResult`.
Halted nodes stay silent but keep receiving (their inbox is discarded),
matching the usual "local termination" semantics.
"""

from __future__ import annotations

import random
from typing import Any, Dict, Hashable, Optional, Tuple

from repro.simulator.message import Message


class Context:
    """Per-node view of the network plus local control surface.

    The per-node generator may be given directly (``rng``) or as a seed
    (``rng_seed``); the seed form defers :class:`random.Random`
    construction until a program first touches ``ctx.rng``, which most
    deterministic protocols never do. Both forms produce the same stream
    for the same seed, so engines may pick either.
    """

    def __init__(
        self,
        node: Hashable,
        node_id: int,
        neighbors: Tuple[Hashable, ...],
        n: int,
        rng=None,
        index: Optional[int] = None,
        rng_seed: Optional[int] = None,
    ) -> None:
        self.node = node
        self.node_id = node_id
        self.neighbors = neighbors
        self.n = n
        self._rng = rng
        self._rng_seed = rng_seed
        # Dense integer index of the node in Network.index_map (the
        # engine's canonical order); None under the reference engine.
        self.index = index
        self.round = 0
        self.output: Any = None
        self._halted = False

    @property
    def rng(self) -> random.Random:
        """The node's private generator (built on first use)."""
        rng = self._rng
        if rng is None:
            rng = self._rng = random.Random(self._rng_seed)
        return rng

    @property
    def degree(self) -> int:
        return len(self.neighbors)

    @property
    def halted(self) -> bool:
        return self._halted

    def halt(self, output: Any = None) -> None:
        """Locally terminate; ``output`` (if given) becomes the node output."""
        self._halted = True
        if output is not None:
            self.output = output


class NodeProgram:
    """Base class for local algorithms. Subclasses override the hooks.

    Instances are per-node: the runner constructs one program object per
    node via a factory, so instance attributes are node-local state.
    """

    def on_start(self, ctx: Context):
        """Produce round-0 traffic. Default: silence."""
        return None

    def on_round(self, ctx: Context, inbox: Dict[Hashable, Message]):
        """Handle one round's inbox; return outgoing traffic.

        ``inbox`` maps sender node → :class:`Message` for every message
        that arrived this round (empty dict if none).
        """
        return None


class QuiescentProgram(NodeProgram):
    """Convenience base: halts automatically once the whole network is
    silent (the runner handles this globally; subclasses only need the
    message-driven logic)."""
