"""Adversarial channel corruption for the round simulator.

:mod:`repro.simulator.faults` models *erasures* — a delivery either
arrives intact or not at all. Robust-computation work (Censor-Hillel et
al., "Two for One, One for All: Deterministic LDC-based Robust
Computation in Congested Clique") studies the harsher regime where an
adversary may *alter* traffic: the receiver gets a message, but not the
one that was sent. This module provides that regime for every engine:

* :class:`AdversaryPlan` — a declarative corruption adversary mirroring
  :class:`~repro.simulator.faults.FaultPlan`: per-delivery corruption
  decisions that are **pure functions of (plan seed, directed edge,
  round)**, with budget knobs (global corruption budget, per-round edge
  budget, targeted edge sets) enforced deterministically, so the
  indexed, reference, and sharded engines agree on every corrupted
  delivery bit for bit.
* three corruption kinds, selected per corrupted slot from the same
  digest that decided the corruption: ``"flip"`` XORs the payload's
  integer content inside its honest two's-complement width (so a
  corrupted message never exceeds the honest bit budget, but *can* go
  negative — the poisoned-minimum attack on extremum floods),
  ``"forge"`` replaces the payload outright, and ``"replay"`` delivers
  the most recent payload previously carried on the same directed edge
  (a stale-but-well-formed message, the attack checksums cannot see).
* :func:`simulate_with_adversary` — the corruption counterpart of
  :func:`~repro.simulator.faults.simulate_with_faults`.

**Determinism contract.** Whether a delivery is corrupted, and what the
corrupted payload is, depends only on the plan's bound seed, the
directed ``(sender, receiver)`` edge, the round number, and — for
replay — the sequence of payloads previously delivered on that same
edge (itself deterministic, since an edge carries at most one message
per round and rounds are evaluated in order). No decision reads global
state, so engines, shards, and sweeps may evaluate deliveries in any
order and corrupt exactly the same ones the same way.

**Budget semantics.** Budgets cap corrupted *edge-round slots*, not
delivered messages: a budgeted plan pre-commits, round by round, to the
set of directed edges it corrupts that round (the candidate edges whose
corruption coin passes, ranked by coin value, truncated to the
per-round and remaining-global budgets). A slot spends budget whether
or not a message actually crosses its edge that round. This is what
keeps the decision a pure function — enforcing budgets over *actual*
traffic would make one shard's corruptions depend on another shard's
delivery count mid-round. Budgeted (or targeted) plans are bound to the
network by :class:`~repro.simulator.runner.SyncRunner` so the slot
universe (the directed edge list — all ordered pairs under the
congested clique) is fixed before the first round.

Accounting: metrics count the bits of the *honest transmission* — the
adversary tampers on the wire, after the sender paid for (and the
transport validated) the real message. Corrupted payloads built by
``flip`` stay within the honest width; ``forge``/``replay`` payloads
carry their own size, which the receiver's inbox reports faithfully.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import (
    Any,
    Dict,
    FrozenSet,
    Hashable,
    Iterable,
    List,
    Optional,
    Tuple,
)

from repro.errors import GraphValidationError, SimulationError
from repro.simulator.message import Message, payload_bits
from repro.simulator.network import Network
from repro.simulator.runner import Model, SimulationResult, SyncRunner
from repro.utils.rng import RngLike, ensure_rng, fresh_seed

# A directed delivery: (sender, receiver).
DirectedEdge = Tuple[Hashable, Hashable]

#: The corruption kinds a plan may draw from.
CORRUPTION_KINDS = ("flip", "forge", "replay")

#: Per-edge digest-prefix cache bound (mirrors FaultPlan's): cleared
#: wholesale when full, so million-delivery sweeps over huge edge
#: universes cannot grow the plan without limit.
_EDGE_PREFIX_CACHE_MAX = 1 << 16


@dataclass
class AdversaryPlan:
    """A reproducible corruption adversary over directed deliveries.

    ``corruption_probability`` is the per-(edge, round) corruption coin
    — a pure function of the plan seed, the directed edge, and the
    round (see :meth:`corrupts`). ``kinds`` restricts which corruption
    transformations the adversary uses; the kind of each corrupted slot
    is drawn deterministically from the slot's own digest.

    Budget knobs (all optional, combinable):

    ``targets``
        restrict corruption to a set of directed ``(sender, receiver)``
        pairs (the adversary controls specific links);
    ``round_budget``
        at most this many corrupted edge-slots per round;
    ``budget``
        at most this many corrupted edge-slots over the whole run
        (spent in round order).

    ``forge_payload`` is the payload the ``"forge"`` kind delivers;
    ``None`` derives a pseudo-random small int from the slot digest.
    ``rng`` follows the shared seed path of
    :class:`~repro.simulator.faults.FaultPlan`: an explicit int is used
    verbatim, ``None`` is derived from the run seed by
    :class:`~repro.simulator.runner.SyncRunner`.
    """

    corruption_probability: float = 0.0
    kinds: Tuple[str, ...] = ("flip",)
    targets: Optional[FrozenSet[DirectedEdge]] = None
    budget: Optional[int] = None
    round_budget: Optional[int] = None
    forge_payload: Any = None
    rng: RngLike = None

    def __post_init__(self) -> None:
        if not 0.0 <= self.corruption_probability <= 1.0:
            raise GraphValidationError(
                "corruption_probability must lie in [0, 1]"
            )
        kinds = tuple(self.kinds)
        if not kinds:
            raise GraphValidationError(
                "kinds must name at least one corruption kind"
            )
        unknown = [k for k in kinds if k not in CORRUPTION_KINDS]
        if unknown:
            raise GraphValidationError(
                f"unknown corruption kind(s) {unknown!r}; valid kinds: "
                + ", ".join(CORRUPTION_KINDS)
            )
        self.kinds = kinds
        if self.targets is not None:
            normalized = []
            for edge in self.targets:
                if len(edge) != 2:
                    raise GraphValidationError(
                        f"targets must be (sender, receiver) pairs; "
                        f"got {edge!r}"
                    )
                normalized.append((edge[0], edge[1]))
            self.targets = frozenset(normalized)
        for name in ("budget", "round_budget"):
            value = getattr(self, name)
            if value is not None and value < 0:
                raise GraphValidationError(f"{name} must be >= 0")
        # Replay history only accumulates when the plan can replay.
        self._track_replay = "replay" in self.kinds
        self._bind_seed(self.rng)
        # Bound lazily by the runner: the canonical slot universe
        # (directed edges, or all ordered pairs under the clique).
        self._universe: Optional[List[DirectedEdge]] = None

    # -- seeding -------------------------------------------------------

    def _bind_seed(self, rng: RngLike) -> None:
        """Fix the integer seed every corruption digest derives from
        (same contract as :meth:`FaultPlan._bind_seed`)."""
        if isinstance(rng, bool):
            raise GraphValidationError("rng must be None, int, or Random")
        if isinstance(rng, int):
            self._seed = rng
        else:
            self._seed = fresh_seed(ensure_rng(rng))
        # Volatile caches, all derived purely from the bound seed.
        self._edge_prefixes: Dict[DirectedEdge, bytes] = {}
        self._slots: Dict[int, FrozenSet[DirectedEdge]] = {}
        self._slots_through = 0
        self._spent = 0
        self._history: Dict[DirectedEdge, Any] = {}

    def reseed(self, rng: RngLike) -> "AdversaryPlan":
        """Rebind the plan's corruption randomness (returns self).

        The hook :class:`~repro.simulator.runner.SyncRunner` uses to
        derive the plan's seed from the run seed when the plan was built
        without one; ``rng`` stays ``None`` so every runner construction
        re-derives and plan objects can be reused across runs.
        """
        self._bind_seed(rng)
        return self

    def begin_run(self) -> "AdversaryPlan":
        """Reset per-run state (the replay history) before a run.

        Called by :meth:`SyncRunner.run`. The slot/budget caches are
        pure functions of the bound seed and survive — only the replay
        history depends on the traffic of a particular execution.
        """
        self._history.clear()
        return self

    # -- binding to a network ------------------------------------------

    def bind(self, network: Network, complete: bool = False) -> "AdversaryPlan":
        """Validate targets against ``network`` and fix the slot universe.

        ``complete=True`` (the congested clique) makes every ordered
        node pair a potential delivery; otherwise only the network's
        directed edges are. Called by the runner at construction; safe
        to call repeatedly (re-binding to a different network resets the
        budget bookkeeping, which is relative to the universe).
        """
        known = network.index_map
        if self.targets is not None:
            unknown = sorted(
                repr(v)
                for edge in self.targets
                for v in edge
                if v not in known
            )
            if unknown:
                raise SimulationError(
                    f"adversary plan targets nodes not in the network: "
                    f"{unknown}"
                )
            if not complete:
                non_edges = [
                    edge
                    for edge in self.targets
                    if edge[1] not in network.neighbors(edge[0])
                ]
                if non_edges:
                    raise SimulationError(
                        "adversary plan targets non-edges (corruption "
                        "there would be a silent no-op): "
                        f"{sorted(map(repr, non_edges))}"
                    )
        if self.budget is None and self.round_budget is None:
            return self
        index_of = network.index_of
        if self.targets is not None:
            pairs = list(self.targets)
        elif complete:
            nodes = network.nodes
            pairs = [(u, v) for u in nodes for v in nodes if u is not v]
        else:
            pairs = [
                (u, v)
                for u in network.nodes
                for v in network.neighbors(u)
            ]
        # Canonical order: by endpoint indices — the deterministic
        # tie-break of the slot ranking, stable across processes.
        pairs.sort(key=lambda edge: (index_of(edge[0]), index_of(edge[1])))
        self._universe = pairs
        self._slots = {}
        self._slots_through = 0
        self._spent = 0
        return self

    # -- the pure decision functions -----------------------------------

    def _digest(
        self, sender: Hashable, receiver: Hashable, round_no: int
    ) -> bytes:
        """sha256 over (seed, directed edge, round) — the one source of
        corruption randomness. The per-edge prefix bytes are cached (and
        the cache cleared wholesale at its bound), never the hasher."""
        edge = (sender, receiver)
        prefix = self._edge_prefixes.get(edge)
        if prefix is None:
            prefix = f"{self._seed}|adv|{sender!r}->{receiver!r}|".encode(
                "utf-8"
            )
            if len(self._edge_prefixes) >= _EDGE_PREFIX_CACHE_MAX:
                self._edge_prefixes.clear()
            self._edge_prefixes[edge] = prefix
        return hashlib.sha256(
            prefix + str(round_no).encode("ascii")
        ).digest()

    def _coin(
        self, sender: Hashable, receiver: Hashable, round_no: int
    ) -> float:
        return (
            int.from_bytes(
                self._digest(sender, receiver, round_no)[:8], "big"
            )
            / 2.0**64
        )

    def _slots_for(self, round_no: int) -> FrozenSet[DirectedEdge]:
        """The pre-committed corrupted edge set of ``round_no``
        (budgeted path; requires :meth:`bind`)."""
        if self._universe is None:
            raise SimulationError(
                "a budgeted AdversaryPlan must be bound to a network "
                "before corruption decisions are made (SyncRunner does "
                "this automatically)"
            )
        while self._slots_through < round_no:
            r = self._slots_through + 1
            if self.budget is not None and self._spent >= self.budget:
                self._slots[r] = frozenset()
                self._slots_through = r
                continue
            p = self.corruption_probability
            candidates = [
                (self._coin(u, v, r), position, (u, v))
                for position, (u, v) in enumerate(self._universe)
                if self._coin(u, v, r) < p
            ]
            candidates.sort()
            if self.round_budget is not None:
                candidates = candidates[: self.round_budget]
            if self.budget is not None:
                candidates = candidates[: self.budget - self._spent]
            self._spent += len(candidates)
            self._slots[r] = frozenset(edge for _, _, edge in candidates)
            self._slots_through = r
        return self._slots[round_no]

    def corrupts(
        self, sender: Hashable, receiver: Hashable, round_no: int
    ) -> bool:
        """Whether the ``sender → receiver`` delivery of ``round_no`` is
        corrupted — a pure function of (seed, edge, round) and, under
        budgets, of the bound slot universe."""
        if self.corruption_probability <= 0.0:
            return False
        edge = (sender, receiver)
        if self.targets is not None and edge not in self.targets:
            return False
        if self.budget is None and self.round_budget is None:
            return self._coin(sender, receiver, round_no) < (
                self.corruption_probability
            )
        return edge in self._slots_for(round_no)

    def kind_of(
        self, sender: Hashable, receiver: Hashable, round_no: int
    ) -> str:
        """The corruption kind a corrupted slot uses (deterministic)."""
        digest = self._digest(sender, receiver, round_no)
        return self.kinds[digest[8] % len(self.kinds)]

    # -- the corruption transformations --------------------------------

    def apply(
        self,
        sender: Hashable,
        receiver: Hashable,
        round_no: int,
        message: Message,
    ) -> Message:
        """The delivery hook: returns the message the receiver actually
        gets. Engines call this once per non-dropped delivery; the
        replay history observes every such delivery, corrupted or not.
        """
        edge = (sender, receiver)
        corrupted = self.corrupts(sender, receiver, round_no)
        stale = self._history.get(edge) if self._track_replay else None
        if self._track_replay:
            self._history[edge] = message.payload
        if not corrupted:
            return message
        digest = self._digest(sender, receiver, round_no)
        kind = self.kinds[digest[8] % len(self.kinds)]
        material = int.from_bytes(digest[9:17], "big")
        if kind == "replay" and stale is not None:
            payload = stale
        elif kind == "forge":
            payload = (
                self.forge_payload
                if self.forge_payload is not None
                else _forged_int(material)
            )
        else:  # flip — also the fallback for replay with no history
            payload = _flip_payload(message.payload, material)
        return Message(message.sender, payload, payload_bits(payload))

    # -- reporting ------------------------------------------------------

    def describe(self) -> Dict[str, Any]:
        """JSON-clean summary of the plan's configuration (the bound
        seed included, so an envelope row reproduces the corruption)."""
        return {
            "corruption_probability": self.corruption_probability,
            "kinds": list(self.kinds),
            "targets": (
                None
                if self.targets is None
                else sorted(
                    [list(edge) for edge in self.targets], key=repr
                )
            ),
            "budget": self.budget,
            "round_budget": self.round_budget,
            "forge_payload": self.forge_payload,
            "seed": self._seed,
        }


def _forged_int(material: int) -> int:
    """The default forged payload: a signed 16-bit pseudo-random int,
    derived from the slot digest (never 0 — forgery must change
    *something* with overwhelming probability, and a small nonzero int
    is wrong for most protocols)."""
    value = material % 65536 - 32768
    return value if value != 0 else 1


def _flip_int(value: int, material: int) -> int:
    """XOR ``value`` inside its honest two's-complement width.

    The mask is nonzero and confined to ``payload_bits(value)`` bits, so
    the corrupted int never costs more bits than the honest one — but
    the sign bit is in range, so a non-negative value can corrupt to a
    negative one (the poisoned-extremum attack). One exception: the
    zero payload's 1-bit budget admits no *other* int at all, so zero
    corrupts to -1 (2 bits). One exclusion: ``-2**(width-1)`` fits the
    two's-complement width but :func:`payload_bits` charges it an extra
    magnitude bit, so it is nudged to the nearest in-budget int.
    """
    width = max(1, value.bit_length() + 1)
    space = 1 << width
    half = space >> 1
    mask = material % (space - 1) + 1  # in [1, space - 1]
    rep = (value & (space - 1)) ^ mask
    out = rep - space if rep >= half else rep
    if out == -half and width > 1:
        out = -half + 1 if value != -half + 1 else -half + 2
    return out


def _flip_payload(payload: Any, material: int) -> Any:
    """Bit-flip corruption of one payload.

    Ints are flipped in place; tuples have exactly one int element
    flipped (chosen by the slot digest). Payloads with no integer
    content fall back to a forged int — garbage is garbage.
    """
    if isinstance(payload, bool):
        return not payload
    if isinstance(payload, int):
        return _flip_int(payload, material)
    if isinstance(payload, tuple):
        slots = [
            i
            for i, item in enumerate(payload)
            if isinstance(item, int) and not isinstance(item, bool)
        ]
        if slots:
            target = slots[material % len(slots)]
            return tuple(
                _flip_int(item, material >> 3) if i == target else item
                for i, item in enumerate(payload)
            )
    return _forged_int(material)


def simulate_with_adversary(
    network: Network,
    program_factory,
    adversary_plan: AdversaryPlan,
    fault_plan=None,
    model: Model = Model.V_CONGEST,
    max_rounds: int = 100_000,
    bits_per_message: Optional[int] = None,
    rng: RngLike = None,
) -> SimulationResult:
    """Run a simulation under an :class:`AdversaryPlan` (and optionally
    a :class:`~repro.simulator.faults.FaultPlan` — drops are decided
    first; the adversary only sees delivered traffic).

    Plans built without their own ``rng`` derive their seeds from this
    function's ``rng`` inside :class:`SyncRunner` (fault plan first,
    adversary second — the draw order every engine shares), so a single
    seed reproduces the whole hostile run.
    """
    runner = SyncRunner(
        network,
        model=model,
        bits_per_message=bits_per_message,
        rng=ensure_rng(rng),
        fault_plan=fault_plan,
        adversary_plan=adversary_plan,
    )
    return runner.run(program_factory, max_rounds=max_rounds)
