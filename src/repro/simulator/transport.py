"""Transport/model layer of the simulation engine.

A :class:`Transport` owns the *delivery semantics* of one communication
model: which receivers a program may address, who a bare-payload
broadcast reaches, and the per-message bit budget. The round loop of
:mod:`repro.simulator.runner` is model-agnostic — it hands each program's
raw return value to the transport for validation and gets back traffic in
the engine's indexed form.

Three transports ship with the engine:

* :class:`VCongestTransport` — the paper's V-CONGEST model (Section 1.2):
  one ``O(log n)``-bit message per round, broadcast to all neighbors.
  Addressing individual neighbors is a model violation.
* :class:`ECongestTransport` — the classical CONGEST model: one
  ``O(log n)``-bit message per direction of each edge; per-neighbor
  dicts allowed, bare payloads are broadcast shorthand.
* :class:`CliqueTransport` — the Congested Clique model (Lotker et al.;
  used by e.g. Parter–Yogev's clique spanner algorithms): the
  communication graph is the *complete* graph regardless of the input
  topology, so a node may address **any** other node, and a bare payload
  reaches all ``n − 1`` of them. The input graph still defines the
  problem instance (``ctx.neighbors`` is unchanged).

The historical :class:`Model` enum remains the ergonomic front door —
``SyncRunner(network, model=Model.E_CONGEST)`` builds the matching
transport — while ``SyncRunner(network, transport=...)`` accepts custom
transports (the plug point for later lossy/batched/async models).
"""

from __future__ import annotations

import enum
from typing import Any, Dict, Hashable, List, Optional, Sequence, Tuple, Union

from repro.errors import ModelViolationError
from repro.simulator.message import Message, payload_bits
from repro.simulator.network import Network
from repro.utils.mathutil import ceil_log2


class Model(enum.Enum):
    """The communication models the engine ships transports for.

    ``V_CONGEST`` and ``E_CONGEST`` are the paper's two models (Section
    1.2); ``CONGESTED_CLIQUE`` is the all-to-all model of the congested
    clique literature.
    """

    V_CONGEST = "v-congest"
    E_CONGEST = "e-congest"
    CONGESTED_CLIQUE = "congested-clique"


def default_message_budget(n: int, factor: int = 32, slack: int = 128) -> int:
    """Concrete ``O(log n)`` bit budget: ``factor·⌈log₂ n⌉ + slack``.

    The paper's messages carry constantly many ids/values of ``O(log n)``
    bits each (component ids are triples, proposals carry an id, a
    component id, and a random value), so a generous constant factor is
    the honest instantiation.
    """
    return factor * max(1, ceil_log2(max(2, n))) + slack


# Outbound traffic in the engine's indexed form. A broadcast is the
# single shared Message (delivered along the transport's fan-out table);
# addressed traffic is a list of (receiver index, Message) pairs in the
# program's addressing order (which pins fault-plan RNG consumption).
Broadcast = Tuple["_BroadcastTag", Message]
Addressed = List[Tuple[int, Message]]
Outbound = Union[None, Broadcast, Addressed]


class _BroadcastTag:
    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "<broadcast>"


#: Sentinel marking a validated broadcast: ``out[0] is BROADCAST``.
BROADCAST = _BroadcastTag()


class Transport:
    """Base transport: broadcast-only delivery along a fan-out table.

    Subclasses override :attr:`name`, the fan-out (who a broadcast
    reaches) and — for models that allow it — per-receiver addressing.
    """

    name = "abstract"
    #: Whether programs may return per-receiver dicts.
    allows_addressing = False

    def __init__(
        self, network: Network, bits_per_message: Optional[int] = None
    ) -> None:
        self.network = network
        self.bits_per_message = (
            bits_per_message
            if bits_per_message is not None
            else default_message_budget(network.n)
        )
        self._fanout: List[Tuple[int, ...]] = self._build_fanout(network)
        # O(1) addressing: per node, receiver label → receiver index for
        # every label the node may legally address.
        self._addressable: List[Dict[Hashable, int]] = (
            self._build_addressable(network) if self.allows_addressing else []
        )

    # -- model surface -------------------------------------------------

    def _build_fanout(self, network: Network) -> List[Tuple[int, ...]]:
        """Receiver indices of a broadcast, per sender index."""
        return network.neighbor_index_table()

    def _build_addressable(self, network: Network) -> List[Dict[Hashable, int]]:
        """Legally addressable receivers, per sender index."""
        index_of = network.index_map
        return [
            {u: index_of[u] for u in network.neighbors(v)}
            for v in network.nodes
        ]

    # -- engine surface ------------------------------------------------

    def fanout(self, sender_index: int) -> Tuple[int, ...]:
        """Broadcast receiver indices for the node at ``sender_index``."""
        return self._fanout[sender_index]

    def validate(self, node: Hashable, sender_index: int, raw: Any) -> Outbound:
        """Turn a program's return value into indexed outbound traffic,
        enforcing the model's congestion rules.

        Returns ``None`` for silence, ``(BROADCAST, message)`` for a
        validated broadcast, or a list of ``(receiver_index, message)``
        pairs for addressed traffic.
        """
        if raw is None:
            return None
        if isinstance(raw, dict):
            if not self.allows_addressing:
                raise ModelViolationError(
                    f"node {node!r} attempted per-neighbor messages in "
                    "V-CONGEST; only a single local broadcast is allowed"
                )
            addressable = self._addressable[sender_index]
            traffic: Addressed = []
            # Programs often address every receiver with the same payload
            # object; build (and size-check) one Message per object, not
            # one per receiver. Keyed by id(): the payloads stay alive in
            # `raw` for the duration of the loop.
            built: Dict[int, Message] = {}
            for receiver, payload in raw.items():
                receiver_index = addressable.get(receiver)
                if receiver_index is None:
                    self._reject_receiver(node, receiver)
                if payload is None:
                    continue
                message = built.get(id(payload))
                if message is None or message.payload is not payload:
                    message = Message(node, payload, payload_bits(payload))
                    if message.bits > self.bits_per_message:
                        self._reject_size(node, message)
                    built[id(payload)] = message
                traffic.append((receiver_index, message))
            return traffic
        # Bare payload: broadcast along the fan-out (legal in all models).
        # Budget enforcement applies even when nobody is listening (an
        # isolated node's oversized message is still a model violation).
        message = Message(node, raw, payload_bits(raw))
        if message.bits > self.bits_per_message:
            self._reject_size(node, message)
        if not self._fanout[sender_index]:
            return None  # nobody to reach (isolated node)
        return (BROADCAST, message)

    def _reject_receiver(self, node: Hashable, receiver: Hashable) -> None:
        raise ModelViolationError(
            f"node {node!r} addressed non-neighbor {receiver!r}"
        )

    def check_size(self, node: Hashable, message: Message) -> None:
        if message.bits > self.bits_per_message:
            self._reject_size(node, message)

    def _reject_size(self, node: Hashable, message: Message) -> None:
        raise ModelViolationError(
            f"node {node!r} sent a {message.bits}-bit message; budget is "
            f"{self.bits_per_message} bits (O(log n))"
        )


class VCongestTransport(Transport):
    """V-CONGEST: broadcast-only, congestion on vertices."""

    name = "v-congest"
    allows_addressing = False


class ECongestTransport(Transport):
    """E-CONGEST (classical CONGEST): per-neighbor messages allowed."""

    name = "e-congest"
    allows_addressing = True


class CliqueTransport(Transport):
    """Congested Clique: all-to-all links of ``O(log n)`` bits per round.

    The fan-out of a broadcast is every *other* node, and any node may be
    addressed directly — the communication graph is ``K_n`` even when the
    input topology is sparse. Addressing yourself is rejected (a message
    to self is local state, not communication).
    """

    name = "congested-clique"
    allows_addressing = True

    def _build_fanout(self, network: Network) -> List[Tuple[int, ...]]:
        everyone = tuple(range(network.n))
        return [
            everyone[:sender] + everyone[sender + 1 :]
            for sender in range(network.n)
        ]

    def _build_addressable(self, network: Network) -> List[Dict[Hashable, int]]:
        index_of = network.index_map
        return [
            {u: index_of[u] for u in network.nodes if u != v}
            for v in network.nodes
        ]

    def _reject_receiver(self, node: Hashable, receiver: Hashable) -> None:
        if receiver == node:
            raise ModelViolationError(
                f"node {node!r} addressed itself in the congested clique"
            )
        raise ModelViolationError(
            f"node {node!r} addressed unknown node {receiver!r}"
        )


_TRANSPORTS = {
    Model.V_CONGEST: VCongestTransport,
    Model.E_CONGEST: ECongestTransport,
    Model.CONGESTED_CLIQUE: CliqueTransport,
}


def build_transport(
    model: Model, network: Network, bits_per_message: Optional[int] = None
) -> Transport:
    """The stock transport implementing ``model`` on ``network``."""
    try:
        transport_cls = _TRANSPORTS[model]
    except KeyError:  # pragma: no cover - future enum members
        raise ModelViolationError(f"no transport registered for {model!r}")
    return transport_cls(network, bits_per_message)
