"""The ``"sharded"`` engine — the round loop across worker processes.

This is the third registered round-loop implementation and the first
that uses more than one core. The canonicalized
:class:`~repro.simulator.network.Network` is partitioned into
**contiguous node-index shards**; each shard's slice of the round loop
(program execution, outbound validation, local delivery, fault
filtering) runs in a forked worker process, and cross-shard messages
are exchanged at a per-round barrier through the parent. Delivery
semantics still come from the runner's pluggable
:class:`~repro.simulator.transport.Transport`, so all three stock
models (V-CONGEST, E-CONGEST, Congested Clique) shard unchanged.

**Bit-identity contract.** Under a fixed seed the sharded engine
produces the same :class:`~repro.simulator.runner.SimulationResult`
(outputs in the same node order), the same
:class:`~repro.simulator.metrics.SimulationMetrics`, and the same
:class:`~repro.simulator.tracing.Tracer` transcript as the indexed
loop, for any shard count. The determinism contract of
:mod:`repro.simulator.runner_reference` is preserved shard-by-shard:

* per-node context RNG seeds are drawn from the run RNG in
  ``Network.nodes`` order **in the parent, before forking**, so the run
  RNG advances exactly as under the single-process engines;
* inbox insertion order is global sender-index order: each worker
  buffers its local deliveries and the barrier's imports and merges
  them by sender index before filling inboxes;
* fault-plan drop decisions are pure functions of (plan seed, directed
  edge, round) — see :meth:`~repro.simulator.faults.FaultPlan.drops` —
  so each worker evaluates its own senders' losses locally and agrees
  with every other iteration order;
* trace events are harvested from the workers at the end of the run and
  merged (round-major, shard-major = global node-index order) into the
  parent's trace, discovered via
  :func:`~repro.simulator.tracing.trace_sink`.

**Barrier protocol** (one worker ↔ parent pipe per shard, two
synchronization points per round)::

    worker: ("ready", unhalted)                    once, after on_start
    loop:
      worker: ("delivered", msgs, bits, max, exports)   phase A
      parent: ("inbound", imports)                      routed exports
      worker: ("executed", halts, crashes, senders)     phase B
      parent: ("continue",) | ("finish", halted)
    worker: ("final", outputs, trace_events)       on finish

(error paths do not abort gracefully: a failing worker ships its
exception as ("error", exc) in place of any reply, and the parent
terminates the remaining workers and re-raises; a worker receiving an
unknown command exits without a "final" reply)

Workers are **forked**, not spawned: program factories are usually
closures over the network and cannot be pickled, and fork gives every
worker the canonicalized topology, transport tables, and fault plan by
memory inheritance at zero serialization cost. Platforms without the
``fork`` start method get a loud :class:`SimulationError`. A 1-core
machine can still run the engine (the processes interleave); it simply
gains nothing — the differential suite skips it there for speed.
"""

from __future__ import annotations

import contextlib
import multiprocessing
import os
from typing import Any, Callable, Hashable, Iterator, List, Optional, Tuple

from repro.errors import SimulationError
from repro.simulator.message import Message
from repro.simulator.metrics import SimulationMetrics
from repro.simulator.node import Context, NodeProgram
from repro.simulator.runner import SimulationResult, register_engine
from repro.simulator.tracing import trace_sink
from repro.simulator.transport import BROADCAST
from repro.utils.rng import fresh_seed

__all__ = [
    "MAX_DEFAULT_SHARDS",
    "fork_available",
    "resolve_shards",
    "shard_bounds",
    "shards_context",
]

#: Cap on the *default* worker count (explicit ``shards=`` overrides it;
#: past ~8 workers the per-round barrier dominates for typical n).
MAX_DEFAULT_SHARDS = 8

# Module default consumed when a runner does not set ``shards``;
# ``shards_context`` overrides it so composite drivers (whose inner
# SyncRunners the caller never touches) can be sharded deterministically.
_DEFAULT_SHARDS: Optional[int] = None


def fork_available() -> bool:
    """Whether this platform can fork workers (the engine requires it)."""
    return "fork" in multiprocessing.get_all_start_methods()


@contextlib.contextmanager
def shards_context(count: int) -> Iterator[None]:
    """Temporarily fix the default shard count of the sharded engine.

    The sharded analogue of
    :func:`~repro.simulator.runner.engine_context`: composite drivers
    build their own inner runners, so ``engine_context("sharded")``
    routes them here and ``shards_context(k)`` pins how many workers
    each inner run forks.
    """
    global _DEFAULT_SHARDS
    if count < 1:
        raise SimulationError(f"shards must be >= 1, got {count}")
    previous = _DEFAULT_SHARDS
    _DEFAULT_SHARDS = count
    try:
        yield
    finally:
        _DEFAULT_SHARDS = previous


def resolve_shards(requested: Optional[int], n: int) -> int:
    """The worker count for an ``n``-node run.

    Precedence: explicit ``SyncRunner(shards=…)`` > ``shards_context`` >
    one per core (capped at :data:`MAX_DEFAULT_SHARDS`); always clamped
    to ``n`` — an empty shard would be pure overhead.
    """
    if requested is None:
        requested = _DEFAULT_SHARDS
    if requested is None:
        requested = max(1, min(os.cpu_count() or 1, MAX_DEFAULT_SHARDS))
    if requested < 1:
        raise SimulationError(f"shards must be >= 1, got {requested}")
    return max(1, min(requested, n))


def shard_bounds(n: int, shards: int) -> List[Tuple[int, int]]:
    """Contiguous, balanced ``[lo, hi)`` index ranges covering ``0..n``.

    The first ``n % shards`` shards take one extra node, so shard sizes
    differ by at most one and concatenating the ranges in shard order
    walks the nodes in canonical index order — the property the trace
    and inbox merges rely on.
    """
    if shards < 1:
        raise SimulationError(f"shards must be >= 1, got {shards}")
    if shards > n:
        raise SimulationError(
            f"cannot split {n} node(s) into {shards} non-empty shards"
        )
    base, extra = divmod(n, shards)
    bounds: List[Tuple[int, int]] = []
    lo = 0
    for shard in range(shards):
        hi = lo + base + (1 if shard < extra else 0)
        bounds.append((lo, hi))
        lo = hi
    return bounds


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------


def _worker_main(
    runner,
    program_factory: Callable[[Hashable], NodeProgram],
    seeds: List[int],
    lo: int,
    hi: int,
    conn,
) -> None:
    """One shard's half of the barrier protocol (runs in a fork).

    Everything heavy — the network, transport tables, fault plan, and
    the factory's closed-over state — is inherited from the parent at
    fork time. The worker owns node indices ``[lo, hi)``; ``seeds``
    holds their pre-drawn context RNG seeds.
    """
    try:
        net = runner.network
        transport = runner.transport
        plan = runner.fault_plan
        adversary = runner.adversary_plan
        nodes = net.nodes
        n = len(nodes)
        validate = transport.validate
        fanout = transport.fanout
        sink = trace_sink(program_factory)
        trace_base = len(sink.events) if sink is not None else 0

        contexts: List[Context] = []
        programs: List[NodeProgram] = []
        for i in range(lo, hi):
            node = nodes[i]
            contexts.append(
                Context(
                    node=node,
                    node_id=net.node_id(node),
                    neighbors=net.neighbors(node),
                    n=n,
                    rng_seed=seeds[i - lo],
                    index=i,
                )
            )
            programs.append(program_factory(node))

        outbound: List[Any] = [None] * (hi - lo)
        senders: List[int] = []  # global indices, ascending
        for i in range(lo, hi):
            raw = programs[i - lo].on_start(contexts[i - lo])
            out = validate(nodes[i], i, raw)
            if out:
                outbound[i - lo] = out
                senders.append(i)
        live = [i for i in range(lo, hi) if not contexts[i - lo].halted]
        conn.send(("ready", len(live)))

        inboxes = [dict() for _ in range(lo, hi)]
        round_no = 0
        while True:
            round_no += 1
            # -- phase A: deliver last round's outbound ----------------
            round_messages = 0
            round_bits = 0
            round_max_bits = 0
            # (sender_index, receiver_index, Message); buffered so local
            # and imported deliveries can be merged in sender order.
            deliveries: List[Tuple[int, int, Message]] = []
            # Exports are grouped per sender to keep the pickle volume —
            # the serial cost of the barrier — proportional to senders,
            # not deliveries: ("b", s, payload, bits, receivers) for a
            # broadcast, ("a", s, [(r, payload, bits), …]) for
            # addressed traffic.
            exports: List[Tuple] = []
            for s in senders:
                out = outbound[s - lo]
                outbound[s - lo] = None
                sender = nodes[s]
                if plan is not None and plan.is_crashed(sender, round_no):
                    continue
                if out[0] is BROADCAST:
                    message = out[1]
                    bits = message.bits
                    delivered = 0
                    remote: List[int] = []
                    for r in fanout(s):
                        if plan is not None and plan.drops(
                            sender, nodes[r], round_no
                        ):
                            continue
                        if lo <= r < hi:
                            deliveries.append((s, r, message))
                        else:
                            remote.append(r)
                        delivered += 1
                    if remote:
                        exports.append(
                            ("b", s, message.payload, bits, remote)
                        )
                    if delivered:
                        round_messages += delivered
                        round_bits += bits * delivered
                        if bits > round_max_bits:
                            round_max_bits = bits
                else:
                    addressed: List[Tuple[int, Any, int]] = []
                    for r, message in out:
                        if plan is not None and plan.drops(
                            sender, nodes[r], round_no
                        ):
                            continue
                        if lo <= r < hi:
                            deliveries.append((s, r, message))
                        else:
                            addressed.append(
                                (r, message.payload, message.bits)
                            )
                        round_messages += 1
                        round_bits += message.bits
                        if message.bits > round_max_bits:
                            round_max_bits = message.bits
                    if addressed:
                        exports.append(("a", s, addressed))
            senders = []
            conn.send(
                ("delivered", round_messages, round_bits, round_max_bits,
                 exports)
            )

            tag, imports = conn.recv()
            assert tag == "inbound", f"protocol violation: {tag!r}"
            if imports:
                for entry in imports:
                    if entry[0] == "b":
                        _, s, payload, bits, receivers = entry
                        message = Message(nodes[s], payload, bits)
                        for r in receivers:
                            deliveries.append((s, r, message))
                    else:
                        _, s, addressed = entry
                        sender = nodes[s]
                        for r, payload, bits in addressed:
                            deliveries.append(
                                (s, r, Message(sender, payload, bits))
                            )
                # Global sender-index order is the inbox insertion order
                # of the single-process engines (stable sort: local
                # deliveries are already sender-ascending).
                deliveries.sort(key=lambda entry: entry[0])
            touched: List[int] = []
            for s, r, message in deliveries:
                box = inboxes[r - lo]
                if not box:
                    touched.append(r - lo)
                # Corruption is applied by the *receiver-owning* worker:
                # each directed edge has exactly one owner, so replay
                # histories partition cleanly across shards, and the
                # decision itself is a pure function of (seed, edge,
                # round) — identical in every worker layout.
                box[nodes[s]] = (
                    message
                    if adversary is None
                    else adversary.apply(nodes[s], nodes[r], round_no, message)
                )

            # -- phase B: execute this shard's live nodes --------------
            halts = 0
            crashes = 0
            next_live: List[int] = []
            for i in live:
                if plan is not None and plan.is_crashed(nodes[i], round_no):
                    # Crash-stop: silently out of the live set for good,
                    # but still unhalted for the parent's accounting.
                    crashes += 1
                    continue
                ctx = contexts[i - lo]
                ctx.round = round_no
                raw = programs[i - lo].on_round(ctx, inboxes[i - lo])
                if ctx._halted:
                    halts += 1
                else:
                    if raw is not None:
                        out = validate(nodes[i], i, raw)
                        if out:
                            outbound[i - lo] = out
                            senders.append(i)
                    next_live.append(i)
            for t in touched:
                inboxes[t].clear()
            live = next_live
            conn.send(("executed", halts, crashes, len(senders)))

            command = conn.recv()
            if command[0] == "continue":
                continue
            if command[0] == "finish":
                outputs = [contexts[i - lo].output for i in range(lo, hi)]
                events = (
                    list(sink.events[trace_base:]) if sink is not None else []
                )
                conn.send(("final", outputs, events))
            break
    except Exception as error:  # noqa: BLE001 — shipped to the parent
        try:
            conn.send(("error", error))
        except Exception:  # unpicklable error: ship a plain summary
            conn.send(
                ("error",
                 SimulationError(f"{type(error).__name__}: {error}"))
            )
    finally:
        conn.close()


# ----------------------------------------------------------------------
# Parent side
# ----------------------------------------------------------------------


def _recv(conn):
    """One protocol message from a worker; worker errors re-raise here."""
    try:
        message = conn.recv()
    except EOFError:
        raise SimulationError(
            "a sharded-engine worker died without reporting an error"
        )
    if message[0] == "error":
        raise message[1]
    return message


def _run_sharded(
    runner,
    program_factory: Callable[[Hashable], NodeProgram],
    max_rounds: int,
    quiescence_halts: bool,
) -> SimulationResult:
    """The parent's half: fork shard workers, route the barrier, account
    metrics, and assemble the (bit-identical) result."""
    n_nodes = len(runner.network.nodes)
    if resolve_shards(runner.shards, n_nodes) == 1:
        # One shard means zero cross-shard traffic: forking a single
        # worker would only add pipe round-trips per round (the 0.24x
        # single-core pathology in BENCH_simulator.json). Delegate to
        # the fastest in-process inner loop instead — every engine is
        # bit-identical, so this is invisible in the results. Works even
        # where fork is unavailable.
        from repro.simulator.runner import _require_engine
        from repro.simulator.runner_vectorized import numpy_available

        inner = "vectorized" if numpy_available() else "indexed"
        return _require_engine(inner)(
            runner, program_factory, max_rounds, quiescence_halts
        )
    if not fork_available():
        raise SimulationError(
            "the sharded engine requires the 'fork' process start method "
            "(program factories are closures and cannot be pickled); "
            "use engine='indexed' on this platform"
        )
    net = runner.network
    nodes = net.nodes
    n = len(nodes)
    # Draw every context seed in canonical node order *before* forking:
    # the run RNG consumes exactly one draw per node, as under the
    # single-process engines, so chained simulations sharing one RNG
    # stay on the same stream regardless of engine.
    seeds = [fresh_seed(runner._rng) for _ in range(n)]
    bounds = shard_bounds(n, resolve_shards(runner.shards, n))
    sink = trace_sink(program_factory)

    ctx = multiprocessing.get_context("fork")
    workers = []
    connections = []
    try:
        for lo, hi in bounds:
            parent_conn, child_conn = ctx.Pipe()
            process = ctx.Process(
                target=_worker_main,
                args=(runner, program_factory, seeds[lo:hi], lo, hi,
                      child_conn),
                daemon=True,
            )
            process.start()
            child_conn.close()
            workers.append(process)
            connections.append(parent_conn)

        unhalted = 0
        for conn in connections:
            tag, shard_unhalted = _recv(conn)
            assert tag == "ready", f"protocol violation: {tag!r}"
            unhalted += shard_unhalted
        live = unhalted

        metrics = SimulationMetrics(runs=1)
        halted_flag: Optional[bool] = None
        for round_no in range(1, max_rounds + 1):
            round_messages = 0
            round_bits = 0
            round_max_bits = 0
            imports: List[List[Tuple]] = [[] for _ in bounds]
            for conn in connections:
                tag, messages, bits, max_bits, exports = _recv(conn)
                assert tag == "delivered", f"protocol violation: {tag!r}"
                round_messages += messages
                round_bits += bits
                if max_bits > round_max_bits:
                    round_max_bits = max_bits
                _route_exports(bounds, exports, imports)
            if round_messages or unhalted:
                metrics.record_round(
                    round_messages, round_bits, round_max_bits
                )
            for shard, conn in enumerate(connections):
                conn.send(("inbound", imports[shard]))

            senders_total = 0
            for conn in connections:
                tag, halts, crashes, shard_senders = _recv(conn)
                assert tag == "executed", f"protocol violation: {tag!r}"
                unhalted -= halts
                live -= halts + crashes
                senders_total += shard_senders

            if live == 0:
                halted_flag = True
            elif (
                quiescence_halts
                and round_messages == 0
                and senders_total == 0
            ):
                halted_flag = False
            if halted_flag is not None:
                break
            for conn in connections:
                conn.send(("continue",))
        if halted_flag is None:
            raise SimulationError(
                f"simulation did not terminate within {max_rounds} rounds"
            )

        outputs = {}
        trace_deltas = []
        for conn in connections:
            conn.send(("finish", halted_flag))
        for (lo, hi), conn in zip(bounds, connections):
            tag, shard_outputs, shard_events = _recv(conn)
            assert tag == "final", f"protocol violation: {tag!r}"
            for i in range(lo, hi):
                outputs[nodes[i]] = shard_outputs[i - lo]
            trace_deltas.append(shard_events)
        if sink is not None:
            _merge_trace_events(sink, trace_deltas)
        for process in workers:
            process.join()
        return SimulationResult(
            outputs=outputs, metrics=metrics, halted=halted_flag
        )
    finally:
        for conn in connections:
            with contextlib.suppress(OSError):
                conn.close()
        for process in workers:
            if process.is_alive():
                process.terminate()
            process.join(timeout=5)


def _route_exports(
    bounds: List[Tuple[int, int]],
    exports: List[Tuple],
    imports: List[List[Tuple]],
) -> None:
    """Split one worker's grouped exports by destination shard, keeping
    the per-sender grouping (see the export format in
    :func:`_worker_main`)."""
    for entry in exports:
        if entry[0] == "b":
            _, s, payload, bits, receivers = entry
            by_shard: dict = {}
            for r in receivers:
                by_shard.setdefault(_owner(bounds, r), []).append(r)
            for shard, shard_receivers in by_shard.items():
                imports[shard].append(
                    ("b", s, payload, bits, shard_receivers)
                )
        else:
            _, s, addressed = entry
            by_shard = {}
            for item in addressed:
                by_shard.setdefault(_owner(bounds, item[0]), []).append(item)
            for shard, shard_items in by_shard.items():
                imports[shard].append(("a", s, shard_items))


def _owner(bounds: List[Tuple[int, int]], index: int) -> int:
    """The shard owning a node index (bounds are sorted and contiguous)."""
    lo, hi = 0, len(bounds)
    while lo < hi:
        mid = (lo + hi) // 2
        if index >= bounds[mid][1]:
            lo = mid + 1
        else:
            hi = mid
    return lo


def _merge_trace_events(sink, trace_deltas) -> None:
    """Merge per-shard event deltas into the parent's trace, restoring
    the single-process append order: round-major, then shard order
    (= global node-index order, since shards are contiguous and each
    worker appends its shard in index order)."""
    buckets = {}
    for shard_events in trace_deltas:
        for event in shard_events:
            buckets.setdefault(event.round_no, []).append(event)
    for round_no in sorted(buckets):
        sink.events.extend(buckets[round_no])


register_engine("sharded", _run_sharded)
