"""The ``"sharded"`` engine — the round loop across worker processes.

This is the third registered round-loop implementation and the first
that uses more than one core. The canonicalized
:class:`~repro.simulator.network.Network` is partitioned into
**contiguous node-index shards**; each shard's slice of the round loop
(program execution, outbound validation, local delivery, fault
filtering) runs in a forked worker process, and cross-shard messages
are exchanged at a per-round barrier through the parent. Delivery
semantics still come from the runner's pluggable
:class:`~repro.simulator.transport.Transport`, so all three stock
models (V-CONGEST, E-CONGEST, Congested Clique) shard unchanged.

**Bit-identity contract.** Under a fixed seed the sharded engine
produces the same :class:`~repro.simulator.runner.SimulationResult`
(outputs in the same node order), the same
:class:`~repro.simulator.metrics.SimulationMetrics`, and the same
:class:`~repro.simulator.tracing.Tracer` transcript as the indexed
loop, for any shard count. The determinism contract of
:mod:`repro.simulator.runner_reference` is preserved shard-by-shard:

* per-node context RNG seeds are drawn from the run RNG in
  ``Network.nodes`` order **in the parent, before forking**, so the run
  RNG advances exactly as under the single-process engines;
* inbox insertion order is global sender-index order: each worker
  buffers its local deliveries and the barrier's imports and merges
  them by sender index before filling inboxes;
* fault-plan drop decisions are pure functions of (plan seed, directed
  edge, round) — see :meth:`~repro.simulator.faults.FaultPlan.drops` —
  so each worker evaluates its own senders' losses locally and agrees
  with every other iteration order;
* trace events are harvested from the workers at the end of the run and
  merged (round-major, shard-major = global node-index order) into the
  parent's trace, discovered via
  :func:`~repro.simulator.tracing.trace_sink`.

**Inner loops.** When numpy is importable and the run carries no fault
plan and no adversary, each worker runs the **columnar** inner loop of
:mod:`repro.simulator.runner_vectorized`: it builds a
:class:`~repro.simulator.runner_vectorized._ShardPlane` locally after
fork (its in-CSR row slice over all senders, a shard-local
:class:`~repro.simulator.runner_vectorized.PayloadInterner`, and a warm
send cache) and scatters barrier imports straight into
``_ArrayInbox``/``_ColumnInbox`` views. Hostile runs (faults,
corruption) and numpy-less interpreters fall back to the scalar worker
below — results, metrics, and traces byte-match either way.

**Barrier protocol** (one worker ↔ parent pipe per shard, two
synchronization points per round)::

    worker: ("ready", unhalted)                    once, after on_start
    loop:
      worker: ("delivered", msgs, bits, max, exports)   phase A
      parent: ("inbound", imports)                      routed exports
      worker: ("executed", halts, crashes, senders)     phase B
      parent: ("continue",) | ("finish", halted)
    worker: ("final", outputs, trace_events)       on finish

Exports come in three shapes. The scalar worker groups per sender —
``("b", s, payload, bits, receivers)`` for a broadcast, ``("a", s,
[(r, payload, bits), …])`` for addressed traffic — and the parent
splits each entry by destination shard. The columnar worker exports
**one batch per round**::

    ("c", senders, pids, bits, delta, raws, reset)
         │        │     │     │      │     └ source interner was cleared:
         │        │     │     │      │       receivers drop their tables
         │        │     │     │      └ payloads of pid == -1 entries
         │        │     │     │        (unhashable; shipped raw, in order)
         │        │     │     └ interner-sync delta: payloads[mark:],
         │        │     │       i.e. only payloads first seen this round
         │        │     └ per-message bit sizes     (parallel columns,
         │        └ dense payload ids               ascending sender)
         └ global sender indices

which the parent relays verbatim — tagged with the source shard, as
``("c", src, …)`` — to every *other* shard: destination in-CSR slices
do the routing, so no receiver lists cross the barrier at all. Each
receiver keeps a per-source payload table synced by the deltas, so a
payload crossing the barrier is pickled once per (shard, payload),
not once per message; a payload id simply indexes that table on
arrival. Addressed traffic still uses the scalar ``("a", …)`` shape,
and any round that carries it is delivered by the dict-inbox merge
path on the shards it touches — bit-identical by the same argument as
the scalar worker.

(error paths do not abort gracefully: a failing worker ships its
exception as ("error", exc, shard, formatted_traceback) in place of
any reply, and the parent terminates the remaining workers and
re-raises the original exception chained to a
:class:`SimulationError` carrying the shard index and remote
traceback; a worker receiving an unknown command exits without a
"final" reply)

Workers are **forked**, not spawned: program factories are usually
closures over the network and cannot be pickled, and fork gives every
worker the canonicalized topology, transport tables, and fault plan by
memory inheritance at zero serialization cost. Platforms without the
``fork`` start method get a loud :class:`SimulationError`. Default
worker counts size off the **schedulable** CPUs (the scheduler
affinity mask, where the platform exposes it) rather than the host's
logical CPU count, so cgroup/affinity-limited containers do not
over-fork. A 1-core machine can still run the engine (the processes
interleave); it simply gains nothing — the differential suite skips it
there for speed.
"""

from __future__ import annotations

import contextlib
import multiprocessing
import os
import traceback
from typing import Any, Callable, Hashable, Iterator, List, Optional, Tuple

from repro.errors import SimulationError
from repro.simulator.message import _SCALAR_TYPES, Message, payload_bits
from repro.simulator.metrics import SimulationMetrics
from repro.simulator.node import Context, NodeProgram
from repro.simulator.runner import (
    SimulationResult,
    fastest_inprocess_engine,
    register_engine,
)
from repro.simulator.runner_vectorized import (
    MAX_INTERNED_PAYLOADS,
    _ArrayInbox,
    _ColumnInbox,
    _ShardPlane,
)
from repro.simulator.tracing import trace_sink
from repro.simulator.transport import BROADCAST
from repro.utils.rng import fresh_seed

__all__ = [
    "MAX_DEFAULT_SHARDS",
    "fork_available",
    "resolve_shards",
    "schedulable_cpus",
    "shard_bounds",
    "shards_context",
]

#: Cap on the *default* worker count (explicit ``shards=`` overrides it;
#: past ~8 workers the per-round barrier dominates for typical n).
MAX_DEFAULT_SHARDS = 8

# Module default consumed when a runner does not set ``shards``;
# ``shards_context`` overrides it so composite drivers (whose inner
# SyncRunners the caller never touches) can be sharded deterministically.
_DEFAULT_SHARDS: Optional[int] = None


def fork_available() -> bool:
    """Whether this platform can fork workers (the engine requires it)."""
    return "fork" in multiprocessing.get_all_start_methods()


def schedulable_cpus() -> int:
    """CPUs this process may actually be scheduled on.

    ``os.cpu_count()`` reports the *host's* logical CPUs, which
    over-forks in cgroup/affinity-limited containers (a pod pinned to
    one core on a 64-core host would default to 8 workers fighting over
    it). The scheduler's affinity mask is the truth where the platform
    exposes it; elsewhere (macOS, Windows) fall back to the host count.
    """
    getaffinity = getattr(os, "sched_getaffinity", None)
    if getaffinity is not None:
        try:
            return len(getaffinity(0)) or 1
        except OSError:  # pragma: no cover - exotic scheduler state
            pass
    return os.cpu_count() or 1


@contextlib.contextmanager
def shards_context(count: int) -> Iterator[None]:
    """Temporarily fix the default shard count of the sharded engine.

    The sharded analogue of
    :func:`~repro.simulator.runner.engine_context`: composite drivers
    build their own inner runners, so ``engine_context("sharded")``
    routes them here and ``shards_context(k)`` pins how many workers
    each inner run forks.
    """
    global _DEFAULT_SHARDS
    if count < 1:
        raise SimulationError(f"shards must be >= 1, got {count}")
    previous = _DEFAULT_SHARDS
    _DEFAULT_SHARDS = count
    try:
        yield
    finally:
        _DEFAULT_SHARDS = previous


def resolve_shards(requested: Optional[int], n: int) -> int:
    """The worker count for an ``n``-node run.

    Precedence: explicit ``SyncRunner(shards=…)`` > ``shards_context`` >
    one per *schedulable* core (see :func:`schedulable_cpus`, capped at
    :data:`MAX_DEFAULT_SHARDS`); always clamped to ``n`` — an empty
    shard would be pure overhead.
    """
    if requested is None:
        requested = _DEFAULT_SHARDS
    if requested is None:
        requested = max(1, min(schedulable_cpus(), MAX_DEFAULT_SHARDS))
    if requested < 1:
        raise SimulationError(f"shards must be >= 1, got {requested}")
    return max(1, min(requested, n))


def shard_bounds(n: int, shards: int) -> List[Tuple[int, int]]:
    """Contiguous, balanced ``[lo, hi)`` index ranges covering ``0..n``.

    The first ``n % shards`` shards take one extra node, so shard sizes
    differ by at most one and concatenating the ranges in shard order
    walks the nodes in canonical index order — the property the trace
    and inbox merges rely on.
    """
    if shards < 1:
        raise SimulationError(f"shards must be >= 1, got {shards}")
    if shards > n:
        raise SimulationError(
            f"cannot split {n} node(s) into {shards} non-empty shards"
        )
    base, extra = divmod(n, shards)
    bounds: List[Tuple[int, int]] = []
    lo = 0
    for shard in range(shards):
        hi = lo + base + (1 if shard < extra else 0)
        bounds.append((lo, hi))
        lo = hi
    return bounds


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------


def _ship_error(conn, error: BaseException, shard: int) -> None:
    """Ship a worker failure to the parent with its forensics attached:
    the exception itself (type-preserving), the shard index, and the
    worker-side formatted traceback — the parent re-raises the original
    chained to a :class:`SimulationError` carrying the other two."""
    tb = traceback.format_exc()
    try:
        conn.send(("error", error, shard, tb))
    except Exception:  # unpicklable error: ship a plain summary
        conn.send(
            ("error",
             SimulationError(f"{type(error).__name__}: {error}"),
             shard, tb)
        )


def _worker_main(
    runner,
    program_factory: Callable[[Hashable], NodeProgram],
    seeds: List[int],
    lo: int,
    hi: int,
    shard: int,
    conn,
) -> None:
    """One shard's half of the barrier protocol — the **scalar** worker
    (runs in a fork).

    Everything heavy — the network, transport tables, fault plan, and
    the factory's closed-over state — is inherited from the parent at
    fork time. The worker owns node indices ``[lo, hi)``; ``seeds``
    holds their pre-drawn context RNG seeds. This loop handles every
    run the columnar worker cannot (fault plans, adversaries, no
    numpy), delivery-for-delivery identical to the indexed loop.
    """
    try:
        net = runner.network
        transport = runner.transport
        plan = runner.fault_plan
        adversary = runner.adversary_plan
        nodes = net.nodes
        n = len(nodes)
        validate = transport.validate
        fanout = transport.fanout
        sink = trace_sink(program_factory)
        trace_base = len(sink.events) if sink is not None else 0

        contexts: List[Context] = []
        programs: List[NodeProgram] = []
        for i in range(lo, hi):
            node = nodes[i]
            contexts.append(
                Context(
                    node=node,
                    node_id=net.node_id(node),
                    neighbors=net.neighbors(node),
                    n=n,
                    rng_seed=seeds[i - lo],
                    index=i,
                )
            )
            programs.append(program_factory(node))

        outbound: List[Any] = [None] * (hi - lo)
        senders: List[int] = []  # global indices, ascending
        for i in range(lo, hi):
            raw = programs[i - lo].on_start(contexts[i - lo])
            out = validate(nodes[i], i, raw)
            if out:
                outbound[i - lo] = out
                senders.append(i)
        live = [i for i in range(lo, hi) if not contexts[i - lo].halted]
        conn.send(("ready", len(live)))

        inboxes = [dict() for _ in range(lo, hi)]
        round_no = 0
        while True:
            round_no += 1
            # -- phase A: deliver last round's outbound ----------------
            round_messages = 0
            round_bits = 0
            round_max_bits = 0
            # (sender_index, receiver_index, Message); buffered so local
            # and imported deliveries can be merged in sender order.
            deliveries: List[Tuple[int, int, Message]] = []
            # Exports are grouped per sender to keep the pickle volume —
            # the serial cost of the barrier — proportional to senders,
            # not deliveries: ("b", s, payload, bits, receivers) for a
            # broadcast, ("a", s, [(r, payload, bits), …]) for
            # addressed traffic.
            exports: List[Tuple] = []
            for s in senders:
                out = outbound[s - lo]
                outbound[s - lo] = None
                sender = nodes[s]
                if plan is not None and plan.is_crashed(sender, round_no):
                    continue
                if out[0] is BROADCAST:
                    message = out[1]
                    bits = message.bits
                    delivered = 0
                    remote: List[int] = []
                    for r in fanout(s):
                        if plan is not None and plan.drops(
                            sender, nodes[r], round_no
                        ):
                            continue
                        if lo <= r < hi:
                            deliveries.append((s, r, message))
                        else:
                            remote.append(r)
                        delivered += 1
                    if remote:
                        exports.append(
                            ("b", s, message.payload, bits, remote)
                        )
                    if delivered:
                        round_messages += delivered
                        round_bits += bits * delivered
                        if bits > round_max_bits:
                            round_max_bits = bits
                else:
                    addressed: List[Tuple[int, Any, int]] = []
                    for r, message in out:
                        if plan is not None and plan.drops(
                            sender, nodes[r], round_no
                        ):
                            continue
                        if lo <= r < hi:
                            deliveries.append((s, r, message))
                        else:
                            addressed.append(
                                (r, message.payload, message.bits)
                            )
                        round_messages += 1
                        round_bits += message.bits
                        if message.bits > round_max_bits:
                            round_max_bits = message.bits
                    if addressed:
                        exports.append(("a", s, addressed))
            senders = []
            conn.send(
                ("delivered", round_messages, round_bits, round_max_bits,
                 exports)
            )

            tag, imports = conn.recv()
            assert tag == "inbound", f"protocol violation: {tag!r}"
            if imports:
                for entry in imports:
                    if entry[0] == "b":
                        _, s, payload, bits, receivers = entry
                        message = Message(nodes[s], payload, bits)
                        for r in receivers:
                            deliveries.append((s, r, message))
                    else:
                        _, s, addressed = entry
                        sender = nodes[s]
                        for r, payload, bits in addressed:
                            deliveries.append(
                                (s, r, Message(sender, payload, bits))
                            )
                # Global sender-index order is the inbox insertion order
                # of the single-process engines (stable sort: local
                # deliveries are already sender-ascending).
                deliveries.sort(key=lambda entry: entry[0])
            touched: List[int] = []
            for s, r, message in deliveries:
                box = inboxes[r - lo]
                if not box:
                    touched.append(r - lo)
                # Corruption is applied by the *receiver-owning* worker:
                # each directed edge has exactly one owner, so replay
                # histories partition cleanly across shards, and the
                # decision itself is a pure function of (seed, edge,
                # round) — identical in every worker layout.
                box[nodes[s]] = (
                    message
                    if adversary is None
                    else adversary.apply(nodes[s], nodes[r], round_no, message)
                )

            # -- phase B: execute this shard's live nodes --------------
            halts = 0
            crashes = 0
            next_live: List[int] = []
            for i in live:
                if plan is not None and plan.is_crashed(nodes[i], round_no):
                    # Crash-stop: silently out of the live set for good,
                    # but still unhalted for the parent's accounting.
                    crashes += 1
                    continue
                ctx = contexts[i - lo]
                ctx.round = round_no
                raw = programs[i - lo].on_round(ctx, inboxes[i - lo])
                if ctx._halted:
                    halts += 1
                else:
                    if raw is not None:
                        out = validate(nodes[i], i, raw)
                        if out:
                            outbound[i - lo] = out
                            senders.append(i)
                    next_live.append(i)
            for t in touched:
                inboxes[t].clear()
            live = next_live
            conn.send(("executed", halts, crashes, len(senders)))

            command = conn.recv()
            if command[0] == "continue":
                continue
            if command[0] == "finish":
                outputs = [contexts[i - lo].output for i in range(lo, hi)]
                events = (
                    list(sink.events[trace_base:]) if sink is not None else []
                )
                conn.send(("final", outputs, events))
            break
    except Exception as error:  # noqa: BLE001 — shipped to the parent
        _ship_error(conn, error, shard)
    finally:
        conn.close()


def _worker_main_columnar(
    runner,
    program_factory: Callable[[Hashable], NodeProgram],
    seeds: List[int],
    lo: int,
    hi: int,
    shard: int,
    bounds: List[Tuple[int, int]],
    conn,
) -> None:
    """One shard's half of the barrier protocol — the **columnar**
    worker (runs in a fork; requires numpy, no fault plan, no
    adversary — the parent guarantees all three).

    Runs the vectorized engine's struct-of-arrays inner loop over its
    own receiver range: a :class:`_ShardPlane` built locally after fork
    holds the in-CSR row slice (receivers ``[lo, hi)``, senders global),
    a shard-local payload interner, and the warm send cache. Broadcast
    rounds cross the barrier as ``("c", …)`` columns (see the module
    docstring): the parent relays each shard's full sender column to
    every other shard, and each destination's in-CSR mask/gather does
    the routing — reproducing ascending-sender inbox order with no
    per-receiver lists and no per-message pickles. Rounds that carry
    addressed traffic anywhere visible to this shard are delivered by
    the same dict-inbox merge the scalar worker uses, so every run stays
    bit-identical to the indexed loop.
    """
    try:
        import numpy as np

        net = runner.network
        transport = runner.transport
        nodes = net.nodes
        n = len(nodes)
        nshards = len(bounds)
        validate = transport.validate
        fanout = transport.fanout
        budget = transport.bits_per_message
        sink = trace_sink(program_factory)
        trace_base = len(sink.events) if sink is not None else 0

        plane = _ShardPlane(transport, nodes, lo, hi)
        labels = plane.labels
        labels_np = plane.labels_np
        deg = plane.deg
        complete = plane.complete
        interner = plane.interner
        send_cache = plane.send_cache
        send_get = send_cache.get
        msg_col = plane.msg_col
        scalar_ok = _SCALAR_TYPES.issuperset

        contexts: List[Context] = []
        programs: List[NodeProgram] = []
        for i in range(lo, hi):
            node = nodes[i]
            contexts.append(
                Context(
                    node=node,
                    node_id=net.node_id(node),
                    neighbors=net.neighbors(node),
                    n=n,
                    rng_seed=seeds[i - lo],
                    index=i,
                )
            )
            programs.append(program_factory(node))
        on_rounds = [program.on_round for program in programs]

        def collect_slow(
            i: int,
            raw: Any,
            bsend: List[int],
            bmsgs: List[Message],
            cache_key: Any = None,
        ) -> None:
            # Mirrors the vectorized engine's collect_slow exactly:
            # size check first, then the isolated-sender check, every
            # rejection through the transport's own reject method.
            try:
                if len(interner.payloads) >= MAX_INTERNED_PAYLOADS:
                    interner.clear()
                    send_cache.clear()
                pid, bits = interner.intern(raw)
            except TypeError:
                # Unhashable payload: never interned — shipped raw
                # across the barrier, preserving live-object semantics
                # within this shard.
                bits = payload_bits(raw)
                message = Message(nodes[i], raw, bits)
                if bits > budget:
                    transport._reject_size(nodes[i], message)
                if not fanout(i):
                    return
                bsend.append(i)
                bmsgs.append(message)
                return
            if bits > budget:
                transport._reject_size(nodes[i], Message(nodes[i], raw, bits))
            if not fanout(i):
                return  # isolated sender: nobody to reach
            message = Message(nodes[i], interner.payloads[pid], bits)
            if cache_key is not None:
                send_cache[cache_key] = message
            bsend.append(i)
            bmsgs.append(message)

        def dispatch(
            i: int,
            raw: Any,
            bsend: List[int],
            bmsgs: List[Message],
            addressed: List[Tuple[int, list]],
        ) -> None:
            # The vectorized engine's warm-send dispatch, verbatim.
            cls = raw.__class__
            if isinstance(raw, dict):
                out = validate(nodes[i], i, raw)
                if out:
                    addressed.append((i, out))
            elif cls is tuple:
                types = tuple(map(type, raw))
                if scalar_ok(types):
                    key = (raw, types, i)
                    ent = send_get(key)
                    if ent is None:
                        collect_slow(i, raw, bsend, bmsgs, cache_key=key)
                    else:
                        bsend.append(i)
                        bmsgs.append(ent)
                else:
                    collect_slow(i, raw, bsend, bmsgs)
            else:
                key = (cls, raw, i)
                try:
                    ent = send_get(key)
                except TypeError:
                    collect_slow(i, raw, bsend, bmsgs)
                else:
                    if ent is None:
                        collect_slow(i, raw, bsend, bmsgs, cache_key=key)
                    else:
                        bsend.append(i)
                        bmsgs.append(ent)

        bsend: List[int] = []
        bmsgs: List[Message] = []
        addressed: List[Tuple[int, list]] = []
        for i in range(lo, hi):
            raw = programs[i - lo].on_start(contexts[i - lo])
            if raw is not None:
                dispatch(i, raw, bsend, bmsgs, addressed)
        live = [i for i in range(lo, hi) if not contexts[i - lo].halted]
        conn.send(("ready", len(live)))

        m = hi - lo
        if complete:
            buf_labels: List[Hashable] = []
            buf_msgs: List[Message] = []
            views: List[Any] = [
                _ColumnInbox(buf_labels, buf_msgs) for _ in range(m)
            ]
        else:
            col_state: list = [None, None]
            views = [_ArrayInbox(col_state, labels_np) for _ in range(m)]
        empty_boxes: List[dict] = [{} for _ in range(m)]
        inboxes: List[dict] = [dict() for _ in range(m)]

        # Interner-sync state. Export side: the high-water mark of
        # payloads already shipped, and the generation they belong to.
        # Import side: one payload table + (sender, pid) → Message cache
        # per source shard, both discarded when that source resets.
        export_mark = 0
        export_gen = interner.generation
        tables: List[List[Any]] = [[] for _ in range(nshards)]
        rmsg_cache: List[dict] = [{} for _ in range(nshards)]

        def _import_message(src, s, pid, bits, raws, raw_pos):
            # pid == -1: unhashable payload, shipped raw (consumed in
            # order). Otherwise index the synced table, caching the
            # Message per (source shard, sender, pid) so a warm payload
            # allocates nothing on arrival.
            if pid < 0:
                return Message(nodes[s], raws[raw_pos], bits)
            cache = rmsg_cache[src]
            message = cache.get((s, pid))
            if message is None:
                message = Message(nodes[s], tables[src][pid], bits)
                cache[(s, pid)] = message
            return message

        round_no = 0
        while True:
            round_no += 1
            # -- phase A: export last round's outbound -----------------
            # Accounting is sender-side (a broadcast counts its full
            # fan-out), exactly like the vectorized loop.
            round_messages = 0
            round_bits = 0
            round_max_bits = 0
            exports: List[Tuple] = []
            local_addr: List[Tuple[int, int, Message]] = []
            for s, out in addressed:
                remote: List[Tuple[int, Any, int]] = []
                for r, message in out:
                    if lo <= r < hi:
                        local_addr.append((s, r, message))
                    else:
                        remote.append((r, message.payload, message.bits))
                    round_messages += 1
                    round_bits += message.bits
                    if message.bits > round_max_bits:
                        round_max_bits = message.bits
                if remote:
                    exports.append(("a", s, remote))
            if bsend:
                # Columnar export: parallel (sender, pid, bits) columns
                # plus the interner-sync delta. A cap-clear mid-batch
                # invalidates in-flight pids; retry once against the
                # fresh table, then (vanishingly rare: a second clear
                # within one batch) ship every payload raw.
                for _attempt in range(2):
                    start_gen = interner.generation
                    pids: List[int] = []
                    bits_col: List[int] = []
                    raws: List[Any] = []
                    ok = True
                    for message in bmsgs:
                        try:
                            pid, _ = interner.intern(message.payload)
                        except TypeError:
                            pid = -1
                            raws.append(message.payload)
                        else:
                            if interner.generation != start_gen:
                                ok = False
                                break
                        pids.append(pid)
                        bits_col.append(message.bits)
                    if ok:
                        break
                else:
                    pids = [-1] * len(bmsgs)
                    bits_col = [msg.bits for msg in bmsgs]
                    raws = [msg.payload for msg in bmsgs]
                reset = interner.generation != export_gen
                if reset:
                    export_mark = 0
                    export_gen = interner.generation
                delta = interner.payloads[export_mark:]
                export_mark = len(interner.payloads)
                exports.append(("c", bsend, pids, bits_col, delta, raws,
                                reset))
                for j, s in enumerate(bsend):
                    d = deg[s]
                    b = bits_col[j]
                    round_messages += d
                    round_bits += b * d
                    if b > round_max_bits:
                        round_max_bits = b
            conn.send(
                ("delivered", round_messages, round_bits, round_max_bits,
                 exports)
            )

            tag, imports = conn.recv()
            assert tag == "inbound", f"protocol violation: {tag!r}"
            cbatches: List[Optional[Tuple]] = [None] * nshards
            a_imports: List[Tuple] = []
            for entry in imports:
                if entry[0] == "c":
                    _, src, c_send, c_pids, c_bits, delta, raws, reset = entry
                    if reset:
                        tables[src] = []
                        rmsg_cache[src] = {}
                    if delta:
                        tables[src].extend(delta)
                    cbatches[src] = (src, c_send, c_pids, c_bits, raws)
                else:
                    a_imports.append(entry)

            any_broadcast = bool(bsend) or any(
                batch is not None for batch in cbatches
            )
            general = bool(local_addr) or bool(a_imports) or not any_broadcast
            ptr: Optional[List[int]] = None
            skip_pos: Optional[List[int]] = None
            clique_hi = 0
            touched: List[int] = []
            if general:
                # Dict-inbox merge path: build every delivery this shard
                # receives, sort by global sender index (stable — the
                # indexed loop's insertion order), fill inboxes.
                deliveries = local_addr
                for s, message in zip(bsend, bmsgs):
                    for r in fanout(s):
                        if lo <= r < hi:
                            deliveries.append((s, r, message))
                for batch in cbatches:
                    if batch is None:
                        continue
                    src, c_send, c_pids, c_bits, raws = batch
                    raw_pos = 0
                    for j, s in enumerate(c_send):
                        pid = c_pids[j]
                        message = _import_message(
                            src, s, pid, c_bits[j], raws, raw_pos
                        )
                        if pid < 0:
                            raw_pos += 1
                        for r in fanout(s):
                            if lo <= r < hi:
                                deliveries.append((s, r, message))
                for entry in a_imports:
                    _, s, items = entry
                    sender = nodes[s]
                    for r, payload, bits in items:
                        deliveries.append(
                            (s, r, Message(sender, payload, bits))
                        )
                deliveries.sort(key=lambda entry: entry[0])
                for s, r, message in deliveries:
                    box = inboxes[r - lo]
                    if not box:
                        touched.append(r - lo)
                    box[nodes[s]] = message
            elif complete:
                # Clique shape: shards are contiguous index ranges, so
                # concatenating batches in shard order yields one shared
                # sender column in ascending global sender order; each
                # local receiver only needs its self-skip position.
                del buf_labels[:]
                del buf_msgs[:]
                local_off = 0
                for src in range(nshards):
                    if src == shard:
                        local_off = len(buf_msgs)
                        for s, message in zip(bsend, bmsgs):
                            buf_labels.append(labels[s])
                            buf_msgs.append(message)
                    else:
                        batch = cbatches[src]
                        if batch is None:
                            continue
                        _, c_send, c_pids, c_bits, raws = batch
                        raw_pos = 0
                        for j, s in enumerate(c_send):
                            pid = c_pids[j]
                            message = _import_message(
                                src, s, pid, c_bits[j], raws, raw_pos
                            )
                            if pid < 0:
                                raw_pos += 1
                            buf_labels.append(labels[s])
                            buf_msgs.append(message)
                skip_pos = [-1] * m
                for k, s in enumerate(bsend):
                    skip_pos[s - lo] = local_off + k
                clique_hi = len(buf_msgs)
            else:
                # Generic columnar shape: scatter local sends and
                # imports into the global-sender message column, then
                # one mask/gather over the shard's in-CSR slice routes
                # everything — ascending sender order per receiver by
                # construction.
                plane.ensure_in_csr(transport)
                sent = np.zeros(n, dtype=bool)
                if bsend:
                    sent[bsend] = True
                    msg_col[bsend] = bmsgs
                for batch in cbatches:
                    if batch is None:
                        continue
                    src, c_send, c_pids, c_bits, raws = batch
                    raw_pos = 0
                    for j, s in enumerate(c_send):
                        pid = c_pids[j]
                        msg_col[s] = _import_message(
                            src, s, pid, c_bits[j], raws, raw_pos
                        )
                        if pid < 0:
                            raw_pos += 1
                    sent[c_send] = True
                mask = sent[plane.in_src]
                kept = plane.in_src[mask]
                counts = np.bincount(plane.in_dst[mask], minlength=m)
                wbounds = np.zeros(m + 1, dtype=np.int64)
                np.cumsum(counts, out=wbounds[1:])
                ptr = wbounds.tolist()
                col_state[0] = msg_col[kept]
                col_state[1] = kept

            # -- phase B: execute this shard's live nodes --------------
            halts = 0
            out_bsend: List[int] = []
            out_bmsgs: List[Message] = []
            out_addressed: List[Tuple[int, list]] = []
            next_live: List[int] = []
            for i in live:
                if general:
                    box: Any = inboxes[i - lo]
                elif ptr is not None:
                    wlo = ptr[i - lo]
                    whi = ptr[i - lo + 1]
                    if wlo != whi:
                        box = views[i - lo]
                        box._lo = wlo
                        box._hi = whi
                    else:
                        box = empty_boxes[i - lo]
                else:
                    skip = skip_pos[i - lo]
                    if clique_hi - (1 if skip >= 0 else 0) > 0:
                        box = views[i - lo]
                        box._hi = clique_hi
                        box._skip = skip
                    else:
                        box = empty_boxes[i - lo]
                ctx = contexts[i - lo]
                ctx.round = round_no
                raw = on_rounds[i - lo](ctx, box)
                if ctx._halted:
                    halts += 1
                    continue
                if raw is not None:
                    dispatch(i, raw, out_bsend, out_bmsgs, out_addressed)
                next_live.append(i)
            for t in touched:
                inboxes[t].clear()
            live = next_live
            bsend = out_bsend
            bmsgs = out_bmsgs
            addressed = out_addressed
            conn.send(
                ("executed", halts, 0, len(bsend) + len(addressed))
            )

            command = conn.recv()
            if command[0] == "continue":
                continue
            if command[0] == "finish":
                outputs = [contexts[i - lo].output for i in range(lo, hi)]
                events = (
                    list(sink.events[trace_base:]) if sink is not None else []
                )
                conn.send(("final", outputs, events))
            break
    except Exception as error:  # noqa: BLE001 — shipped to the parent
        _ship_error(conn, error, shard)
    finally:
        conn.close()


# ----------------------------------------------------------------------
# Parent side
# ----------------------------------------------------------------------


def _recv(conn, shard: Optional[int] = None):
    """One protocol message from a worker; worker errors re-raise here.

    The worker ships ``("error", exc, shard, formatted_traceback)``;
    re-raising ``exc`` bare would discard both forensics (the parent's
    traceback shows only this frame). Instead the original exception —
    type preserved, so callers can still catch
    e.g. :class:`~repro.errors.ModelViolationError` — is chained via
    ``raise … from`` to a :class:`SimulationError` carrying the shard
    index and the worker-side traceback text.
    """
    try:
        message = conn.recv()
    except EOFError:
        where = f" for shard {shard}" if shard is not None else ""
        raise SimulationError(
            f"a sharded-engine worker{where} died without reporting an "
            "error"
        )
    if message[0] == "error":
        error = message[1]
        err_shard = message[2] if len(message) > 2 else shard
        remote_tb = message[3] if len(message) > 3 else None
        cause = SimulationError(
            f"sharded-engine worker for shard {err_shard} failed; "
            f"remote traceback:\n{remote_tb or '<unavailable>'}"
        )
        raise error from cause
    return message


def _run_sharded(
    runner,
    program_factory: Callable[[Hashable], NodeProgram],
    max_rounds: int,
    quiescence_halts: bool,
) -> SimulationResult:
    """The parent's half: fork shard workers, route the barrier, account
    metrics, and assemble the (bit-identical) result."""
    n_nodes = len(runner.network.nodes)
    if resolve_shards(runner.shards, n_nodes) == 1:
        # One shard means zero cross-shard traffic: forking a single
        # worker would only add pipe round-trips per round (the 0.24x
        # single-core pathology in BENCH_simulator.json). Delegate to
        # the fastest in-process inner loop instead — every engine is
        # bit-identical, so this is invisible in the results. Works even
        # where fork is unavailable.
        from repro.simulator.runner import _require_engine

        return _require_engine(fastest_inprocess_engine())(
            runner, program_factory, max_rounds, quiescence_halts
        )
    if not fork_available():
        raise SimulationError(
            "the sharded engine requires the 'fork' process start method "
            "(program factories are closures and cannot be pickled); "
            "use engine='indexed' on this platform"
        )
    net = runner.network
    nodes = net.nodes
    n = len(nodes)
    # Draw every context seed in canonical node order *before* forking:
    # the run RNG consumes exactly one draw per node, as under the
    # single-process engines, so chained simulations sharing one RNG
    # stay on the same stream regardless of engine.
    seeds = [fresh_seed(runner._rng) for _ in range(n)]
    bounds = shard_bounds(n, resolve_shards(runner.shards, n))
    sink = trace_sink(program_factory)

    # Workers run the columnar inner loop whenever it exists and the
    # run is honest; hostile runs (fault plan, adversary) take the
    # scalar worker, whose delivery is the proven delivery-for-delivery
    # replica of the indexed loop. Both are bit-identical.
    columnar = (
        runner.fault_plan is None
        and runner.adversary_plan is None
        and fastest_inprocess_engine() == "vectorized"
    )

    ctx = multiprocessing.get_context("fork")
    workers = []
    connections = []
    try:
        for shard, (lo, hi) in enumerate(bounds):
            parent_conn, child_conn = ctx.Pipe()
            if columnar:
                target: Callable = _worker_main_columnar
                args: Tuple = (runner, program_factory, seeds[lo:hi], lo,
                               hi, shard, bounds, child_conn)
            else:
                target = _worker_main
                args = (runner, program_factory, seeds[lo:hi], lo, hi,
                        shard, child_conn)
            process = ctx.Process(target=target, args=args, daemon=True)
            process.start()
            child_conn.close()
            workers.append(process)
            connections.append(parent_conn)

        unhalted = 0
        for shard, conn in enumerate(connections):
            tag, shard_unhalted = _recv(conn, shard)
            assert tag == "ready", f"protocol violation: {tag!r}"
            unhalted += shard_unhalted
        live = unhalted

        metrics = SimulationMetrics(runs=1)
        halted_flag: Optional[bool] = None
        for round_no in range(1, max_rounds + 1):
            round_messages = 0
            round_bits = 0
            round_max_bits = 0
            imports: List[List[Tuple]] = [[] for _ in bounds]
            for shard, conn in enumerate(connections):
                tag, messages, bits, max_bits, exports = _recv(conn, shard)
                assert tag == "delivered", f"protocol violation: {tag!r}"
                round_messages += messages
                round_bits += bits
                if max_bits > round_max_bits:
                    round_max_bits = max_bits
                _route_exports(bounds, exports, imports, shard)
            if round_messages or unhalted:
                metrics.record_round(
                    round_messages, round_bits, round_max_bits
                )
            for shard, conn in enumerate(connections):
                conn.send(("inbound", imports[shard]))

            senders_total = 0
            for shard, conn in enumerate(connections):
                tag, halts, crashes, shard_senders = _recv(conn, shard)
                assert tag == "executed", f"protocol violation: {tag!r}"
                unhalted -= halts
                live -= halts + crashes
                senders_total += shard_senders

            if live == 0:
                halted_flag = True
            elif (
                quiescence_halts
                and round_messages == 0
                and senders_total == 0
            ):
                halted_flag = False
            if halted_flag is not None:
                break
            for conn in connections:
                conn.send(("continue",))
        if halted_flag is None:
            raise SimulationError(
                f"simulation did not terminate within {max_rounds} rounds"
            )

        outputs = {}
        trace_deltas = []
        for conn in connections:
            conn.send(("finish", halted_flag))
        for shard, ((lo, hi), conn) in enumerate(zip(bounds, connections)):
            tag, shard_outputs, shard_events = _recv(conn, shard)
            assert tag == "final", f"protocol violation: {tag!r}"
            for i in range(lo, hi):
                outputs[nodes[i]] = shard_outputs[i - lo]
            trace_deltas.append(shard_events)
        if sink is not None:
            _merge_trace_events(sink, trace_deltas)
        for process in workers:
            process.join()
        return SimulationResult(
            outputs=outputs, metrics=metrics, halted=halted_flag
        )
    finally:
        # Close the parent ends first: a worker blocked on the pipe sees
        # EOF and exits on its own, so terminate() is usually a no-op.
        for conn in connections:
            with contextlib.suppress(OSError):
                conn.close()
        for process in workers:
            if process.is_alive():
                process.terminate()
            process.join(timeout=5)
            if process.is_alive():
                # A worker ignoring SIGTERM (e.g. wedged in a C
                # extension) would otherwise leak past this run;
                # escalate to SIGKILL, which cannot be blocked.
                process.kill()
                process.join()
            # Release the Process's own resources (sentinel fd, popen
            # handle) deterministically instead of at GC time.
            with contextlib.suppress(ValueError):
                process.close()


def _route_exports(
    bounds: List[Tuple[int, int]],
    exports: List[Tuple],
    imports: List[List[Tuple]],
    src: int = 0,
) -> None:
    """Split one worker's grouped exports by destination shard.

    Scalar shapes (``"b"``/``"a"``) are split per destination, keeping
    the per-sender grouping. Columnar batches (``"c"``) are relayed
    **verbatim** — tagged with the source shard ``src`` — to every other
    shard: receiver routing happens in the destination worker's in-CSR
    slice, and relaying the one batch object means the pipe pickles each
    interner-delta payload once per destination shard, never per
    message.
    """
    for entry in exports:
        if entry[0] == "c":
            relayed = ("c", src) + entry[1:]
            for dst in range(len(imports)):
                if dst != src:
                    imports[dst].append(relayed)
        elif entry[0] == "b":
            _, s, payload, bits, receivers = entry
            by_shard: dict = {}
            for r in receivers:
                by_shard.setdefault(_owner(bounds, r), []).append(r)
            for shard, shard_receivers in by_shard.items():
                imports[shard].append(
                    ("b", s, payload, bits, shard_receivers)
                )
        else:
            _, s, addressed = entry
            by_shard = {}
            for item in addressed:
                by_shard.setdefault(_owner(bounds, item[0]), []).append(item)
            for shard, shard_items in by_shard.items():
                imports[shard].append(("a", s, shard_items))


def _owner(bounds: List[Tuple[int, int]], index: int) -> int:
    """The shard owning a node index (bounds are sorted and contiguous)."""
    lo, hi = 0, len(bounds)
    while lo < hi:
        mid = (lo + hi) // 2
        if index >= bounds[mid][1]:
            lo = mid + 1
        else:
            hi = mid
    return lo


def _merge_trace_events(sink, trace_deltas) -> None:
    """Merge per-shard event deltas into the parent's trace, restoring
    the single-process append order: round-major, then shard order
    (= global node-index order, since shards are contiguous and each
    worker appends its shard in index order)."""
    buckets = {}
    for shard_events in trace_deltas:
        for event in shard_events:
            buckets.setdefault(event.round_no, []).append(event)
    for round_no in sorted(buckets):
        sink.events.extend(buckets[round_no])


register_engine("sharded", _run_sharded)
