"""Multi-key subgraph flooding — parallel per-class floods in one run.

In Appendix B every real node simulates ``Θ(log n)`` virtual nodes, and
one *meta-round* (Θ(log n) real rounds) lets each of them speak once. A
real node active in several classes therefore floods several per-class
values "in parallel". This program realizes that: each node holds a value
per *key* (key = class id), each key has its own allowed-edge set, and a
round's broadcast carries the vector of changed ``(key, value)`` entries.

Message budget: a node carries at most ``3L = Θ(log n)`` keys, so one
vector message is ``Θ(log n)`` messages of ``Θ(log n)`` bits — exactly
one meta-round of traffic. Callers scale ``bits_per_message``
accordingly and account ``real rounds = measured rounds × 3L``.
"""

from __future__ import annotations

from typing import Any, Dict, Hashable, Optional, Set, Tuple

from repro.simulator.message import Message
from repro.simulator.network import Network
from repro.simulator.node import Context, NodeProgram
from repro.simulator.runner import Model, SimulationResult, SyncRunner
from repro.utils.rng import RngLike


class MultiKeyFloodProgram(NodeProgram):
    """Flood, for every key independently, the extremum along allowed edges."""

    def __init__(
        self,
        values: Dict[int, Any],
        allowed: Dict[int, Set[Hashable]],
        minimize: bool = True,
    ) -> None:
        self._values = dict(values)
        self._allowed = allowed
        self._minimize = minimize

    def _better(self, key: int, candidate) -> bool:
        if candidate is None:
            return False
        current = self._values.get(key)
        if current is None:
            return key in self._values
        return candidate < current if self._minimize else candidate > current

    def on_start(self, ctx: Context):
        ctx.output = dict(self._values)
        items = tuple(
            (key, value) for key, value in self._values.items() if value is not None
        )
        return items if items else None

    def on_round(self, ctx: Context, inbox: Dict[Hashable, Message]):
        changed = {}
        for sender, message in inbox.items():
            for key, value in message.payload:
                if sender not in self._allowed.get(key, ()):
                    continue
                if key in self._values and self._better(key, value):
                    self._values[key] = value
                    changed[key] = value
        ctx.output = dict(self._values)
        if not changed:
            return None
        return tuple(changed.items())


def multikey_flood(
    network: Network,
    values: Dict[Hashable, Dict[int, Any]],
    allowed: Dict[Hashable, Dict[int, Set[Hashable]]],
    minimize: bool = True,
    keys_bound: int = 1,
    model: Model = Model.V_CONGEST,
    tracer=None,
    max_rounds: int = 100000,
) -> SimulationResult:
    """Run the multi-key flood; returns per-node final value maps.

    ``values[v]`` maps each of ``v``'s keys to its initial value (``None``
    allowed — the node then only listens on that key); ``allowed[v][key]``
    is the set of neighbors whose messages count for that key.
    ``keys_bound`` is the maximum number of keys any node holds — it
    scales the message budget (one meta-round of virtual messages).
    Because the per-key ``allowed`` sets gate which senders count, the
    final value maps are identical under ``Model.CONGESTED_CLIQUE`` —
    only the delivery accounting changes. ``tracer`` optionally records
    the round schedule.
    """
    from repro.simulator.runner import default_message_budget

    budget = (keys_bound + 2) * default_message_budget(network.n)
    runner = SyncRunner(network, model=model, bits_per_message=budget)
    factory = lambda node: MultiKeyFloodProgram(  # noqa: E731
        values=values.get(node, {}),
        allowed=allowed.get(node, {}),
        minimize=minimize,
    )
    if tracer is not None:
        factory = tracer.wrap(factory)
    return runner.run(factory, max_rounds=max_rounds)
