"""Distributed BFS tree construction.

Section 2 of the paper: "by using a simple and standard BFS tree approach,
in O(D) rounds, nodes can learn the number of nodes in the network n, and
also a 2-approximation of the diameter". This module implements that BFS
wave; the count/diameter aggregation uses
:mod:`repro.simulator.algorithms.convergecast` on the produced tree.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, Optional, Tuple

from repro.simulator.message import Message
from repro.simulator.network import Network
from repro.simulator.node import Context, NodeProgram
from repro.simulator.runner import Model, SimulationResult, simulate


@dataclass(frozen=True)
class BfsTree:
    """Result of a BFS wave: parent pointers and hop distances."""

    root: Hashable
    parent: Dict[Hashable, Optional[Hashable]]
    distance: Dict[Hashable, int]
    rounds: int

    @property
    def depth(self) -> int:
        return max(self.distance.values())

    def children(self) -> Dict[Hashable, Tuple[Hashable, ...]]:
        """Invert parent pointers."""
        kids: Dict[Hashable, list] = {node: [] for node in self.parent}
        for node, par in self.parent.items():
            if par is not None:
                kids[par].append(node)
        return {node: tuple(sorted(c, key=str)) for node, c in kids.items()}


class BfsProgram(NodeProgram):
    """One BFS wave from ``root``; ties broken by smallest sender id."""

    def __init__(self, is_root: bool) -> None:
        self._is_root = is_root
        self._distance: Optional[int] = None
        self._parent: Optional[Hashable] = None
        self._parent_id: Optional[int] = None

    def on_start(self, ctx: Context):
        if self._is_root:
            self._distance = 0
            ctx.output = (None, 0)
            return ("bfs", 0)
        return None

    def on_round(self, ctx: Context, inbox: Dict[Hashable, Message]):
        if self._distance is not None:
            return None
        best: Optional[Tuple[int, int, Hashable]] = None
        for sender, message in inbox.items():
            tag, dist = message.payload
            if tag != "bfs":
                continue
            key = (dist, message.sender if isinstance(sender, int) else 0, sender)
            candidate = (dist, sender)
            if best is None or candidate[0] < best[0] or (
                candidate[0] == best[0] and str(candidate[1]) < str(best[2])
            ):
                best = (candidate[0], candidate[0], candidate[1])
        if best is None:
            return None
        self._distance = best[0] + 1
        self._parent = best[2]
        ctx.output = (self._parent, self._distance)
        return ("bfs", self._distance)


def build_bfs_tree(
    network: Network, root: Hashable, model: Model = Model.V_CONGEST
) -> Tuple[BfsTree, SimulationResult]:
    """Run a BFS wave from ``root``; every node learns (parent, distance)."""
    result = simulate(
        network,
        lambda node: BfsProgram(is_root=(node == root)),
        model=model,
    )
    parent: Dict[Hashable, Optional[Hashable]] = {}
    distance: Dict[Hashable, int] = {}
    for node in network.nodes:
        output = result.outputs[node]
        if output is None:
            raise RuntimeError(f"BFS did not reach node {node!r} (disconnected?)")
        parent[node], distance[node] = output
    tree = BfsTree(
        root=root, parent=parent, distance=distance, rounds=result.metrics.rounds
    )
    return tree, result
