"""Congested-Clique primitives on :class:`CliqueTransport`.

The Congested Clique model (Lotker–Pavlov–Patt-Shamir–Peleg; the setting
of e.g. Parter–Yogev's clique spanner algorithms) keeps the input graph
as the *problem instance* but lets every pair of nodes exchange one
``O(log n)``-bit message per round — the communication graph is ``K_n``.
Problems that need ``Ω(D)`` rounds under CONGEST collapse to ``O(1)``
rounds here; these primitives make that collapse measurable next to the
CONGEST implementations of the sibling modules:

* :func:`clique_extremum` — global min/max in **one** round (every node
  broadcasts its value to everyone; compare the ``Θ(D)`` rounds of
  :func:`~repro.simulator.algorithms.flooding.flood_extremum`);
* :func:`clique_exchange` — one all-to-all round, each node learns every
  other node's payload (the building block of Lenzen-style routing);
* :func:`clique_degree_census` — every node learns the full degree
  sequence of the *input* graph in one round, e.g. the first step of a
  clique spanner/connectivity sketch.

All of them run on the ordinary engine via
``Model.CONGESTED_CLIQUE``; round/message/bit accounting is identical to
the CONGEST runs, so cross-model comparisons are apples to apples.
"""

from __future__ import annotations

from typing import Any, Dict, Hashable, Tuple

from repro.simulator.message import Message
from repro.simulator.network import Network
from repro.simulator.node import Context, NodeProgram
from repro.simulator.runner import Model, SimulationResult, simulate


class CliqueExtremumProgram(NodeProgram):
    """Global extremum in one all-to-all round."""

    def __init__(self, value, minimize: bool = True) -> None:
        self._value = value
        self._minimize = minimize

    def on_start(self, ctx: Context):
        return self._value

    def on_round(self, ctx: Context, inbox: Dict[Hashable, Message]):
        best = self._value
        pick = min if self._minimize else max
        for message in inbox.values():
            if message.payload is None:
                continue
            best = (
                message.payload
                if best is None
                else pick(best, message.payload)
            )
        ctx.halt(best)
        return None


class CliqueExchangeProgram(NodeProgram):
    """Broadcast a payload to everyone; collect everyone's payloads."""

    def __init__(self, payload: Any) -> None:
        self._payload = payload

    def on_start(self, ctx: Context):
        return self._payload

    def on_round(self, ctx: Context, inbox: Dict[Hashable, Message]):
        ctx.halt({sender: message.payload for sender, message in inbox.items()})
        return None


def clique_extremum(
    network: Network,
    values: Dict[Hashable, Any],
    minimize: bool = True,
) -> SimulationResult:
    """Every node learns min (or max) over ``values`` in one clique round."""
    return simulate(
        network,
        lambda node: CliqueExtremumProgram(values[node], minimize=minimize),
        model=Model.CONGESTED_CLIQUE,
    )


def clique_exchange(
    network: Network,
    payloads: Dict[Hashable, Any],
) -> Tuple[Dict[Hashable, Dict[Hashable, Any]], SimulationResult]:
    """One all-to-all round; returns what each node heard from whom.

    Nodes with a ``None`` payload stay silent. The outer dict maps
    node → {sender: payload} over all ``n − 1`` potential senders.
    """
    result = simulate(
        network,
        lambda node: CliqueExchangeProgram(payloads.get(node)),
        model=Model.CONGESTED_CLIQUE,
    )
    heard = {node: result.outputs[node] or {} for node in network.nodes}
    return heard, result


def clique_degree_census(
    network: Network,
) -> Tuple[Dict[Hashable, Dict[Hashable, int]], SimulationResult]:
    """Every node learns every node's *input-graph* degree in one round.

    The payload is ``(node_id, degree)`` — the local knowledge a clique
    algorithm starts from when sketching the input topology.
    """
    payloads = {
        v: (network.node_id(v), network.degree(v)) for v in network.nodes
    }
    heard, result = clique_exchange(network, payloads)
    census: Dict[Hashable, Dict[Hashable, int]] = {}
    for v in network.nodes:
        degrees = {v: network.degree(v)}  # own degree is local knowledge
        for sender, payload in heard[v].items():
            degrees[sender] = payload[1]
        census[v] = degrees
    return census, result
