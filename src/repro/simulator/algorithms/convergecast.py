"""Tree convergecast (aggregate up) and broadcast (push down).

On a rooted tree of depth ``d`` this takes ``O(d)`` rounds. The paper's
Section 5.1 uses exactly this to let a leader decide whether another MWU
iteration is needed: the total MST cost is summed up a BFS tree, then the
continue/stop bit is pushed back down.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Hashable, Optional, Tuple

from repro.simulator.algorithms.bfs import BfsTree
from repro.simulator.message import Message
from repro.simulator.network import Network
from repro.simulator.node import Context, NodeProgram
from repro.simulator.runner import Model, SimulationResult, simulate


class ConvergeSumProgram(NodeProgram):
    """Sum integer values toward the root of a known tree.

    Leaves speak first; an internal node sends its subtree sum to its
    parent once all children have reported. E-CONGEST only (messages are
    addressed to the parent). Output at the root is the global sum.
    """

    def __init__(
        self,
        value: int,
        parent: Optional[Hashable],
        children: Tuple[Hashable, ...],
    ) -> None:
        self._sum = value
        self._parent = parent
        self._waiting = set(children)
        self._sent = False

    def _maybe_send(self, ctx: Context):
        if self._waiting or self._sent:
            return None
        self._sent = True
        if self._parent is None:
            ctx.halt(self._sum)
            return None
        ctx.output = self._sum
        return {self._parent: ("sum", self._sum)}

    def on_start(self, ctx: Context):
        return self._maybe_send(ctx)

    def on_round(self, ctx: Context, inbox: Dict[Hashable, Message]):
        for sender, message in inbox.items():
            tag, value = message.payload
            if tag == "sum" and sender in self._waiting:
                self._waiting.discard(sender)
                self._sum += value
        return self._maybe_send(ctx)


def converge_sum(
    network: Network,
    tree: BfsTree,
    values: Dict[Hashable, int],
) -> Tuple[int, SimulationResult]:
    """Sum ``values`` toward ``tree.root``; returns (total, result)."""
    children = tree.children()
    result = simulate(
        network,
        lambda node: ConvergeSumProgram(
            value=values[node],
            parent=tree.parent[node],
            children=children.get(node, ()),
        ),
        model=Model.E_CONGEST,
    )
    total = result.outputs[tree.root]
    return total, result
