"""Distributed building blocks implemented as simulator node programs.

These are the substrate routines the paper's constructions invoke:

* :mod:`flooding` — extremum flooding (leader election, global min/max).
* :mod:`bfs` — BFS tree construction (the ``O(D)`` preprocessing of
  Section 2 that gives every node ``n`` and a diameter estimate).
* :mod:`subgraph_flood` — extremum flooding restricted to a subgraph; the
  workhorse behind component identification (the Theorem B.2 twin) and
  in-fragment aggregation.
* :mod:`convergecast` — aggregate up / broadcast down a rooted tree.
* :mod:`boruvka` — distributed minimum spanning tree via Borůvka phases
  (our substitute for Kutten–Peleg [37]; see DESIGN.md Section 2).
* :mod:`clique` — Congested-Clique primitives on the all-to-all
  transport (one-round extremum/exchange, degree census).
"""

from repro.simulator.algorithms.exchange import exchange_once
from repro.simulator.algorithms.flooding import flood_extremum, elect_leader
from repro.simulator.algorithms.bfs import build_bfs_tree
from repro.simulator.algorithms.subgraph_flood import (
    identify_components,
    subgraph_extremum,
)
from repro.simulator.algorithms.convergecast import converge_sum
from repro.simulator.algorithms.boruvka import distributed_mst
from repro.simulator.algorithms.clique import (
    clique_degree_census,
    clique_exchange,
    clique_extremum,
)

__all__ = [
    "exchange_once",
    "flood_extremum",
    "elect_leader",
    "build_bfs_tree",
    "identify_components",
    "subgraph_extremum",
    "converge_sum",
    "distributed_mst",
    "clique_extremum",
    "clique_exchange",
    "clique_degree_census",
]
