"""Simultaneous MSTs of edge-disjoint subgraphs (Lemma 5.1, end to end).

Section 5.2 splits the graph into ``η`` edge-disjoint subgraphs and runs
the spanning-tree packing in each; every MWU iteration then needs the
MST of *every* subgraph. Lemma 5.1 observes the two phases compose
cheaply:

1. **Local fragment phase** — Borůvka merging inside each subgraph.
   Because the subgraphs are edge-disjoint, in the E-CONGEST model all
   subgraphs merge *in parallel*: a round of subgraph ``j`` only uses
   ``H_j``'s edges, so the measured cost of the phase is the *maximum*
   over subgraphs, not the sum.
2. **Shared completion phase** — the surviving inter-fragment candidate
   edges of *all* subgraphs are upcast over one global BFS tree with
   pipelining (:mod:`~repro.simulator.algorithms.pipelined_upcast`);
   the root completes every subgraph's MST and the merge decisions are
   downcast. Sharing the tree is the whole point: the upcast costs
   ``O(D + Σ_j items_j)`` instead of ``Σ_j O(D + items_j)``.

The result object reports each phase's measured rounds next to the
naive per-subgraph cost so the E21 bench can show the savings.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    Callable,
    Dict,
    FrozenSet,
    Hashable,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

import networkx as nx

from repro.errors import GraphValidationError
from repro.graphs.union_find import UnionFind
from repro.simulator.algorithms.bfs import build_bfs_tree
from repro.simulator.algorithms.pipelined_upcast import pipelined_upcast
from repro.simulator.algorithms.subgraph_flood import (
    identify_components,
    subgraph_extremum,
)
from repro.simulator.network import Network
from repro.simulator.runner import Model

Edge = FrozenSet[Hashable]
WeightFn = Callable[[Hashable, Hashable], float]


@dataclass
class SharedMstResult:
    """Per-subgraph spanning forests plus the phase-by-phase accounting."""

    forests: List[Set[Edge]]
    fragment_rounds: int       # max over subgraphs (parallel composition)
    completion_rounds: int     # shared upcasts + downcast floods
    naive_completion_rounds: int  # what η separate upcasts would cost
    upcast_items: int

    @property
    def total_rounds(self) -> int:
        return self.fragment_rounds + self.completion_rounds

    @property
    def sharing_speedup(self) -> float:
        """Naive ÷ shared completion cost (> 1 once η > 1)."""
        return self.naive_completion_rounds / max(1, self.completion_rounds)


def _edge_key(
    network: Network, u: Hashable, v: Hashable, weight_fn: WeightFn
) -> Tuple[float, int, int]:
    id_u, id_v = network.node_id(u), network.node_id(v)
    lo, hi = (id_u, id_v) if id_u < id_v else (id_v, id_u)
    return (float(weight_fn(u, v)), lo, hi)


def _bounded_boruvka(
    network: Network,
    subgraph_adjacency: Dict[Hashable, Set[Hashable]],
    weight_fn: WeightFn,
    phases: int,
    model: Model,
) -> Tuple[Dict[Hashable, int], Set[Edge], int]:
    """Run ``phases`` Borůvka phases inside one subgraph.

    Returns (fragment id per node, forest edges so far, measured rounds).
    The subgraph is given as an adjacency restriction of the network.
    """
    by_id = network.node_by_id  # the network owns the canonical id map
    forest: Dict[Hashable, Set[Hashable]] = {v: set() for v in network.nodes}
    tree_edges: Set[Edge] = set()
    rounds = 0
    for _ in range(phases):
        fragment_of, ident = identify_components(
            network, network.nodes, forest, model=model
        )
        rounds += ident.metrics.rounds
        # Local lightest outgoing subgraph edge per node.
        local_best: Dict[Hashable, Optional[Tuple[float, int, int]]] = {}
        for v in network.nodes:
            best: Optional[Tuple[float, int, int]] = None
            for u in subgraph_adjacency[v]:
                if fragment_of[u] == fragment_of[v]:
                    continue
                key = _edge_key(network, v, u, weight_fn)
                if best is None or key < best:
                    best = key
            local_best[v] = best
        rounds += 1  # the fragment-id exchange implicit in the scan above
        flood = subgraph_extremum(
            network,
            network.nodes,
            forest,
            values=local_best,
            minimize=True,
            model=model,
        )
        rounds += flood.metrics.rounds
        progressed = False
        for v in network.nodes:
            winner = flood.outputs[v]
            if winner is None:
                continue
            _, lo, hi = winner
            edge = frozenset((by_id(lo), by_id(hi)))
            if edge not in tree_edges:
                tree_edges.add(edge)
                a, b = tuple(edge)
                forest[a].add(b)
                forest[b].add(a)
                progressed = True
        if not progressed:
            break
    fragment_of, ident = identify_components(
        network, network.nodes, forest, model=model
    )
    rounds += ident.metrics.rounds
    return fragment_of, tree_edges, rounds


def simultaneous_msts(
    network: Network,
    subgraphs: Sequence[nx.Graph],
    weight_fns: Optional[Sequence[WeightFn]] = None,
    local_phases: int = 2,
    model: Model = Model.E_CONGEST,
) -> SharedMstResult:
    """MSTs (minimum spanning forests) of ``η`` edge-disjoint subgraphs.

    ``subgraphs`` must partition (a subset of) the network's edges; each
    ``weight_fns[j]`` orders subgraph ``j``'s edges (uniform weights when
    omitted — any spanning forest is then minimum). ``local_phases``
    bounds the parallel Borůvka phase count (the ``d``-control of
    Kutten–Peleg; more phases mean fewer, deeper fragments and a lighter
    upcast).

    Returns per-subgraph forests — spanning trees whenever the subgraph
    is connected — with measured rounds for both phases.
    """
    if not subgraphs:
        raise GraphValidationError("need at least one subgraph")
    nodes = set(network.nodes)
    seen_edges: Set[Edge] = set()
    adjacencies: List[Dict[Hashable, Set[Hashable]]] = []
    for subgraph in subgraphs:
        adjacency: Dict[Hashable, Set[Hashable]] = {v: set() for v in nodes}
        for u, v in subgraph.edges():
            if u not in nodes or v not in nodes:
                raise GraphValidationError("subgraph edge outside network")
            if not network.graph.has_edge(u, v):
                raise GraphValidationError(
                    "subgraph edge missing from the network"
                )
            edge = frozenset((u, v))
            if edge in seen_edges:
                raise GraphValidationError(
                    "subgraphs must be edge-disjoint (Karger parts)"
                )
            seen_edges.add(edge)
            adjacency[u].add(v)
            adjacency[v].add(u)
        adjacencies.append(adjacency)
    if weight_fns is None:
        weight_fns = [lambda u, v: 1.0] * len(subgraphs)
    if len(weight_fns) != len(subgraphs):
        raise GraphValidationError("one weight function per subgraph")

    # Phase 1: parallel local merging (cost = max over subgraphs).
    fragment_maps: List[Dict[Hashable, int]] = []
    forests: List[Set[Edge]] = []
    fragment_rounds = 0
    for adjacency, weight_fn in zip(adjacencies, weight_fns):
        fragment_of, edges, rounds = _bounded_boruvka(
            network, adjacency, weight_fn, local_phases, model
        )
        fragment_maps.append(fragment_of)
        forests.append(edges)
        fragment_rounds = max(fragment_rounds, rounds)

    # Phase 2: shared pipelined upcast of inter-fragment candidates.
    root = min(nodes, key=network.node_id)
    bfs_tree, bfs_run = build_bfs_tree(network, root)
    items_per_node: Dict[Hashable, List[Tuple[int, Tuple]]] = {
        v: [] for v in nodes
    }
    upcast_items = 0
    for j, (adjacency, fragment_of, weight_fn) in enumerate(
        zip(adjacencies, fragment_maps, weight_fns)
    ):
        # The node with the smaller id holds each candidate: the minimum
        # weight edge between every adjacent fragment pair.
        best_per_pair: Dict[Tuple[int, int], Tuple[float, int, int]] = {}
        for v in nodes:
            for u in adjacency[v]:
                if network.node_id(v) > network.node_id(u):
                    continue
                fu, fv = fragment_of[u], fragment_of[v]
                if fu == fv:
                    continue
                pair = (min(fu, fv), max(fu, fv))
                key = _edge_key(network, u, v, weight_fn)
                if pair not in best_per_pair or key < best_per_pair[pair]:
                    best_per_pair[pair] = key
        for pair, (weight, lo, hi) in best_per_pair.items():
            holder = network.node_by_id(lo)
            items_per_node[holder].append((j, (weight, lo, hi)))
            upcast_items += 1

    upcast = pipelined_upcast(network, items_per_node, bfs_tree=bfs_tree)

    # Root finishes each subgraph's MST centrally (Kruskal over the
    # candidate edges with fragments pre-merged), then the chosen edges
    # are downcast — same pipeline cost as the upcast.
    for j in range(len(subgraphs)):
        fragment_of = fragment_maps[j]
        uf = UnionFind(nodes)
        for edge in forests[j]:
            a, b = tuple(edge)
            uf.union(a, b)
        candidates = sorted(upcast.items_of_stream(j))
        for weight, lo, hi in candidates:
            u, v = network.node_by_id(lo), network.node_by_id(hi)
            if uf.find(u) != uf.find(v):
                uf.union(u, v)
                forests[j].add(frozenset((u, v)))

    downcast_rounds = upcast.rounds  # symmetric pipeline back down
    completion_rounds = bfs_run.metrics.rounds + upcast.rounds + downcast_rounds
    naive_completion = bfs_run.metrics.rounds + sum(
        2 * (bfs_tree.depth + len(upcast.items_of_stream(j)))
        for j in range(len(subgraphs))
    )
    return SharedMstResult(
        forests=forests,
        fragment_rounds=fragment_rounds,
        completion_rounds=completion_rounds,
        naive_completion_rounds=naive_completion,
        upcast_items=upcast_items,
    )
