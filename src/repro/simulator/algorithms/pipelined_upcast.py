"""Pipelined upcast over a BFS tree (the Lemma 5.1 primitive).

Kutten–Peleg's MST algorithm finishes by upcasting the ``O(n/d)``
inter-fragment candidate edges over a BFS tree in ``O(D + n/d)`` rounds;
the paper's Lemma 5.1 observes that the upcasts of ``η`` *simultaneous*
MST computations (one per Karger-sampled subgraph) can share one BFS tree
with pipelining, landing at the root in ``O(D + η·n/d)`` rounds total —
the round complexity that makes Theorem 1.3's ``Õ(D + √(nλ))`` possible.

This module implements the primitive faithfully on the round simulator:
each node holds a multiset of items (opaque ``O(log n)``-bit values, each
tagged with the id of the computation it belongs to); per round, each
node forwards exactly one pending item to its BFS parent (E-CONGEST: one
message per tree edge per round). The root accumulates everything. The
measured round count is checked against the ``depth + total_items``
pipeline bound by the tests and the E18 bench.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Hashable, List, Optional, Sequence, Tuple

from repro.errors import GraphValidationError
from repro.simulator.algorithms.bfs import BfsTree, build_bfs_tree
from repro.simulator.message import Message
from repro.simulator.network import Network
from repro.simulator.node import Context, NodeProgram
from repro.simulator.runner import Model, simulate


@dataclass
class UpcastResult:
    """Outcome of one pipelined upcast."""

    root: Hashable
    collected: List[Tuple[int, Any]]  # (stream id, item) in arrival order
    rounds: int
    tree_depth: int
    total_items: int

    def items_of_stream(self, stream: int) -> List[Any]:
        """Items of one computation (e.g. one subgraph's MST edges)."""
        return [item for s, item in self.collected if s == stream]

    @property
    def pipeline_bound(self) -> int:
        """The ``depth + total items`` upper bound the run must meet."""
        return self.tree_depth + self.total_items


class _UpcastProgram(NodeProgram):
    """Forward one pending (stream, item) pair to the parent per round.

    Leaves drain first; interior nodes interleave their own items with
    relayed ones in FIFO order, which is exactly the pipelining argument
    of Lemma 5.1: the root's incoming link is busy every round once the
    first item arrives, so completion takes ``≤ depth + total`` rounds.
    """

    def __init__(
        self,
        parent: Optional[Hashable],
        own_items: Sequence[Tuple[int, Any]],
    ) -> None:
        self._parent = parent
        self._is_root = parent is None
        # The root's own items are already "delivered".
        self._pending = [] if self._is_root else list(own_items)
        self._collected: List[Tuple[int, Any]] = (
            list(own_items) if self._is_root else []
        )

    def on_start(self, ctx: Context):
        return self._emit()

    def on_round(self, ctx: Context, inbox: Dict[Hashable, Message]):
        for message in inbox.values():
            stream, item = message.payload
            if self._is_root:
                self._collected.append((stream, item))
            else:
                self._pending.append((stream, item))
        if self._is_root:
            ctx.output = list(self._collected)
            return None
        return self._emit()

    def _emit(self):
        if self._parent is None or not self._pending:
            return None
        return {self._parent: self._pending.pop(0)}


def pipelined_upcast(
    network: Network,
    items_per_node: Dict[Hashable, Sequence[Tuple[int, Any]]],
    root: Optional[Hashable] = None,
    bfs_tree: Optional[BfsTree] = None,
    max_rounds: int = 1_000_000,
) -> UpcastResult:
    """Upcast every node's tagged items to ``root`` with pipelining.

    ``items_per_node[v]`` is a sequence of ``(stream_id, item)`` pairs held
    by ``v``; stream ids distinguish the η parallel computations sharing
    the tree. The BFS tree is built on the fly (costing its own rounds,
    reported separately by :func:`build_bfs_tree`) unless one is supplied.

    Returns the root's arrival log plus the measured round count, which
    the caller can compare against :attr:`UpcastResult.pipeline_bound`.
    """
    nodes = set(network.nodes)
    for node, items in items_per_node.items():
        if node not in nodes:
            raise GraphValidationError(f"unknown item holder {node!r}")
        for entry in items:
            if len(entry) != 2:
                raise GraphValidationError(
                    "items must be (stream_id, item) pairs"
                )
    if bfs_tree is None:
        if root is None:
            root = min(nodes, key=network.node_id)
        bfs_tree, _ = build_bfs_tree(network, root)
    else:
        if root is not None and root != bfs_tree.root:
            raise GraphValidationError("root does not match supplied tree")
        root = bfs_tree.root

    total = sum(len(items) for items in items_per_node.values())
    result = simulate(
        network,
        lambda v: _UpcastProgram(
            bfs_tree.parent[v], items_per_node.get(v, ())
        ),
        model=Model.E_CONGEST,
        max_rounds=max_rounds,
    )
    collected = result.outputs[root] or []
    if len(collected) != total:
        raise GraphValidationError(
            f"upcast lost items: {len(collected)} of {total} arrived"
        )
    return UpcastResult(
        root=root,
        collected=collected,
        rounds=result.metrics.rounds,
        tree_depth=bfs_tree.depth,
        total_items=total,
    )


def parallel_upcast_rounds(
    depth: int, stream_sizes: Sequence[int]
) -> int:
    """The analytic Lemma 5.1 bound: ``O(D + Σ_j |stream_j|)``.

    Returned as the concrete ``depth + total`` value for report columns
    next to measured rounds.
    """
    if depth < 0 or any(size < 0 for size in stream_sizes):
        raise GraphValidationError("sizes must be non-negative")
    return depth + sum(stream_sizes)
