"""Luby's distributed maximal independent set ([3], [39]).

The matching stage of Appendix B.3 "simulates Luby's well-known
distributed maximal independent set algorithm" on the line graph of the
bridging graph. This module provides the plain MIS primitive itself —
part of the substrate the paper builds on, and independently useful.

Protocol (per phase, O(log n) phases w.h.p.): every active node draws a
random Θ(log n)-bit value and broadcasts it; a node whose value beats all
active neighbors joins the MIS; MIS nodes and their neighbors deactivate.
"""

from __future__ import annotations

from typing import Dict, Hashable, Set, Tuple

from repro.simulator.message import Message
from repro.simulator.network import Network
from repro.simulator.node import Context, NodeProgram
from repro.simulator.runner import Model, SimulationResult, simulate
from repro.utils.rng import RngLike

_IN_MIS = "in-mis"
_OUT = "out"


class LubyMisProgram(NodeProgram):
    """One node's view of Luby's algorithm.

    Round structure (2 rounds per phase):
      round A: active nodes broadcast ("val", draw);
      round B: winners broadcast ("mis",); receivers of "mis" deactivate.
    """

    def __init__(self) -> None:
        self._state = "active"
        self._draw = None
        self._phase_round = "A"

    def _value_bits(self, ctx: Context) -> int:
        return 4 * max(8, ctx.n.bit_length())

    def on_start(self, ctx: Context):
        self._draw = ctx.rng.getrandbits(self._value_bits(ctx))
        return ("val", self._draw, ctx.node_id)

    def on_round(self, ctx: Context, inbox: Dict[Hashable, Message]):
        if self._state != "active":
            return None
        if self._phase_round == "A":
            # Evaluate the values heard; "mis" messages also arrive here
            # when neighbors won in the previous phase.
            best_neighbor = None
            for message in inbox.values():
                tag = message.payload[0]
                if tag == "mis":
                    self._state = _OUT
                    ctx.halt(_OUT)
                    return None
                if tag == "val":
                    _, draw, node_id = message.payload
                    key = (draw, node_id)
                    if best_neighbor is None or key > best_neighbor:
                        best_neighbor = key
            my_key = (self._draw, ctx.node_id)
            if best_neighbor is None or my_key > best_neighbor:
                self._state = _IN_MIS
                ctx.output = _IN_MIS
                self._phase_round = "B"
                return ("mis",)
            self._phase_round = "B"
            return None
        # Round B: losers re-draw unless a winner silenced them.
        for message in inbox.values():
            if message.payload[0] == "mis":
                self._state = _OUT
                ctx.halt(_OUT)
                return None
        if self._state == _IN_MIS:
            ctx.halt(_IN_MIS)
            return None
        self._draw = ctx.rng.getrandbits(self._value_bits(ctx))
        self._phase_round = "A"
        return ("val", self._draw, ctx.node_id)


def luby_mis(
    network: Network, model: Model = Model.V_CONGEST, rng: RngLike = None
) -> Tuple[Set[Hashable], SimulationResult]:
    """Compute a maximal independent set; returns (MIS, result).

    ``rng`` seeds the per-node randomness (the protocol is randomized;
    pass a seed for reproducible runs).
    """
    result = simulate(
        network, lambda node: LubyMisProgram(), model=model, rng=rng
    )
    mis = {v for v in network.nodes if result.outputs[v] == _IN_MIS}
    return mis, result


def is_maximal_independent_set(graph, candidate: Set[Hashable]) -> bool:
    """Exact MIS validity check (independence + maximality)."""
    for u in candidate:
        for v in graph.neighbors(u):
            if v in candidate:
                return False
    for v in graph.nodes():
        if v in candidate:
            continue
        if not any(u in candidate for u in graph.neighbors(v)):
            return False
    return True
