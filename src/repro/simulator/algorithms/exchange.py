"""One-round neighbor exchange.

Many steps of Appendix B are of the form "each node sends X to all its
neighbors" (class numbers, component ids, activity flags). This helper
runs exactly one such round and returns, for every node, the map of
neighbor → received payload.
"""

from __future__ import annotations

from typing import Any, Dict, Hashable, Tuple

from repro.simulator.message import Message
from repro.simulator.network import Network
from repro.simulator.node import Context, NodeProgram
from repro.simulator.runner import Model, SimulationResult, simulate


class ExchangeOnceProgram(NodeProgram):
    """Broadcast a payload once; collect the neighbors' payloads."""

    def __init__(self, payload: Any) -> None:
        self._payload = payload

    def on_start(self, ctx: Context):
        return self._payload

    def on_round(self, ctx: Context, inbox: Dict[Hashable, Message]):
        ctx.halt({sender: message.payload for sender, message in inbox.items()})
        return None


def exchange_once(
    network: Network,
    payloads: Dict[Hashable, Any],
    model: Model = Model.V_CONGEST,
    tracer=None,
) -> Tuple[Dict[Hashable, Dict[Hashable, Any]], SimulationResult]:
    """Every node broadcasts ``payloads[node]``; returns what each heard.

    The returned outer dict maps node → {neighbor: payload}. Nodes with a
    ``None`` payload stay silent (their neighbors simply don't hear them).
    Under ``Model.CONGESTED_CLIQUE`` the broadcast reaches *every* other
    node, so the heard maps then span all senders, not just graph
    neighbors. ``tracer`` optionally records the round schedule
    (:class:`~repro.simulator.tracing.Tracer`).
    """
    factory = lambda node: ExchangeOnceProgram(payloads.get(node))  # noqa: E731
    if tracer is not None:
        factory = tracer.wrap(factory)
    result = simulate(network, factory, model=model)
    heard = {node: result.outputs[node] or {} for node in network.nodes}
    return heard, result
