"""Extremum flooding restricted to a subgraph; component identification.

This is the simulator twin of the paper's Theorem B.2 (the
Thurimella/Kutten–Peleg component-identification subroutine): given a
subgraph ``G_sub`` of the network (each node knows which of its incident
edges are in ``G_sub``) and a per-node value, every node learns the
extremum value within its ``G_sub``-connected component.

Our implementation floods along ``G_sub`` edges only, converging in
``O(D')`` rounds where ``D'`` is the largest component diameter — the
first branch of Theorem B.2's ``O(min{D', D + √n log* n})``. The second
(Kutten–Peleg) branch is reported analytically via
:class:`repro.simulator.metrics.AnalyticRoundCost`.

Identifying components (each node learns the smallest id in its
component, used as the component id — Appendix B.1) is extremum flooding
on ``(id,)`` values.

V-CONGEST subtlety: a node *broadcasts* to all network neighbors (it has
no choice in V-CONGEST), and receivers discard messages from senders that
are not ``G_sub``-neighbors. This respects the model while logically
restricting information flow to the subgraph.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Hashable, Iterable, Optional, Set, Tuple

from repro.simulator.message import Message
from repro.simulator.network import Network
from repro.simulator.node import Context, NodeProgram
from repro.simulator.runner import Model, SimulationResult, simulate


class SubgraphExtremumProgram(NodeProgram):
    """Flood min/max of per-node values along subgraph edges only.

    ``allowed`` is the set of this node's neighbors that are also its
    ``G_sub``-neighbors; ``member`` is whether the node itself belongs to
    the subgraph (non-members stay silent and output ``None``).
    """

    def __init__(
        self,
        value,
        allowed: Set[Hashable],
        member: bool,
        minimize: bool = True,
    ) -> None:
        self._best = value
        self._allowed = allowed
        self._member = member
        self._minimize = minimize

    def _better(self, candidate) -> bool:
        if candidate is None:
            return False
        if self._best is None:
            return True
        return candidate < self._best if self._minimize else candidate > self._best

    def on_start(self, ctx: Context):
        if not self._member:
            ctx.halt(None)
            return None
        ctx.output = self._best
        return self._best

    def on_round(self, ctx: Context, inbox: Dict[Hashable, Message]):
        improved = False
        for sender, message in inbox.items():
            if sender not in self._allowed:
                continue
            if self._better(message.payload):
                self._best = message.payload
                improved = True
        ctx.output = self._best
        return self._best if improved else None


def subgraph_extremum(
    network: Network,
    members: Iterable[Hashable],
    subgraph_adjacency: Dict[Hashable, Set[Hashable]],
    values: Dict[Hashable, Any],
    minimize: bool = True,
    model: Model = Model.V_CONGEST,
) -> SimulationResult:
    """Each subgraph member learns the extremum of ``values`` over its
    subgraph component; non-members output ``None``."""
    member_set = set(members)

    def factory(node: Hashable) -> NodeProgram:
        return SubgraphExtremumProgram(
            value=values.get(node),
            allowed=set(subgraph_adjacency.get(node, ())),
            member=node in member_set,
            minimize=minimize,
        )

    return simulate(network, factory, model=model)


def identify_components(
    network: Network,
    members: Iterable[Hashable],
    subgraph_adjacency: Dict[Hashable, Set[Hashable]],
    model: Model = Model.V_CONGEST,
) -> Tuple[Dict[Hashable, Optional[int]], SimulationResult]:
    """Component identification on a subgraph (Theorem B.2 contract).

    Every member node learns its component id — the smallest random node
    id within its component; non-members map to ``None``. Returns the
    component-id map and the simulation result (for round accounting).
    """
    member_set = set(members)
    values = {
        node: (network.node_id(node) if node in member_set else None)
        for node in network.nodes
    }
    result = subgraph_extremum(
        network, member_set, subgraph_adjacency, values, minimize=True, model=model
    )
    component_ids: Dict[Hashable, Optional[int]] = {}
    for node in network.nodes:
        component_ids[node] = result.outputs[node] if node in member_set else None
    return component_ids, result
