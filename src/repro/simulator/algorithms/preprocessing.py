"""The O(D) preprocessing of Section 2.

"By using a simple and standard BFS tree approach, in O(D) rounds, nodes
can learn the number of nodes in the network n, and also a
2-approximation of the diameter D. Our algorithms assume this knowledge
to be ready for them."

:func:`network_preprocessing` runs exactly that composite: leader
election (max-id flood), a BFS wave from the leader, a convergecast
counting the nodes, and the depth-based diameter estimate
``depth ≤ D ≤ 2·depth``. Returns the learned values plus the combined
metrics, so callers can fold the preprocessing cost into their round
reports.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable

from repro.simulator.algorithms.bfs import BfsTree, build_bfs_tree
from repro.simulator.algorithms.convergecast import converge_sum
from repro.simulator.algorithms.flooding import elect_leader
from repro.simulator.metrics import SimulationMetrics
from repro.simulator.network import Network


@dataclass(frozen=True)
class PreprocessingResult:
    """What every node knows after the Section 2 preprocessing."""

    leader: Hashable
    n: int
    diameter_lower: int   # BFS depth from the leader
    diameter_upper: int   # 2 × depth — the promised 2-approximation
    bfs: BfsTree
    metrics: SimulationMetrics

    def diameter_estimate_valid(self, true_diameter: int) -> bool:
        """Whether the 2-approximation brackets the true diameter."""
        return self.diameter_lower <= true_diameter <= self.diameter_upper


def network_preprocessing(network: Network) -> PreprocessingResult:
    """Elect a leader, build its BFS tree, count nodes, estimate D."""
    metrics = SimulationMetrics()
    leader, election = elect_leader(network)
    metrics.merge(election.metrics)
    metrics.record_phase("leader-election", election.metrics.rounds)

    bfs, bfs_result = build_bfs_tree(network, leader)
    metrics.merge(bfs_result.metrics)
    metrics.record_phase("bfs", bfs_result.metrics.rounds)

    count, count_result = converge_sum(
        network, bfs, {v: 1 for v in network.nodes}
    )
    metrics.merge(count_result.metrics)
    metrics.record_phase("count-convergecast", count_result.metrics.rounds)

    depth = bfs.depth
    return PreprocessingResult(
        leader=leader,
        n=count,
        diameter_lower=depth,
        diameter_upper=2 * depth,
        bfs=bfs,
        metrics=metrics,
    )
