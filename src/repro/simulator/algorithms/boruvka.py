"""Distributed minimum spanning tree via Borůvka phases.

This is the repository's substitute for the Kutten–Peleg MST [37]
(DESIGN.md Section 2): a correct synchronous CONGEST MST with the same
input/output contract — each node ends up knowing which of its incident
edges belong to the MST. It runs ``O(log n)`` phases; each phase costs
``O(D_frag)`` rounds of subgraph flooding, so the total measured round
count follows the ``O(D' log n)`` shape rather than [37]'s optimal
``O(D + √n log* n)``; the analytic bound is attached to the report.

Edge weights are totally ordered by ``(weight, id_u, id_v)`` with node
ids, which makes the MST unique and lets simultaneous fragment merges
never create cycles (classic Borůvka argument).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, FrozenSet, Hashable, List, Optional, Set, Tuple

from repro.errors import SimulationError
from repro.simulator.algorithms.exchange import exchange_once
from repro.simulator.algorithms.subgraph_flood import (
    identify_components,
    subgraph_extremum,
)
from repro.simulator.metrics import AnalyticRoundCost, RoundReport, SimulationMetrics
from repro.simulator.network import Network
from repro.simulator.runner import Model


@dataclass
class MstResult:
    """Output of :func:`distributed_mst`."""

    edges: Set[FrozenSet[Hashable]]
    report: RoundReport

    @property
    def metrics(self) -> SimulationMetrics:
        return self.report.measured


def _edge_key(
    network: Network,
    u: Hashable,
    v: Hashable,
    weight_fn: Callable[[Hashable, Hashable], float],
) -> Tuple[float, int, int]:
    """Total order on edges: (weight, smaller id, larger id)."""
    id_u, id_v = network.node_id(u), network.node_id(v)
    lo, hi = (id_u, id_v) if id_u < id_v else (id_v, id_u)
    return (float(weight_fn(u, v)), lo, hi)


def distributed_mst(
    network: Network,
    weight_fn: Callable[[Hashable, Hashable], float],
    model: Model = Model.V_CONGEST,
    max_phases: Optional[int] = None,
) -> MstResult:
    """Compute the MST of the network under ``weight_fn``.

    Returns the MST edge set (as frozensets of endpoints) plus the round
    report. ``weight_fn(u, v)`` must be symmetric.
    """
    n = network.n
    metrics = SimulationMetrics()
    by_id = network.node_by_id  # the network owns the canonical id map
    tree_edges: Set[FrozenSet[Hashable]] = set()
    forest_adjacency: Dict[Hashable, Set[Hashable]] = {
        v: set() for v in network.nodes
    }
    phases_cap = max_phases if max_phases is not None else 2 * n.bit_length() + 4

    for phase in range(phases_cap):
        fragment_of, ident_result = identify_components(
            network, network.nodes, forest_adjacency, model=model
        )
        metrics.merge(ident_result.metrics)
        metrics.record_phase("mst-identify", ident_result.metrics.rounds)
        fragments = set(fragment_of.values())
        if len(fragments) == 1:
            break

        # One round: everyone announces their fragment id.
        heard, exch_result = exchange_once(
            network,
            {v: fragment_of[v] for v in network.nodes},
            model=model,
        )
        metrics.merge(exch_result.metrics)
        metrics.record_phase("mst-exchange", exch_result.metrics.rounds)

        # Locally pick the lightest outgoing edge of each node.
        local_best: Dict[Hashable, Optional[Tuple[float, int, int]]] = {}
        for v in network.nodes:
            best: Optional[Tuple[float, int, int]] = None
            for u, frag in heard[v].items():
                if frag == fragment_of[v]:
                    continue
                key = _edge_key(network, v, u, weight_fn)
                if best is None or key < best:
                    best = key
            local_best[v] = best

        # Fragment-wide minimum via flooding along forest edges.
        flood_result = subgraph_extremum(
            network,
            network.nodes,
            forest_adjacency,
            values=local_best,
            minimize=True,
            model=model,
        )
        metrics.merge(flood_result.metrics)
        metrics.record_phase("mst-fragmin", flood_result.metrics.rounds)

        new_edges: Set[FrozenSet[Hashable]] = set()
        for v in network.nodes:
            winner = flood_result.outputs[v]
            if winner is None:
                continue
            _, lo, hi = winner
            new_edges.add(frozenset((by_id(lo), by_id(hi))))
        if not new_edges:
            raise SimulationError(
                "Borůvka made no progress: network appears disconnected"
            )
        for edge in new_edges:
            u, v = tuple(edge)
            if edge not in tree_edges:
                tree_edges.add(edge)
                forest_adjacency[u].add(v)
                forest_adjacency[v].add(u)
    else:
        raise SimulationError("Borůvka exceeded its phase budget")

    report = RoundReport(
        measured=metrics,
        analytic=[AnalyticRoundCost.kutten_peleg_mst(n, network.diameter())],
    )
    return MstResult(edges=tree_edges, report=report)
