"""Extremum flooding and leader election.

The most basic CONGEST primitive: every node starts with a value, and in
each round forwards the best value seen so far; after ``D`` rounds every
node knows the global extremum. Leader election is extremum flooding on
node ids (the paper's Section 5.1 elects "the node with the largest id"
to centralize the iteration-continuation decision).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Hashable, Optional, Tuple

from repro.simulator.message import Message
from repro.simulator.network import Network
from repro.simulator.node import Context, NodeProgram
from repro.simulator.runner import Model, SimulationResult, simulate


class ExtremumFloodProgram(NodeProgram):
    """Flood the minimum (or maximum) of per-node comparable values.

    Values must be payload-legal (ints or small tuples). A node re-broadcasts
    only on improvement, so the protocol quiesces after at most ``D + 1``
    rounds with total message count ``O(D·m)`` worst case.
    """

    def __init__(self, value, minimize: bool = True) -> None:
        self._best = value
        self._minimize = minimize

    def _better(self, candidate) -> bool:
        if self._best is None:
            return candidate is not None
        if candidate is None:
            return False
        return candidate < self._best if self._minimize else candidate > self._best

    def on_start(self, ctx: Context):
        ctx.output = self._best
        return self._best

    def on_round(self, ctx: Context, inbox: Dict[Hashable, Message]):
        # Hot loop: this scan runs once per delivery across the whole
        # network, so `_better` is inlined over locals (same comparison
        # sequence, no per-message method call).
        best = self._best
        minimize = self._minimize
        improved = False
        for message in inbox.values():
            candidate = message.payload
            if best is None:
                if candidate is not None:
                    best = candidate
                    improved = True
            elif candidate is not None and (
                candidate < best if minimize else candidate > best
            ):
                best = candidate
                improved = True
        self._best = best
        ctx.output = best
        return best if improved else None


def flood_extremum(
    network: Network,
    values: Dict[Hashable, Any],
    minimize: bool = True,
    model: Model = Model.V_CONGEST,
) -> SimulationResult:
    """Every node learns min (or max) over ``values`` (one per node)."""
    return simulate(
        network,
        lambda node: ExtremumFloodProgram(values[node], minimize=minimize),
        model=model,
    )


def elect_leader(
    network: Network, model: Model = Model.V_CONGEST
) -> Tuple[Hashable, SimulationResult]:
    """Elect the node with the largest random id; returns (leader, result).

    After the run, every node's output is the winning (id, node-marker)
    pair, so all nodes agree on the leader.
    """
    values = {node: network.node_id(node) for node in network.nodes}
    result = flood_extremum(network, values, minimize=False, model=model)
    winning_id = result.outputs[network.nodes[0]]
    leader = next(
        node for node in network.nodes if network.node_id(node) == winning_id
    )
    return leader, result
