"""Synchronous lock-step executor — the engine's round loop.

:func:`simulate` runs one :class:`~repro.simulator.node.NodeProgram` per
node until every node halts or the network goes quiescent (a full round
with no traffic and no new halts), or ``max_rounds`` elapses.

The executor is an *engine* with three separated layers:

* **topology core** — :class:`~repro.simulator.network.Network`
  canonicalizes nodes once through ``fastgraph.IndexedGraph``; the hot
  round loop below (inbox assembly, broadcast fan-out, fault filtering,
  budget checks) runs over integer node indices and flat neighbor
  arrays. Node programs still see Hashable node keys at the boundary
  (``ctx.node``, inbox keyed by sender label).
* **transport layer** — delivery semantics, message accounting rules, and
  budget enforcement live in pluggable
  :class:`~repro.simulator.transport.Transport` objects
  (``VCongestTransport`` / ``ECongestTransport`` / ``CliqueTransport``);
  the historical :class:`Model` enum selects a stock transport.
* **scenario layer** — :mod:`repro.simulator.scenario` builds whole runs
  declaratively on top of this module.

Round loops themselves are pluggable: the default ``"indexed"`` engine is
the integer-index loop below; ``"reference"``
(:mod:`repro.simulator.runner_reference`) preserves the pre-engine
dict-per-round loop as the bit-exactness oracle of the equivalence test
suite. Both produce identical :class:`SimulationResult` values and
identical :class:`~repro.simulator.tracing.Tracer` transcripts under a
fixed seed.

Model enforcement (see :mod:`repro.simulator.transport`):

* ``Model.V_CONGEST`` — a program must return a single payload (or
  ``None``); the runner broadcasts it to all neighbors. Returning a dict
  raises :class:`~repro.errors.ModelViolationError`.
* ``Model.E_CONGEST`` — a program may return a dict of per-neighbor
  payloads (or a bare payload as broadcast shorthand, or ``None``).
* ``Model.CONGESTED_CLIQUE`` — as E-CONGEST, but any node may be
  addressed and broadcasts reach all ``n − 1`` other nodes.

Every payload is size-checked against the ``O(log n)``-bit budget
(``bits_per_message``); oversized messages raise
:class:`~repro.errors.ModelViolationError` — an intentional crash, since a
protocol that needs bigger messages is *not* a CONGEST protocol.
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass
from typing import Any, Callable, Dict, Hashable, Iterator, List, Optional

from repro.errors import SimulationError
from repro.simulator.message import Message
from repro.simulator.metrics import SimulationMetrics
from repro.simulator.network import Network
from repro.simulator.node import Context, NodeProgram
from repro.simulator.transport import (  # re-exported (historical home)
    BROADCAST,
    Model,
    Transport,
    build_transport,
    default_message_budget,
)
from repro.utils.rng import RngLike, ensure_rng, fresh_seed

__all__ = [
    "Model",
    "SimulationResult",
    "SyncRunner",
    "ShardedRunner",
    "simulate",
    "default_message_budget",
    "available_engines",
    "register_engine",
    "set_default_engine",
    "engine_context",
    "fastest_inprocess_engine",
]


@dataclass
class SimulationResult:
    """Outcome of one simulation run."""

    outputs: Dict[Hashable, Any]
    metrics: SimulationMetrics
    halted: bool

    def output_of(self, node: Hashable) -> Any:
        return self.outputs[node]


# ----------------------------------------------------------------------
# Engine registry
# ----------------------------------------------------------------------

# An engine is a round-loop implementation:
#   engine(runner, program_factory, max_rounds, quiescence_halts) -> SimulationResult
EngineFn = Callable[..., SimulationResult]

_ENGINES: Dict[str, EngineFn] = {}
_DEFAULT_ENGINE = "indexed"

# Engines whose modules register themselves on first import — kept out
# of this module so the common reliable single-process path never pays
# for them.
_LAZY_ENGINE_MODULES = {
    "reference": "repro.simulator.runner_reference",
    "sharded": "repro.simulator.runner_sharded",
    "vectorized": "repro.simulator.runner_vectorized",
}


def register_engine(name: str, engine: EngineFn) -> None:
    """Register a named round-loop implementation."""
    _ENGINES[name] = engine


def _load_lazy_engines() -> None:
    import importlib

    for name, module in _LAZY_ENGINE_MODULES.items():
        if name not in _ENGINES:
            importlib.import_module(module)


def available_engines() -> List[str]:
    """Names of the registered round-loop implementations."""
    _load_lazy_engines()
    return sorted(_ENGINES)


def set_default_engine(name: str) -> None:
    """Select the engine used when a runner does not name one."""
    global _DEFAULT_ENGINE
    _require_engine(name)
    _DEFAULT_ENGINE = name


def default_engine() -> str:
    return _DEFAULT_ENGINE


def fastest_inprocess_engine() -> str:
    """The fastest single-process engine this interpreter can run.

    ``"vectorized"`` where numpy imports, ``"indexed"`` otherwise. The
    multiprocess engine consults this for its delegations: a one-shard
    run collapses to this engine in-process, and each forked worker runs
    the same columnar inner loop when it is available.
    """
    from repro.simulator.runner_vectorized import numpy_available

    return "vectorized" if numpy_available() else "indexed"


@contextlib.contextmanager
def engine_context(name: str) -> Iterator[None]:
    """Temporarily switch the default engine (the equivalence tests use
    this to run composite algorithms on the reference loop)."""
    global _DEFAULT_ENGINE
    _require_engine(name)
    previous = _DEFAULT_ENGINE
    _DEFAULT_ENGINE = name
    try:
        yield
    finally:
        _DEFAULT_ENGINE = previous


def _require_engine(name: str) -> EngineFn:
    if name not in _ENGINES:
        module = _LAZY_ENGINE_MODULES.get(name)
        if module is not None:
            # The loop lives in its own module; importing registers it.
            import importlib

            importlib.import_module(module)
    try:
        return _ENGINES[name]
    except KeyError:
        # Mirror the graph-spec family errors: a typo gets the full
        # menu, not a stack trace (load the lazy engines first so the
        # menu is complete).
        _load_lazy_engines()
        raise SimulationError(
            f"unknown simulation engine {name!r}; registered engines: "
            + ", ".join(sorted(_ENGINES))
        )


# ----------------------------------------------------------------------
# Runner
# ----------------------------------------------------------------------


class SyncRunner:
    """Executes programs in synchronized rounds over a :class:`Network`.

    ``model`` selects a stock transport; passing ``transport`` directly
    plugs in custom delivery semantics (then ``model`` is ignored for
    delivery and kept only as a label). ``engine`` names the round-loop
    implementation; ``None`` uses the module default (``"indexed"``).
    ``shards`` is consumed by multiprocess engines (``"sharded"``) as
    the worker-process count; single-process engines ignore it.
    """

    def __init__(
        self,
        network: Network,
        model: Model = Model.V_CONGEST,
        bits_per_message: Optional[int] = None,
        rng: RngLike = None,
        fault_plan=None,
        adversary_plan=None,
        transport: Optional[Transport] = None,
        engine: Optional[str] = None,
        shards: Optional[int] = None,
    ) -> None:
        self.network = network
        self.model = model
        self.transport = (
            transport
            if transport is not None
            else build_transport(model, network, bits_per_message)
        )
        self.bits_per_message = self.transport.bits_per_message
        self._rng = ensure_rng(rng)
        # Optional repro.simulator.faults.FaultPlan; None = reliable run.
        if fault_plan is not None:
            _check_plan_nodes(fault_plan, network)
            # A plan built without its own seed derives its drop
            # generator from the run rng (one fresh_seed draw), so the
            # whole faulty execution is reproducible from the run seed —
            # previously a bare SyncRunner left such plans on OS entropy.
            # plan.rng stays None, so every runner construction
            # re-derives: reusing one plan object across two
            # identically-seeded runners yields identical runs.
            if getattr(fault_plan, "rng", 0) is None:
                fault_plan.reseed(fresh_seed(self._rng))
        self.fault_plan = fault_plan
        # Optional repro.simulator.adversary.AdversaryPlan; None = honest
        # channels. Seed derivation mirrors the fault plan's, drawn
        # *after* it — the fixed draw order every engine shares, so one
        # run seed reproduces both plans.
        if adversary_plan is not None:
            if getattr(adversary_plan, "rng", 0) is None:
                adversary_plan.reseed(fresh_seed(self._rng))
            adversary_plan.bind(
                network,
                complete=getattr(self.transport, "name", "")
                == "congested-clique",
            )
        self.adversary_plan = adversary_plan
        self.engine = engine
        if shards is not None and shards < 1:
            raise SimulationError(f"shards must be >= 1, got {shards}")
        self.shards = shards

    def run(
        self,
        program_factory: Callable[[Hashable], NodeProgram],
        max_rounds: int = 100000,
        quiescence_halts: bool = True,
    ) -> SimulationResult:
        """Run one program per node to completion.

        ``program_factory(node)`` builds the local algorithm for ``node``.
        Terminates when all nodes halt, or (if ``quiescence_halts``) after
        a fully silent round. Raises :class:`SimulationError` if
        ``max_rounds`` is exceeded — runaway protocols are bugs.
        """
        engine = _require_engine(self.engine or _DEFAULT_ENGINE)
        if self.adversary_plan is not None:
            # Per-run state (the replay history) resets here — parent
            # side, before any multiprocess engine forks — so a reused
            # plan object never leaks one run's traffic into the next.
            self.adversary_plan.begin_run()
        return engine(self, program_factory, max_rounds, quiescence_halts)


class ShardedRunner(SyncRunner):
    """A :class:`SyncRunner` pinned to the ``"sharded"`` multiprocess
    engine (:mod:`repro.simulator.runner_sharded`).

    Identical surface and — by the engine contract — identical results,
    metrics, and traces to the indexed loop under a fixed seed; the
    round loop is executed by ``shards`` worker processes over
    contiguous node-index shards (``None``: one per *schedulable* core —
    the affinity mask, not the host count — capped by
    :data:`repro.simulator.runner_sharded.MAX_DEFAULT_SHARDS`). Each
    worker runs the columnar inner loop of
    :mod:`repro.simulator.runner_vectorized` when numpy is available
    (see :func:`fastest_inprocess_engine`), falling back to the scalar
    loop for faulted/adversarial runs or numpy-less interpreters.
    """

    def __init__(
        self,
        network: Network,
        shards: Optional[int] = None,
        **kwargs,
    ) -> None:
        kwargs.setdefault("engine", "sharded")
        super().__init__(network, shards=shards, **kwargs)


def _check_plan_nodes(plan, network: Network) -> None:
    """Reject fault plans naming nodes outside the network — a crash or
    drop schedule for an unknown node would otherwise be a silent no-op
    and the 'faulty' run would quietly be fault-free."""
    known = network.index_map
    unknown = [v for v in getattr(plan, "crash_rounds", {}) if v not in known]
    for edge in getattr(plan, "drop_schedule", {}) or {}:
        unknown.extend(v for v in edge if v not in known)
    if unknown:
        raise SimulationError(
            f"fault plan names nodes not in the network: {sorted(map(repr, set(unknown)))}"
        )


def _run_indexed(
    runner: SyncRunner,
    program_factory: Callable[[Hashable], NodeProgram],
    max_rounds: int,
    quiescence_halts: bool,
) -> SimulationResult:
    """The default engine: the round loop over integer node indices.

    Per-round work is proportional to live nodes and delivered messages —
    not ``n`` — and message payloads are validated/sized once per payload
    object, not once per receiver. Inbox dicts are owned by the engine
    and recycled between rounds; programs must consume their inbox during
    ``on_round`` (every shipped program does).
    """
    net = runner.network
    transport = runner.transport
    plan = runner.fault_plan
    adversary = runner.adversary_plan
    nodes = net.nodes  # index → label, frozen for the run
    n = len(nodes)
    runner_rng = runner._rng
    validate = transport.validate
    fanout_table = [transport.fanout(i) for i in range(n)]

    contexts: List[Context] = []
    programs: List[NodeProgram] = []
    for index, node in enumerate(nodes):
        contexts.append(
            Context(
                node=node,
                node_id=net.node_id(node),
                neighbors=net.neighbors(node),
                n=n,
                rng_seed=fresh_seed(runner_rng),
                index=index,
            )
        )
        programs.append(program_factory(node))

    metrics = SimulationMetrics(runs=1)
    # outbound[i] = validated indexed traffic produced by node i this
    # round (see transport.Outbound); `senders` lists the indices with
    # traffic, in index order — the delivery loop never scans silent
    # nodes. Entries are consumed (reset to None) at delivery.
    outbound: List[Any] = [None] * n
    senders: List[int] = []
    for i in range(n):
        ctx = contexts[i]
        raw = programs[i].on_start(ctx)
        out = validate(nodes[i], i, raw)
        if out:
            outbound[i] = out
            senders.append(i)

    # live = indices of nodes that are neither halted nor crashed (the
    # only ones that execute); unhalted additionally counts crashed
    # nodes, matching the metrics accounting of the reference loop.
    live: List[int] = [i for i in range(n) if not contexts[i].halted]
    unhalted = len(live)
    # inboxes are engine-owned dicts, reused across rounds; `touched`
    # tracks which ones need clearing after the round's programs ran.
    inboxes: List[Dict[Hashable, Message]] = [{} for _ in range(n)]

    for round_no in range(1, max_rounds + 1):
        round_messages = 0
        round_bits = 0
        round_max_bits = 0
        touched: List[int] = []
        for s in senders:
            out = outbound[s]
            outbound[s] = None
            sender = nodes[s]
            if plan is not None and plan.is_crashed(sender, round_no):
                continue
            if out[0] is BROADCAST:
                message = out[1]
                bits = message.bits
                if plan is None and adversary is None:
                    targets = fanout_table[s]
                    for r in targets:
                        box = inboxes[r]
                        if not box:
                            touched.append(r)
                        box[sender] = message
                    delivered = len(targets)
                else:
                    delivered = 0
                    for r in fanout_table[s]:
                        receiver = nodes[r]
                        if plan is not None and plan.drops(
                            sender, receiver, round_no
                        ):
                            continue
                        box = inboxes[r]
                        if not box:
                            touched.append(r)
                        box[sender] = (
                            message
                            if adversary is None
                            else adversary.apply(
                                sender, receiver, round_no, message
                            )
                        )
                        delivered += 1
                if delivered:
                    round_messages += delivered
                    round_bits += bits * delivered
                    if bits > round_max_bits:
                        round_max_bits = bits
            else:
                for r, message in out:
                    receiver = nodes[r]
                    if plan is not None and plan.drops(
                        sender, receiver, round_no
                    ):
                        continue
                    box = inboxes[r]
                    if not box:
                        touched.append(r)
                    box[sender] = (
                        message
                        if adversary is None
                        else adversary.apply(
                            sender, receiver, round_no, message
                        )
                    )
                    # Accounting charges the honest transmission — the
                    # adversary tampers on the wire, after the sender
                    # paid for (and the budget validated) the real
                    # message.
                    round_messages += 1
                    round_bits += message.bits
                    if message.bits > round_max_bits:
                        round_max_bits = message.bits
        if round_messages or unhalted:
            metrics.record_round(round_messages, round_bits, round_max_bits)

        any_traffic = round_messages > 0
        senders = []
        next_live: List[int] = []
        for i in live:
            if plan is not None and plan.is_crashed(nodes[i], round_no):
                # Crash-stop: no execution, no traffic; drops out of the
                # live set for good (crashes are permanent) but still
                # counts as unhalted for round accounting.
                continue
            ctx = contexts[i]
            ctx.round = round_no
            raw = programs[i].on_round(ctx, inboxes[i])
            if ctx._halted:
                unhalted -= 1
            else:
                if raw is not None:
                    out = validate(nodes[i], i, raw)
                    if out:
                        outbound[i] = out
                        senders.append(i)
                next_live.append(i)
        for r in touched:
            inboxes[r].clear()
        live = next_live

        if not live:
            return SimulationResult(
                outputs={nodes[i]: contexts[i].output for i in range(n)},
                metrics=metrics,
                halted=True,
            )
        if quiescence_halts and not any_traffic and not senders:
            return SimulationResult(
                outputs={nodes[i]: contexts[i].output for i in range(n)},
                metrics=metrics,
                halted=False,
            )
    raise SimulationError(
        f"simulation did not terminate within {max_rounds} rounds"
    )


register_engine("indexed", _run_indexed)


def simulate(
    network: Network,
    program_factory: Callable[[Hashable], NodeProgram],
    model: Model = Model.V_CONGEST,
    max_rounds: int = 100000,
    bits_per_message: Optional[int] = None,
    rng: RngLike = None,
    transport: Optional[Transport] = None,
    engine: Optional[str] = None,
    shards: Optional[int] = None,
) -> SimulationResult:
    """One-shot convenience wrapper around :class:`SyncRunner`."""
    runner = SyncRunner(
        network,
        model=model,
        bits_per_message=bits_per_message,
        rng=rng,
        transport=transport,
        engine=engine,
        shards=shards,
    )
    return runner.run(program_factory, max_rounds=max_rounds)
