"""Synchronous lock-step executor with model enforcement.

:func:`simulate` runs one :class:`~repro.simulator.node.NodeProgram` per
node until every node halts or the network goes quiescent (a full round
with no traffic and no new halts), or ``max_rounds`` elapses.

Model enforcement:

* ``Model.V_CONGEST`` — a program must return a single payload (or
  ``None``); the runner broadcasts it to all neighbors. Returning a dict
  raises :class:`~repro.errors.ModelViolationError`.
* ``Model.E_CONGEST`` — a program may return a dict of per-neighbor
  payloads (or a bare payload as broadcast shorthand, or ``None``).

Every payload is size-checked against the ``O(log n)``-bit budget
(``bits_per_message``); oversized messages raise
:class:`~repro.errors.ModelViolationError` — an intentional crash, since a
protocol that needs bigger messages is *not* a CONGEST protocol.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass
from typing import Any, Callable, Dict, Hashable, Optional

from repro.errors import ModelViolationError, SimulationError
from repro.simulator.message import Message, payload_bits
from repro.simulator.metrics import SimulationMetrics
from repro.simulator.network import Network
from repro.simulator.node import Context, NodeProgram
from repro.utils.mathutil import ceil_log2
from repro.utils.rng import RngLike, ensure_rng, fresh_seed


class Model(enum.Enum):
    """The two congestion models of Section 1.2."""

    V_CONGEST = "v-congest"
    E_CONGEST = "e-congest"


def default_message_budget(n: int, factor: int = 32, slack: int = 128) -> int:
    """Concrete ``O(log n)`` bit budget: ``factor·⌈log₂ n⌉ + slack``.

    The paper's messages carry constantly many ids/values of ``O(log n)``
    bits each (component ids are triples, proposals carry an id, a
    component id, and a random value), so a generous constant factor is
    the honest instantiation.
    """
    return factor * max(1, ceil_log2(max(2, n))) + slack


@dataclass
class SimulationResult:
    """Outcome of one simulation run."""

    outputs: Dict[Hashable, Any]
    metrics: SimulationMetrics
    halted: bool

    def output_of(self, node: Hashable) -> Any:
        return self.outputs[node]


class SyncRunner:
    """Executes programs in synchronized rounds over a :class:`Network`."""

    def __init__(
        self,
        network: Network,
        model: Model = Model.V_CONGEST,
        bits_per_message: Optional[int] = None,
        rng: RngLike = None,
        fault_plan=None,
    ) -> None:
        self.network = network
        self.model = model
        self.bits_per_message = (
            bits_per_message
            if bits_per_message is not None
            else default_message_budget(network.n)
        )
        self._rng = ensure_rng(rng)
        # Optional repro.simulator.faults.FaultPlan; None = reliable run.
        self.fault_plan = fault_plan

    def run(
        self,
        program_factory: Callable[[Hashable], NodeProgram],
        max_rounds: int = 100000,
        quiescence_halts: bool = True,
    ) -> SimulationResult:
        """Run one program per node to completion.

        ``program_factory(node)`` builds the local algorithm for ``node``.
        Terminates when all nodes halt, or (if ``quiescence_halts``) after
        a fully silent round. Raises :class:`SimulationError` if
        ``max_rounds`` is exceeded — runaway protocols are bugs.
        """
        net = self.network
        programs: Dict[Hashable, NodeProgram] = {}
        contexts: Dict[Hashable, Context] = {}
        for node in net.nodes:
            contexts[node] = Context(
                node=node,
                node_id=net.node_id(node),
                neighbors=net.neighbors(node),
                n=net.n,
                rng=random.Random(fresh_seed(self._rng)),
            )
            programs[node] = program_factory(node)

        metrics = SimulationMetrics(runs=1)
        # outbound[v] = validated traffic produced by v this round.
        outbound: Dict[Hashable, Dict[Hashable, Message]] = {}
        for node in net.nodes:
            ctx = contexts[node]
            raw = programs[node].on_start(ctx)
            outbound[node] = self._validate(node, ctx, raw)

        for round_no in range(1, max_rounds + 1):
            inboxes: Dict[Hashable, Dict[Hashable, Message]] = {
                node: {} for node in net.nodes
            }
            round_messages = 0
            round_bits = 0
            round_max_bits = 0
            plan = self.fault_plan
            for sender, traffic in outbound.items():
                if plan is not None and plan.is_crashed(sender, round_no):
                    continue
                for receiver, message in traffic.items():
                    if plan is not None and plan.should_drop():
                        continue
                    inboxes[receiver][sender] = message
                    round_messages += 1
                    round_bits += message.bits
                    if message.bits > round_max_bits:
                        round_max_bits = message.bits
            if round_messages or any(not contexts[v].halted for v in net.nodes):
                metrics.record_round(round_messages, round_bits, round_max_bits)

            any_traffic = round_messages > 0
            all_halted = True
            next_outbound: Dict[Hashable, Dict[Hashable, Message]] = {}
            for node in net.nodes:
                ctx = contexts[node]
                if ctx.halted:
                    next_outbound[node] = {}
                    continue
                if plan is not None and plan.is_crashed(node, round_no):
                    # Crash-stop: no execution, no traffic; counts as
                    # terminated so live nodes can still end the run.
                    next_outbound[node] = {}
                    continue
                ctx.round = round_no
                raw = programs[node].on_round(ctx, inboxes[node])
                if ctx.halted:
                    next_outbound[node] = {}
                else:
                    next_outbound[node] = self._validate(node, ctx, raw)
                    all_halted = False
            outbound = next_outbound

            if all_halted:
                return SimulationResult(
                    outputs={v: contexts[v].output for v in net.nodes},
                    metrics=metrics,
                    halted=True,
                )
            if (
                quiescence_halts
                and not any_traffic
                and not any(traffic for traffic in outbound.values())
            ):
                return SimulationResult(
                    outputs={v: contexts[v].output for v in net.nodes},
                    metrics=metrics,
                    halted=False,
                )
        raise SimulationError(
            f"simulation did not terminate within {max_rounds} rounds"
        )

    def _validate(
        self, node: Hashable, ctx: Context, raw: Any
    ) -> Dict[Hashable, Message]:
        """Turn a program's return value into per-receiver messages,
        enforcing the model's congestion rules."""
        if raw is None:
            return {}
        neighbors = ctx.neighbors
        if isinstance(raw, dict):
            if self.model is Model.V_CONGEST:
                raise ModelViolationError(
                    f"node {node!r} attempted per-neighbor messages in "
                    "V-CONGEST; only a single local broadcast is allowed"
                )
            traffic = {}
            # Programs often address every neighbor with the same payload
            # object; build (and size-check) one Message per object, not
            # one per receiver. Keyed by id(): the payloads stay alive in
            # `raw` for the duration of the loop.
            built: Dict[int, Message] = {}
            for receiver, payload in raw.items():
                if receiver not in neighbors:
                    raise ModelViolationError(
                        f"node {node!r} addressed non-neighbor {receiver!r}"
                    )
                if payload is None:
                    continue
                message = built.get(id(payload))
                if message is None or message.payload is not payload:
                    message = Message.build(node, payload)
                    self._check_size(node, message)
                    built[id(payload)] = message
                traffic[receiver] = message
            return traffic
        # Bare payload: broadcast to all neighbors (legal in both models).
        message = Message.build(node, raw)
        self._check_size(node, message)
        return {receiver: message for receiver in neighbors}

    def _check_size(self, node: Hashable, message: Message) -> None:
        if message.bits > self.bits_per_message:
            raise ModelViolationError(
                f"node {node!r} sent a {message.bits}-bit message; budget is "
                f"{self.bits_per_message} bits (O(log n))"
            )


def simulate(
    network: Network,
    program_factory: Callable[[Hashable], NodeProgram],
    model: Model = Model.V_CONGEST,
    max_rounds: int = 100000,
    bits_per_message: Optional[int] = None,
    rng: RngLike = None,
) -> SimulationResult:
    """One-shot convenience wrapper around :class:`SyncRunner`."""
    runner = SyncRunner(
        network, model=model, bits_per_message=bits_per_message, rng=rng
    )
    return runner.run(program_factory, max_rounds=max_rounds)
