"""The ``"vectorized"`` engine — a columnar (struct-of-arrays) round loop.

The indexed loop (:func:`repro.simulator.runner._run_indexed`) spends
most of a saturated round on per-delivery Python work: one dict store,
one emptiness check, and one iteration step per (sender, receiver) pair.
This engine replaces that per-message object plane with a **columnar
message plane**: per round, outbound traffic is two parallel columns
(sender index, :class:`~repro.simulator.message.Message`), and delivery
is batched through numpy over the transport's edge arrays —

::

    out-CSR (transport fan-out)          in-CSR (transposed, cached)
    fan_ptr ──┐                          in_ptr ──┐
    fan_dst   │  per-sender slices       in_src   │  per-receiver slices,
              ▼                                   ▼  source ascending
    senders ──► sent-mask ──► mask = sent[in_src] ──► kept edges
                                                       │ bincount/cumsum
                                    per-receiver [lo, hi) windows of the
                                    gathered message/sender-index columns
                                                       ▼
                  _ArrayInbox views (Mapping over the shared ndarrays;
                  ``values()`` is one C-level ``.tolist()`` slice and
                  sender labels materialize lazily, only if a program
                  actually asks for them)

Payloads are interned: a :class:`PayloadInterner` maps each deeply
immutable payload to a dense **payload id** plus its bit size, keyed by
a *type-aware* structural key — ``(1,)`` and ``(True,)`` compare equal
but cost different bits, so keys carry element types exactly like the
``payload_bits`` memo. The round loop's warm path goes one step
further: a per-(sender, payload) cache maps straight to the validated
:class:`Message`, so steady-state broadcast rounds validate a send with
one dict probe and allocate no per-delivery objects at all. Cached
entries were validated against a specific message budget, so the cache
is keyed to ``transport.bits_per_message`` and cleared whenever a run
arrives with a different budget — a cache hit never skips enforcement
the indexed loop would apply. Unhashable payloads (anything containing a
list) are **never interned or cached**: each send builds a fresh
:class:`Message` around the live object, preserving the indexed loop's
shared-mutable-object semantics within a round and guaranteeing one
round's mutation never leaks into a later send.

**Bit-identity contract.** Under a fixed seed this engine produces the
same :class:`~repro.simulator.runner.SimulationResult` (outputs in the
same node order), the same metrics, and the same
:class:`~repro.simulator.tracing.Tracer` transcript as the indexed loop:

* context RNG seeds are drawn from the run RNG in canonical node order;
* inbox insertion order is ascending sender index — the in-CSR is sorted
  by (receiver, sender), so masked gathers reproduce the indexed loop's
  insertion order without any per-round sort;
* ``on_round`` runs for every live node every round (idle trace events
  included), and validation reuses the transport's own reject paths, so
  every :class:`~repro.errors.ModelViolationError` is byte-identical;
* fault drops and adversary corruption stay pure sha256 functions of
  (plan seed, directed edge, round) — rounds that carry a plan, an
  adversary, or addressed traffic are delivered by a general path that
  replicates the indexed loop delivery-for-delivery (drops evaluated en
  masse per sender batch), so faulted and corrupted runs are
  bit-identical by construction.

The columnar batch path handles the hot case: broadcast-only rounds on
honest channels. The congested clique gets a dedicated shape — the
fan-out of a broadcast is "everyone else", so one shared list-backed
sender column (:class:`_ColumnInbox`, with a per-receiver self-skip)
serves all ``n`` receivers instead of an O(n²) in-CSR.

The plane (edge arrays, interning table, send cache) is cached **on the
Network** (keyed by transport type, guarded by a degree fingerprint),
because :class:`~repro.simulator.runner.SyncRunner` builds a fresh
transport per run — consistent with the session layer's
cache-the-canonicalization story: warm runs over the same network skip
every rebuild and re-intern nothing.

The message plane is also exported in per-shard form: the sharded
engine's forked workers each build a :class:`_ShardPlane` — the in-CSR
**row slice** for their receiver range via :func:`build_in_csr`, plus a
shard-local interner and send cache — and run this same columnar loop
behind the per-round barrier (see
:mod:`repro.simulator.runner_sharded`).

numpy is a soft import: the module always imports (so
``available_engines()`` can list every engine), and running without
numpy raises a clean :class:`~repro.errors.SimulationError` naming the
fix.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Hashable, List, Optional, Tuple

try:  # soft dependency: the engine is listed even where numpy is absent
    import numpy as np
except ImportError:  # pragma: no cover - exercised via monkeypatch
    np = None

from repro.errors import SimulationError
from repro.simulator.message import _SCALAR_TYPES, Message, payload_bits
from repro.simulator.metrics import SimulationMetrics
from repro.simulator.node import Context, NodeProgram
from repro.simulator.runner import SimulationResult, register_engine
from repro.simulator.transport import BROADCAST, CliqueTransport
from repro.utils.rng import fresh_seed

__all__ = [
    "PayloadInterner",
    "build_in_csr",
    "numpy_available",
    "MAX_INTERNED_PAYLOADS",
]

#: Bound on the interning table (and the send cache, cleared with it).
#: Mirrors the wholesale-clear policy of the ``payload_bits`` memo and
#: the fault-plan prefix cache: interning is a pure function of the
#: payload, so clearing affects speed only, never results.
MAX_INTERNED_PAYLOADS = 1 << 16


def numpy_available() -> bool:
    """Whether the columnar plane can run (numpy imported)."""
    return np is not None


def _intern_key(payload: Any) -> Any:
    """Structural, type-aware interning key.

    Distinguishes every pair of payloads that ``payload_bits`` could
    price differently: ``1`` / ``True`` / ``1.0`` get distinct keys, and
    containers carry their elements' keys recursively (``((1,),)`` vs
    ``((True,),)``). Building the key never raises; *hashing* it raises
    ``TypeError`` exactly when the payload is unhashable, which is the
    signal the send path uses to fall back to uninterned delivery.
    """
    kind = type(payload)
    if kind is tuple:
        return (0, tuple(map(_intern_key, payload)))
    if kind is frozenset:
        return (1, frozenset(map(_intern_key, payload)))
    return (kind, payload)


class PayloadInterner:
    """payload → dense payload id + bit size, with type-aware keys.

    ``intern`` returns ``(payload_id, bits)`` for any hashable payload,
    assigning ids densely in first-seen order; ``payload_of`` round-trips
    an id back to the canonical payload object. Raises ``TypeError`` for
    unhashable payloads — callers route those to the uninterned path.

    ``generation`` counts wholesale clears. Anyone who exported payload
    ids (the sharded engine's interner-sync protocol ships
    ``payloads[mark:]`` deltas across the per-round barrier) compares
    generations to learn that every previously shipped id is now stale
    and the table must be re-synced from scratch.
    """

    __slots__ = ("_ids", "payloads", "bits", "generation")

    def __init__(self) -> None:
        self._ids: Dict[Any, int] = {}
        self.payloads: List[Any] = []
        self.bits: List[int] = []
        self.generation = 0

    def __len__(self) -> int:
        return len(self.payloads)

    def intern(self, payload: Any) -> Tuple[int, int]:
        key = _intern_key(payload)
        pid = self._ids.get(key)  # TypeError here when unhashable
        if pid is None:
            bits = payload_bits(payload)
            if len(self.payloads) >= MAX_INTERNED_PAYLOADS:
                self.clear()
            pid = len(self.payloads)
            self._ids[key] = pid
            self.payloads.append(payload)
            self.bits.append(bits)
        return pid, self.bits[pid]

    def payload_of(self, pid: int) -> Any:
        return self.payloads[pid]

    def clear(self) -> None:
        self._ids.clear()
        self.payloads.clear()
        self.bits.clear()
        self.generation += 1


class _ColumnInbox:
    """One receiver's Mapping view of the round's delivery columns.

    Backed by two shared per-round buffer lists (sender labels,
    messages) plus a ``[lo, hi)`` window; the clique shape adds a
    self-skip position. Engine-owned and recycled between rounds like
    the indexed loop's inbox dicts: programs must consume it during
    ``on_round``.
    """

    __slots__ = ("_labels", "_msgs", "_lo", "_hi", "_skip")

    def __init__(self, labels: List[Hashable], msgs: List[Message]) -> None:
        self._labels = labels
        self._msgs = msgs
        self._lo = 0
        self._hi = 0
        self._skip = -1

    # -- Mapping surface ----------------------------------------------

    def __len__(self) -> int:
        return self._hi - self._lo - (1 if self._skip >= 0 else 0)

    def __bool__(self) -> bool:
        return self.__len__() > 0

    def __iter__(self):
        return iter(self.keys())

    def keys(self) -> List[Hashable]:
        skip = self._skip
        if skip < 0:
            return self._labels[self._lo : self._hi]
        keys = self._labels[self._lo : skip]
        keys += self._labels[skip + 1 : self._hi]
        return keys

    def values(self) -> List[Message]:
        skip = self._skip
        if skip < 0:
            return self._msgs[self._lo : self._hi]
        values = self._msgs[self._lo : skip]
        values += self._msgs[skip + 1 : self._hi]
        return values

    def items(self) -> List[Tuple[Hashable, Message]]:
        return list(zip(self.keys(), self.values()))

    def __getitem__(self, label: Hashable) -> Message:
        labels = self._labels
        skip = self._skip
        for j in range(self._lo, self._hi):
            if j != skip and labels[j] == label:
                return self._msgs[j]
        raise KeyError(label)

    def get(self, label: Hashable, default: Any = None) -> Any:
        try:
            return self[label]
        except KeyError:
            return default

    def __contains__(self, label: Hashable) -> bool:
        return self.get(label, _MISSING) is not _MISSING

    def __eq__(self, other: Any) -> bool:
        if isinstance(other, (_ColumnInbox, _ArrayInbox)):
            return self.items() == other.items()
        if isinstance(other, dict):
            return dict(self.items()) == other
        return NotImplemented

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"_ColumnInbox({dict(self.items())!r})"


_MISSING = object()


class _ArrayInbox:
    """ndarray-backed receiver view for the generic columnar path.

    All receivers share one per-round state cell ``[msgs_arr, kept]``
    (the gathered message column and the kept-edge sender indices); a
    view adds its ``[lo, hi)`` window. ``values()`` — the hot call — is
    a single C-level ``arr[lo:hi].tolist()``; sender labels are only
    materialized when a program actually asks for keys/items, so
    values-only protocols (flooding and friends) never pay for them.
    """

    __slots__ = ("_state", "_labels_np", "_lo", "_hi")

    def __init__(self, state: list, labels_np) -> None:
        self._state = state
        self._labels_np = labels_np
        self._lo = 0
        self._hi = 0

    def __len__(self) -> int:
        return self._hi - self._lo

    def __bool__(self) -> bool:
        return self._hi > self._lo

    def __iter__(self):
        return iter(self.keys())

    def keys(self) -> List[Hashable]:
        return self._labels_np[self._state[1][self._lo : self._hi]].tolist()

    def values(self) -> List[Message]:
        return self._state[0][self._lo : self._hi].tolist()

    def items(self) -> List[Tuple[Hashable, Message]]:
        return list(zip(self.keys(), self.values()))

    def __getitem__(self, label: Hashable) -> Message:
        keys = self.keys()
        for j, key in enumerate(keys):
            if key == label:
                return self._state[0][self._lo + j]
        raise KeyError(label)

    def get(self, label: Hashable, default: Any = None) -> Any:
        try:
            return self[label]
        except KeyError:
            return default

    def __contains__(self, label: Hashable) -> bool:
        return self.get(label, _MISSING) is not _MISSING

    def __eq__(self, other: Any) -> bool:
        if isinstance(other, (_ArrayInbox, _ColumnInbox)):
            return self.items() == other.items()
        if isinstance(other, dict):
            return dict(self.items()) == other
        return NotImplemented

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"_ArrayInbox({dict(self.items())!r})"


try:  # duck typing suffices everywhere in-tree; register for user code
    from collections.abc import Mapping as _Mapping

    _Mapping.register(_ColumnInbox)
    _Mapping.register(_ArrayInbox)
except Exception:  # pragma: no cover
    pass


def build_in_csr(
    fanout: List[Tuple[int, ...]],
    n: int,
    lo: int = 0,
    hi: Optional[int] = None,
):
    """Transpose per-sender fan-out rows into per-receiver source slices.

    Returns ``(in_ptr, in_src, in_dst)`` covering receivers ``[lo, hi)``
    (defaulting to all ``n``): ``in_src[in_ptr[r - lo]:in_ptr[r - lo + 1]]``
    lists the senders whose broadcast reaches receiver ``r``, in
    ascending sender order — exactly the indexed loop's inbox insertion
    order. ``in_dst`` holds the kept edges' receiver indices **relative
    to** ``lo``, so a shard's slice bincounts straight into its local
    inbox windows. Sender indices stay global: a shard receives from the
    whole graph even though it owns only a receiver range.
    """
    if hi is None:
        hi = n
    src = np.repeat(
        np.arange(n, dtype=np.int64),
        np.asarray([len(fanout[i]) for i in range(n)], dtype=np.int64),
    )
    if src.size:
        dst = np.concatenate(
            [np.asarray(fanout[i], dtype=np.int64) for i in range(n)
             if fanout[i]]
        )
    else:
        dst = np.empty(0, dtype=np.int64)
    if lo > 0 or hi < n:
        keep = (dst >= lo) & (dst < hi)
        src = src[keep]
        dst = dst[keep]
    if lo:
        dst = dst - lo
    # Stable sort by receiver: src is already ascending, so the sender
    # order inside each receiver group is preserved.
    order = np.argsort(dst, kind="stable")
    in_src = src[order]
    in_dst = dst[order]
    rows = hi - lo
    counts = np.bincount(dst, minlength=rows) if dst.size else np.zeros(
        rows, dtype=np.int64
    )
    in_ptr = np.zeros(rows + 1, dtype=np.int64)
    np.cumsum(counts, out=in_ptr[1:])
    return in_ptr, in_src, in_dst


class _ShardPlane:
    """One shard's columnar message plane, built locally in a worker.

    The worker-process counterpart of :class:`_VectorPlane` for the
    sharded engine: the in-CSR **row slice** for the shard's receivers
    ``[lo, hi)`` over all ``n`` senders, the node-label column, full
    out-degrees (sender-side accounting needs every sender's fan-out
    size), a shard-local :class:`PayloadInterner` plus warm-send cache,
    and the per-round message-column scratch. A worker builds this
    after fork and it lives for exactly one run — never cached across
    runs, unlike the parent-side plane.
    """

    __slots__ = (
        "n",
        "lo",
        "hi",
        "labels",
        "labels_np",
        "deg",
        "complete",
        "interner",
        "send_cache",
        "in_ptr",
        "in_src",
        "in_dst",
        "msg_col",
    )

    def __init__(self, transport, nodes, lo: int, hi: int) -> None:
        n = len(nodes)
        self.n = n
        self.lo = lo
        self.hi = hi
        self.labels = list(nodes)
        self.labels_np = np.empty(n, dtype=object)
        for j, label in enumerate(self.labels):
            # Element-wise: tuple labels must stay scalars.
            self.labels_np[j] = label
        fanout = transport._fanout
        self.deg = [len(fanout[i]) for i in range(n)]
        # Exact-type check, as in _VectorPlane: only the stock clique
        # fan-out is provably "everyone else".
        self.complete = type(transport) is CliqueTransport
        self.interner = PayloadInterner()
        self.send_cache: Dict[Any, Message] = {}
        self.in_ptr = None
        self.in_src = None
        self.in_dst = None
        # Message column indexed by *global* sender: local sends and
        # barrier imports scatter in, masked gathers read out. Stale
        # entries are never gathered.
        self.msg_col = np.empty(n, dtype=object)

    def ensure_in_csr(self, transport) -> None:
        """Build the shard's in-CSR row slice on first columnar round."""
        if self.in_ptr is None:
            self.in_ptr, self.in_src, self.in_dst = build_in_csr(
                transport._fanout, self.n, self.lo, self.hi
            )


class _VectorPlane:
    """Per-transport columnar state, cached across runs.

    Holds the node-label column, out-degrees, the lazily built in-CSR
    (transposed fan-out, sorted by (receiver, sender)), the payload
    interning table, and the warm-send cache mapping a
    (payload key, sender index) probe straight to its validated
    :class:`Message`. Cache entries embed a budget check, so the cache
    records the ``bits_per_message`` it validated against and is cleared
    when a run's transport carries a different budget.
    """

    __slots__ = (
        "n",
        "labels",
        "labels_np",
        "deg",
        "deg_np",
        "complete",
        "interner",
        "send_cache",
        "cache_budget",
        "in_ptr",
        "in_src",
        "in_dst",
        "msg_col",
    )

    def __init__(self, transport, nodes) -> None:
        n = len(nodes)
        self.n = n
        self.labels = list(nodes)
        self.labels_np = np.empty(n, dtype=object)
        for j, label in enumerate(self.labels):
            # Element-wise: tuple labels must stay scalars, not be
            # broadcast as nested sequences.
            self.labels_np[j] = label
        fanout = transport._fanout
        self.deg = [len(fanout[i]) for i in range(n)]
        self.deg_np = np.asarray(self.deg, dtype=np.int64)
        # Exact-type check: CliqueTransport's fan-out is "everyone
        # else" by construction, which the clique shape relies on; a
        # subclass could override it, so subclasses take the generic
        # in-CSR path.
        self.complete = type(transport) is CliqueTransport
        self.interner = PayloadInterner()
        self.send_cache: Dict[Any, Message] = {}
        self.cache_budget = transport.bits_per_message
        self.in_ptr = None
        self.in_src = None
        self.in_dst = None
        # Per-round scratch: message column indexed by sender (stale
        # entries are never gathered — the mask only selects edges whose
        # source sent this round).
        self.msg_col = np.empty(n, dtype=object)

    def build_in_csr(self, transport) -> None:
        """Transpose the fan-out into per-receiver source slices.

        ``in_src[in_ptr[r]:in_ptr[r+1]]`` lists the senders whose
        broadcast reaches ``r``, in ascending sender order — exactly the
        indexed loop's inbox insertion order.
        """
        self.in_ptr, self.in_src, self.in_dst = build_in_csr(
            transport._fanout, self.n
        )


def _plane_for(network, transport, nodes) -> "_VectorPlane":
    """The columnar plane for ``transport``, cached on the network.

    Every stock transport's fan-out is a pure function of (transport
    class, network), so planes are keyed by exact transport type and
    shared across transport *instances* — a fresh ``SyncRunner`` per run
    reuses the warm in-CSR, interning table, and send cache. A degree
    fingerprint guards against an exotic same-class transport whose
    fan-out nevertheless differs.
    """
    try:
        planes = network._repro_vector_planes
    except AttributeError:
        planes = network._repro_vector_planes = {}
    key = type(transport)
    plane = planes.get(key)
    if (
        plane is None
        or plane.n != len(nodes)
        or any(
            plane.deg[i] != len(transport._fanout[i])
            for i in range(plane.n)
        )
    ):
        plane = _VectorPlane(transport, nodes)
        planes[key] = plane
    elif plane.cache_budget != transport.bits_per_message:
        # The warm-send cache holds messages validated under the old
        # budget; a hit would skip enforcement. The interner survives —
        # payload → (id, bits) is budget-independent.
        plane.send_cache.clear()
        plane.cache_budget = transport.bits_per_message
    return plane


def _bulk_drops(plan, sender, receivers, round_no) -> List[bool]:
    """The round's drop decisions for one sender's delivery batch.

    Each decision is the same pure sha256 function of (plan seed,
    directed edge, round) the indexed loop evaluates per delivery —
    batched here per (sender, round) so the general path consumes the
    plan in one pass per edge group.
    """
    drops = plan.drops
    return [drops(sender, receiver, round_no) for receiver in receivers]


def _run_vectorized(
    runner,
    program_factory: Callable[[Hashable], NodeProgram],
    max_rounds: int,
    quiescence_halts: bool,
) -> SimulationResult:
    """The columnar round loop (see the module docstring)."""
    if np is None:
        raise SimulationError(
            "the vectorized engine requires numpy, which is not installed; "
            "install numpy or use engine='indexed'"
        )
    net = runner.network
    transport = runner.transport
    plan = runner.fault_plan
    adversary = runner.adversary_plan
    nodes = net.nodes
    n = len(nodes)
    runner_rng = runner._rng
    validate = transport.validate
    budget = transport.bits_per_message
    fanout_table = [transport.fanout(i) for i in range(n)]

    plane = _plane_for(net, transport, nodes)
    labels = plane.labels
    labels_np = plane.labels_np
    deg_np = plane.deg_np
    complete = plane.complete
    interner = plane.interner
    send_cache = plane.send_cache
    send_get = send_cache.get
    msg_col = plane.msg_col

    contexts: List[Context] = []
    programs: List[NodeProgram] = []
    for index, node in enumerate(nodes):
        contexts.append(
            Context(
                node=node,
                node_id=net.node_id(node),
                neighbors=net.neighbors(node),
                n=n,
                rng_seed=fresh_seed(runner_rng),
                index=index,
            )
        )
        programs.append(program_factory(node))
    on_rounds = [program.on_round for program in programs]

    metrics = SimulationMetrics(runs=1)

    def collect_slow(
        i: int,
        raw: Any,
        bsend: List[int],
        bmsgs: List[Message],
        cache_key: Any = None,
    ) -> None:
        """Validate one non-dict send the long way and, where legal,
        prime the warm-send cache under ``cache_key``.

        Replicates ``Transport.validate``'s bare-payload branch exactly
        (size check first, then the isolated-sender check) while
        interning the payload; every rejection goes through the
        transport's own reject method, so the error bytes match the
        indexed loop's.
        """
        try:
            if len(interner.payloads) >= MAX_INTERNED_PAYLOADS:
                # Both are pure caches bounded by the same cap: clear
                # them wholesale together (speed only, never results).
                interner.clear()
                send_cache.clear()
            pid, bits = interner.intern(raw)
        except TypeError:
            # Unhashable (mutable) payload: validate and build fresh,
            # never cache — within-round receivers still share the one
            # object, exactly like the indexed loop.
            bits = payload_bits(raw)
            message = Message(nodes[i], raw, bits)
            if bits > budget:
                transport._reject_size(nodes[i], message)
            if not fanout_table[i]:
                return
            bsend.append(i)
            bmsgs.append(message)
            return
        if bits > budget:
            transport._reject_size(nodes[i], Message(nodes[i], raw, bits))
        if not fanout_table[i]:
            return  # isolated sender: nobody to reach
        message = Message(nodes[i], interner.payloads[pid], bits)
        if cache_key is not None:
            send_cache[cache_key] = message
        bsend.append(i)
        bmsgs.append(message)

    # Per-round outbound columns. Broadcasts: parallel (sender index,
    # Message) columns, ascending sender. Addressed traffic:
    # (sender index, [(receiver index, Message), ...]) rows, ascending
    # sender. Fresh lists every round: the delivery phase consumes the
    # previous round's columns while the execution loop fills the next.
    bsend: List[int] = []
    bmsgs: List[Message] = []
    addressed: List[Tuple[int, list]] = []

    for i in range(n):
        raw = programs[i].on_start(contexts[i])
        if raw is not None:
            if isinstance(raw, dict):
                out = validate(nodes[i], i, raw)
                if out:
                    addressed.append((i, out))
            else:
                collect_slow(i, raw, bsend, bmsgs)

    live: List[int] = [i for i in range(n) if not contexts[i].halted]
    unhalted = len(live)
    # Dict inboxes for the general (faulted/adversarial/addressed) path;
    # engine-owned and recycled, exactly like the indexed loop.
    inboxes: List[Dict[Hashable, Message]] = [{} for _ in range(n)]
    # Columnar-path views share per-round state, so a round only
    # rewrites each traffic receiver's [lo, hi) window. Generic
    # transports get ndarray-backed views over one shared
    # [message column, kept senders] cell; the clique gets list-backed
    # views with a per-receiver self-skip.
    if complete:
        buf_labels: List[Hashable] = []
        buf_msgs: List[Message] = []
        views: List[Any] = [
            _ColumnInbox(buf_labels, buf_msgs) for _ in range(n)
        ]
    else:
        buf_labels = []
        buf_msgs = []
        col_state: list = [None, None]
        views = [_ArrayInbox(col_state, labels_np) for _ in range(n)]
    empty_boxes: List[Dict[Hashable, Message]] = [{} for _ in range(n)]

    for round_no in range(1, max_rounds + 1):
        round_messages = 0
        round_bits = 0
        round_max_bits = 0
        touched: List[int] = []
        columnar = (
            plan is None
            and adversary is None
            and not addressed
            and bool(bsend)
        )
        # Per-receiver window bounds into the round's buffers (columnar
        # rounds only): generic transports get [ptr[i], ptr[i+1]) slices
        # of the gathered kept-edge columns; the clique gets one shared
        # column plus per-receiver self-skip positions.
        ptr: Optional[List[int]] = None
        skip_pos: Optional[List[int]] = None

        if columnar:
            bits_arr = np.asarray([m.bits for m in bmsgs], dtype=np.int64)
            if complete:
                buf_labels[:] = [labels[s] for s in bsend]
                buf_msgs[:] = bmsgs
                pos = np.full(n, -1, dtype=np.int64)
                pos[bsend] = np.arange(len(bsend), dtype=np.int64)
                skip_pos = pos.tolist()
                round_messages = len(bsend) * (n - 1)
                round_bits = int(bits_arr.sum()) * (n - 1)
                round_max_bits = int(bits_arr.max())
            else:
                if plane.in_ptr is None:
                    plane.build_in_csr(transport)
                in_src = plane.in_src
                sent = np.zeros(n, dtype=bool)
                sent[bsend] = True
                msg_col[bsend] = bmsgs
                mask = sent[in_src]
                kept = in_src[mask]
                counts = np.bincount(plane.in_dst[mask], minlength=n)
                bounds = np.zeros(n + 1, dtype=np.int64)
                np.cumsum(counts, out=bounds[1:])
                ptr = bounds.tolist()
                col_state[0] = msg_col[kept]
                col_state[1] = kept
                round_messages = int(kept.size)
                round_bits = int(bits_arr @ deg_np[bsend])
                round_max_bits = int(bits_arr.max())
        elif bsend or addressed:
            # General path: replicate the indexed loop delivery for
            # delivery — crashes, drops (en masse per sender batch),
            # corruption, and the exact accounting rules — merging the
            # broadcast and addressed columns back into ascending
            # sender order.
            bi = ai = 0
            nb = len(bsend)
            na = len(addressed)
            while bi < nb or ai < na:
                if ai >= na or (bi < nb and bsend[bi] < addressed[ai][0]):
                    s = bsend[bi]
                    message = bmsgs[bi]
                    bi += 1
                    out: Any = (BROADCAST, message)
                else:
                    s, out = addressed[ai]
                    ai += 1
                sender = nodes[s]
                if plan is not None and plan.is_crashed(sender, round_no):
                    continue
                if out[0] is BROADCAST:
                    message = out[1]
                    bits = message.bits
                    if plan is None and adversary is None:
                        targets = fanout_table[s]
                        for r in targets:
                            box = inboxes[r]
                            if not box:
                                touched.append(r)
                            box[sender] = message
                        delivered = len(targets)
                    else:
                        delivered = 0
                        targets = fanout_table[s]
                        dropped = (
                            _bulk_drops(
                                plan,
                                sender,
                                [nodes[r] for r in targets],
                                round_no,
                            )
                            if plan is not None
                            else None
                        )
                        for j, r in enumerate(targets):
                            if dropped is not None and dropped[j]:
                                continue
                            box = inboxes[r]
                            if not box:
                                touched.append(r)
                            box[sender] = (
                                message
                                if adversary is None
                                else adversary.apply(
                                    sender, nodes[r], round_no, message
                                )
                            )
                            delivered += 1
                    if delivered:
                        round_messages += delivered
                        round_bits += bits * delivered
                        if bits > round_max_bits:
                            round_max_bits = bits
                else:
                    for r, message in out:
                        receiver = nodes[r]
                        if plan is not None and plan.drops(
                            sender, receiver, round_no
                        ):
                            continue
                        box = inboxes[r]
                        if not box:
                            touched.append(r)
                        box[sender] = (
                            message
                            if adversary is None
                            else adversary.apply(
                                sender, receiver, round_no, message
                            )
                        )
                        round_messages += 1
                        round_bits += message.bits
                        if message.bits > round_max_bits:
                            round_max_bits = message.bits
        if round_messages or unhalted:
            metrics.record_round(round_messages, round_bits, round_max_bits)

        any_traffic = round_messages > 0
        out_bsend: List[int] = []
        out_bmsgs: List[Message] = []
        out_addressed: List[Tuple[int, list]] = []
        next_live: List[int] = []
        # Locals for the hot loop: every lookup below runs per node.
        bsend_append = out_bsend.append
        bmsgs_append = out_bmsgs.append
        live_append = next_live.append
        contexts_l = contexts
        on_rounds_l = on_rounds
        scalar_ok = _SCALAR_TYPES.issuperset

        if columnar:
            dict_boxes = None
        else:
            dict_boxes = inboxes
        clique_hi = len(buf_msgs) if skip_pos is not None else 0

        for i in live:
            if dict_boxes is not None:
                if plan is not None and plan.is_crashed(nodes[i], round_no):
                    # Crash-stop: out of the live set for good, still
                    # unhalted for round accounting (as in the indexed
                    # loop).
                    continue
                box: Any = dict_boxes[i]
            elif ptr is not None:
                lo = ptr[i]
                hi = ptr[i + 1]
                if lo != hi:
                    box = views[i]
                    box._lo = lo
                    box._hi = hi
                else:
                    box = empty_boxes[i]
            else:
                skip = skip_pos[i]
                if clique_hi - (1 if skip >= 0 else 0) > 0:
                    box = views[i]
                    box._hi = clique_hi
                    box._skip = skip
                else:
                    box = empty_boxes[i]
            ctx = contexts_l[i]
            ctx.round = round_no
            raw = on_rounds_l[i](ctx, box)
            if ctx._halted:
                unhalted -= 1
                continue
            if raw is not None:
                # Warm-send fast path: one dict probe per send. Falls
                # back to collect_slow on the first sighting of a
                # (sender, payload) pair, on unhashable payloads, and
                # on nested containers (whose keys must be recursive).
                # Addressed traffic matches Transport.validate's own
                # isinstance dispatch, so dict subclasses route the
                # same way as on the indexed loop.
                cls = raw.__class__
                if isinstance(raw, dict):
                    out = validate(nodes[i], i, raw)
                    if out:
                        out_addressed.append((i, out))
                elif cls is tuple:
                    types = tuple(map(type, raw))
                    if scalar_ok(types):
                        key = (raw, types, i)
                        ent = send_get(key)
                        if ent is None:
                            collect_slow(
                                i, raw, out_bsend, out_bmsgs,
                                cache_key=key,
                            )
                        else:
                            bsend_append(i)
                            bmsgs_append(ent)
                    else:
                        collect_slow(i, raw, out_bsend, out_bmsgs)
                else:
                    key = (cls, raw, i)
                    try:
                        ent = send_get(key)
                    except TypeError:
                        collect_slow(i, raw, out_bsend, out_bmsgs)
                    else:
                        if ent is None:
                            collect_slow(
                                i, raw, out_bsend, out_bmsgs,
                                cache_key=key,
                            )
                        else:
                            bsend_append(i)
                            bmsgs_append(ent)
            live_append(i)
        if dict_boxes is not None:
            for r in touched:
                inboxes[r].clear()
        live = next_live
        bsend = out_bsend
        bmsgs = out_bmsgs
        addressed = out_addressed

        if not live:
            return SimulationResult(
                outputs={nodes[i]: contexts[i].output for i in range(n)},
                metrics=metrics,
                halted=True,
            )
        if (
            quiescence_halts
            and not any_traffic
            and not bsend
            and not addressed
        ):
            return SimulationResult(
                outputs={nodes[i]: contexts[i].output for i in range(n)},
                metrics=metrics,
                halted=False,
            )
    raise SimulationError(
        f"simulation did not terminate within {max_rounds} rounds"
    )


register_engine("vectorized", _run_vectorized)
