"""Network topology container for the simulator.

Wraps a :class:`networkx.Graph` with the pieces every node program needs:
stable neighbor lists, ``n``, a diameter estimate, and random node ids
(the paper notes nodes can generate ``4 log n``-bit random ids in one
round; we provide them up front, deterministic under a seed).
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Tuple

import networkx as nx

from repro.errors import GraphValidationError
from repro.utils.mathutil import ceil_log2
from repro.utils.rng import RngLike, ensure_rng


class Network:
    """A static undirected topology for synchronous simulation."""

    def __init__(
        self,
        graph: nx.Graph,
        rng: RngLike = None,
        require_connected: bool = True,
    ) -> None:
        if graph.number_of_nodes() == 0:
            raise GraphValidationError("network must have at least one node")
        if require_connected and not nx.is_connected(graph):
            raise GraphValidationError("network graph must be connected")
        self._graph = graph
        self._nodes: List[Hashable] = list(graph.nodes())
        self._neighbors: Dict[Hashable, Tuple[Hashable, ...]] = {
            v: tuple(graph.neighbors(v)) for v in self._nodes
        }
        rand = ensure_rng(rng)
        # 4·log n random bits per id (Section 2); distinct w.h.p., and we
        # re-draw on collision so ids are distinct with certainty.
        id_bits = 4 * max(1, ceil_log2(max(2, len(self._nodes))))
        used = set()
        self._ids: Dict[Hashable, int] = {}
        for v in self._nodes:
            while True:
                candidate = rand.getrandbits(id_bits)
                if candidate not in used:
                    used.add(candidate)
                    self._ids[v] = candidate
                    break

    @property
    def graph(self) -> nx.Graph:
        """The underlying topology (do not mutate during a run)."""
        return self._graph

    @property
    def nodes(self) -> List[Hashable]:
        return list(self._nodes)

    @property
    def n(self) -> int:
        return len(self._nodes)

    @property
    def m(self) -> int:
        return self._graph.number_of_edges()

    def neighbors(self, node: Hashable) -> Tuple[Hashable, ...]:
        return self._neighbors[node]

    def degree(self, node: Hashable) -> int:
        return len(self._neighbors[node])

    def node_id(self, node: Hashable) -> int:
        """The node's random O(log n)-bit identifier."""
        return self._ids[node]

    def diameter(self) -> int:
        """Exact diameter (cached)."""
        if not hasattr(self, "_diameter"):
            self._diameter = nx.diameter(self._graph)
        return self._diameter
