"""Network topology container — the engine's *topology core*.

Wraps a :class:`networkx.Graph` with the pieces every node program needs:
stable neighbor lists, ``n``, a diameter estimate, and random node ids
(the paper notes nodes can generate ``4 log n``-bit random ids in one
round; we provide them up front, deterministic under a seed).

Since the engine refactor the network canonicalizes its nodes **once**
through :class:`repro.fastgraph.IndexedGraph`: every node gets a dense
integer index (position in ``graph.nodes()`` order) and the round loop of
:mod:`repro.simulator.runner` works entirely over those indices and flat
neighbor arrays — no per-message hashing of node keys. The public API
stays Hashable-keyed (``neighbors``, ``node_id``, ``nodes``); the index
view is exposed alongside it (``index_of``, ``node_at``, ``index_map``,
``neighbor_indices``) so node programs and drivers stop rebuilding the
mapping ad hoc.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional, Tuple

import networkx as nx

from repro.errors import GraphValidationError, SimulationError
from repro.fastgraph import IndexedGraph
from repro.utils.mathutil import ceil_log2
from repro.utils.rng import RngLike, ensure_rng

# How many times the id assignment may re-draw on collision before it
# gives up. With 4·⌈log₂ n⌉-bit ids the collision probability per draw is
# at most n/n⁴, so hitting this budget signals a broken RNG, not bad luck.
ID_DRAW_ATTEMPTS = 64


class Network:
    """A static undirected topology for synchronous simulation."""

    def __init__(
        self,
        graph: nx.Graph,
        rng: RngLike = None,
        require_connected: bool = True,
        indexed: Optional[IndexedGraph] = None,
    ) -> None:
        if graph.number_of_nodes() == 0:
            raise GraphValidationError("network must have at least one node")
        if require_connected and not nx.is_connected(graph):
            raise GraphValidationError("network graph must be connected")
        self._graph = graph
        # Canonicalize once: node → dense integer index, flat edge array.
        # A prebuilt canonicalization (e.g. a GraphSession's) may be
        # shared; the id-draw RNG stream is unaffected either way.
        if indexed is None:
            indexed = IndexedGraph.from_networkx(graph)
        elif indexed.n != graph.number_of_nodes() or (
            indexed.m != graph.number_of_edges()
        ):
            raise GraphValidationError(
                "prebuilt IndexedGraph does not match the network graph"
            )
        self._indexed = indexed
        self._nodes: List[Hashable] = self._indexed.nodes
        self._index_of: Dict[Hashable, int] = self._indexed.index_of
        # Neighbor order is pinned to graph.neighbors() (adjacency
        # insertion order) — the order the pre-refactor simulator used for
        # broadcast fan-out, which keeps schedules and fault-plan RNG
        # consumption bit-identical across engines.
        self._neighbors: Dict[Hashable, Tuple[Hashable, ...]] = {
            v: tuple(graph.neighbors(v)) for v in self._nodes
        }
        index_of = self._index_of
        self._neighbor_indices: List[Tuple[int, ...]] = [
            tuple(index_of[u] for u in self._neighbors[v]) for v in self._nodes
        ]
        rand = ensure_rng(rng)
        # 4·log n random bits per id (Section 2); distinct w.h.p., re-drawn
        # on collision — but bounded: a generator that keeps colliding
        # fails loudly instead of spinning forever.
        id_bits = 4 * max(1, ceil_log2(max(2, len(self._nodes))))
        used = set()
        self._ids: Dict[Hashable, int] = {}
        for v in self._nodes:
            for _ in range(ID_DRAW_ATTEMPTS):
                candidate = rand.getrandbits(id_bits)
                if candidate not in used:
                    used.add(candidate)
                    self._ids[v] = candidate
                    break
            else:
                raise SimulationError(
                    f"could not draw a distinct {id_bits}-bit node id for "
                    f"{v!r} within {ID_DRAW_ATTEMPTS} attempts; the id space "
                    "is exhausted or the RNG is degenerate"
                )
        self._by_id: Dict[int, Hashable] = {
            node_id: v for v, node_id in self._ids.items()
        }

    @property
    def graph(self) -> nx.Graph:
        """The underlying topology (do not mutate during a run)."""
        return self._graph

    @property
    def indexed(self) -> IndexedGraph:
        """The canonical integer-indexed view (shared, do not mutate)."""
        return self._indexed

    @property
    def nodes(self) -> List[Hashable]:
        return list(self._nodes)

    @property
    def n(self) -> int:
        return len(self._nodes)

    @property
    def m(self) -> int:
        return self._indexed.m

    # ------------------------------------------------------------------
    # Hashable-keyed API (unchanged from the pre-engine simulator)
    # ------------------------------------------------------------------

    def neighbors(self, node: Hashable) -> Tuple[Hashable, ...]:
        return self._neighbors[node]

    def degree(self, node: Hashable) -> int:
        return len(self._neighbors[node])

    def node_id(self, node: Hashable) -> int:
        """The node's random O(log n)-bit identifier."""
        return self._ids[node]

    def node_by_id(self, node_id: int) -> Hashable:
        """Inverse of :meth:`node_id` (ids are distinct by construction).

        Programs used to rebuild ``{node_id(v): v}`` maps ad hoc per
        phase; the network now owns the single canonical copy.
        """
        return self._by_id[node_id]

    # ------------------------------------------------------------------
    # Integer-index view (the engine's hot-path substrate)
    # ------------------------------------------------------------------

    def index_of(self, node: Hashable) -> int:
        """Dense integer index of ``node`` (position in ``nodes``)."""
        return self._index_of[node]

    def node_at(self, index: int) -> Hashable:
        """Node label at ``index`` — inverse of :meth:`index_of`."""
        return self._nodes[index]

    @property
    def index_map(self) -> Dict[Hashable, int]:
        """The full node → index mapping (shared dict, do not mutate)."""
        return self._index_of

    def neighbor_indices(self, index: int) -> Tuple[int, ...]:
        """Neighbor indices of the node at ``index``; order matches
        :meth:`neighbors` of the same node."""
        return self._neighbor_indices[index]

    def neighbor_index_table(self) -> List[Tuple[int, ...]]:
        """The whole adjacency as index tuples, position = node index."""
        return self._neighbor_indices

    def diameter(self) -> int:
        """Exact diameter (cached)."""
        if not hasattr(self, "_diameter"):
            self._diameter = nx.diameter(self._graph)
        return self._diameter
