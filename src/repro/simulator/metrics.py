"""Round / message / bit accounting for simulations.

Every :func:`repro.simulator.runner.simulate` call produces a
:class:`SimulationMetrics`; composite algorithms accumulate several runs
with :meth:`SimulationMetrics.merge`. The experiments (E4, E5) read round
counts from here.

A *meta-round* (Section 3.1) is ``Θ(log n)`` real rounds — the cost of
simulating one round of the virtual graph on the real graph. Helpers here
convert between the two so the distributed CDS-packing driver can report
both units.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List


@dataclass
class SimulationMetrics:
    """Mutable counters for one or more chained simulation runs."""

    rounds: int = 0
    messages: int = 0
    bits: int = 0
    max_message_bits: int = 0
    runs: int = 0
    phase_rounds: Dict[str, int] = field(default_factory=dict)

    def record_round(self, messages: int, bits: int, max_bits: int) -> None:
        """Account one executed round."""
        self.rounds += 1
        self.messages += messages
        self.bits += bits
        if max_bits > self.max_message_bits:
            self.max_message_bits = max_bits

    def record_phase(self, name: str, rounds: int) -> None:
        """Attribute ``rounds`` to a named phase (for per-phase reporting)."""
        self.phase_rounds[name] = self.phase_rounds.get(name, 0) + rounds

    def merge(self, other: "SimulationMetrics") -> "SimulationMetrics":
        """Fold another run's counters into this one (returns self)."""
        self.rounds += other.rounds
        self.messages += other.messages
        self.bits += other.bits
        self.max_message_bits = max(self.max_message_bits, other.max_message_bits)
        self.runs += max(1, other.runs)
        for name, rounds in other.phase_rounds.items():
            self.phase_rounds[name] = self.phase_rounds.get(name, 0) + rounds
        return self

    def meta_rounds(self, n: int) -> int:
        """Round count expressed in meta-rounds of ``Θ(log n)`` rounds."""
        factor = max(1, math.ceil(math.log2(max(n, 2))))
        return math.ceil(self.rounds / factor)


@dataclass(frozen=True)
class AnalyticRoundCost:
    """An analytic round bound for a subroutine we substitute.

    Where the paper invokes an external optimal routine (Kutten–Peleg MST,
    Ghaffari–Kuhn min-cut), our simulator runs a simpler correct substitute;
    alongside the measured rounds we report the cited routine's analytic
    bound so complexity-shape plots can use either (DESIGN.md Section 5).
    """

    name: str
    rounds: float

    @staticmethod
    def kutten_peleg_mst(n: int, diameter: int) -> "AnalyticRoundCost":
        """O(D + sqrt(n) log* n) of [37] (log* ≈ small constant)."""
        log_star = _log_star(n)
        return AnalyticRoundCost(
            "kutten-peleg-mst", diameter + math.sqrt(n) * log_star
        )

    @staticmethod
    def thurimella_components(n: int, diameter: int, d_prime: int) -> "AnalyticRoundCost":
        """O(min{D', D + sqrt(n) log* n}) of Theorem B.2."""
        log_star = _log_star(n)
        return AnalyticRoundCost(
            "thurimella-components",
            min(d_prime, diameter + math.sqrt(n) * log_star),
        )

    @staticmethod
    def ghaffari_kuhn_mincut(n: int, diameter: int) -> "AnalyticRoundCost":
        """O((D + sqrt(n) log* n) log^2 n log log n) of [21]."""
        log_star = _log_star(n)
        log_n = max(1.0, math.log2(max(n, 2)))
        return AnalyticRoundCost(
            "ghaffari-kuhn-mincut",
            (diameter + math.sqrt(n) * log_star)
            * log_n**2
            * max(1.0, math.log2(log_n + 1)),
        )


def _log_star(n: int) -> int:
    """Iterated logarithm (base 2) of ``n``."""
    count = 0
    value = float(max(n, 1))
    while value > 1.0:
        value = math.log2(value) if value > 1 else 0.0
        count += 1
        if count > 10:
            break
    return max(1, count)


@dataclass
class RoundReport:
    """Measured + analytic round costs for a composite algorithm run."""

    measured: SimulationMetrics
    analytic: List[AnalyticRoundCost] = field(default_factory=list)

    def analytic_total(self) -> float:
        return sum(cost.rounds for cost in self.analytic)
