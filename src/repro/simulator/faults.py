"""Fault injection for the round simulator.

The paper's model is synchronous and reliable; its w.h.p. guarantees say
nothing about crashes or loss. The test suite nevertheless needs to
*exercise failure paths*: that the Appendix E tester flags packings
broken by silent nodes, that quiescence-based protocols stall (rather
than return wrong answers silently) when the network misbehaves, and
that retransmitting primitives tolerate loss. This module provides the
machinery:

* :class:`FaultPlan` — a declarative schedule of crash rounds, an i.i.d.
  message drop probability, and a deterministic per-edge drop schedule,
  consumed by :class:`~repro.simulator.runner.SyncRunner`.
* :class:`RetransmittingFloodProgram` — a loss-tolerant extremum flood
  (rebroadcasts every round for a fixed horizon), the positive control
  showing the fault plumbing composes with real protocols.

A crashed node stops executing and transmitting from its crash round
onward (crash-stop; no recovery). Random drops are per-message, decided
by the plan's generator; scheduled drops name exact (sender, receiver,
round) deliveries, so adversarial-loss tests are *exactly* reproducible
— no RNG involved. The plan's generator follows the shared
``ensure_rng`` seed path end to end: give the plan a seed directly, or
leave it unset and :class:`~repro.simulator.runner.SyncRunner` derives
it from the run seed at construction, so one seed pins the whole faulty
execution on every path (scenario, :func:`simulate_with_faults`, or a
bare runner).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    Any,
    Dict,
    FrozenSet,
    Hashable,
    Iterable,
    Optional,
    Tuple,
)

from repro.errors import GraphValidationError
from repro.simulator.message import Message
from repro.simulator.network import Network
from repro.simulator.node import Context, NodeProgram
from repro.simulator.runner import Model, SimulationResult, SyncRunner
from repro.utils.rng import RngLike, ensure_rng

# A directed delivery: (sender, receiver).
DirectedEdge = Tuple[Hashable, Hashable]


@dataclass
class FaultPlan:
    """A reproducible schedule of crash-stop and message-loss faults.

    ``crash_rounds`` maps node → first round at which the node is dead
    (``0`` kills it before its ``on_start`` traffic is delivered).
    ``drop_probability`` applies independently to every (message,
    receiver) pair of non-crashed senders. ``drop_schedule`` maps a
    *directed* ``(sender, receiver)`` pair to the set of rounds in which
    that delivery is deterministically destroyed — the adversarial
    counterpart to the i.i.d. noise (scheduled drops never consume plan
    randomness, so adding them does not perturb the random drops of a
    seeded run).
    """

    drop_probability: float = 0.0
    crash_rounds: Dict[Hashable, int] = field(default_factory=dict)
    drop_schedule: Dict[DirectedEdge, FrozenSet[int]] = field(
        default_factory=dict
    )
    rng: RngLike = None

    def __post_init__(self) -> None:
        if not 0.0 <= self.drop_probability <= 1.0:
            raise GraphValidationError(
                "drop_probability must lie in [0, 1]"
            )
        for node, crash_round in self.crash_rounds.items():
            if crash_round < 0:
                raise GraphValidationError(
                    f"crash round for {node!r} must be >= 0"
                )
        normalized: Dict[DirectedEdge, FrozenSet[int]] = {}
        for edge, rounds in self.drop_schedule.items():
            if len(edge) != 2:
                raise GraphValidationError(
                    f"drop_schedule keys must be (sender, receiver) pairs; "
                    f"got {edge!r}"
                )
            round_set = frozenset(rounds)
            if any(round_no < 0 for round_no in round_set):
                raise GraphValidationError(
                    f"drop rounds for {edge!r} must be >= 0"
                )
            normalized[edge] = round_set
        self.drop_schedule = normalized
        self._rand = ensure_rng(self.rng)

    def reseed(self, rng: RngLike) -> "FaultPlan":
        """Rebind the plan's drop generator (returns self).

        This is the hook :class:`~repro.simulator.runner.SyncRunner`
        uses to derive the plan's randomness from the shared run seed
        when the plan was built without one (``rng`` stays ``None``, so
        every runner construction re-derives — reusing one plan object
        across identically-seeded runners stays reproducible).
        """
        self._rand = ensure_rng(rng)
        return self

    def is_crashed(self, node: Hashable, round_no: int) -> bool:
        """Whether ``node`` is dead during ``round_no``."""
        crash_round = self.crash_rounds.get(node)
        return crash_round is not None and round_no >= crash_round

    def should_drop(self) -> bool:
        """Decide one i.i.d. message delivery (stateful; call once per
        delivery). Kept for the reference engine and direct callers; the
        indexed engine calls :meth:`drops`."""
        if self.drop_probability <= 0.0:
            return False
        return self._rand.random() < self.drop_probability

    def drops(
        self, sender: Hashable, receiver: Hashable, round_no: int
    ) -> bool:
        """Whether the ``sender → receiver`` delivery of ``round_no`` is
        lost — scheduled drops first (deterministic, no RNG), then the
        i.i.d. coin (consumes one draw per call when enabled)."""
        if self.drop_schedule:
            scheduled = self.drop_schedule.get((sender, receiver))
            if scheduled is not None and round_no in scheduled:
                return True
        if self.drop_probability <= 0.0:
            return False
        return self._rand.random() < self.drop_probability


class RetransmittingFloodProgram(NodeProgram):
    """Extremum flood that rebroadcasts every round for ``horizon`` rounds.

    Unlike the quiescence-driven
    :class:`~repro.simulator.algorithms.flooding.ExtremumFloodProgram`,
    this program keeps transmitting its current best whether or not it
    improved, so any individual message loss is repaired by the next
    round's retransmission. With drop probability ``p`` and horizon
    ``h ≥ D / (1 − p)`` plus slack, the flood completes w.h.p.
    """

    def __init__(self, value: Any, horizon: int, minimize: bool = True) -> None:
        if horizon < 1:
            raise GraphValidationError("horizon must be >= 1")
        self._best = value
        self._horizon = horizon
        self._minimize = minimize

    def _better(self, candidate: Any) -> bool:
        if self._best is None:
            return candidate is not None
        if candidate is None:
            return False
        if self._minimize:
            return candidate < self._best
        return candidate > self._best

    def on_start(self, ctx: Context):
        ctx.output = self._best
        return self._best

    def on_round(self, ctx: Context, inbox: Dict[Hashable, Message]):
        for message in inbox.values():
            if self._better(message.payload):
                self._best = message.payload
        ctx.output = self._best
        if ctx.round >= self._horizon:
            ctx.halt(self._best)
            return None
        return self._best


def simulate_with_faults(
    network: Network,
    program_factory,
    fault_plan: FaultPlan,
    model: Model = Model.V_CONGEST,
    max_rounds: int = 100_000,
    bits_per_message: Optional[int] = None,
    rng: RngLike = None,
) -> SimulationResult:
    """Run a simulation under a :class:`FaultPlan`.

    Thin wrapper over :class:`~repro.simulator.runner.SyncRunner` with the
    plan attached; see the runner for semantics of the return value.

    If the plan was built without its own ``rng``, its drop generator is
    derived from this function's ``rng`` (one :func:`fresh_seed` draw
    inside :class:`SyncRunner`), so a single seed reproduces the entire
    faulty run — context randomness *and* message losses.
    """
    rand = ensure_rng(rng)
    runner = SyncRunner(
        network,
        model=model,
        bits_per_message=bits_per_message,
        rng=rand,
        fault_plan=fault_plan,
    )
    return runner.run(program_factory, max_rounds=max_rounds)
