"""Fault injection for the round simulator.

The paper's model is synchronous and reliable; its w.h.p. guarantees say
nothing about crashes or loss. The test suite nevertheless needs to
*exercise failure paths*: that the Appendix E tester flags packings
broken by silent nodes, that quiescence-based protocols stall (rather
than return wrong answers silently) when the network misbehaves, and
that retransmitting primitives tolerate loss. This module provides the
machinery:

* :class:`FaultPlan` — a declarative schedule of crash rounds, an i.i.d.
  message drop probability, and a deterministic per-edge drop schedule,
  consumed by :class:`~repro.simulator.runner.SyncRunner`.
* :class:`RetransmittingFloodProgram` — a loss-tolerant extremum flood
  (rebroadcasts every round for a fixed horizon), the positive control
  showing the fault plumbing composes with real protocols.

A crashed node stops executing and transmitting from its crash round
onward (crash-stop; no recovery). Random drops are decided per delivery
by a **pure function of (plan seed, directed edge, round)** — sha256 of
the three, thresholded against ``drop_probability`` — so the decision
for a given delivery is the same no matter which engine evaluates it or
in which order deliveries are iterated. This order-independence is what
lets the sharded engine (:mod:`repro.simulator.runner_sharded`) evaluate
drops shard-locally and still reproduce a single-process faulty run bit
for bit; it also means a fault sweep's losses depend only on the seed,
never on incidental engine iteration order. Scheduled drops name exact
(sender, receiver, round) deliveries — no RNG involved at all. The
plan's seed follows the shared ``ensure_rng`` path end to end: give the
plan a seed directly, or leave it unset and
:class:`~repro.simulator.runner.SyncRunner` derives one from the run
seed at construction, so one seed pins the whole faulty execution on
every path (scenario, :func:`simulate_with_faults`, or a bare runner).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import (
    Any,
    Dict,
    FrozenSet,
    Hashable,
    Iterable,
    Optional,
    Tuple,
)

from repro.errors import GraphValidationError
from repro.simulator.message import Message
from repro.simulator.network import Network
from repro.simulator.node import Context, NodeProgram
from repro.simulator.runner import Model, SimulationResult, SyncRunner
from repro.utils.rng import RngLike, ensure_rng, fresh_seed

# A directed delivery: (sender, receiver).
DirectedEdge = Tuple[Hashable, Hashable]

#: Bound on the per-edge digest-prefix cache. A million-delivery sweep
#: over a large clique visits O(n²) directed edges; retaining state per
#: edge forever would grow the plan without limit, so the cache is
#: cleared wholesale when full (same policy as the payload-size memo in
#: :mod:`repro.simulator.message`) — correctness is unaffected because
#: the prefix is a pure function of (seed, edge).
_EDGE_PREFIX_CACHE_MAX = 1 << 16


@dataclass
class FaultPlan:
    """A reproducible schedule of crash-stop and message-loss faults.

    ``crash_rounds`` maps node → first round at which the node is dead
    (``0`` kills it before its ``on_start`` traffic is delivered).
    ``drop_probability`` applies independently to every (message,
    receiver) pair of non-crashed senders; each decision is a pure
    function of the plan seed, the directed edge, and the round (see
    :meth:`drops`), so the loss pattern of a seeded plan is fixed before
    the run starts and independent of delivery iteration order.
    ``drop_schedule`` maps a *directed* ``(sender, receiver)`` pair to
    the set of rounds in which that delivery is deterministically
    destroyed — the adversarial counterpart to the i.i.d. noise
    (scheduled drops involve no randomness, so adding them does not
    perturb the random drops of a seeded run).
    """

    drop_probability: float = 0.0
    crash_rounds: Dict[Hashable, int] = field(default_factory=dict)
    drop_schedule: Dict[DirectedEdge, FrozenSet[int]] = field(
        default_factory=dict
    )
    rng: RngLike = None

    def __post_init__(self) -> None:
        if not 0.0 <= self.drop_probability <= 1.0:
            raise GraphValidationError(
                "drop_probability must lie in [0, 1]"
            )
        for node, crash_round in self.crash_rounds.items():
            if crash_round < 0:
                raise GraphValidationError(
                    f"crash round for {node!r} must be >= 0"
                )
        normalized: Dict[DirectedEdge, FrozenSet[int]] = {}
        for edge, rounds in self.drop_schedule.items():
            if len(edge) != 2:
                raise GraphValidationError(
                    f"drop_schedule keys must be (sender, receiver) pairs; "
                    f"got {edge!r}"
                )
            round_set = frozenset(rounds)
            if any(round_no < 0 for round_no in round_set):
                raise GraphValidationError(
                    f"drop rounds for {edge!r} must be >= 0"
                )
            normalized[edge] = round_set
        self.drop_schedule = normalized
        self._bind_seed(self.rng)

    def _bind_seed(self, rng: RngLike) -> None:
        """Fix the integer seed the per-edge drop streams derive from.

        An explicit int seed is used verbatim (so the same int always
        reproduces the same loss pattern); a generator contributes one
        :func:`fresh_seed` draw; ``None`` falls back to OS entropy (the
        runner replaces it with a run-seed derivation via
        :meth:`reseed` before any delivery is decided).
        """
        if isinstance(rng, bool):
            raise GraphValidationError("rng must be None, int, or Random")
        if isinstance(rng, int):
            self._drop_seed = rng
        else:
            self._drop_seed = fresh_seed(ensure_rng(rng))
        # Per-edge digest-prefix *bytes* (not hasher objects — a retained
        # hashlib handle per edge is both heavier and unpicklable),
        # derived lazily from the bound seed and bounded by
        # :data:`_EDGE_PREFIX_CACHE_MAX`.
        self._edge_prefixes: Dict[DirectedEdge, bytes] = {}

    def reseed(self, rng: RngLike) -> "FaultPlan":
        """Rebind the plan's drop randomness (returns self).

        This is the hook :class:`~repro.simulator.runner.SyncRunner`
        uses to derive the plan's randomness from the shared run seed
        when the plan was built without one (``rng`` stays ``None``, so
        every runner construction re-derives — reusing one plan object
        across identically-seeded runners stays reproducible).
        """
        self._bind_seed(rng)
        return self

    def is_crashed(self, node: Hashable, round_no: int) -> bool:
        """Whether ``node`` is dead during ``round_no``."""
        crash_round = self.crash_rounds.get(node)
        return crash_round is not None and round_no >= crash_round

    def drops(
        self, sender: Hashable, receiver: Hashable, round_no: int
    ) -> bool:
        """Whether the ``sender → receiver`` delivery of ``round_no`` is
        lost — scheduled drops first (deterministic), then the i.i.d.
        coin.

        The coin is a *pure function* of ``(seed, sender, receiver,
        round)``: sha256 over the plan seed and the canonical directed
        edge key (``repr`` of the endpoints, stable across processes and
        hash seeds) yields a uniform 64-bit value thresholded against
        ``drop_probability``. No shared stream is consumed, so the
        decision does not depend on how many other deliveries were
        decided first — engines, shards, and sweeps may evaluate
        deliveries in any order and agree on every loss.
        """
        if self.drop_schedule:
            scheduled = self.drop_schedule.get((sender, receiver))
            if scheduled is not None and round_no in scheduled:
                return True
        if self.drop_probability <= 0.0:
            return False
        edge = (sender, receiver)
        prefix = self._edge_prefixes.get(edge)
        if prefix is None:
            prefix = f"{self._drop_seed}|{sender!r}->{receiver!r}|".encode(
                "utf-8"
            )
            if len(self._edge_prefixes) >= _EDGE_PREFIX_CACHE_MAX:
                self._edge_prefixes.clear()
            self._edge_prefixes[edge] = prefix
        coin = hashlib.sha256(prefix + str(round_no).encode("ascii"))
        draw = int.from_bytes(coin.digest()[:8], "big") / 2.0**64
        return draw < self.drop_probability

    def describe(self) -> Dict[str, Any]:
        """JSON-clean summary of the plan's configuration (the bound
        seed included, so a result envelope pins the exact loss
        pattern). ``drop_schedule`` serializes as a sorted list of
        ``[sender, receiver, [rounds…]]`` rows — JSON objects cannot key
        on tuples."""
        return {
            "drop_probability": self.drop_probability,
            "crash_rounds": {
                repr(node): round_no
                for node, round_no in sorted(
                    self.crash_rounds.items(), key=repr
                )
            },
            "drop_schedule": sorted(
                (
                    [edge[0], edge[1], sorted(rounds)]
                    for edge, rounds in self.drop_schedule.items()
                ),
                key=repr,
            ),
            "seed": self._drop_seed,
        }


class RetransmittingFloodProgram(NodeProgram):
    """Extremum flood that rebroadcasts every round for ``horizon`` rounds.

    Unlike the quiescence-driven
    :class:`~repro.simulator.algorithms.flooding.ExtremumFloodProgram`,
    this program keeps transmitting its current best whether or not it
    improved, so any individual message loss is repaired by the next
    round's retransmission. With drop probability ``p`` and horizon
    ``h ≥ D / (1 − p)`` plus slack, the flood completes w.h.p.
    """

    def __init__(self, value: Any, horizon: int, minimize: bool = True) -> None:
        if horizon < 1:
            raise GraphValidationError("horizon must be >= 1")
        self._best = value
        self._horizon = horizon
        self._minimize = minimize

    def _better(self, candidate: Any) -> bool:
        if self._best is None:
            return candidate is not None
        if candidate is None:
            return False
        if self._minimize:
            return candidate < self._best
        return candidate > self._best

    def on_start(self, ctx: Context):
        ctx.output = self._best
        return self._best

    def on_round(self, ctx: Context, inbox: Dict[Hashable, Message]):
        for message in inbox.values():
            if self._better(message.payload):
                self._best = message.payload
        ctx.output = self._best
        if ctx.round >= self._horizon:
            ctx.halt(self._best)
            return None
        return self._best


def simulate_with_faults(
    network: Network,
    program_factory,
    fault_plan: FaultPlan,
    model: Model = Model.V_CONGEST,
    max_rounds: int = 100_000,
    bits_per_message: Optional[int] = None,
    rng: RngLike = None,
) -> SimulationResult:
    """Run a simulation under a :class:`FaultPlan`.

    Thin wrapper over :class:`~repro.simulator.runner.SyncRunner` with the
    plan attached; see the runner for semantics of the return value.

    If the plan was built without its own ``rng``, its drop generator is
    derived from this function's ``rng`` (one :func:`fresh_seed` draw
    inside :class:`SyncRunner`), so a single seed reproduces the entire
    faulty run — context randomness *and* message losses.
    """
    rand = ensure_rng(rng)
    runner = SyncRunner(
        network,
        model=model,
        bits_per_message=bits_per_message,
        rng=rand,
        fault_plan=fault_plan,
    )
    return runner.run(program_factory, max_rounds=max_rounds)
