"""Disjoint-set forests (union-find).

Appendix C of the paper keeps track of the connected components of each
class's induced subgraph with disjoint-set data structures; this is the
concrete implementation used by the centralized CDS-packing driver and by
several verification helpers.

Supports arbitrary hashable elements, lazy insertion, union by size, and
path compression, giving effectively-constant amortized operations.

The packing hot paths use the integer-specialized
:class:`~repro.fastgraph.union_find.IntUnionFind` instead (flat lists,
no hashing); it is re-exported here so both forests are importable from
one place.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, Iterator, List, Optional

from repro.fastgraph.union_find import IntUnionFind

__all__ = ["IntUnionFind", "UnionFind"]


class UnionFind:
    """Disjoint-set forest over arbitrary hashable elements.

    Elements are added lazily on first use, or eagerly via
    :meth:`add`/:meth:`add_all`. ``find`` uses path compression and
    ``union`` uses union-by-size.
    """

    def __init__(self, elements: Optional[Iterable[Hashable]] = None) -> None:
        self._parent: Dict[Hashable, Hashable] = {}
        self._size: Dict[Hashable, int] = {}
        self._components = 0
        if elements is not None:
            self.add_all(elements)

    def __len__(self) -> int:
        """Number of elements tracked."""
        return len(self._parent)

    def __contains__(self, x: Hashable) -> bool:
        return x in self._parent

    def __iter__(self) -> Iterator[Hashable]:
        return iter(self._parent)

    @property
    def n_components(self) -> int:
        """Current number of disjoint sets."""
        return self._components

    def add(self, x: Hashable) -> None:
        """Add ``x`` as a singleton set (no-op if already present)."""
        if x not in self._parent:
            self._parent[x] = x
            self._size[x] = 1
            self._components += 1

    def add_all(self, elements: Iterable[Hashable]) -> None:
        """Add every element of ``elements`` as a singleton set."""
        for x in elements:
            self.add(x)

    def find(self, x: Hashable) -> Hashable:
        """Return the representative of ``x``'s set, adding ``x`` if new."""
        if x not in self._parent:
            self.add(x)
            return x
        root = x
        while self._parent[root] != root:
            root = self._parent[root]
        # Path compression: point every node on the path directly at root.
        while self._parent[x] != root:
            self._parent[x], x = root, self._parent[x]
        return root

    def union(self, x: Hashable, y: Hashable) -> bool:
        """Merge the sets containing ``x`` and ``y``.

        Returns ``True`` if a merge happened, ``False`` if they were
        already in the same set.
        """
        rx, ry = self.find(x), self.find(y)
        if rx == ry:
            return False
        if self._size[rx] < self._size[ry]:
            rx, ry = ry, rx
        self._parent[ry] = rx
        self._size[rx] += self._size[ry]
        del self._size[ry]
        self._components -= 1
        return True

    def connected(self, x: Hashable, y: Hashable) -> bool:
        """Whether ``x`` and ``y`` are currently in the same set."""
        return self.find(x) == self.find(y)

    def component_size(self, x: Hashable) -> int:
        """Size of the set containing ``x``."""
        return self._size[self.find(x)]

    def components(self) -> List[List[Hashable]]:
        """Materialize all sets as lists (ordered by first insertion)."""
        groups: Dict[Hashable, List[Hashable]] = {}
        for x in self._parent:
            groups.setdefault(self.find(x), []).append(x)
        return list(groups.values())

    def representatives(self) -> List[Hashable]:
        """One representative per set."""
        return [x for x in self._parent if self.find(x) == x]
