"""Random sampling primitives (Section 5.2 and [12]).

Two samplers drive the paper's reductions:

* :func:`karger_edge_partition` — Karger's random edge partition
  [31, Theorem 2.1]: placing every edge of a graph with edge connectivity
  ``λ`` uniformly into one of ``η`` subgraphs, with ``λ/η ≥ Θ(log n / ε²)``,
  yields subgraphs each with edge connectivity ``(λ/η)(1 ± ε)`` w.h.p.
  Section 5.2 uses this to reduce general-λ spanning tree packing to the
  ``λ = O(log n)`` case.
* :func:`sample_vertices` — the vertex sampling of [12]: each vertex kept
  with probability ``p``; the remaining connectivity ``κ`` governs the
  integral dominating tree packing size ``Ω(κ / log² n)``.
"""

from __future__ import annotations

from typing import Hashable, List, Set

import networkx as nx

from repro.errors import GraphValidationError
from repro.utils.rng import RngLike, ensure_rng


def karger_edge_index_partition(
    m: int, parts: int, rng: RngLike = None
) -> List[int]:
    """Karger's partition over edge *indices*: part id per edge.

    Returns ``assignment`` with ``assignment[i]`` the uniform part of
    edge ``i`` (one ``randrange`` draw per index, in index order — the
    same draw sequence :func:`karger_edge_partition` consumes, so both
    forms agree under a shared seed). The index form is what the
    :mod:`repro.fastgraph` hot paths consume; no graphs are built.
    """
    if parts < 1:
        raise GraphValidationError("parts must be >= 1")
    if m < 0:
        raise GraphValidationError("m must be >= 0")
    rand = ensure_rng(rng)
    return [rand.randrange(parts) for _ in range(m)]


def karger_edge_partition(
    graph: nx.Graph, parts: int, rng: RngLike = None
) -> List[nx.Graph]:
    """Partition edges uniformly at random into ``parts`` spanning subgraphs.

    Each returned subgraph carries *all* nodes of ``graph`` (so that a
    spanning tree of a part, when connected, spans the original graph) and
    a disjoint share of the edges. The union of the parts' edge sets is
    exactly ``graph``'s edge set.
    """
    assignment = karger_edge_index_partition(
        graph.number_of_edges(), parts, rng
    )
    subgraphs = []
    for _ in range(parts):
        part = nx.Graph()
        part.add_nodes_from(graph.nodes())
        subgraphs.append(part)
    for (u, v), part_id in zip(graph.edges(), assignment):
        subgraphs[part_id].add_edge(u, v)
    return subgraphs


def choose_karger_parts(lam: int, n: int, epsilon: float = 0.25) -> int:
    """Number of parts η so that λ/η ∈ [20·ln n/ε², 60·ln n/ε²] (Section 5.2).

    Returns 1 when λ is already O(log n) (no split needed). Uses the
    paper's constants with natural logarithms.
    """
    import math

    if lam < 1:
        raise GraphValidationError("lam must be >= 1")
    threshold = 20.0 * math.log(max(n, 2)) / (epsilon**2)
    if lam <= 3 * threshold:
        return 1
    # Pick η = floor(λ / (2·threshold)), which puts λ/η in [2t, 3t] ⊂ [t, 3t].
    eta = max(1, int(lam // (2 * threshold)))
    return eta


def sample_vertices(
    graph: nx.Graph, p: float = 0.5, rng: RngLike = None
) -> Set[Hashable]:
    """Keep each vertex independently with probability ``p`` ([12])."""
    if not 0.0 <= p <= 1.0:
        raise GraphValidationError("p must be in [0, 1]")
    rand = ensure_rng(rng)
    return {v for v in graph.nodes() if rand.random() < p}


def partition_vertices(
    graph: nx.Graph, parts: int, rng: RngLike = None
) -> List[Set[Hashable]]:
    """Assign each vertex uniformly to one of ``parts`` disjoint groups.

    The random-layering step behind the integral dominating tree packing
    (Section 1.2, "Integral Tree Packings") starts from such a partition.
    """
    if parts < 1:
        raise GraphValidationError("parts must be >= 1")
    rand = ensure_rng(rng)
    groups: List[Set[Hashable]] = [set() for _ in range(parts)]
    for v in graph.nodes():
        groups[rand.randrange(parts)].add(v)
    return groups
