"""Graph substrate: data structures, generators, and connectivity oracles.

This subpackage provides everything the decomposition algorithms assume about
graphs: the disjoint-set forests of Appendix C, the graph families used by
the experiments, exact connectivity oracles (for ground truth), Menger path
extraction, Karger's random edge partition (Section 5.2), and
Thurimella-style sparse connectivity certificates.
"""

from repro.graphs.union_find import UnionFind
from repro.graphs.generators import (
    clique_chain,
    fat_cycle,
    gnp_connected,
    harary_graph,
    hypercube,
    random_k_connected,
    random_regular_connected,
    torus_grid,
)
from repro.graphs.connectivity import (
    edge_connectivity,
    is_connected_dominating_set,
    is_dominating_set,
    menger_edge_paths,
    menger_vertex_paths,
    min_vertex_cut,
    vertex_connectivity,
)
from repro.graphs.sampling import karger_edge_partition, sample_vertices
from repro.graphs.sparse_certificates import sparse_connectivity_certificate

__all__ = [
    "UnionFind",
    "clique_chain",
    "fat_cycle",
    "gnp_connected",
    "harary_graph",
    "hypercube",
    "random_k_connected",
    "random_regular_connected",
    "torus_grid",
    "edge_connectivity",
    "is_connected_dominating_set",
    "is_dominating_set",
    "menger_edge_paths",
    "menger_vertex_paths",
    "min_vertex_cut",
    "vertex_connectivity",
    "karger_edge_partition",
    "sample_vertices",
    "sparse_connectivity_certificate",
]
