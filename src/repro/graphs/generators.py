"""Graph families used throughout the experiments.

The paper's guarantees are parameterized by vertex connectivity ``k``, edge
connectivity ``λ``, diameter ``D``, and size ``n``. These generators span
that parameter space:

* :func:`harary_graph` — the classical minimally-k-connected graph
  (connectivity exactly ``k`` with the fewest edges).
* :func:`random_k_connected` — G(n, p) conditioned on vertex connectivity
  at least ``k`` (dense, small diameter).
* :func:`clique_chain` — a path of cliques: connectivity ``k`` with
  diameter ``Θ(n/k)``, the extremal family for the ``Õ(n/k)`` tree-diameter
  bound of Theorem 1.1.
* :func:`fat_cycle` — a cycle of super-nodes, each blown up into ``w``
  vertices; vertex connectivity ``2w``, large diameter.
* :func:`hypercube`, :func:`torus_grid`, :func:`random_regular_connected`,
  :func:`gnp_connected` — standard families with known connectivity.

All generators return simple undirected :class:`networkx.Graph` objects
with integer node labels, and are deterministic under an explicit seed.
"""

from __future__ import annotations

import itertools
from typing import Optional

import networkx as nx

from repro.errors import GraphValidationError
from repro.utils.rng import RngLike, ensure_rng


def _relabel_to_ints(graph: nx.Graph) -> nx.Graph:
    """Relabel nodes to 0..n-1 preserving sorted order of string repr."""
    mapping = {node: i for i, node in enumerate(sorted(graph.nodes(), key=str))}
    return nx.relabel_nodes(graph, mapping)


def harary_graph(k: int, n: int) -> nx.Graph:
    """The Harary graph H(k, n): k-connected with ``⌈kn/2⌉`` edges.

    Classical construction: nodes on a cycle, each connected to the
    ``⌊k/2⌋`` nearest on each side; for odd ``k`` also to the antipode.
    Vertex and edge connectivity are both exactly ``k``.
    """
    if k < 2:
        raise GraphValidationError("harary_graph requires k >= 2")
    if n <= k:
        raise GraphValidationError("harary_graph requires n > k")
    graph = nx.Graph()
    graph.add_nodes_from(range(n))
    half = k // 2
    for offset in range(1, half + 1):
        for v in range(n):
            graph.add_edge(v, (v + offset) % n)
    if k % 2 == 1:
        if n % 2 == 0:
            for v in range(n // 2):
                graph.add_edge(v, v + n // 2)
        else:
            # Odd n: connect node i to i + (n-1)/2 and i + (n+1)/2 for i=0
            # following Harary's construction for odd k, odd n.
            for v in range(n // 2 + 1):
                graph.add_edge(v, (v + n // 2) % n)
    return graph


def random_k_connected(
    n: int, k: int, rng: RngLike = None, max_tries: int = 200
) -> nx.Graph:
    """A random graph on ``n`` nodes with vertex connectivity >= ``k``.

    Starts from a Harary backbone H(k, n) (guaranteeing connectivity k)
    and adds random edges with probability ``2k/n``, which typically
    raises the connectivity slightly above ``k`` while keeping the graph
    sparse. The exact connectivity can be recovered with
    :func:`repro.graphs.connectivity.vertex_connectivity`.
    """
    rand = ensure_rng(rng)
    if n <= k + 1:
        return nx.complete_graph(n)
    graph = harary_graph(max(k, 2), n)
    p = min(1.0, 2.0 * k / n)
    nodes = list(graph.nodes())
    for _ in range(max_tries):
        for u, v in itertools.combinations(nodes, 2):
            if rand.random() < p:
                graph.add_edge(u, v)
        return graph
    return graph


def clique_chain(k: int, length: int) -> nx.Graph:
    """A chain of ``length`` k-cliques, consecutive cliques fully joined.

    Vertex connectivity is exactly ``k`` (cutting one clique's nodes
    separates the chain) and the diameter is ``length - 1``. With
    ``n = k * length``, this realizes diameter ``Θ(n/k)`` — the extremal
    regime for Theorem 1.1's tree-diameter bound.
    """
    if k < 1 or length < 1:
        raise GraphValidationError("clique_chain requires k >= 1, length >= 1")
    graph = nx.Graph()
    for block in range(length):
        members = [block * k + i for i in range(k)]
        graph.add_nodes_from(members)
        graph.add_edges_from(itertools.combinations(members, 2))
        if block > 0:
            prev = [(block - 1) * k + i for i in range(k)]
            graph.add_edges_from(
                (u, v) for u in prev for v in members
            )
    return graph


def fat_cycle(width: int, length: int) -> nx.Graph:
    """A cycle of ``length`` super-nodes, each a clique of ``width`` nodes.

    Consecutive super-nodes are fully joined, so every vertex cut must
    remove two full super-nodes: vertex connectivity is ``2 * width``
    (for ``length >= 4``) while the diameter is ``⌊length/2⌋``.
    """
    if width < 1 or length < 3:
        raise GraphValidationError("fat_cycle requires width >= 1, length >= 3")
    graph = nx.Graph()
    for block in range(length):
        members = [block * width + i for i in range(width)]
        graph.add_nodes_from(members)
        graph.add_edges_from(itertools.combinations(members, 2))
    for block in range(length):
        cur = [block * width + i for i in range(width)]
        nxt = [((block + 1) % length) * width + i for i in range(width)]
        graph.add_edges_from((u, v) for u in cur for v in nxt)
    return graph


def hypercube(dimension: int) -> nx.Graph:
    """The d-dimensional hypercube: n = 2^d, connectivity exactly d."""
    if dimension < 1:
        raise GraphValidationError("hypercube requires dimension >= 1")
    return _relabel_to_ints(nx.hypercube_graph(dimension))


def torus_grid(rows: int, cols: int) -> nx.Graph:
    """A 2D torus (wrap-around grid): 4-regular, connectivity 4."""
    if rows < 3 or cols < 3:
        raise GraphValidationError("torus_grid requires rows, cols >= 3")
    return _relabel_to_ints(nx.grid_2d_graph(rows, cols, periodic=True))


def random_regular_connected(
    degree: int, n: int, rng: RngLike = None, max_tries: int = 50
) -> nx.Graph:
    """A connected random ``degree``-regular graph.

    Random regular graphs are w.h.p. ``degree``-connected expanders,
    making them the canonical "high connectivity, low diameter" family.
    Retries until connected (failure is exponentially unlikely).
    """
    rand = ensure_rng(rng)
    if degree * n % 2 != 0:
        raise GraphValidationError("degree * n must be even")
    if degree >= n:
        raise GraphValidationError("degree must be < n")
    for _ in range(max_tries):
        graph = nx.random_regular_graph(degree, n, seed=rand.randrange(2**32))
        if nx.is_connected(graph):
            return graph
    raise GraphValidationError(
        f"could not generate a connected {degree}-regular graph on {n} nodes"
    )


def gnp_connected(
    n: int, p: float, rng: RngLike = None, max_tries: int = 50
) -> nx.Graph:
    """A connected Erdős–Rényi G(n, p) sample (resampled until connected)."""
    rand = ensure_rng(rng)
    for _ in range(max_tries):
        graph = nx.gnp_random_graph(n, p, seed=rand.randrange(2**32))
        if nx.is_connected(graph):
            return graph
    raise GraphValidationError(
        f"could not generate a connected G({n}, {p}) sample; p too small?"
    )


def circulant_expander(n: int, jumps: Optional[list] = None) -> nx.Graph:
    """A circulant graph C_n(jumps): node ``i`` joins ``i ± j`` for each jump.

    With jumps spread multiplicatively (the default: 1, 2, 4, …, ⌊√n⌋)
    the graph is a decent constant-degree expander: small diameter at
    connectivity ``2·|jumps|`` — the "well-connected but sparse" regime
    the paper's broadcast corollaries shine in.
    """
    if n < 3:
        raise GraphValidationError("n must be >= 3")
    if jumps is None:
        jumps = []
        j = 1
        while j * j <= n:
            jumps.append(j)
            j *= 2
    jumps = sorted(set(int(j) for j in jumps))
    if not jumps or jumps[0] < 1 or jumps[-1] >= (n + 1) // 2 + 1:
        raise GraphValidationError("jumps must lie in [1, n/2]")
    graph = nx.Graph()
    graph.add_nodes_from(range(n))
    for i in range(n):
        for j in jumps:
            graph.add_edge(i, (i + j) % n)
    return graph


def barbell_bottleneck(k: int, blob_size: int) -> nx.Graph:
    """Two Harary blobs joined by a k-matching: the worst-case cut.

    Vertex and edge connectivity are exactly ``k`` (the matching is the
    unique minimum cut), while both sides are much better connected
    internally — the adversarial instance for broadcast throughput (all
    inter-blob flow crosses the k bridge edges) and the shape of the
    Appendix G lower-bound topology.
    """
    if k < 1:
        raise GraphValidationError("k must be >= 1")
    if blob_size < k + 1:
        raise GraphValidationError("blob_size must exceed k")
    internal = min(2 * k, blob_size - 1)
    left = harary_graph(internal, blob_size)
    right = nx.relabel_nodes(
        harary_graph(internal, blob_size),
        {i: i + blob_size for i in range(blob_size)},
    )
    graph = nx.Graph()
    graph.update(left)
    graph.update(right)
    for i in range(k):
        graph.add_edge(i, blob_size + i)
    return graph


def random_geometric_connected(
    n: int, radius: float, rng: RngLike = None, max_tries: int = 50
) -> nx.Graph:
    """A connected random geometric graph (unit square, Euclidean radius).

    Geometric graphs have *local* structure — large diameter, strongly
    non-uniform cuts — the opposite end of the spectrum from expanders,
    which stresses the D-dependent terms of the round bounds.
    """
    if n < 2:
        raise GraphValidationError("n must be >= 2")
    if radius <= 0:
        raise GraphValidationError("radius must be positive")
    rand = ensure_rng(rng)
    for _ in range(max_tries):
        graph = nx.random_geometric_graph(
            n, radius, seed=rand.randrange(2**32)
        )
        if nx.is_connected(graph):
            for node in graph.nodes():
                graph.nodes[node].pop("pos", None)
            return graph
    raise GraphValidationError(
        f"no connected geometric sample at n={n}, radius={radius}; "
        "increase the radius"
    )
