"""Exact connectivity oracles and Menger path extraction.

These are the *ground truth* oracles the experiments compare against:
exact vertex/edge connectivity (via max-flow, through networkx), minimum
vertex cuts, the disjoint path systems promised by Menger's theorem
([10, Chapter 9] in the paper), and domination/CDS predicates (Section 2).

The decomposition algorithms themselves never need these oracles (that is
the point of the paper); the test suite and benchmark harness use them to
measure achieved packing sizes against true connectivity.
"""

from __future__ import annotations

from typing import Hashable, Iterable, List, Set

import networkx as nx

from repro.errors import GraphValidationError


def _require_graph(graph: nx.Graph) -> None:
    if graph.number_of_nodes() == 0:
        raise GraphValidationError("graph must be non-empty")


def vertex_connectivity(graph: nx.Graph) -> int:
    """Exact vertex connectivity ``k`` of ``graph``.

    By convention, the complete graph K_n has connectivity ``n - 1`` and a
    disconnected graph has connectivity 0.
    """
    _require_graph(graph)
    n = graph.number_of_nodes()
    if n == 1:
        return 0
    if not nx.is_connected(graph):
        return 0
    if graph.number_of_edges() == n * (n - 1) // 2:
        return n - 1
    return nx.node_connectivity(graph)


def edge_connectivity(graph: nx.Graph) -> int:
    """Exact edge connectivity ``λ`` of ``graph`` (0 if disconnected)."""
    _require_graph(graph)
    if graph.number_of_nodes() == 1:
        return 0
    if not nx.is_connected(graph):
        return 0
    return nx.edge_connectivity(graph)


def min_vertex_cut(graph: nx.Graph) -> Set[Hashable]:
    """A minimum vertex cut of ``graph``.

    Raises :class:`GraphValidationError` for complete graphs, which have
    no vertex cut.
    """
    _require_graph(graph)
    n = graph.number_of_nodes()
    if graph.number_of_edges() == n * (n - 1) // 2:
        raise GraphValidationError("complete graphs have no vertex cut")
    return set(nx.minimum_node_cut(graph))


def menger_vertex_paths(
    graph: nx.Graph, source: Hashable, target: Hashable
) -> List[List[Hashable]]:
    """A maximum system of internally vertex-disjoint source-target paths.

    Menger's theorem guarantees at least ``k`` such paths between any
    non-adjacent pair in a k-vertex-connected graph. Used by the tests of
    Lemma 4.3 (Connector Abundance).
    """
    _require_graph(graph)
    if source == target:
        raise GraphValidationError("source and target must differ")
    return [list(p) for p in nx.node_disjoint_paths(graph, source, target)]


def menger_edge_paths(
    graph: nx.Graph, source: Hashable, target: Hashable
) -> List[List[Hashable]]:
    """A maximum system of edge-disjoint source-target paths."""
    _require_graph(graph)
    if source == target:
        raise GraphValidationError("source and target must differ")
    return [list(p) for p in nx.edge_disjoint_paths(graph, source, target)]


def is_dominating_set(graph: nx.Graph, candidate: Iterable[Hashable]) -> bool:
    """Whether every node outside ``candidate`` has a neighbor inside it.

    This is the paper's Section 2 definition (note it does not require
    nodes *inside* the set to have neighbors in it).
    """
    members = set(candidate)
    if not members:
        return graph.number_of_nodes() == 0
    if not members <= set(graph.nodes()):
        raise GraphValidationError("candidate contains nodes not in graph")
    for node in graph.nodes():
        if node in members:
            continue
        if not any(neighbor in members for neighbor in graph.neighbors(node)):
            return False
    return True


def is_connected_dominating_set(
    graph: nx.Graph, candidate: Iterable[Hashable]
) -> bool:
    """Whether ``candidate`` is a CDS: dominating and inducing a connected
    subgraph (Section 2)."""
    members = set(candidate)
    if not members:
        return False
    if not is_dominating_set(graph, members):
        return False
    induced = graph.subgraph(members)
    return nx.is_connected(induced)


def is_dominating_tree(graph: nx.Graph, tree: nx.Graph) -> bool:
    """Whether ``tree`` is a dominating tree of ``graph``.

    Per footnote 1 of the paper: ``tree`` must be a tree using only nodes
    and edges of ``graph``, and its node set must dominate ``graph``.
    """
    if tree.number_of_nodes() == 0:
        return False
    if not set(tree.nodes()) <= set(graph.nodes()):
        return False
    for u, v in tree.edges():
        if not graph.has_edge(u, v):
            return False
    if not nx.is_tree(tree):
        return False
    return is_dominating_set(graph, tree.nodes())


def is_spanning_tree(graph: nx.Graph, tree: nx.Graph) -> bool:
    """Whether ``tree`` is a spanning tree of ``graph``."""
    if set(tree.nodes()) != set(graph.nodes()):
        return False
    for u, v in tree.edges():
        if not graph.has_edge(u, v):
            return False
    return nx.is_tree(tree)


def local_vertex_connectivity(
    graph: nx.Graph, source: Hashable, target: Hashable
) -> int:
    """Maximum number of internally vertex-disjoint source-target paths."""
    _require_graph(graph)
    return nx.connectivity.local_node_connectivity(graph, source, target)
