"""Sparse connectivity certificates (Thurimella [49] / Nagamochi–Ibaraki).

A *sparse certificate* for k-edge-connectivity is a subgraph with at most
``k·n`` edges that preserves all edge connectivity values up to ``k``. The
classical construction takes the union of ``k`` successively edge-disjoint
spanning forests (Nagamochi–Ibaraki; Thurimella gave the sublinear
distributed version cited by the paper's Theorem B.2 machinery).

The decomposition algorithms do not strictly need certificates, but they
are part of the substrate the paper builds on ([49] is the basis of the
component-identification subroutine), and the spanning-tree-packing
benchmarks use them to shrink dense inputs without changing connectivity
up to the packing size.
"""

from __future__ import annotations

from typing import List

import networkx as nx

from repro.errors import GraphValidationError
from repro.graphs.union_find import UnionFind


def spanning_forest_decomposition(graph: nx.Graph, count: int) -> List[nx.Graph]:
    """Greedily peel ``count`` edge-disjoint spanning forests off ``graph``.

    Forest ``i`` is a maximal spanning forest of the edges not used by
    forests ``0..i-1``. Standard union-find sweep; O(count · m · α(n)).
    """
    if count < 1:
        raise GraphValidationError("count must be >= 1")
    remaining = list(graph.edges())
    forests: List[nx.Graph] = []
    for _ in range(count):
        forest = nx.Graph()
        forest.add_nodes_from(graph.nodes())
        uf = UnionFind(graph.nodes())
        leftover = []
        for u, v in remaining:
            if uf.union(u, v):
                forest.add_edge(u, v)
            else:
                leftover.append((u, v))
        forests.append(forest)
        remaining = leftover
        if not remaining:
            break
    return forests


def sparse_connectivity_certificate(graph: nx.Graph, k: int) -> nx.Graph:
    """A subgraph with ≤ k·(n−1) edges preserving edge connectivity up to k.

    The union of ``k`` edge-disjoint spanning forests: any cut of value
    ``c ≤ k`` in ``graph`` has value exactly ``c`` in the certificate
    (Nagamochi–Ibaraki). Nodes are preserved.
    """
    if k < 1:
        raise GraphValidationError("k must be >= 1")
    forests = spanning_forest_decomposition(graph, k)
    certificate = nx.Graph()
    certificate.add_nodes_from(graph.nodes())
    for forest in forests:
        certificate.add_edges_from(forest.edges())
    return certificate
