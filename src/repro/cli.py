"""Command-line interface: run the decompositions from a shell.

Installed as the ``repro`` console script. Every subcommand routes
through the :mod:`repro.api` session layer — one
:class:`~repro.api.GraphSession` per invocation, typed
:class:`~repro.api.Result` envelopes underneath — so the CLI, the
library, and the batch executor all compute through the same front
door. ``--json`` on a task subcommand prints the envelope instead of
the human rendering::

    repro connectivity harary:6,24
    repro pack-cds harary:6,24 --seed 3
    repro pack-spanning hypercube:4 --seed 5 --json
    repro broadcast harary:6,24 --messages 24 --seed 7
    repro simulate harary:6,24 --program flood-min --seed 3 --trace
    repro simulate harary:4,16 --program cds_packing --model congested-clique
    repro batch jobs.json --out results.jsonl --backend process --workers 4
    repro batch jobs.json --out results.jsonl --checkpoint ck.jsonl --resume
    repro serve --port 7714
    repro shell --graph harary:6,24
    repro experiments

Graph specifications are ``family:arg1,arg2,…``:

========================  =============================================
``harary:k,n``            Harary graph, vertex connectivity exactly k
``clique_chain:k,len``    chain of cliques (large-diameter regime)
``fat_cycle:w,len``       thickened cycle, k = 2w
``hypercube:d``           d-dimensional hypercube
``torus:r,c``             r × c torus grid
``regular:d,n[,seed]``    connected random d-regular graph
``gnp:n,p[,seed]``        connected Erdős–Rényi
``complete:n``            complete graph K_n
========================  =============================================

(The table is generated from :data:`repro.api.GRAPH_FAMILIES`; run
``repro info`` for the live listing.)
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

from repro import __version__
from repro.api import GraphSession, parse_graph_spec  # noqa: F401  (re-export)
from repro.api.envelope import Result
from repro.errors import GraphValidationError, ReproError

# ``parse_graph_spec`` stays importable from here for backward
# compatibility; it now lives in (and is re-exported from) repro.api.


def _emit(args: argparse.Namespace, envelope: Result) -> bool:
    """Print the envelope when ``--json`` was passed; returns True if
    the human rendering should be skipped."""
    if getattr(args, "json", False):
        print(envelope.to_json(indent=2))
        return True
    return False


def _cmd_info(args: argparse.Namespace) -> int:
    from repro.api import family_signatures

    print(f"repro {__version__} — Distributed Connectivity Decomposition")
    print("Censor-Hillel, Ghaffari, Kuhn (PODC 2014; arXiv:1311.5317)")
    print()
    print("subpackages:")
    for name, what in [
        ("repro.api", "GraphSession front door, envelopes, batch executor"),
        ("repro.core", "CDS/spanning tree packings, testers, VC approx"),
        ("repro.simulator", "V-CONGEST / E-CONGEST round simulator"),
        ("repro.graphs", "generators, oracles, sampling, certificates"),
        ("repro.apps", "broadcast, gossip, oblivious routing, RLNC"),
        ("repro.baselines", "Dinic, Even–Tarjan, Stoer–Wagner, Roskind–Tarjan"),
        ("repro.lowerbounds", "Appendix G construction + 2-party simulation"),
    ]:
        print(f"  {name:<20} {what}")
    print()
    print("graph families:")
    for signature, description in family_signatures():
        print(f"  {signature:<22} {description}")
    return 0


def _cmd_connectivity(args: argparse.Namespace) -> int:
    session = GraphSession(args.graph)
    envelope = session.connectivity(seed=args.seed, exact=True)
    if _emit(args, envelope):
        return 0
    payload = envelope.payload
    k, lam = payload["exact_k"], payload["exact_lambda"]
    print(f"graph: {args.graph}  n={envelope.n}  m={envelope.m}")
    print(f"vertex connectivity k = {k}   (exact, Even–Tarjan)")
    print(f"edge connectivity   λ = {lam}   (exact, Stoer–Wagner)")
    contains = payload["lower_bound"] <= k <= payload["upper_bound"]
    print(
        f"Corollary 1.7 estimate: k ∈ [{payload['lower_bound']:.2f}, "
        f"{payload['upper_bound']:.2f}]  (contains k: {contains})"
    )
    return 0


def _cmd_pack_cds(args: argparse.Namespace) -> int:
    session = GraphSession(args.graph)
    envelope = session.pack_cds(seed=args.seed)
    if _emit(args, envelope):
        return 0
    payload = envelope.payload
    packing = envelope.raw.packing
    print(f"graph: {args.graph}  n={envelope.n}")
    print(f"classes requested/used/valid: "
          f"{payload['t_requested']}/{payload['t_used']}/"
          f"{payload['n_valid_classes']}")
    print(f"packing size (Σ weights): {payload['size']:.3f}")
    print(f"max node load:            {payload['max_node_load']:.3f}")
    print(f"max tree diameter:        {packing.max_diameter()}")
    if args.verbose:
        for index, wt in enumerate(packing.trees):
            print(
                f"  tree {index:>3}  class={wt.class_id:<4} "
                f"weight={wt.weight:.3f}  nodes={wt.tree.number_of_nodes()}"
            )
    packing.verify()
    print("verification: OK (domination, trees, loads)")
    return 0


def _cmd_pack_spanning(args: argparse.Namespace) -> int:
    session = GraphSession(args.graph)
    envelope = session.pack_spanning(seed=args.seed)
    if _emit(args, envelope):
        return 0
    payload = envelope.payload
    packing = envelope.raw.packing
    print(f"graph: {args.graph}  λ={payload['lam']}  "
          f"Tutte bound ⌈(λ-1)/2⌉={payload['target']}")
    print(f"packing size:   {payload['size']:.3f}")
    print(f"size / bound:   {payload['size'] / payload['target']:.3f}")
    print(f"max edge load:  {payload['max_edge_load']:.3f}")
    print(f"distinct trees: {payload['n_trees']}")
    packing.verify()
    print("verification: OK (spanning, trees, loads)")
    return 0


def _cmd_broadcast(args: argparse.Namespace) -> int:
    session = GraphSession(args.graph)
    envelope = session.broadcast(
        messages=args.messages, seed=args.seed, transport=args.transport
    )
    if _emit(args, envelope):
        return 0
    payload = envelope.payload
    print(f"graph: {args.graph}  messages={args.messages}")
    print(f"rounds:            {payload['rounds']}")
    print(f"throughput:        {payload['throughput']:.3f} msgs/round")
    print(f"max vertex congestion: {payload['max_vertex_congestion']}")
    print(f"max edge congestion:   {payload['max_edge_congestion']}")
    return 0


def _parse_crash_spec(specs: List[str]):
    """``NODE:ROUND`` pairs → crash_rounds dict (int nodes when possible)."""
    crash_rounds = {}
    for spec in specs:
        node_text, sep, round_text = spec.partition(":")
        if not sep:
            raise GraphValidationError(
                f"crash spec {spec!r} must look like NODE:ROUND"
            )
        try:
            round_no = int(round_text)
        except ValueError as exc:
            raise GraphValidationError(
                f"non-integer crash round in {spec!r}"
            ) from exc
        node = int(node_text) if node_text.lstrip("-").isdigit() else node_text
        crash_rounds[node] = round_no
    return crash_rounds


def _load_drop_schedule(path: str):
    """``--drop-schedule`` file → FaultPlan schedule dict.

    The file is a JSON list of ``[sender, receiver, [round, …]]`` rows
    (JSON-native node labels, so int nodes stay ints). Directed: a row
    silences only the ``sender → receiver`` half of an edge.
    """
    import json

    try:
        with open(path, "r", encoding="utf-8") as handle:
            rows = json.load(handle)
    except (OSError, json.JSONDecodeError) as exc:
        raise GraphValidationError(
            f"cannot read drop schedule {path!r}: {exc}"
        ) from exc
    if not isinstance(rows, list):
        raise GraphValidationError(
            "drop schedule must be a JSON list of [sender, receiver, "
            "[rounds…]] rows"
        )
    schedule = {}
    for row in rows:
        if not isinstance(row, list) or len(row) != 3:
            raise GraphValidationError(
                f"bad drop-schedule row {row!r}; expected "
                "[sender, receiver, [rounds…]]"
            )
        sender, receiver, rounds = row
        if not isinstance(rounds, list):
            raise GraphValidationError(
                f"bad rounds list in drop-schedule row {row!r}"
            )
        key = (sender, receiver)
        schedule[key] = frozenset(rounds) | schedule.get(key, frozenset())
    return schedule


def _load_corrupt_targets(path: str):
    """``--corrupt-targets`` file → frozenset of directed pairs."""
    import json

    try:
        with open(path, "r", encoding="utf-8") as handle:
            rows = json.load(handle)
    except (OSError, json.JSONDecodeError) as exc:
        raise GraphValidationError(
            f"cannot read corruption targets {path!r}: {exc}"
        ) from exc
    if not isinstance(rows, list):
        raise GraphValidationError(
            "corruption targets must be a JSON list of [sender, receiver] "
            "pairs"
        )
    targets = set()
    for row in rows:
        if not isinstance(row, list) or len(row) != 2:
            raise GraphValidationError(
                f"bad corruption-target row {row!r}; expected "
                "[sender, receiver]"
            )
        targets.add((row[0], row[1]))
    return frozenset(targets)


def _build_adversary_plan(args: argparse.Namespace):
    """The CLI's ``--corrupt-*`` flags → AdversaryPlan (or None)."""
    configured = (
        args.corrupt_rate > 0.0
        or args.corrupt_kind
        or args.corrupt_budget is not None
        or args.corrupt_round_budget is not None
        or args.corrupt_targets is not None
        or args.corrupt_seed is not None
    )
    if not configured:
        return None
    if args.corrupt_rate <= 0.0:
        raise GraphValidationError(
            "--corrupt-* flags need --corrupt-rate > 0 to take effect"
        )
    from repro.simulator.adversary import AdversaryPlan

    return AdversaryPlan(
        corruption_probability=args.corrupt_rate,
        kinds=tuple(args.corrupt_kind) or ("flip",),
        targets=(
            _load_corrupt_targets(args.corrupt_targets)
            if args.corrupt_targets is not None
            else None
        ),
        budget=args.corrupt_budget,
        round_budget=args.corrupt_round_budget,
        rng=args.corrupt_seed,
    )


def _cmd_simulate(args: argparse.Namespace) -> int:
    from repro.simulator.faults import FaultPlan
    from repro.simulator.scenario import available_programs

    if args.list_programs:
        print("registered scenario programs:")
        for program in available_programs():
            print(
                f"  {program.name:<18} [{program.model.value}] "
                f"{program.description}"
            )
        return 0
    if args.graph is None:
        raise GraphValidationError(
            "a graph spec is required (or pass --list-programs)"
        )
    plan = None
    schedule = (
        _load_drop_schedule(args.drop_schedule)
        if args.drop_schedule is not None
        else {}
    )
    if args.drop > 0.0 or args.crash or schedule:
        plan = FaultPlan(
            drop_probability=args.drop,
            crash_rounds=_parse_crash_spec(args.crash),
            drop_schedule=schedule,
        )
    adversary = _build_adversary_plan(args)
    if args.engine is not None:
        # Validate eagerly so a typo fails with the engine menu before
        # any graph work happens (mirrors the graph-family errors).
        from repro.simulator.runner import _require_engine

        _require_engine(args.engine)
    if args.shards is not None and args.engine != "sharded":
        # Single-process engines ignore the worker count; a silent
        # ignore would let users believe they parallelized.
        raise GraphValidationError(
            "--shards only applies to --engine sharded "
            f"(got engine {args.engine or 'indexed'!r})"
        )
    session = GraphSession(args.graph)
    if schedule and args.model != "congested-clique":
        # A typo'd node in a schedule file would silently schedule drops
        # on a nonexistent edge (the clique is exempt: every ordered
        # pair is deliverable there).
        from repro.apps.resilience import validate_schedule_edges

        validate_schedule_edges(session.graph, schedule)
    envelope = session.simulate(
        program=args.program,
        model=args.model,
        seed=args.seed,
        fault_plan=plan,
        adversary_plan=adversary,
        max_rounds=args.max_rounds,
        trace=args.trace,
        engine=args.engine,
        shards=args.shards,
        show_outputs=args.show_outputs,
    )
    if _emit(args, envelope):
        return 0
    payload = envelope.payload
    run = envelope.raw
    print(f"graph: {args.graph}  n={envelope.n}  m={envelope.m}")
    print(f"program: {payload['program']} — {payload['description']}")
    print(f"model:   {payload['model']}   engine: {payload['engine']}")
    if plan is not None:
        print(
            f"faults:  drop={plan.drop_probability:g} "
            f"crashes={len(plan.crash_rounds)} "
            f"scheduled_edges={len(plan.drop_schedule)}"
        )
    if adversary is not None:
        print(
            f"adversary: rate={adversary.corruption_probability:g} "
            f"kinds={','.join(adversary.kinds)}"
            + (
                f" budget={adversary.budget}"
                if adversary.budget is not None
                else ""
            )
            + (
                f" round_budget={adversary.round_budget}"
                if adversary.round_budget is not None
                else ""
            )
            + (
                f" targets={len(adversary.targets)}"
                if adversary.targets is not None
                else ""
            )
        )
    print(f"rounds:   {payload['rounds']}  (halted: {payload['halted']})")
    print(f"messages: {payload['messages']}   bits: {payload['bits']}")
    print(f"max message: {payload['max_message_bits']} bits")
    print(f"wall: {run.wall_seconds:.4f}s   "
          f"rounds/sec: {run.rounds_per_sec:.1f}")
    outputs = run.result.outputs
    shown = list(outputs.items())[: args.show_outputs]
    if shown:
        print("outputs (first {}):".format(len(shown)))
        for node, output in shown:
            print(f"  {node!r}: {output!r}")
    if run.trace is not None:
        print()
        print(run.trace.render(limit=args.trace_limit))
    return 0


def _cmd_batch(args: argparse.Namespace) -> int:
    from repro.api import batch

    # The path goes straight through: run() loads it itself (once) so a
    # matrix-level base_seed field is honored.
    stats: dict = {}
    common = dict(
        base_seed=args.base_seed,
        processes=args.processes,
        include_timings=args.timings,
        backend=args.backend,
        workers=args.workers,
        checkpoint=args.checkpoint,
        resume=args.resume,
        stats=stats,
    )
    if args.out is not None:
        results = batch.run_to_jsonl(args.jobs, args.out, **common)
        errors = sum(1 for r in results if batch.is_error_row(r))
        resumed = stats.get("resumed", 0)
        print(
            f"wrote {len(results)} row(s) to {args.out} "
            f"[backend={stats['backend']} workers={stats['workers']}]"
            + (f"  ({resumed} resumed)" if resumed else "")
            + (f"  ({errors} failed)" if errors else "")
        )
        return 1 if errors else 0
    results = batch.run(args.jobs, jsonl=sys.stdout, **common)
    return 1 if any(batch.is_error_row(r) for r in results) else 0


_EXPERIMENTS = [
    ("E1", "bench_cds_packing", "Thm 1.1/1.2 packing size Ω(k/log n)"),
    ("E2", "bench_cds_runtime", "Thm 1.2 Õ(m) centralized runtime shape"),
    ("E3", "bench_spanning_packing", "Thm 1.3 size ⌈(λ-1)/2⌉(1-ε)"),
    ("E4", "bench_distributed_rounds", "Thm B.1 round complexity shape"),
    ("E5", "bench_broadcast", "Cor 1.4/1.5 + App A throughput/gossip"),
    ("E6", "bench_oblivious_routing", "Cor 1.6 congestion competitiveness"),
    ("E7", "bench_vc_approx", "Cor 1.7 O(log n) VC approximation"),
    ("E8", "bench_fast_merger", "Lemma 4.4 component decay"),
    ("E9", "bench_connector_paths", "Lemma 4.3 / Prop 4.2 connectors"),
    ("E10", "bench_cds_packing", "Lemma 4.6 class sizes"),
    ("E11", "bench_tester", "Appendix E tester"),
    ("E12", "bench_sampling", "§5.2 Karger sampling concentration"),
    ("E13", "bench_lowerbound", "Lemma G.3/G.4 construction"),
    ("E14", "bench_lowerbound", "Lemma G.5/G.6 2-party simulation"),
    ("E15", "bench_integral", "integral packings"),
    ("E16", "bench_independent_trees", "§1.4.1 independent trees"),
    ("E17", "bench_network_coding", "§1 network coding comparison"),
    ("E18", "bench_baselines", "exact baselines cross-checks"),
    ("E19", "bench_pipelined_upcast", "Lemma 5.1 pipelined upcast"),
    ("E20", "bench_workloads", "Cor A.1 workload shapes"),
    ("E21", "bench_shared_mst", "Lemma 5.1 simultaneous MSTs"),
    ("E22", "bench_point_to_point", "§1.3.1 point-to-point √n barrier"),
    ("E23", "bench_simulator", "engine rounds/sec (indexed vs reference)"),
    ("E24", "bench_cds_packing", "CDS kernel speed (indexed vs reference)"),
    ("E25", "bench_api", "session-cached pipeline vs per-call canonicalization"),
    ("E26", "bench_simulator", "sharded-engine scale sweep (n up to 5000)"),
    ("E27", "bench_resilience", "adversarial channels: coded vs uncoded flood"),
    ("E28", "bench_simulator", "vectorized columnar engine vs indexed (dense regime)"),
    ("E29", "bench_simulator", "multi-worker dense scaling (columnar sharded barrier)"),
    ("E30", "bench_service", "warm service vs cold sessions; incremental re-canonicalization"),
    ("E31", "bench_batch", "batch scheduler jobs/sec vs backend × workers"),
    ("F1-F3", "bench_figures", "paper figures (text renderings)"),
    ("A1-A5", "bench_ablation", "design-choice ablations"),
]


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.service import serve

    return serve(
        host=args.host,
        port=args.port,
        cache_capacity=args.cache_size,
    )


def _cmd_shell(args: argparse.Namespace) -> int:
    from repro.service import (
        LocalBackend,
        RemoteBackend,
        parse_connect,
        run_shell,
    )

    if args.connect is not None:
        host, port = parse_connect(args.connect)
        backend = RemoteBackend(host, port)
    else:
        backend = LocalBackend()
    return run_shell(
        backend,
        graph=args.graph,
        json_mode=args.json,
        seed=args.seed,
    )


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.analysis.report import full_report

    graphs = [(spec, parse_graph_spec(spec)) for spec in args.graphs]
    print(full_report(graphs, rng=args.seed))
    return 0


def _cmd_experiments(args: argparse.Namespace) -> int:
    print("experiment index (run: pytest benchmarks/<file>.py --benchmark-only)")
    for exp_id, bench, claim in _EXPERIMENTS:
        print(f"  {exp_id:<6} benchmarks/{bench + '.py':<28} {claim}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Distributed Connectivity Decomposition (PODC 2014) — "
            "connectivity decompositions from the command line"
        ),
    )
    parser.add_argument(
        "--version", action="version", version=f"repro {__version__}"
    )
    commands = parser.add_subparsers(dest="command", required=True)

    def add_json_flag(subparser) -> None:
        subparser.add_argument(
            "--json", action="store_true",
            help="print the typed result envelope as JSON",
        )

    commands.add_parser("info", help="library overview").set_defaults(
        handler=_cmd_info
    )

    connectivity = commands.add_parser(
        "connectivity", help="exact + approximate connectivity of a graph"
    )
    connectivity.add_argument("graph", help="graph spec, e.g. harary:6,24")
    connectivity.add_argument("--seed", type=int, default=0)
    add_json_flag(connectivity)
    connectivity.set_defaults(handler=_cmd_connectivity)

    pack_cds = commands.add_parser(
        "pack-cds", help="fractional dominating tree packing (Thm 1.1/1.2)"
    )
    pack_cds.add_argument("graph")
    pack_cds.add_argument("--seed", type=int, default=0)
    pack_cds.add_argument("--verbose", action="store_true")
    add_json_flag(pack_cds)
    pack_cds.set_defaults(handler=_cmd_pack_cds)

    pack_spanning = commands.add_parser(
        "pack-spanning", help="fractional spanning tree packing (Thm 1.3)"
    )
    pack_spanning.add_argument("graph")
    pack_spanning.add_argument("--seed", type=int, default=0)
    add_json_flag(pack_spanning)
    pack_spanning.set_defaults(handler=_cmd_pack_spanning)

    broadcast = commands.add_parser(
        "broadcast", help="tree-routed broadcast throughput (Cor 1.4)"
    )
    broadcast.add_argument("graph")
    broadcast.add_argument("--messages", type=int, default=16)
    broadcast.add_argument("--seed", type=int, default=0)
    broadcast.add_argument(
        "--transport", default="vertex", choices=["vertex", "edge"],
        help="vertex: CDS packing / V-CONGEST; edge: spanning / E-CONGEST",
    )
    add_json_flag(broadcast)
    broadcast.set_defaults(handler=_cmd_broadcast)

    simulate = commands.add_parser(
        "simulate",
        help="run a scenario on the round-simulation engine",
        description=(
            "Run a registered node program on a graph family through the "
            "scenario layer; prints rounds/messages/bits and optionally "
            "the round-by-round trace."
        ),
    )
    simulate.add_argument(
        "graph", nargs="?", default=None, help="graph spec, e.g. harary:6,24"
    )
    simulate.add_argument(
        "--program", default="flood-min",
        help="registry name (see --list-programs)",
    )
    simulate.add_argument(
        "--model", default=None,
        choices=["v-congest", "e-congest", "congested-clique"],
        help="override the program's communication model",
    )
    simulate.add_argument("--seed", type=int, default=0)
    simulate.add_argument(
        "--engine", default=None, metavar="ENGINE",
        help=(
            "round-loop implementation: indexed (default), reference, "
            "sharded (multiprocess), or vectorized (columnar numpy plane); "
            "an unknown name lists the registered engines"
        ),
    )
    simulate.add_argument(
        "--shards", type=int, default=None, metavar="N",
        help=(
            "worker-process count for --engine sharded "
            "(default: one per core, capped at 8)"
        ),
    )
    simulate.add_argument(
        "--drop", type=float, default=0.0,
        help="i.i.d. message drop probability",
    )
    simulate.add_argument(
        "--crash", action="append", default=[], metavar="NODE:ROUND",
        help="crash-stop a node at a round (repeatable)",
    )
    simulate.add_argument(
        "--drop-schedule", default=None, metavar="FILE",
        help=(
            "JSON file of [sender, receiver, [rounds…]] rows: destroy "
            "those directed deliveries deterministically (edges are "
            "validated against the graph)"
        ),
    )
    simulate.add_argument(
        "--corrupt-rate", type=float, default=0.0, metavar="P",
        help=(
            "per-delivery corruption probability (adversarial channel; "
            "pure function of seed × edge × round)"
        ),
    )
    simulate.add_argument(
        "--corrupt-kind", action="append", default=[],
        choices=["flip", "forge", "replay"],
        help="corruption kind(s) the adversary draws from (repeatable; "
             "default: flip)",
    )
    simulate.add_argument(
        "--corrupt-budget", type=int, default=None, metavar="N",
        help="cap corrupted edge-round slots over the whole run",
    )
    simulate.add_argument(
        "--corrupt-round-budget", type=int, default=None, metavar="N",
        help="cap corrupted edge-slots per round",
    )
    simulate.add_argument(
        "--corrupt-targets", default=None, metavar="FILE",
        help="JSON list of [sender, receiver] pairs the adversary "
             "controls (others stay honest)",
    )
    simulate.add_argument(
        "--corrupt-seed", type=int, default=None,
        help="explicit adversary seed (default: derived from --seed)",
    )
    simulate.add_argument("--max-rounds", type=int, default=100000)
    simulate.add_argument(
        "--trace", action="store_true", help="record and print the schedule"
    )
    simulate.add_argument("--trace-limit", type=int, default=30)
    simulate.add_argument(
        "--show-outputs", type=int, default=5,
        help="how many node outputs to print",
    )
    simulate.add_argument(
        "--list-programs", action="store_true",
        help="list registered scenario programs and exit",
    )
    add_json_flag(simulate)
    simulate.set_defaults(handler=_cmd_simulate)

    batch = commands.add_parser(
        "batch",
        help="run a JobSpec matrix, streaming JSONL result envelopes",
        description=(
            "Execute a JSON job file (a list of JobSpec dicts, or a "
            "graphs × tasks × seeds matrix) through the repro.api batch "
            "scheduler. Rows are canonical result-envelope JSON, one per "
            "job, in job order — byte-identical for the same spec file "
            "across every backend and worker count. --checkpoint "
            "write-ahead-logs completed jobs so a killed run restarts "
            "with --resume, skipping finished work."
        ),
    )
    batch.add_argument("jobs", help="path to the JSON job file")
    batch.add_argument(
        "--out", default=None, help="JSONL output path (default: stdout)"
    )
    batch.add_argument(
        "--backend", default=None, metavar="NAME",
        help=(
            "execution plane: serial (default), process, or thread; an "
            "unknown name fails with the registry listing"
        ),
    )
    batch.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help=(
            "pool size for process/thread backends "
            "(default: one per core, capped at 8)"
        ),
    )
    batch.add_argument(
        "--checkpoint", default=None, metavar="FILE",
        help=(
            "write-ahead manifest of completed jobs (sha256 job-key "
            "entries), flushed per chunk; enables --resume"
        ),
    )
    batch.add_argument(
        "--resume", action="store_true",
        help=(
            "reload --checkpoint and skip completed jobs; the final "
            "JSONL stays byte-identical to an uninterrupted run"
        ),
    )
    batch.add_argument(
        "--processes", type=int, default=None,
        help="legacy alias: N > 1 maps to --backend process --workers N",
    )
    batch.add_argument(
        "--base-seed", type=int, default=None,
        help="base for deterministic per-job seed derivation "
             "(default: the job file's base_seed field, else 0)",
    )
    batch.add_argument(
        "--timings", action="store_true",
        help="include wall-clock timings in rows (breaks byte-identity)",
    )
    batch.set_defaults(handler=_cmd_batch)

    serve = commands.add_parser(
        "serve",
        help="run the persistent graph service daemon",
        description=(
            "Start a TCP daemon speaking newline-delimited JSON result "
            "envelopes, with an LRU of warm graph sessions keyed by "
            "fingerprint. Stop it with Ctrl-C or a shutdown op "
            "(e.g. from 'repro shell --connect')."
        ),
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port", type=int, default=0,
        help="TCP port (0 picks an ephemeral port, printed on startup)",
    )
    serve.add_argument(
        "--cache-size", type=int, default=8,
        help="number of warm graph sessions the daemon keeps (LRU)",
    )
    serve.set_defaults(handler=_cmd_serve)

    shell = commands.add_parser(
        "shell",
        help="interactive graph shell (in-process or against a daemon)",
        description=(
            "A GCLI-style shell over the service surface: graph open, "
            "node list/nbr/p, edge new/rmv (incremental "
            "re-canonicalization), estimate, pack, simulate, stats. "
            "Runs in-process by default; --connect HOST:PORT drives a "
            "running 'repro serve' daemon. Reads commands from stdin, "
            "so it scripts cleanly: "
            "echo 'estimate k' | repro shell --graph harary:6,24"
        ),
    )
    shell.add_argument(
        "--graph", default=None,
        help="open this graph spec (or .csv adjacency matrix) on startup",
    )
    shell.add_argument(
        "--connect", default=None, metavar="HOST:PORT",
        help="drive a running repro-serve daemon instead of in-process",
    )
    shell.add_argument("--seed", type=int, default=0)
    add_json_flag(shell)
    shell.set_defaults(handler=_cmd_shell)

    commands.add_parser(
        "experiments", help="list the experiment index"
    ).set_defaults(handler=_cmd_experiments)

    report = commands.add_parser(
        "report", help="markdown claim-vs-measured report over graphs"
    )
    report.add_argument("graphs", nargs="+", help="graph specs")
    report.add_argument("--seed", type=int, default=0)
    report.set_defaults(handler=_cmd_report)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.handler(args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
