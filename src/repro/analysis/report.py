"""Markdown report generation: claim vs. measured, programmatically.

EXPERIMENTS.md snapshots the benchmark tables; this module regenerates
the headline comparisons as a single markdown document from live runs,
so a downstream user can produce their own claim-vs-measured report on
their own graphs::

    from repro.analysis.report import full_report
    print(full_report([my_graph], rng=1))

The report covers the four headline quantities: the dominating tree
packing size against ``Ω(k / log n)`` (Theorem 1.1/1.2), the spanning
tree packing size against ``⌈(λ−1)/2⌉`` (Theorem 1.3), the vertex
connectivity estimate interval (Corollary 1.7), and broadcast
throughput (Corollary 1.4).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, List, Sequence, Tuple

import networkx as nx

from repro.utils.rng import RngLike, ensure_rng


def render_markdown_table(
    headers: Sequence[str], rows: Iterable[Sequence]
) -> str:
    """A GitHub-flavored markdown table."""
    def fmt(cell) -> str:
        if isinstance(cell, float):
            return f"{cell:.3f}"
        return str(cell)

    lines = [
        "| " + " | ".join(headers) + " |",
        "|" + "|".join("---" for _ in headers) + "|",
    ]
    for row in rows:
        lines.append("| " + " | ".join(fmt(c) for c in row) + " |")
    return "\n".join(lines)


@dataclass
class GraphReportRow:
    """Measured headline quantities for one graph."""

    name: str
    n: int
    k: int
    lam: int
    cds_size: float
    cds_bound: float       # k / ln n
    spanning_size: float
    tutte_bound: int
    estimate_interval: Tuple[float, float]
    broadcast_throughput: float


def measure_graph(
    graph: nx.Graph, name: str = "graph", rng: RngLike = None
) -> GraphReportRow:
    """Run the four headline measurements on one graph."""
    from repro.apps.broadcast import vertex_broadcast
    from repro.core.cds_packing import fractional_cds_packing
    from repro.core.spanning_packing import fractional_spanning_tree_packing
    from repro.core.vertex_connectivity import approximate_vertex_connectivity
    from repro.graphs.connectivity import edge_connectivity, vertex_connectivity

    rand = ensure_rng(rng)
    n = graph.number_of_nodes()
    k = vertex_connectivity(graph)
    lam = edge_connectivity(graph)

    cds_result = fractional_cds_packing(graph, rng=rand)
    spanning = fractional_spanning_tree_packing(graph, rng=rand).packing
    estimate = approximate_vertex_connectivity(graph, rng=rand)

    nodes = sorted(graph.nodes(), key=str)
    sources = {i: nodes[i % len(nodes)] for i in range(2 * n)}
    outcome = vertex_broadcast(cds_result.packing, sources, rng=rand)

    return GraphReportRow(
        name=name,
        n=n,
        k=k,
        lam=lam,
        cds_size=cds_result.packing.size,
        cds_bound=k / math.log(max(n, 2)),
        spanning_size=spanning.size,
        tutte_bound=max(1, math.ceil((lam - 1) / 2)),
        estimate_interval=(estimate.lower_bound, estimate.upper_bound),
        broadcast_throughput=outcome.throughput,
    )


def full_report(
    graphs: Sequence[Tuple[str, nx.Graph]], rng: RngLike = None
) -> str:
    """Markdown claim-vs-measured report over named graphs."""
    rand = ensure_rng(rng)
    rows = [measure_graph(graph, name, rand) for name, graph in graphs]

    sections: List[str] = ["# repro measurement report", ""]

    sections.append("## Theorem 1.1/1.2 — dominating tree packing")
    sections.append("")
    sections.append(
        render_markdown_table(
            ["graph", "n", "k", "size", "k/ln n", "size·ln n/k"],
            [
                (
                    r.name,
                    r.n,
                    r.k,
                    r.cds_size,
                    r.cds_bound,
                    r.cds_size / max(r.cds_bound, 1e-9),
                )
                for r in rows
            ],
        )
    )
    sections.append("")

    sections.append("## Theorem 1.3 — spanning tree packing")
    sections.append("")
    sections.append(
        render_markdown_table(
            ["graph", "λ", "size", "⌈(λ-1)/2⌉", "size/bound"],
            [
                (
                    r.name,
                    r.lam,
                    r.spanning_size,
                    r.tutte_bound,
                    r.spanning_size / r.tutte_bound,
                )
                for r in rows
            ],
        )
    )
    sections.append("")

    sections.append("## Corollary 1.7 — vertex connectivity estimate")
    sections.append("")
    sections.append(
        render_markdown_table(
            ["graph", "k", "lower", "upper", "contains k"],
            [
                (
                    r.name,
                    r.k,
                    r.estimate_interval[0],
                    r.estimate_interval[1],
                    r.estimate_interval[0] - 1e-9
                    <= r.k
                    <= r.estimate_interval[1] + 1e-9,
                )
                for r in rows
            ],
        )
    )
    sections.append("")

    sections.append("## Corollary 1.4 — broadcast throughput")
    sections.append("")
    sections.append(
        render_markdown_table(
            ["graph", "k", "throughput (msgs/round)", "k/ln n"],
            [
                (r.name, r.k, r.broadcast_throughput, r.cds_bound)
                for r in rows
            ],
        )
    )
    sections.append("")
    return "\n".join(sections)
