"""Text renderings of the paper's three figures.

The figures are explanatory diagrams, not data plots; reproducing them
means regenerating their *content* from live algorithm state:

* **Figure 1** — the bridging graph of one recursion layer: components
  of old nodes per class, the type-2 new nodes' neighbor lists, and the
  maximal matching found.
* **Figure 2** — connector paths of a two-component class: the short and
  long potential connector paths with their internal vertices and types.
* **Figure 3** — the lower-bound construction ``H(X, Y)``: the h+1 heavy
  paths, the X/Y encoding attachments, and the a/b diameter gadget.

Each function returns a report object with a ``render()`` string; the
benchmark ``bench_figures.py`` prints them and asserts the structural
facts the captions state.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Set, Tuple

import networkx as nx

from repro.core.bridging import assign_layer, jump_start
from repro.core.connector_paths import (
    long_connector_pairs,
    short_connector_internals,
)
from repro.core.virtual_graph import VirtualGraph
from repro.lowerbounds.construction import LowerBoundInstance
from repro.utils.rng import RngLike, ensure_rng


@dataclass
class BridgingFigure:
    """Figure 1 content: one layer's bridging structure."""

    layer: int
    components_per_class: Dict[int, int]
    matched: int
    random_type2: int
    deactivated: int
    excess_before: int
    excess_after: int

    def render(self) -> str:
        lines = [
            f"[Figure 1] bridging graph at layer {self.layer}",
            f"  components per class: "
            + ", ".join(
                f"class {c}: {n}" for c, n in sorted(self.components_per_class.items())
            ),
            f"  deactivated components (type-1 bridges): {self.deactivated}",
            f"  maximal matching size (type-2 <-> component): {self.matched}",
            f"  unmatched type-2 nodes (joined random classes): "
            f"{self.random_type2}",
            f"  excess components: {self.excess_before} -> {self.excess_after}",
        ]
        return "\n".join(lines)


def figure1_bridging_graph(
    graph: nx.Graph,
    n_classes: int = 6,
    layers: int = 6,
    rng: RngLike = None,
) -> BridgingFigure:
    """Run the recursion up to the first merging layer and report its
    bridging structure (the content of Figure 1)."""
    rand = ensure_rng(rng)
    vg = VirtualGraph(graph, layers=layers, n_classes=n_classes)
    jump_start(vg, rand)
    layer = layers // 2 + 1
    before = {
        state.class_id: state.n_components() for state in vg.classes
    }
    stats = assign_layer(vg, layer, rand)
    return BridgingFigure(
        layer=layer,
        components_per_class=before,
        matched=stats.matched,
        random_type2=stats.random_type2,
        deactivated=stats.deactivated_components,
        excess_before=stats.excess_before,
        excess_after=stats.excess_after,
    )


@dataclass
class ConnectorFigure:
    """Figure 2 content: connector paths of one component."""

    component_size: int
    class_size: int
    short_internals: List[Hashable]
    long_pairs: List[Tuple[Hashable, Hashable]]

    def render(self) -> str:
        lines = [
            "[Figure 2] connector paths for a component "
            f"({self.component_size} of {self.class_size} class nodes)",
            f"  short connector paths (1 internal, type-1 on layer l+1): "
            f"{len(self.short_internals)} via {sorted(map(str, self.short_internals))}",
            f"  long connector paths  (2 internals, types 2+3): "
            f"{len(self.long_pairs)}",
        ]
        for u, w in self.long_pairs[:6]:
            lines.append(f"    C --- {u} (type 2) --- {w} (type 3) --- C'")
        return "\n".join(lines)


def figure2_connector_paths(
    graph: nx.Graph,
    component: Set[Hashable],
    class_members: Set[Hashable],
) -> ConnectorFigure:
    """Enumerate the potential connector paths of Figure 2 for a given
    component of a given (dominating) class."""
    shorts = short_connector_internals(graph, component, class_members)
    longs = long_connector_pairs(graph, component, class_members)
    return ConnectorFigure(
        component_size=len(component),
        class_size=len(class_members),
        short_internals=sorted(shorts, key=str),
        long_pairs=longs,
    )


@dataclass
class LowerBoundFigure:
    """Figure 3 content: the structure of H(X, Y) / G(X, Y)."""

    h: int
    ell: int
    w: int
    x_set: List[int]
    y_set: List[int]
    n_heavy: int
    n_encoding: int
    degree_a: int
    degree_b: int
    diameter: int

    def render(self) -> str:
        lines = [
            f"[Figure 3] lower-bound construction: h={self.h}, 2l={2*self.ell} "
            f"columns, heavy weight w={self.w}",
            f"  X = {self.x_set}  (u_x nodes attach (0,1) to (x,1))",
            f"  Y = {self.y_set}  (v_y nodes attach (0,2l) to (y,2l))",
            f"  heavy path nodes: {self.n_heavy} "
            f"({self.h + 1} paths x {2 * self.ell} columns)",
            f"  encoding nodes u_x/v_y: {self.n_encoding}",
            f"  gadget: a covers left half (deg {self.degree_a}), "
            f"b covers right half (deg {self.degree_b}), edge a-b",
            f"  diameter: {self.diameter} (Lemma G.3/G.4: <= 3)",
        ]
        return "\n".join(lines)


def figure3_construction(instance: LowerBoundInstance) -> LowerBoundFigure:
    """Describe a constructed instance (the content of Figure 3)."""
    graph = instance.graph
    heavy = [
        v
        for v in graph.nodes()
        if isinstance(v, tuple) and len(v) in (2, 3) and isinstance(v[0], int)
    ]
    encoding = [
        v
        for v in graph.nodes()
        if isinstance(v, tuple) and len(v) == 2 and v[0] in ("u", "v")
    ]
    return LowerBoundFigure(
        h=instance.h,
        ell=instance.ell,
        w=instance.w,
        x_set=sorted(instance.x_set),
        y_set=sorted(instance.y_set),
        n_heavy=len(heavy),
        n_encoding=len(encoding),
        degree_a=graph.degree(instance.node_a),
        degree_b=graph.degree(instance.node_b),
        diameter=nx.diameter(graph),
    )
