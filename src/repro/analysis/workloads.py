"""Message workload generators for the dissemination experiments.

Corollary A.1 parameterizes gossip by the total message count ``N`` and
the per-node maximum ``η``; the broadcast corollaries (1.4/1.5) by the
batch size and placement of sources. These generators produce the
``{message id → origin node}`` dictionaries the apps consume, covering
the placements the experiments sweep:

* :func:`uniform_workload` — sources i.i.d. uniform over nodes (the
  gossip default, every node expected N/n messages);
* :func:`single_source_workload` — one hot node (worst case for the
  ``η`` term of Corollary A.1);
* :func:`skewed_workload` — Zipf-like placement interpolating between
  the two (realistic hot-spot traffic);
* :func:`balanced_workload` — exactly ``⌈N/n⌉``-capped round-robin
  placement (the ``η = ⌈N/n⌉`` optimum);
* :func:`per_node_capped_workload` — uniform placement rejected above a
  per-node cap, realizing an arbitrary ``η``.

All generators return message ids ``0..N-1`` and are deterministic
under a seed.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Sequence

import networkx as nx

from repro.errors import GraphValidationError
from repro.utils.rng import RngLike, ensure_rng

Workload = Dict[int, Hashable]


def _nodes_of(graph: nx.Graph) -> List[Hashable]:
    if graph.number_of_nodes() == 0:
        raise GraphValidationError("graph must be non-empty")
    return sorted(graph.nodes(), key=str)


def _require_positive(n_messages: int) -> None:
    if n_messages < 1:
        raise GraphValidationError("n_messages must be >= 1")


def uniform_workload(
    graph: nx.Graph, n_messages: int, rng: RngLike = None
) -> Workload:
    """``n_messages`` sources drawn i.i.d. uniformly over the nodes."""
    _require_positive(n_messages)
    nodes = _nodes_of(graph)
    rand = ensure_rng(rng)
    return {i: rand.choice(nodes) for i in range(n_messages)}


def single_source_workload(
    graph: nx.Graph, n_messages: int, source: Hashable = None
) -> Workload:
    """All messages originate at one node (``η = N``).

    Defaults to the first node in sorted order when ``source`` is None.
    """
    _require_positive(n_messages)
    nodes = _nodes_of(graph)
    if source is None:
        source = nodes[0]
    elif not graph.has_node(source):
        raise GraphValidationError(f"source {source!r} not in graph")
    return {i: source for i in range(n_messages)}


def balanced_workload(graph: nx.Graph, n_messages: int) -> Workload:
    """Round-robin placement: every node holds ⌈N/n⌉ or ⌊N/n⌋ messages."""
    _require_positive(n_messages)
    nodes = _nodes_of(graph)
    return {i: nodes[i % len(nodes)] for i in range(n_messages)}


def skewed_workload(
    graph: nx.Graph,
    n_messages: int,
    exponent: float = 1.0,
    rng: RngLike = None,
) -> Workload:
    """Zipf-like placement: node ranked ``r`` has weight ``(r+1)^-s``.

    ``exponent = 0`` degenerates to uniform; large exponents approach
    the single-source workload. Node rank follows sorted order, so the
    workload is reproducible under a seed.
    """
    _require_positive(n_messages)
    if exponent < 0:
        raise GraphValidationError("exponent must be >= 0")
    nodes = _nodes_of(graph)
    rand = ensure_rng(rng)
    weights = [(rank + 1) ** -exponent for rank in range(len(nodes))]
    total = sum(weights)
    workload: Workload = {}
    for i in range(n_messages):
        draw = rand.random() * total
        acc = 0.0
        chosen = nodes[-1]
        for node, weight in zip(nodes, weights):
            acc += weight
            if draw <= acc:
                chosen = node
                break
        workload[i] = chosen
    return workload


def per_node_capped_workload(
    graph: nx.Graph,
    n_messages: int,
    max_per_node: int,
    rng: RngLike = None,
) -> Workload:
    """Uniform placement with at most ``max_per_node`` messages per node.

    Realizes Corollary A.1's ``η`` parameter exactly. Requires
    ``n · max_per_node ≥ N``.
    """
    _require_positive(n_messages)
    if max_per_node < 1:
        raise GraphValidationError("max_per_node must be >= 1")
    nodes = _nodes_of(graph)
    if len(nodes) * max_per_node < n_messages:
        raise GraphValidationError(
            "cap too tight: n * max_per_node < n_messages"
        )
    rand = ensure_rng(rng)
    budget = {node: max_per_node for node in nodes}
    available = list(nodes)
    workload: Workload = {}
    for i in range(n_messages):
        node = rand.choice(available)
        workload[i] = node
        budget[node] -= 1
        if budget[node] == 0:
            available.remove(node)
    return workload


def messages_per_node(
    graph: nx.Graph, workload: Workload
) -> Dict[Hashable, int]:
    """Histogram: node → number of messages it originates (η per node)."""
    counts = {node: 0 for node in graph.nodes()}
    for origin in workload.values():
        if origin not in counts:
            raise GraphValidationError(
                f"workload references unknown node {origin!r}"
            )
        counts[origin] += 1
    return counts


def max_messages_per_node(graph: nx.Graph, workload: Workload) -> int:
    """The ``η`` of Corollary A.1 for a concrete workload."""
    counts = messages_per_node(graph, workload)
    return max(counts.values(), default=0)
