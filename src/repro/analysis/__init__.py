"""Experiment plumbing: parameter sweeps, trial aggregation, scaling fits.

The benchmark harness (``benchmarks/``) prints claim-vs-measured tables;
this subpackage holds the reusable pieces behind them, so downstream
users can run their own sweeps against the library.
"""

from repro.analysis.report import full_report, render_markdown_table
from repro.analysis.workloads import (
    balanced_workload,
    single_source_workload,
    skewed_workload,
    uniform_workload,
)
from repro.analysis.sweeps import (
    SweepResult,
    TrialRecord,
    aggregate,
    loglog_slope,
    sweep,
)

__all__ = [
    "full_report",
    "render_markdown_table",
    "uniform_workload",
    "balanced_workload",
    "skewed_workload",
    "single_source_workload",
    "TrialRecord",
    "SweepResult",
    "sweep",
    "aggregate",
    "loglog_slope",
]
