"""Parameter sweep utilities for the experiment harness.

A *sweep* maps a function over a parameter grid with independent seeded
trials per point, collecting :class:`TrialRecord` rows; :func:`aggregate`
reduces them per point (mean/min/max); :func:`loglog_slope` fits the
scaling exponent used by the runtime experiments (E2).

:func:`batch_sweep` is the session-layer form: it feeds a
:class:`repro.api.JobSpec` list (or matrix) through the
:mod:`repro.api.batch` executor — one :class:`~repro.api.GraphSession`
per graph, deterministic per-job seeds, optional process fan-out — and
folds the returned envelopes into the same :class:`TrialRecord` rows,
so the aggregation helpers below work unchanged on API-driven sweeps.
"""

from __future__ import annotations

import math
import statistics
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Mapping, Sequence, Tuple

from repro.utils.rng import RngLike, ensure_rng, fresh_seed


@dataclass(frozen=True)
class TrialRecord:
    """One (parameter point, seed) observation."""

    params: Tuple[Tuple[str, Any], ...]
    seed: int
    values: Tuple[Tuple[str, float], ...]

    def param(self, name: str) -> Any:
        return dict(self.params)[name]

    def value(self, name: str) -> float:
        return dict(self.values)[name]


@dataclass
class SweepResult:
    """All observations of a sweep, with aggregation helpers."""

    records: List[TrialRecord] = field(default_factory=list)

    def points(self) -> List[Tuple[Tuple[str, Any], ...]]:
        """Distinct parameter points, in first-seen order."""
        seen = []
        for record in self.records:
            if record.params not in seen:
                seen.append(record.params)
        return seen

    def values_at(
        self, params: Tuple[Tuple[str, Any], ...], name: str
    ) -> List[float]:
        return [
            record.value(name)
            for record in self.records
            if record.params == params
        ]


def sweep(
    fn: Callable[..., Mapping[str, float]],
    grid: Sequence[Mapping[str, Any]],
    trials: int = 1,
    rng: RngLike = None,
) -> SweepResult:
    """Run ``fn(**point, rng=seed)`` for every grid point × trial.

    ``fn`` must return a mapping of metric name → float. Each trial gets
    an independent child seed, so sweeps are reproducible under a single
    top-level seed.
    """
    if trials < 1:
        raise ValueError("trials must be >= 1")
    parent = ensure_rng(rng)
    result = SweepResult()
    for point in grid:
        for _ in range(trials):
            seed = fresh_seed(parent)
            values = fn(**point, rng=seed)
            result.records.append(
                TrialRecord(
                    params=tuple(sorted(point.items(), key=lambda kv: kv[0])),
                    seed=seed,
                    values=tuple(
                        sorted(
                            ((k, float(v)) for k, v in values.items()),
                            key=lambda kv: kv[0],
                        )
                    ),
                )
            )
    return result


def batch_sweep(
    jobs,
    base_seed: int = None,
    processes: int = None,
) -> SweepResult:
    """Run a batch of :class:`repro.api.JobSpec` jobs into a sweep.

    ``jobs`` is anything :func:`repro.api.load_jobs` accepts — an
    explicit job list, a ``graphs × tasks × seeds`` matrix mapping, or a
    JSON file path. Each result envelope becomes one
    :class:`TrialRecord`: the parameter point is (graph, task,
    transport, label) and the values are the envelope's numeric payload
    fields. Failed jobs contribute an ``error = 1.0`` value instead of
    silently vanishing, so aggregate coverage stays visible.
    """
    from repro.api import batch as api_batch

    # Pass the original source through (not the pre-loaded list) so a
    # matrix-level base_seed field reaches run(); the separate load only
    # pairs jobs with their in-order results.
    job_list = api_batch.load_jobs(jobs)
    results = api_batch.run(
        jobs, base_seed=base_seed, processes=processes
    )
    sweep_result = SweepResult()
    for job, envelope in zip(job_list, results):
        point = {"graph": job.graph, "task": job.task}
        if job.transport is not None:
            point["transport"] = job.transport
        if job.label is not None:
            point["label"] = job.label
        if "error" in envelope.payload:
            values = {"error": 1.0}
        else:
            values = {
                name: float(value)
                for name, value in envelope.payload.items()
                if isinstance(value, (int, float))
                and not isinstance(value, bool)
            }
            values["error"] = 0.0
        sweep_result.records.append(
            TrialRecord(
                params=tuple(sorted(point.items(), key=lambda kv: kv[0])),
                seed=envelope.seed,
                values=tuple(sorted(values.items(), key=lambda kv: kv[0])),
            )
        )
    return sweep_result


def aggregate(
    result: SweepResult, metric: str
) -> List[Tuple[Tuple[Tuple[str, Any], ...], float, float, float]]:
    """Per parameter point: (params, mean, min, max) of ``metric``."""
    rows = []
    for point in result.points():
        values = result.values_at(point, metric)
        rows.append((point, statistics.mean(values), min(values), max(values)))
    return rows


def loglog_slope(xs: Sequence[float], ys: Sequence[float]) -> float:
    """Least-squares slope of log(y) vs log(x) — the scaling exponent.

    Used by E2 to check near-linearity (slope ≈ 1) of the centralized
    construction against the Ω(n³) prior work.
    """
    if len(xs) != len(ys) or len(xs) < 2:
        raise ValueError("need at least two (x, y) pairs of equal length")
    if any(x <= 0 for x in xs) or any(y <= 0 for y in ys):
        raise ValueError("log-log fit requires positive values")
    lx = [math.log(x) for x in xs]
    ly = [math.log(y) for y in ys]
    mean_x = statistics.mean(lx)
    mean_y = statistics.mean(ly)
    sxx = sum((a - mean_x) ** 2 for a in lx)
    sxy = sum((a - mean_x) * (b - mean_y) for a, b in zip(lx, ly))
    if sxx == 0:
        raise ValueError("x values are all identical")
    return sxy / sxx
