"""E11 — Appendix E tester: detection power and round cost.

Paper claim (Lemma E.1): one-sided error — valid partitions always pass;
an invalid one is rejected w.h.p. within
Õ(min{d', D + √|V|}) rounds. We inject disconnections/domination faults
and measure detection rates and tester rounds."""

import pytest

from benchmarks.conftest import print_table
from repro.core.packing_tester import (
    cds_partition_test_centralized,
    distributed_cds_partition_test,
)
from repro.graphs.generators import harary_graph
from repro.simulator.network import Network


@pytest.mark.benchmark(group="E11-tester")
def test_e11_detection_rates(benchmark):
    rows = []

    def run_all():
        rows.clear()
        g = harary_graph(6, 30)
        net = Network(g, rng=20)
        good = {v: v % 2 for v in g.nodes()}
        assert cds_partition_test_centralized(g, good, 2).passed

        # Valid partition: acceptance rate must be 1.0 (one-sided error).
        accepted = sum(
            distributed_cds_partition_test(net, good, 2, rng=s).passed
            for s in range(10)
        )
        rows.append(("valid partition", accepted / 10, "accept == 1.0"))

        # Fault: split one class into far-apart fragments.
        bad = dict(good)
        bad[0], bad[15] = 2, 2
        rejected = sum(
            not distributed_cds_partition_test(net, bad, 3, rng=s).passed
            for s in range(10)
        )
        rows.append(("disconnected class", rejected / 10, "reject w.h.p."))

        # Fault: a class that dominates nothing near node 0's antipode.
        bad2 = {v: 0 for v in g.nodes()}
        bad2[0] = 1
        rejected2 = sum(
            not distributed_cds_partition_test(net, bad2, 2, rng=s).passed
            for s in range(10)
        )
        rows.append(("non-dominating class", rejected2 / 10, "reject w.h.p."))
        return rows

    benchmark.pedantic(run_all, rounds=1, iterations=1)
    print_table(
        "E11: Appendix E tester — detection rates over 10 seeds",
        ["scenario", "rate", "paper claim"],
        rows,
    )
    assert rows[0][1] == 1.0
    assert rows[1][1] >= 0.9
    assert rows[2][1] >= 0.9


@pytest.mark.benchmark(group="E11-tester")
def test_e11_round_cost(benchmark):
    rows = []

    def run_all():
        rows.clear()
        for n in (16, 24, 32):
            g = harary_graph(4, n)
            net = Network(g, rng=21)
            good = {v: v % 2 for v in g.nodes()}
            rep = distributed_cds_partition_test(net, good, 2, rng=22)
            rows.append((n, rep.rounds, rep.passed))
        return rows

    benchmark.pedantic(run_all, rounds=1, iterations=1)
    print_table(
        "E11b: tester round cost vs n",
        ["n", "rounds", "passed"],
        rows,
    )
    assert all(r[2] for r in rows)

def smoke():
    """Tiny E11-style run for the bench-smoke tier."""
    g = harary_graph(4, 12)
    good = {v: v % 2 for v in g.nodes()}
    assert cds_partition_test_centralized(g, good, 2).passed
    net = Network(g, rng=20)
    assert distributed_cds_partition_test(net, good, 2, rng=0, detection_rounds=2).passed
