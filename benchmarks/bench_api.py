"""E25: session-cached pipeline vs per-call canonicalization.

The :class:`repro.api.GraphSession` exists so the standard workload —
estimate vertex connectivity, build the CDS packing, broadcast over it —
pays for canonicalization (and the underlying packing construction)
once instead of once per call. This benchmark times the full
estimate → pack → broadcast pipeline both ways on the same graph and
seed, asserts the outputs are identical, and records the speedup →
``BENCH_api.json`` (via ``run_benchmarks.py --suite api``).

* **per-call** — the legacy free-function path:
  ``approximate_vertex_connectivity`` + ``fractional_cds_packing`` +
  ``vertex_broadcast``, each call re-canonicalizing the graph and the
  first two each running their own packing construction.
* **session** — one ``GraphSession``: ``connectivity()`` and
  ``pack_cds()`` share a single construction over a single index, and
  ``broadcast()`` rides on the cached packing.

Gate: the cached session pipeline must beat the per-call pipeline on
every row (the acceptance criterion for the API-layer PR).
"""

from __future__ import annotations

import argparse
import json
import pathlib
import platform
import time
from typing import Callable, Dict, List

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

MESSAGES = 16


def _cases(quick: bool):
    from repro.graphs.generators import harary_graph, random_regular_connected

    if quick:
        return [
            ("harary(6,48)", lambda: harary_graph(6, 48)),
            ("regular(8,80)", lambda: random_regular_connected(8, 80, rng=3)),
        ]
    return [
        ("harary(6,120)", lambda: harary_graph(6, 120)),
        ("regular(8,250)", lambda: random_regular_connected(8, 250, rng=3)),
        ("harary(8,400)", lambda: harary_graph(8, 400)),
    ]


def _best_of(fn: Callable[[], object], repeats: int) -> tuple:
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        elapsed = time.perf_counter() - start
        best = min(best, elapsed)
    return best, result


def _per_call_pipeline(graph, seed: int):
    """The pre-API shape: three free calls, three canonicalizations."""
    from repro.apps.broadcast import vertex_broadcast
    from repro.core.cds_packing import fractional_cds_packing
    from repro.core.vertex_connectivity import approximate_vertex_connectivity

    estimate = approximate_vertex_connectivity(graph, rng=seed)
    packing = fractional_cds_packing(graph, rng=seed).packing
    nodes = sorted(graph.nodes(), key=str)
    sources = {i: nodes[i % len(nodes)] for i in range(MESSAGES)}
    outcome = vertex_broadcast(packing, sources, rng=seed)
    return estimate, packing, outcome


def _session_pipeline(graph, seed: int):
    """The API shape: one session, one index, one construction."""
    from repro.api import GraphSession

    session = GraphSession(graph)
    estimate = session.connectivity(seed=seed)
    packing = session.pack_cds(seed=seed).raw.packing
    outcome = session.broadcast(messages=MESSAGES, seed=seed).raw
    return estimate, packing, outcome


def run(quick: bool = False, repeats: int = 3, seed: int = 9) -> Dict:
    """Time both pipelines; assert identical outputs per row."""
    rows: List[Dict] = []
    for name, builder in _cases(quick):
        graph = builder()
        per_call_s, per_call = _best_of(
            lambda: _per_call_pipeline(graph, seed), repeats
        )
        session_s, session_out = _best_of(
            lambda: _session_pipeline(graph, seed), repeats
        )
        estimate, packing, outcome = per_call
        s_estimate, s_packing, s_outcome = session_out
        if (
            estimate.lower_bound != s_estimate.payload["lower_bound"]
            or estimate.upper_bound != s_estimate.payload["upper_bound"]
            or packing.size != s_packing.size
            or outcome.rounds != s_outcome.rounds
            or outcome.tree_assignment != s_outcome.tree_assignment
        ):
            raise AssertionError(
                f"{name}: session and per-call pipelines diverged"
            )
        speedup = per_call_s / session_s
        if not quick and speedup <= 1.0:
            # The full-size gate: one construction + one index must beat
            # three canonicalizations + two constructions. (--quick rows
            # are too small to time-gate without flaking.)
            raise AssertionError(
                f"{name}: cached session ({session_s:.4f}s) did not beat "
                f"per-call canonicalization ({per_call_s:.4f}s)"
            )
        rows.append(
            {
                "graph": name,
                "n": graph.number_of_nodes(),
                "m": graph.number_of_edges(),
                "seed": seed,
                "messages": MESSAGES,
                "packing_size": packing.size,
                "broadcast_rounds": outcome.rounds,
                "per_call_s": round(per_call_s, 6),
                "session_s": round(session_s, 6),
                "speedup": round(speedup, 2),
            }
        )
    return {
        "benchmark": "api",
        "unit": "seconds (best of repeats, wall clock)",
        "pipeline": "connectivity -> pack_cds -> broadcast",
        "repeats": repeats,
        "gate": "cached session beats per-call canonicalization on every row",
        "python": platform.python_version(),
        "machine": platform.machine(),
        "results": rows,
    }


def smoke():
    """Tiny run + equality gate for the bench-smoke tier."""
    report = run(quick=True, repeats=1)
    assert report["results"], "api bench produced no rows"
    for row in report["results"]:
        assert row["packing_size"] > 0
        assert row["session_s"] > 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="tiny graphs")
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--seed", type=int, default=9)
    parser.add_argument(
        "--out",
        type=pathlib.Path,
        default=REPO_ROOT / "BENCH_api.json",
        help="output JSON path (default: repo root)",
    )
    args = parser.parse_args(argv)
    if args.repeats < 1:
        parser.error("--repeats must be >= 1")
    report = run(quick=args.quick, repeats=args.repeats, seed=args.seed)
    args.out.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
    for row in report["results"]:
        print(
            "{graph:>16}  n={n:<4} m={m:<5} per-call={per_call_s:.3f}s "
            "session={session_s:.3f}s speedup={speedup}x "
            "rounds={broadcast_rounds}".format(**row)
        )
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
