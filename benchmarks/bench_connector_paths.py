"""E9 — Lemma 4.3 (Connector Abundance) + Proposition 4.2.

Paper claim: every non-singleton component of a dominating class has at
least k internally vertex-disjoint connector paths. We build dominating
two-component classes and count the disjoint connector families exactly."""

import pytest

from benchmarks.conftest import print_table
from repro.core.connector_paths import count_disjoint_connector_paths
from repro.graphs.connectivity import is_dominating_set, vertex_connectivity
from repro.graphs.generators import harary_graph, random_regular_connected


def _two_component_class(graph, k):
    """Two near-antipodal arcs of the circulant, separated by gaps of
    exactly ⌊k/2⌋ nodes: the class dominates (every gap node is within
    ⌊k/2⌋ of an arc) while the arcs stay disconnected."""
    nodes = sorted(graph.nodes())
    n = len(nodes)
    half = max(1, k // 2)
    comp_a = set(nodes[0 : n // 2 - half])
    comp_b = set(nodes[n // 2 : n - half])
    members = comp_a | comp_b
    return members, comp_a, comp_b


@pytest.mark.benchmark(group="E9-connectors")
def test_e9_connector_abundance(benchmark):
    rows = []

    def run_all():
        rows.clear()
        for k, n in ((4, 24), (6, 30), (8, 32), (10, 40)):
            g = harary_graph(k, n)
            members, comp_a, comp_b = _two_component_class(g, k)
            assert is_dominating_set(g, members)
            count = count_disjoint_connector_paths(g, comp_a, members)
            rows.append(
                (
                    f"H({k},{n})",
                    k,
                    count.short,
                    count.long,
                    count.total,
                    count.total / k,
                )
            )
        return rows

    benchmark.pedantic(run_all, rounds=1, iterations=1)
    print_table(
        "E9: Lemma 4.3 — disjoint connector paths per component (claim: >= k)",
        ["graph", "k", "short", "long", "total", "total/k"],
        rows,
    )
    assert all(r[4] >= r[1] for r in rows), "Lemma 4.3 bound violated"


@pytest.mark.benchmark(group="E9-connectors")
def test_e9_fast_slow_split(benchmark):
    """The fast/slow component dichotomy of Lemma 4.4's proof: fast
    components (Ω(k) short paths) vs slow (Ω(k) long paths)."""
    rows = []

    def run_all():
        rows.clear()
        for k, n in ((6, 24), (8, 32)):
            g = random_regular_connected(k, n, rng=4)
            members, comp_a, _ = _two_component_class(g, k)
            if not is_dominating_set(g, members):
                members = set(g.nodes()) - {next(iter(g.nodes()))}
                comp_a = members
            count = count_disjoint_connector_paths(g, comp_a, members)
            kind = "fast" if count.short >= k // 2 else "slow"
            rows.append((f"reg({k},{n})", count.short, count.long, kind))
        return rows

    benchmark.pedantic(run_all, rounds=1, iterations=1)
    print_table(
        "E9b: fast/slow component classification",
        ["graph", "short", "long", "class"],
        rows,
    )
    assert rows

def smoke():
    """Tiny E9-style run for the bench-smoke tier."""
    g = harary_graph(4, 16)
    members, comp_a, _ = _two_component_class(g, 4)
    assert is_dominating_set(g, members)
    assert count_disjoint_connector_paths(g, comp_a, members).total >= 1
