"""Ablation study for the design choices DESIGN.md calls out.

A1 — MWU step size β (Section 5.1 sets β = Θ(1/(α log n))): oversized
steps overshoot and cycle between MSTs instead of converging.

A2 — the bridging-graph side conditions (Section 3.1 step 2): drop the
deactivation rule (b) and/or the type-3 witness rule (c) and measure the
merger speed. Without (c), matched type-2 nodes need not merge anything,
so the analysis's progress guarantee disappears; without (b), type-2
nodes are wasted on components that type-1 nodes already bridged.

A3 — the layer budget L = Θ(log n): fewer layers risk unconnected
classes (pruned by the tester), more layers dilute the packing size.

A4 — tree weighting: per-class 1/max-load (ours) vs the naive uniform
1/global-max-load; the per-class rule dominates.
"""

import math

import networkx as nx
import pytest

from benchmarks.conftest import print_table
from repro.core.bridging import run_recursion
from repro.core.cds_packing import (
    PackingParameters,
    construct_cds_packing,
)
from repro.core.spanning_packing import MwuParameters, mwu_spanning_packing
from repro.core.virtual_graph import VirtualGraph
from repro.graphs.generators import harary_graph


@pytest.mark.benchmark(group="A1-mwu-beta")
def test_a1_mwu_step_size(benchmark):
    rows = []

    def run_all():
        rows.clear()
        g = harary_graph(8, 24)
        for bf in (0.5, 1.0, 2.0, 4.0):
            params = MwuParameters(
                epsilon=0.15, beta_factor=bf, max_iterations=1500
            )
            normalized, trace, target = mwu_spanning_packing(g, params=params)
            size = sum(w for _, w in normalized)
            rows.append(
                (bf, trace.iterations, trace.stopped_early, size, size / target)
            )
        return rows

    benchmark.pedantic(run_all, rounds=1, iterations=1)
    print_table(
        "A1: MWU step size ablation (harary(8,24), target=4)",
        ["beta_factor", "iterations", "converged", "size", "size/target"],
        rows,
    )
    # The paper's β (factor 1) converges; oversize factors do worse or
    # equal, never better.
    paper = next(r for r in rows if r[0] == 1.0)
    assert paper[2], "the paper's step size failed to converge"
    best_size = max(r[3] for r in rows)
    assert paper[3] >= 0.9 * best_size


@pytest.mark.benchmark(group="A2-bridging-rules")
def test_a2_bridging_side_conditions(benchmark):
    rows = []

    def run_all():
        rows.clear()
        g = harary_graph(10, 60)
        variants = [
            ("full algorithm", True, True),
            ("no deactivation (b)", False, True),
            ("no type-3 witness (c)", True, False),
            ("neither", False, False),
        ]
        for name, use_b, use_c in variants:
            finals, matched_tot = [], 0
            for seed in range(5):
                vg = VirtualGraph(g, layers=10, n_classes=32)
                history = run_recursion(
                    vg,
                    rng=seed,
                    use_deactivation=use_b,
                    require_type3_witness=use_c,
                )
                finals.append(history[-1].excess_after)
                matched_tot += sum(s.matched for s in history)
            rows.append(
                (
                    name,
                    sum(finals) / len(finals),
                    matched_tot / 5,
                )
            )
        return rows

    benchmark.pedantic(run_all, rounds=1, iterations=1)
    print_table(
        "A2: bridging side conditions (harary(10,60), t=32, 5 seeds)",
        ["variant", "mean final excess M_L", "mean matchings used"],
        rows,
    )
    full = rows[0]
    assert full[1] <= min(r[1] for r in rows) + 1.0, (
        "the full rule set should connect at least as well as any ablation"
    )


@pytest.mark.benchmark(group="A3-layer-budget")
def test_a3_layer_budget(benchmark):
    rows = []

    def run_all():
        rows.clear()
        g = harary_graph(8, 48)
        for layer_factor, min_layers in ((1, 4), (2, 4), (3, 6)):
            params = PackingParameters(
                class_factor=1.0,
                layer_factor=layer_factor,
                min_layers=min_layers,
            )
            result = construct_cds_packing(g, 8, params=params, rng=7)
            rows.append(
                (
                    f"L={result.virtual_graph.layers}",
                    len(result.valid_classes),
                    result.t_requested,
                    result.size,
                )
            )
        return rows

    benchmark.pedantic(run_all, rounds=1, iterations=1)
    print_table(
        "A3: layer budget vs packing quality (harary(8,48))",
        ["layers", "valid classes", "requested", "size"],
        rows,
    )
    assert all(r[3] > 0 for r in rows)


@pytest.mark.benchmark(group="A4-weighting")
def test_a4_weighting_rule(benchmark):
    rows = []

    def run_all():
        rows.clear()
        g = harary_graph(16, 48)
        params = PackingParameters(class_factor=1.0, layer_factor=1)
        result = construct_cds_packing(g, 16, params=params, rng=8)
        # Ours: per-class 1/max-load (what the packing carries).
        ours = result.size
        # Naive: uniform 1/global-max-load.
        counts = result.packing.trees_per_node()
        naive = len(result.packing) / max(counts.values())
        rows.append(("per-class 1/max-load", ours))
        rows.append(("uniform 1/global-max", naive))
        return rows

    benchmark.pedantic(run_all, rounds=1, iterations=1)
    print_table(
        "A4: weighting rule (harary(16,48))",
        ["rule", "packing size"],
        rows,
    )
    assert rows[0][1] >= rows[1][1] - 1e-9


@pytest.mark.benchmark(group="ablations")
def test_a5_fragment_depth_tradeoff(benchmark):
    """A5 — the Kutten–Peleg d-control: more local Borůvka phases mean
    deeper fragments (more local rounds) but fewer inter-fragment
    candidates to upcast. The paper balances the two at d = √n; here we
    sweep the phase budget and report both sides of the trade."""
    import networkx as nx

    from repro.simulator.algorithms.shared_mst import simultaneous_msts
    from repro.simulator.network import Network

    graph = harary_graph(6, 48)
    network = Network(graph, rng=2)
    rows = []

    def run_all():
        rows.clear()
        for phases in (0, 1, 2, 3, 4):
            result = simultaneous_msts(
                network, [graph], local_phases=phases
            )
            rows.append(
                (
                    phases,
                    result.fragment_rounds,
                    result.upcast_items,
                    result.completion_rounds,
                    result.total_rounds,
                )
            )
        return rows

    benchmark.pedantic(run_all, rounds=1, iterations=1)
    print_table(
        "A5: local phase budget vs upcast load (harary(6,48))",
        ["phases", "frag rounds", "upcast items", "completion", "total"],
        rows,
    )
    items = [row[2] for row in rows]
    frag = [row[1] for row in rows]
    # The trade-off: items decrease monotonically, fragment rounds grow.
    assert items == sorted(items, reverse=True)
    assert frag[-1] >= frag[0]

def smoke():
    """Tiny A1-style run for the bench-smoke tier (imports + hot path)."""
    normalized, trace, target = mwu_spanning_packing(
        harary_graph(4, 12),
        params=MwuParameters(epsilon=0.3, beta_factor=1.0, max_iterations=30),
    )
    assert normalized and trace.iterations >= 1 and target >= 1
