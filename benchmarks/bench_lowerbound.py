"""E13 + E14 — Appendix G: construction properties and 2BT simulation.

Lemma G.4 (E13): κ(G(X,Y)) = 4 when |X∩Y| = 1, ≥ w when disjoint;
diameter ≤ 3. Lemma G.6 (E14): Alice/Bob simulate T rounds with ≤ 2BT
bits. Theorem G.2's reduction decides disjointness via the connectivity
threshold — we verify it on instance grids."""

import itertools

import networkx as nx
import pytest

from benchmarks.conftest import print_table
from repro.graphs.connectivity import vertex_connectivity
from repro.lowerbounds.construction import build_g_xy
from repro.lowerbounds.disjointness import (
    decide_disjointness_via_connectivity,
    simulate_protocol_two_party,
)


@pytest.mark.benchmark(group="E13-lowerbound")
def test_e13_cut_dichotomy_grid(benchmark):
    rows = []

    def run_all():
        rows.clear()
        h = 3
        universe = list(range(1, h + 1))
        subsets = [
            frozenset(c)
            for r in range(h + 1)
            for c in itertools.combinations(universe, r)
        ]
        checked = correct = 0
        diam_ok = True
        for x_set, y_set in itertools.product(subsets, subsets):
            if len(x_set & y_set) > 1:
                continue
            inst = build_g_xy(h=h, ell=1, w=6, x_set=x_set, y_set=y_set)
            kappa = vertex_connectivity(inst.graph)
            expected_low = len(x_set & y_set) == 1
            ok = (kappa == 4) if expected_low else (kappa >= 6)
            checked += 1
            correct += ok
            diam_ok = diam_ok and nx.diameter(inst.graph) <= 3
        rows.append((h, checked, correct, diam_ok))
        return rows

    benchmark.pedantic(run_all, rounds=1, iterations=1)
    print_table(
        "E13: Lemma G.4 — cut dichotomy over all promise instances (h=3, w=6)",
        ["h", "instances", "dichotomy holds", "diam<=3 everywhere"],
        rows,
    )
    h, checked, correct, diam_ok = rows[0]
    assert correct == checked and diam_ok


@pytest.mark.benchmark(group="E13-lowerbound")
def test_e13_reduction_decides(benchmark):
    rows = []

    def run_all():
        rows.clear()
        cases = [
            ({1, 2}, {3, 4}, True),
            ({1, 2}, {2, 3}, False),
            (set(), {1}, True),
            ({4}, {4}, False),
        ]
        for x_set, y_set, expect in cases:
            inst = build_g_xy(h=4, ell=2, w=6, x_set=x_set, y_set=y_set)
            verdict = decide_disjointness_via_connectivity(inst)
            rows.append((sorted(x_set), sorted(y_set), expect, verdict))
        return rows

    benchmark.pedantic(run_all, rounds=1, iterations=1)
    print_table(
        "E13b: Theorem G.2 reduction — disjointness via connectivity",
        ["X", "Y", "expected disjoint", "decided disjoint"],
        rows,
    )
    assert all(r[2] == r[3] for r in rows)


@pytest.mark.benchmark(group="E14-simulation")
def test_e14_two_party_bit_budget(benchmark):
    rows = []

    def proto(node, rnd, inbox):
        return ("count", len(inbox), rnd)

    def run_all():
        rows.clear()
        inst = build_g_xy(h=3, ell=4, w=4, x_set={1, 3}, y_set={2, 3})
        for rounds in (1, 2, 3, 4):
            sim = simulate_protocol_two_party(inst, proto, rounds)
            rows.append(
                (rounds, sim.bits_exchanged, sim.bit_budget, sim.within_budget)
            )
        return rows

    benchmark.pedantic(run_all, rounds=1, iterations=1)
    print_table(
        "E14: Lemma G.6 — Alice/Bob bits vs the 2BT budget",
        ["T rounds", "bits exchanged", "2BT budget", "within"],
        rows,
    )
    assert all(r[3] for r in rows)

def smoke():
    """Tiny E13-style run for the bench-smoke tier."""
    inst = build_g_xy(h=3, ell=1, w=6, x_set=frozenset({1}), y_set=frozenset({1}))
    assert vertex_connectivity(inst.graph) == 4
    assert nx.diameter(inst.graph) <= 3
