"""E8 — Lemma 4.4 (Fast Merger): excess components decay geometrically.

Paper claim: per layer, M_{ℓ+1} ≤ M_ℓ always, and M drops by a constant
factor with constant probability — so E[M] decays geometrically and all
classes connect within O(log n) layers.

The dynamics are only visible when classes are *sparse* (t well above
3L, so a class does not absorb every node at the jump-start); we use
t = 32 classes on H(10, 60), where M starts around 50."""

import math

import pytest

from benchmarks.conftest import print_table
from repro.core.cds_packing import build_cds_classes
from repro.graphs.generators import harary_graph


@pytest.mark.benchmark(group="E8-fast-merger")
def test_e8_excess_component_decay(benchmark):
    rows = []

    def run_all():
        rows.clear()
        g = harary_graph(10, 60)
        trajectories = []
        for seed in range(5):
            vg, history = build_cds_classes(
                g, n_classes=32, n_layers=10, rng=seed
            )
            traj = [history[0].excess_before] + [
                s.excess_after for s in history
            ]
            trajectories.append(traj)
        depth = max(len(t) for t in trajectories)
        for layer in range(depth):
            values = [t[layer] for t in trajectories if layer < len(t)]
            mean = sum(values) / len(values)
            prev = rows[-1][1] if rows else None
            decay = (mean / prev) if prev else float("nan")
            rows.append((layer, mean, decay))
        return rows

    benchmark.pedantic(run_all, rounds=1, iterations=1)
    print_table(
        "E8: Lemma 4.4 — mean excess components per layer (5 seeds, t=32)",
        ["layer offset", "mean M_l", "M_l / M_{l-1}"],
        rows,
    )
    means = [r[1] for r in rows]
    assert means[0] > 0, "dynamics invisible: M started at 0"
    assert all(a >= b - 1e-9 for a, b in zip(means, means[1:])), (
        "M_l increased across a layer (violates Lemma 4.4 part 1)"
    )
    assert means[-1] == 0.0, "classes did not all connect"
    # Geometric decay: mean per-layer ratio bounded below 1.
    ratios = [
        rows[i][1] / rows[i - 1][1]
        for i in range(1, len(rows))
        if rows[i - 1][1] > 0
    ]
    mean_ratio = sum(ratios) / len(ratios)
    print(f"mean per-layer decay ratio: {mean_ratio:.3f} (claim: constant < 1)")
    assert mean_ratio < 0.9


@pytest.mark.benchmark(group="E8-fast-merger")
def test_e8_connection_layers_scale_logarithmically(benchmark):
    """Layers needed to reach M=0 stay O(log n) as n grows (same sparse
    regime, t = 3k)."""
    rows = []

    def run_all():
        rows.clear()
        for k, n in ((8, 30), (8, 60), (8, 120)):
            g = harary_graph(k, n)
            vg, history = build_cds_classes(
                g, n_classes=3 * k, n_layers=12, rng=2
            )
            needed = None
            for i, s in enumerate(history):
                if s.excess_after == 0:
                    needed = i + 1
                    break
            rows.append((n, history[0].excess_before, needed, math.log2(n)))
        return rows

    benchmark.pedantic(run_all, rounds=1, iterations=1)
    print_table(
        "E8b: layers to full connectivity vs log n (t = 3k = 24)",
        ["n", "initial M", "layers needed", "log2 n"],
        rows,
    )
    assert all(r[2] is not None for r in rows), "some run never connected"
    # Needed layers grow at most logarithmically-ish.
    assert rows[-1][2] <= 2 * math.log2(rows[-1][0])

def smoke():
    """Tiny E8-style run for the bench-smoke tier."""
    _, history = build_cds_classes(harary_graph(6, 18), n_classes=6, n_layers=4, rng=0)
    assert history
