"""E1 + E10 — Theorem 1.1/1.2 packing quality and Lemma 4.6 class sizes.

Paper claims:
* fractional dominating tree packing of size Ω(k / log n);
* each node in O(log n) trees;
* tree diameters Õ(n / k);
* (Lemma 4.6) each class holds O(n log n / k) virtual nodes.
"""

import math

import pytest

from benchmarks.conftest import print_table
from repro.core.cds_packing import PackingParameters, construct_cds_packing
from repro.graphs.connectivity import vertex_connectivity
from repro.graphs.generators import (
    clique_chain,
    fat_cycle,
    harary_graph,
    hypercube,
    random_regular_connected,
)

FAMILIES = [
    ("harary(4,32)", lambda: harary_graph(4, 32)),
    ("harary(8,32)", lambda: harary_graph(8, 32)),
    ("harary(12,36)", lambda: harary_graph(12, 36)),
    ("clique_chain(4,8)", lambda: clique_chain(4, 8)),
    ("fat_cycle(3,8)", lambda: fat_cycle(3, 8)),
    ("hypercube(5)", lambda: hypercube(5)),
    ("regular(10,32)", lambda: random_regular_connected(10, 32, rng=1)),
]


def _run_family(name, builder, seed=7):
    g = builder()
    n = g.number_of_nodes()
    k = vertex_connectivity(g)
    result = construct_cds_packing(
        g, k, params=PackingParameters(class_factor=1.0), rng=seed
    )
    result.packing.verify()
    counts = result.packing.trees_per_node()
    vg = result.virtual_graph
    max_class = max(vg.virtual_counts_per_class())
    return {
        "family": name,
        "n": n,
        "k": k,
        "size": result.size,
        "size_ratio": result.size / (k / math.log(n)),
        "trees": len(result.packing),
        "max_membership": max(counts.values()),
        "membership_bound": 3 * vg.layers,
        "max_diameter": result.packing.max_diameter(),
        "diam_over_nk": result.packing.max_diameter() / (n / max(1, k)),
        "class_ratio": max_class * k / (n * math.log(n)),
    }


@pytest.mark.benchmark(group="E1-cds-packing")
def test_e1_packing_size_vs_connectivity(benchmark):
    """E1: size/(k/ln n) should be bounded below across families; node
    membership stays within 3L = O(log n)."""
    rows = []

    def run_all():
        rows.clear()
        for name, builder in FAMILIES:
            rows.append(_run_family(name, builder))
        return rows

    benchmark.pedantic(run_all, rounds=1, iterations=1)
    print_table(
        "E1: Theorem 1.1/1.2 — fractional dominating tree packing",
        [
            "family", "n", "k", "size", "size/(k/ln n)",
            "trees", "node-membership (<=3L)", "3L",
            "max tree diam", "diam/(n/k)",
        ],
        [
            (
                r["family"], r["n"], r["k"], r["size"], r["size_ratio"],
                r["trees"], r["max_membership"], r["membership_bound"],
                r["max_diameter"], r["diam_over_nk"],
            )
            for r in rows
        ],
    )
    for r in rows:
        assert r["size"] > 0
        assert r["max_membership"] <= r["membership_bound"]


@pytest.mark.benchmark(group="E1-cds-packing")
def test_e1b_size_scales_linearly_with_k(benchmark):
    """E1b: at fixed n, size grows ~linearly in k (the Ω(k/log n) shape).

    Uses L = ⌈log₂ n⌉ layers (layer_factor=1) so that t = k exceeds the
    3L membership cap and classes stop being all-of-V."""
    sweep = [(8, 48), (16, 48), (24, 48), (32, 48)]
    rows = []

    def run_all():
        rows.clear()
        for k, n in sweep:
            g = harary_graph(k, n)
            params = PackingParameters(
                class_factor=1.0, layer_factor=1, min_layers=4
            )
            result = construct_cds_packing(g, k, params=params, rng=5)
            result.packing.verify()
            rows.append(
                (
                    k,
                    n,
                    result.size,
                    result.size / (k / math.log(n)),
                    len(result.packing),
                )
            )
        return rows

    benchmark.pedantic(run_all, rounds=1, iterations=1)
    print_table(
        "E1b: size vs k at fixed n=48 (expect ~linear growth, ratio ~const)",
        ["k", "n", "size", "size/(k/ln n)", "trees"],
        rows,
    )
    sizes = [r[2] for r in rows]
    assert sizes[-1] > sizes[0], "packing size must grow with k"
    ratios = [r[3] for r in rows]
    assert min(ratios) >= 0.1, "Ω(k/log n) ratio collapsed"


@pytest.mark.benchmark(group="E10-class-sizes")
def test_e10_lemma_4_6_class_sizes(benchmark):
    """E10: max class size · k / (n ln n) bounded (Lemma 4.6)."""
    rows = []

    def run_all():
        rows.clear()
        for name, builder in FAMILIES[:5]:
            rows.append(_run_family(name, builder, seed=13))
        return rows

    benchmark.pedantic(run_all, rounds=1, iterations=1)
    print_table(
        "E10: Lemma 4.6 — class sizes O(n log n / k)",
        ["family", "n", "k", "max_class*k/(n ln n)"],
        [(r["family"], r["n"], r["k"], r["class_ratio"]) for r in rows],
    )
    for r in rows:
        assert r["class_ratio"] <= 40.0

def smoke():
    """Tiny E1-style run for the bench-smoke tier."""
    row = _run_family("harary(4,12)", lambda: harary_graph(4, 12))
    assert row["size"] > 0
