"""E1 + E10 — Theorem 1.1/1.2 packing quality and Lemma 4.6 class sizes.

Paper claims:
* fractional dominating tree packing of size Ω(k / log n);
* each node in O(log n) trees;
* tree diameters Õ(n / k);
* (Lemma 4.6) each class holds O(n log n / k) virtual nodes.

This module is also the **kernel speed gate** for the vertex-connectivity
half of the decomposition: :func:`run` times the fastgraph-backed
:func:`construct_cds_packing` against the preserved pre-kernel loop
(:mod:`repro.core.cds_packing_reference`) with results asserted
bit-identical, and writes ``BENCH_cds_packing.json``. Acceptance gate:
≥ 1.5× at n = 500. Run via::

    PYTHONPATH=src python benchmarks/run_benchmarks.py --suite cds_packing
    PYTHONPATH=src python benchmarks/bench_cds_packing.py          # direct
"""

import argparse
import json
import math
import pathlib
import platform
import time
from typing import Callable, Dict, List

import pytest

try:
    from benchmarks.conftest import print_table
except ImportError:  # direct script execution from the benchmarks dir
    from conftest import print_table
from repro.core.cds_packing import PackingParameters, construct_cds_packing
from repro.core.cds_packing_reference import construct_cds_packing_reference
from repro.graphs.connectivity import vertex_connectivity
from repro.graphs.generators import (
    clique_chain,
    fat_cycle,
    harary_graph,
    hypercube,
    random_regular_connected,
)

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

FAMILIES = [
    ("harary(4,32)", lambda: harary_graph(4, 32)),
    ("harary(8,32)", lambda: harary_graph(8, 32)),
    ("harary(12,36)", lambda: harary_graph(12, 36)),
    ("clique_chain(4,8)", lambda: clique_chain(4, 8)),
    ("fat_cycle(3,8)", lambda: fat_cycle(3, 8)),
    ("hypercube(5)", lambda: hypercube(5)),
    ("regular(10,32)", lambda: random_regular_connected(10, 32, rng=1)),
]


def _run_family(name, builder, seed=7):
    g = builder()
    n = g.number_of_nodes()
    k = vertex_connectivity(g)
    result = construct_cds_packing(
        g, k, params=PackingParameters(class_factor=1.0), rng=seed
    )
    result.packing.verify()
    counts = result.packing.trees_per_node()
    vg = result.virtual_graph
    max_class = max(vg.virtual_counts_per_class())
    return {
        "family": name,
        "n": n,
        "k": k,
        "size": result.size,
        "size_ratio": result.size / (k / math.log(n)),
        "trees": len(result.packing),
        "max_membership": max(counts.values()),
        "membership_bound": 3 * vg.layers,
        "max_diameter": result.packing.max_diameter(),
        "diam_over_nk": result.packing.max_diameter() / (n / max(1, k)),
        "class_ratio": max_class * k / (n * math.log(n)),
    }


@pytest.mark.benchmark(group="E1-cds-packing")
def test_e1_packing_size_vs_connectivity(benchmark):
    """E1: size/(k/ln n) should be bounded below across families; node
    membership stays within 3L = O(log n)."""
    rows = []

    def run_all():
        rows.clear()
        for name, builder in FAMILIES:
            rows.append(_run_family(name, builder))
        return rows

    benchmark.pedantic(run_all, rounds=1, iterations=1)
    print_table(
        "E1: Theorem 1.1/1.2 — fractional dominating tree packing",
        [
            "family", "n", "k", "size", "size/(k/ln n)",
            "trees", "node-membership (<=3L)", "3L",
            "max tree diam", "diam/(n/k)",
        ],
        [
            (
                r["family"], r["n"], r["k"], r["size"], r["size_ratio"],
                r["trees"], r["max_membership"], r["membership_bound"],
                r["max_diameter"], r["diam_over_nk"],
            )
            for r in rows
        ],
    )
    for r in rows:
        assert r["size"] > 0
        assert r["max_membership"] <= r["membership_bound"]


@pytest.mark.benchmark(group="E1-cds-packing")
def test_e1b_size_scales_linearly_with_k(benchmark):
    """E1b: at fixed n, size grows ~linearly in k (the Ω(k/log n) shape).

    Uses L = ⌈log₂ n⌉ layers (layer_factor=1) so that t = k exceeds the
    3L membership cap and classes stop being all-of-V."""
    sweep = [(8, 48), (16, 48), (24, 48), (32, 48)]
    rows = []

    def run_all():
        rows.clear()
        for k, n in sweep:
            g = harary_graph(k, n)
            params = PackingParameters(
                class_factor=1.0, layer_factor=1, min_layers=4
            )
            result = construct_cds_packing(g, k, params=params, rng=5)
            result.packing.verify()
            rows.append(
                (
                    k,
                    n,
                    result.size,
                    result.size / (k / math.log(n)),
                    len(result.packing),
                )
            )
        return rows

    benchmark.pedantic(run_all, rounds=1, iterations=1)
    print_table(
        "E1b: size vs k at fixed n=48 (expect ~linear growth, ratio ~const)",
        ["k", "n", "size", "size/(k/ln n)", "trees"],
        rows,
    )
    sizes = [r[2] for r in rows]
    assert sizes[-1] > sizes[0], "packing size must grow with k"
    ratios = [r[3] for r in rows]
    assert min(ratios) >= 0.1, "Ω(k/log n) ratio collapsed"


@pytest.mark.benchmark(group="E10-class-sizes")
def test_e10_lemma_4_6_class_sizes(benchmark):
    """E10: max class size · k / (n ln n) bounded (Lemma 4.6)."""
    rows = []

    def run_all():
        rows.clear()
        for name, builder in FAMILIES[:5]:
            rows.append(_run_family(name, builder, seed=13))
        return rows

    benchmark.pedantic(run_all, rounds=1, iterations=1)
    print_table(
        "E10: Lemma 4.6 — class sizes O(n log n / k)",
        ["family", "n", "k", "max_class*k/(n ln n)"],
        [(r["family"], r["n"], r["k"], r["class_ratio"]) for r in rows],
    )
    for r in rows:
        assert r["class_ratio"] <= 40.0

def smoke():
    """Tiny E1-style run + kernel-vs-reference gate for the bench-smoke tier."""
    row = _run_family("harary(4,12)", lambda: harary_graph(4, 12))
    assert row["size"] > 0
    report = run(quick=True, repeats=1)
    assert report["results"], "cds_packing bench produced no rows"
    for bench_row in report["results"]:
        assert bench_row["packing_size"] > 0


# ----------------------------------------------------------------------
# Kernel-vs-reference timing driver (BENCH_cds_packing.json)
# ----------------------------------------------------------------------


def _speed_cases(quick: bool):
    if quick:
        return [
            ("harary(4,48)", lambda: harary_graph(4, 48), 4),
            ("regular(6,60)", lambda: random_regular_connected(6, 60, rng=3), 6),
        ]
    return [
        ("harary(6,120)", lambda: harary_graph(6, 120), 6),
        ("regular(8,250)", lambda: random_regular_connected(8, 250, rng=3), 8),
        ("harary(8,500)", lambda: harary_graph(8, 500), 8),
        ("regular(8,500)", lambda: random_regular_connected(8, 500, rng=3), 8),
    ]


def _best_of(fn: Callable[[], object], repeats: int) -> tuple:
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        elapsed = time.perf_counter() - start
        best = min(best, elapsed)
    return best, result


def _tree_canon(result):
    return [
        (
            wt.class_id,
            wt.weight,
            frozenset(wt.tree.nodes()),
            frozenset(frozenset(e) for e in wt.tree.edges()),
        )
        for wt in result.packing.trees
    ]


def run(quick: bool = False, repeats: int = 3, seed: int = 9) -> Dict:
    """Time the kernel against the reference; assert bit-identity per row."""
    rows: List[Dict] = []
    for name, builder, k in _speed_cases(quick):
        graph = builder()
        # Same repeat count for both sides: best-of-N is monotone in N,
        # so an asymmetric N would bias the speedup that feeds the gate.
        kernel_s, kernel_result = _best_of(
            lambda: construct_cds_packing(graph, k, rng=seed), repeats
        )
        reference_s, reference_result = _best_of(
            lambda: construct_cds_packing_reference(graph, k, rng=seed),
            repeats,
        )
        if (
            kernel_result.valid_classes != reference_result.valid_classes
            or kernel_result.packing.size != reference_result.packing.size
            or _tree_canon(kernel_result) != _tree_canon(reference_result)
        ):
            raise AssertionError(
                f"{name}: kernel and reference CDS packings diverged"
            )
        rows.append(
            {
                "graph": name,
                "n": graph.number_of_nodes(),
                "m": graph.number_of_edges(),
                "k_guess": k,
                "seed": seed,
                "valid_classes": len(kernel_result.valid_classes),
                "attempts": kernel_result.attempts,
                "packing_size": kernel_result.packing.size,
                "reference_s": round(reference_s, 6),
                "kernel_s": round(kernel_s, 6),
                "speedup": round(reference_s / kernel_s, 2),
            }
        )
    return {
        "benchmark": "cds_packing",
        "unit": "seconds (best of repeats, wall clock)",
        "repeats": repeats,
        "gate": ">=1.5x at n=500, packings asserted bit-identical",
        "python": platform.python_version(),
        "machine": platform.machine(),
        "results": rows,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="tiny graphs")
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--seed", type=int, default=9)
    parser.add_argument(
        "--out",
        type=pathlib.Path,
        default=REPO_ROOT / "BENCH_cds_packing.json",
        help="output JSON path (default: repo root)",
    )
    args = parser.parse_args(argv)
    if args.repeats < 1:
        parser.error("--repeats must be >= 1")
    report = run(quick=args.quick, repeats=args.repeats, seed=args.seed)
    args.out.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
    for row in report["results"]:
        print(
            "{graph:>16}  n={n:<4} m={m:<5} ref={reference_s:.3f}s "
            "kernel={kernel_s:.3f}s speedup={speedup}x "
            "size={packing_size:.3f}".format(**row)
        )
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
