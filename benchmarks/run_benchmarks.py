"""Machine-readable benchmark driver for the repo's hot paths.

Three suites, each timing a rewrite against its preserved reference
implementation and writing a JSON file at the repo root (the perf
trajectory: future PRs append runs and regressions become diffable
numbers instead of anecdotes):

* ``spanning`` — the kernel-backed
  :func:`fractional_spanning_tree_packing` vs the pre-kernel
  implementation (:mod:`repro.core.spanning_packing_reference`), with
  packings asserted identical → ``BENCH_spanning_packing.json``.
  Acceptance gate: ≥ 5× at n≈500.
* ``simulator`` — the indexed round-loop engine vs the preserved
  reference loop (:mod:`repro.simulator.runner_reference`) on flooding
  and shared-MST workloads, outputs asserted identical →
  ``BENCH_simulator.json`` (see :mod:`bench_simulator`). Acceptance
  gate: ≥ 2× rounds/sec on flooding at n = 1000.
* ``cds_packing`` — the kernel-backed CDS / dominating-tree packing vs
  the pre-kernel loop (:mod:`repro.core.cds_packing_reference`),
  packings asserted bit-identical → ``BENCH_cds_packing.json`` (see
  :mod:`bench_cds_packing`). Acceptance gate: ≥ 1.5× at n = 500.
* ``api`` — the session-cached estimate→pack→broadcast pipeline
  (:class:`repro.api.GraphSession`) vs the per-call free-function path,
  outputs asserted identical → ``BENCH_api.json`` (see
  :mod:`bench_api`). Acceptance gate: cached beats per-call on every
  full-size row.
* ``resilience`` — corruption sweep of the uncoded flood vs the coded
  defenses (:mod:`repro.apps.coded`) under the adversary layer →
  ``BENCH_resilience.json`` (see :mod:`bench_resilience`). Acceptance
  gate: at the reference corruption rate the uncoded flood measurably
  fails while both coded variants hold ≥ 0.99 coverage with zero wrong
  answers.
* ``service`` — the warm ``repro serve`` core vs cold per-call
  sessions, plus incremental vs from-scratch re-canonicalization per
  edit → ``BENCH_service.json`` (see :mod:`bench_service`). Acceptance
  gate: warm beats cold on every full-size row; both edit paths end
  bit-identical.
* ``batch`` — batch scheduler jobs/sec across backend × worker plans on
  a single-graph matrix → ``BENCH_batch.json`` (see :mod:`bench_batch`).
  Acceptance gate: every backend byte-identical to serial; the
  single-graph matrix splits into ≥ 2 chunks under the process plane.

Run from the repo root::

    PYTHONPATH=src python benchmarks/run_benchmarks.py                 # all
    PYTHONPATH=src python benchmarks/run_benchmarks.py --quick         # CI-sized
    PYTHONPATH=src python benchmarks/run_benchmarks.py --suite cds_packing
"""

from __future__ import annotations

import argparse
import json
import pathlib
import platform
import time
from typing import Callable, Dict, List

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent


def _cases(quick: bool):
    # All cases must stay in the single-Karger-part regime (η = 1, i.e.
    # λ well below 60·ln n/ε²): with η > 1 the kernel intentionally
    # sizes parts from λ/η while the reference re-runs the connectivity
    # oracle per part, so the exact-size equality gate below only holds
    # for η = 1. The η > 1 path is covered by tests/test_fastgraph.py.
    from repro.graphs.generators import harary_graph, random_regular_connected

    if quick:
        return [
            ("harary(6,48)", lambda: harary_graph(6, 48), 6),
            ("regular(8,100)", lambda: random_regular_connected(8, 100, rng=3), 8),
        ]
    return [
        ("harary(6,120)", lambda: harary_graph(6, 120), 6),
        ("regular(8,250)", lambda: random_regular_connected(8, 250, rng=3), 8),
        ("regular(8,500)", lambda: random_regular_connected(8, 500, rng=3), 8),
    ]


def _best_of(fn: Callable[[], object], repeats: int) -> tuple:
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        elapsed = time.perf_counter() - start
        best = min(best, elapsed)
    return best, result


def run(quick: bool = False, repeats: int = 3, seed: int = 9) -> Dict:
    from repro.core.spanning_packing import (
        MwuParameters,
        fractional_spanning_tree_packing,
    )
    from repro.core.spanning_packing_reference import (
        fractional_spanning_tree_packing_reference,
    )

    params = MwuParameters(epsilon=0.15, beta_factor=1.0)
    rows: List[Dict] = []
    for name, builder, lam in _cases(quick):
        graph = builder()
        kernel_s, kernel_result = _best_of(
            lambda: fractional_spanning_tree_packing(
                graph, lam=lam, params=params, rng=seed
            ),
            repeats,
        )
        reference_s, reference_result = _best_of(
            lambda: fractional_spanning_tree_packing_reference(
                graph, lam=lam, params=params, rng=seed
            ),
            max(1, repeats - 1),
        )
        if kernel_result.size != reference_result.size:
            raise AssertionError(
                f"{name}: kernel size {kernel_result.size} != "
                f"reference size {reference_result.size}"
            )
        rows.append(
            {
                "graph": name,
                "n": graph.number_of_nodes(),
                "m": graph.number_of_edges(),
                "lam": lam,
                "seed": seed,
                "mwu_iterations": max(
                    t.iterations for t in kernel_result.traces
                ),
                "packing_size": kernel_result.size,
                "efficiency": kernel_result.efficiency,
                "reference_s": round(reference_s, 6),
                "kernel_s": round(kernel_s, 6),
                "speedup": round(reference_s / kernel_s, 2),
            }
        )
    return {
        "benchmark": "spanning_packing",
        "unit": "seconds (best of repeats, wall clock)",
        "repeats": repeats,
        "params": {"epsilon": 0.15, "beta_factor": 1.0},
        "python": platform.python_version(),
        "machine": platform.machine(),
        "results": rows,
    }


def _run_spanning(args) -> None:
    repeats = args.repeats if args.repeats is not None else 3
    seed = args.seed if args.seed is not None else 9
    report = run(quick=args.quick, repeats=repeats, seed=seed)
    out = args.out or REPO_ROOT / "BENCH_spanning_packing.json"
    out.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
    for row in report["results"]:
        print(
            "{graph:>16}  n={n:<4} m={m:<5} ref={reference_s:.3f}s "
            "kernel={kernel_s:.3f}s speedup={speedup}x size={packing_size:.3f}".format(
                **row
            )
        )
    print(f"wrote {out}")


def _forwarded_args(args, suite: str):
    """CLI flags forwarded to a sub-benchmark's own ``main``; unset ones
    fall back to that module's defaults (which differ per suite)."""
    forwarded = ["--quick"] if args.quick else []
    if args.repeats is not None:
        forwarded += ["--repeats", str(args.repeats)]
    if args.seed is not None:
        forwarded += ["--seed", str(args.seed)]
    if args.out is not None and args.suite == suite:
        forwarded += ["--out", str(args.out)]
    return forwarded


def _run_simulator(args) -> None:
    try:
        import bench_simulator
    except ImportError:  # running as a module from the repo root
        from benchmarks import bench_simulator
    forwarded = _forwarded_args(args, "simulator")
    if args.engines is not None:
        forwarded += ["--engines", args.engines]
    bench_simulator.main(forwarded)


def _run_cds(args) -> None:
    try:
        import bench_cds_packing
    except ImportError:  # running as a module from the repo root
        from benchmarks import bench_cds_packing
    bench_cds_packing.main(_forwarded_args(args, "cds_packing"))


def _run_api(args) -> None:
    try:
        import bench_api
    except ImportError:  # running as a module from the repo root
        from benchmarks import bench_api
    bench_api.main(_forwarded_args(args, "api"))


def _run_resilience(args) -> None:
    try:
        import bench_resilience
    except ImportError:  # running as a module from the repo root
        from benchmarks import bench_resilience
    # bench_resilience measures correctness fractions, not timings, so
    # it takes no --repeats flag; forward only what it understands.
    forwarded = ["--quick"] if args.quick else []
    if args.seed is not None:
        forwarded += ["--seed", str(args.seed)]
    if args.out is not None and args.suite == "resilience":
        forwarded += ["--out", str(args.out)]
    bench_resilience.main(forwarded)


def _run_service(args) -> None:
    try:
        import bench_service
    except ImportError:  # running as a module from the repo root
        from benchmarks import bench_service
    bench_service.main(_forwarded_args(args, "service"))


def _run_batch(args) -> None:
    try:
        import bench_batch
    except ImportError:  # running as a module from the repo root
        from benchmarks import bench_batch
    bench_batch.main(_forwarded_args(args, "batch"))


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", help="small graphs (CI-sized run)"
    )
    parser.add_argument(
        "--suite",
        choices=[
            "all", "spanning", "simulator", "cds_packing", "api",
            "resilience", "service", "batch",
        ],
        default="all",
        help="which benchmark suite(s) to run",
    )
    parser.add_argument(
        "--repeats", type=int, default=None,
        help="timing repeats (default: 3 spanning/cds_packing / 10 simulator)",
    )
    parser.add_argument(
        "--seed", type=int, default=None,
        help="seed (default: 9 spanning/cds_packing / 3 simulator)",
    )
    parser.add_argument(
        "--engines", type=str, default=None,
        help="comma-separated engine filter for the simulator suite "
        "(e.g. 'indexed,vectorized'); typos fail with the engine "
        "registry's listing",
    )
    parser.add_argument(
        "--out",
        type=pathlib.Path,
        default=None,
        help="output JSON path for a single suite (default: repo root)",
    )
    args = parser.parse_args(argv)
    if args.repeats is not None and args.repeats < 1:
        parser.error("--repeats must be >= 1")
    if args.suite in ("all", "spanning"):
        _run_spanning(args)
    if args.suite in ("all", "simulator"):
        _run_simulator(args)
    if args.suite in ("all", "cds_packing"):
        _run_cds(args)
    if args.suite in ("all", "api"):
        _run_api(args)
    if args.suite in ("all", "resilience"):
        _run_resilience(args)
    if args.suite in ("all", "service"):
        _run_service(args)
    if args.suite in ("all", "batch"):
        _run_batch(args)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
