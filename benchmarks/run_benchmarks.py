"""Machine-readable benchmark driver for the packing hot paths.

Times the kernel-backed :func:`fractional_spanning_tree_packing`
against the preserved pre-kernel implementation
(:mod:`repro.core.spanning_packing_reference`) on the same graphs and
seeds, checks the packings are identical (same size, same efficiency —
the rewrite is bit-compatible, not just approximately equal), and
writes the results to ``BENCH_spanning_packing.json`` at the repo
root. The JSON seeds the perf trajectory: future PRs append runs and
regressions become diffable numbers instead of anecdotes.

Run from the repo root::

    PYTHONPATH=src python benchmarks/run_benchmarks.py            # full
    PYTHONPATH=src python benchmarks/run_benchmarks.py --quick    # CI-sized

The acceptance gate for the kernel rewrite is the ``speedup`` field of
the ``n≈500`` row: ≥ 5× over the reference with identical packing
size/efficiency.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import platform
import time
from typing import Callable, Dict, List

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent


def _cases(quick: bool):
    # All cases must stay in the single-Karger-part regime (η = 1, i.e.
    # λ well below 60·ln n/ε²): with η > 1 the kernel intentionally
    # sizes parts from λ/η while the reference re-runs the connectivity
    # oracle per part, so the exact-size equality gate below only holds
    # for η = 1. The η > 1 path is covered by tests/test_fastgraph.py.
    from repro.graphs.generators import harary_graph, random_regular_connected

    if quick:
        return [
            ("harary(6,48)", lambda: harary_graph(6, 48), 6),
            ("regular(8,100)", lambda: random_regular_connected(8, 100, rng=3), 8),
        ]
    return [
        ("harary(6,120)", lambda: harary_graph(6, 120), 6),
        ("regular(8,250)", lambda: random_regular_connected(8, 250, rng=3), 8),
        ("regular(8,500)", lambda: random_regular_connected(8, 500, rng=3), 8),
    ]


def _best_of(fn: Callable[[], object], repeats: int) -> tuple:
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        elapsed = time.perf_counter() - start
        best = min(best, elapsed)
    return best, result


def run(quick: bool = False, repeats: int = 3, seed: int = 9) -> Dict:
    from repro.core.spanning_packing import (
        MwuParameters,
        fractional_spanning_tree_packing,
    )
    from repro.core.spanning_packing_reference import (
        fractional_spanning_tree_packing_reference,
    )

    params = MwuParameters(epsilon=0.15, beta_factor=1.0)
    rows: List[Dict] = []
    for name, builder, lam in _cases(quick):
        graph = builder()
        kernel_s, kernel_result = _best_of(
            lambda: fractional_spanning_tree_packing(
                graph, lam=lam, params=params, rng=seed
            ),
            repeats,
        )
        reference_s, reference_result = _best_of(
            lambda: fractional_spanning_tree_packing_reference(
                graph, lam=lam, params=params, rng=seed
            ),
            max(1, repeats - 1),
        )
        if kernel_result.size != reference_result.size:
            raise AssertionError(
                f"{name}: kernel size {kernel_result.size} != "
                f"reference size {reference_result.size}"
            )
        rows.append(
            {
                "graph": name,
                "n": graph.number_of_nodes(),
                "m": graph.number_of_edges(),
                "lam": lam,
                "seed": seed,
                "mwu_iterations": max(
                    t.iterations for t in kernel_result.traces
                ),
                "packing_size": kernel_result.size,
                "efficiency": kernel_result.efficiency,
                "reference_s": round(reference_s, 6),
                "kernel_s": round(kernel_s, 6),
                "speedup": round(reference_s / kernel_s, 2),
            }
        )
    return {
        "benchmark": "spanning_packing",
        "unit": "seconds (best of repeats, wall clock)",
        "repeats": repeats,
        "params": {"epsilon": 0.15, "beta_factor": 1.0},
        "python": platform.python_version(),
        "machine": platform.machine(),
        "results": rows,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", help="small graphs (CI-sized run)"
    )
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--seed", type=int, default=9)
    parser.add_argument(
        "--out",
        type=pathlib.Path,
        default=REPO_ROOT / "BENCH_spanning_packing.json",
        help="output JSON path (default: repo root)",
    )
    args = parser.parse_args(argv)
    if args.repeats < 1:
        parser.error("--repeats must be >= 1")
    report = run(quick=args.quick, repeats=args.repeats, seed=args.seed)
    args.out.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
    for row in report["results"]:
        print(
            "{graph:>16}  n={n:<4} m={m:<5} ref={reference_s:.3f}s "
            "kernel={kernel_s:.3f}s speedup={speedup}x size={packing_size:.3f}".format(
                **row
            )
        )
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
