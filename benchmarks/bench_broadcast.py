"""E5 — Corollaries 1.4/1.5 + A.1: broadcast throughput and gossip.

Paper claims: throughput Ω(k / log n) messages/round in V-CONGEST,
⌈(λ−1)/2⌉(1−ε) in E-CONGEST; gossip completes in Õ(η + (N+n)/k)."""

import math

import pytest

from benchmarks.conftest import print_table
from repro.apps.broadcast import edge_broadcast, vertex_broadcast
from repro.apps.gossip import gossip
from repro.core.cds_packing import PackingParameters, construct_cds_packing
from repro.core.spanning_packing import (
    MwuParameters,
    fractional_spanning_tree_packing,
)
from repro.graphs.generators import harary_graph

FAST = MwuParameters(epsilon=0.2, beta_factor=2.0)


@pytest.mark.benchmark(group="E5-broadcast")
def test_e5_vertex_throughput_vs_k(benchmark):
    rows = []

    def run_all():
        rows.clear()
        for k in (4, 8, 12):
            g = harary_graph(k, 36)
            packing = construct_cds_packing(
                g, k, params=PackingParameters(class_factor=1.0, layer_factor=1), rng=3
            ).packing
            sources = {i: i % 36 for i in range(3 * k)}
            out = vertex_broadcast(packing, sources, rng=4)
            n = 36
            rows.append(
                (
                    k,
                    len(sources),
                    out.rounds,
                    out.throughput,
                    out.throughput / (k / math.log(n)),
                )
            )
        return rows

    benchmark.pedantic(run_all, rounds=1, iterations=1)
    print_table(
        "E5: Corollary 1.4 — V-CONGEST broadcast throughput",
        ["k", "N", "rounds", "throughput", "thr/(k/ln n)"],
        rows,
    )
    # Throughput must grow with k.
    assert rows[-1][3] > rows[0][3] * 0.8


@pytest.mark.benchmark(group="E5-broadcast")
def test_e5_edge_throughput(benchmark):
    rows = []

    def run_all():
        rows.clear()
        for lam in (5, 8):
            g = harary_graph(lam, 24)
            packing = fractional_spanning_tree_packing(
                g, params=FAST, rng=5
            ).packing
            sources = {i: i % 24 for i in range(4 * lam)}
            out = edge_broadcast(packing, sources, rng=6)
            target = max(1, math.ceil((lam - 1) / 2))
            rows.append(
                (lam, len(sources), out.rounds, out.throughput, out.throughput / target)
            )
        return rows

    benchmark.pedantic(run_all, rounds=1, iterations=1)
    print_table(
        "E5b: Corollary 1.5 — E-CONGEST broadcast throughput",
        ["lam", "N", "rounds", "throughput", "thr/ceil((l-1)/2)"],
        rows,
    )
    assert all(r[3] > 0 for r in rows)


@pytest.mark.benchmark(group="E5-broadcast")
def test_e5_gossip_scaling(benchmark):
    """Corollary A.1: rounds ≈ Õ(η + (N+n)/σ)."""
    rows = []

    def run_all():
        rows.clear()
        g = harary_graph(8, 32)
        packing = construct_cds_packing(
            g, 8, params=PackingParameters(class_factor=1.0, layer_factor=1), rng=7
        ).packing
        for n_messages, eta in ((16, 1), (32, 1), (64, 2), (96, 3)):
            outcome = gossip(
                packing, n_messages=n_messages, max_per_node=eta, rng=8
            )
            rows.append(
                (
                    n_messages,
                    eta,
                    outcome.rounds,
                    outcome.reference_rounds,
                    outcome.slowdown,
                )
            )
        return rows

    benchmark.pedantic(run_all, rounds=1, iterations=1)
    print_table(
        "E5c: Corollary A.1 — gossip rounds vs eta + (N+n)/sigma",
        ["N", "eta", "rounds", "reference", "slowdown (the Õ factor)"],
        rows,
    )
    assert all(r[4] <= 40 for r in rows)

def smoke():
    """Tiny E5-style run for the bench-smoke tier."""
    graph = harary_graph(4, 12)
    packing = construct_cds_packing(
        graph, 4, params=PackingParameters(class_factor=1.0, layer_factor=1), rng=3
    ).packing
    out = vertex_broadcast(packing, {i: i % 12 for i in range(4)}, rng=4)
    assert out.rounds > 0
