"""E31: batch scheduler throughput — jobs/sec vs backend × workers.

The batch layer's scaling story rests on two claims: (1) every
registered backend emits **byte-identical** JSONL for the same jobs
file (chunking, worker count, and finish order never leak into the
output), and (2) a sweep whose jobs all hit *one* graph still fans out
(chunk splitting fixed the one-graph parallelism hole). This benchmark
runs a single-graph connectivity matrix through each backend × worker
combination, asserts output bytes match the serial reference, records
jobs/sec → ``BENCH_batch.json`` (via ``run_benchmarks.py --suite
batch``), and for the process plane records the distinct worker pids
actually used.

Gates (hard failures, not timing-sensitive — this container may have
one core, so no speedup gate):

* every backend × worker row is byte-identical to the serial run;
* ``process`` with ≥ 2 workers splits the single-graph matrix into
  ≥ 2 chunks (the parallelism-hole fix, observable without timing).
"""

from __future__ import annotations

import argparse
import io
import json
import pathlib
import platform
import time
from typing import Dict, List

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent


def _matrix(quick: bool) -> Dict:
    # One graph on purpose: the regression this suite pins is the
    # single-graph sweep that previously could never use >1 worker.
    return {
        "graphs": ["harary:4,12"],
        "tasks": ["connectivity"],
        "trials": 12 if quick else 48,
    }


def _plans(quick: bool) -> List[tuple]:
    if quick:
        return [("serial", 1), ("thread", 2), ("process", 2)]
    return [
        ("serial", 1),
        ("thread", 2), ("thread", 4),
        ("process", 2), ("process", 4),
    ]


def run(quick: bool = False, repeats: int = 3, seed: int = 0) -> Dict:
    """Time each backend × workers plan; assert byte-identical output."""
    from repro.api import batch

    matrix = _matrix(quick)
    jobs = matrix["trials"]

    reference = io.StringIO()
    batch.run(matrix, base_seed=seed, jsonl=reference)
    reference_bytes = reference.getvalue()

    rows: List[Dict] = []
    for backend, workers in _plans(quick):
        best = float("inf")
        stats: Dict = {}
        for _ in range(repeats):
            stream = io.StringIO()
            stats = {}
            start = time.perf_counter()
            batch.run(
                matrix, base_seed=seed, jsonl=stream,
                backend=backend, workers=workers, stats=stats,
            )
            best = min(best, time.perf_counter() - start)
            if stream.getvalue() != reference_bytes:
                raise AssertionError(
                    f"{backend} x{workers}: output bytes diverged from "
                    "the serial reference"
                )
        if backend == "process" and workers > 1 and stats["chunks"] < 2:
            raise AssertionError(
                f"process x{workers}: single-graph matrix was not split "
                f"(chunks={stats['chunks']}) — the one-graph parallelism "
                "hole is back"
            )
        rows.append(
            {
                "backend": backend,
                "workers": workers,
                "jobs": jobs,
                "chunks": stats["chunks"],
                "distinct_worker_pids": len(stats["worker_pids"]),
                "seconds": round(best, 6),
                "jobs_per_sec": round(jobs / best, 2),
                "identical_to_serial": True,
            }
        )
    return {
        "benchmark": "batch",
        "unit": "jobs/sec (best of repeats, wall clock)",
        "matrix": matrix,
        "repeats": repeats,
        "seed": seed,
        "gate": (
            "byte-identical JSONL across backends; single-graph matrix "
            "splits into >=2 chunks under the process plane"
        ),
        "python": platform.python_version(),
        "machine": platform.machine(),
        "results": rows,
    }


def smoke():
    """Tiny run + identity gates for the bench-smoke tier."""
    report = run(quick=True, repeats=1)
    assert report["results"], "batch bench produced no rows"
    for row in report["results"]:
        assert row["identical_to_serial"]
        assert row["jobs_per_sec"] > 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="tiny matrix")
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--out",
        type=pathlib.Path,
        default=REPO_ROOT / "BENCH_batch.json",
        help="output JSON path (default: repo root)",
    )
    args = parser.parse_args(argv)
    if args.repeats < 1:
        parser.error("--repeats must be >= 1")
    report = run(quick=args.quick, repeats=args.repeats, seed=args.seed)
    args.out.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
    for row in report["results"]:
        print(
            "{backend:>8} x{workers}  jobs={jobs:<4} chunks={chunks:<3} "
            "pids={distinct_worker_pids}  {seconds:.3f}s  "
            "{jobs_per_sec} jobs/s".format(**row)
        )
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
