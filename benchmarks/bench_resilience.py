"""E27: corruption sweep — coded vs uncoded flood under adversarial channels.

The :mod:`repro.simulator.adversary` layer flips delivered payloads with
a per-``(edge, round)`` probability; this suite sweeps that rate over
the uncoded retransmitting flood and the two coded defenses of
:mod:`repro.apps.coded` (checksummed drop-on-bad, repetition voting) and
records, per point:

* **coverage** — fraction of nodes holding the true global minimum;
* **wrong_rate** — fraction holding a value strictly *below* it (a
  state no honest execution can reach: direct evidence of poisoning);
* **bits** and the coded **overhead ratio** vs the uncoded flood at the
  same rate (the price of the defense in honest transmitted bits).

Gate: at the benchmark's reference corruption rate the uncoded flood
must *measurably fail* (wrong answers or lost coverage) while both
coded variants hold ≥ 0.99 coverage with zero wrong answers — the
coded-defense acceptance criterion of the adversarial-channels PR.
Results → ``BENCH_resilience.json`` (via ``run_benchmarks.py --suite
resilience``).
"""

from __future__ import annotations

import argparse
import json
import pathlib
import platform
from typing import Dict, List

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

#: The corruption rate the gate is evaluated at: high enough that the
#: uncoded flood is reliably poisoned on every benchmark graph, low
#: enough that checksum verification and repetition voting stay clean.
GATE_RATE = 0.05

#: Coded variants must hold at least this coverage at GATE_RATE.
GATE_COVERAGE = 0.99


def _cases(quick: bool):
    from repro.graphs.generators import harary_graph, random_regular_connected

    if quick:
        return [("harary(4,16)", lambda: harary_graph(4, 16))]
    return [
        ("harary(4,24)", lambda: harary_graph(4, 24)),
        ("regular(6,60)", lambda: random_regular_connected(6, 60, rng=3)),
        ("harary(6,100)", lambda: harary_graph(6, 100)),
    ]


def _rates(quick: bool) -> List[float]:
    if quick:
        return [0.0, GATE_RATE]
    return [0.0, 0.02, GATE_RATE, 0.1]


def run(quick: bool = False, seed: int = 0) -> Dict:
    """Sweep corruption rates × flood variants; gate the coded defenses."""
    from repro.apps.resilience import flood_corruption_sweep

    rows: List[Dict] = []
    gate_failures: List[str] = []
    for name, builder in _cases(quick):
        graph = builder()
        reports = flood_corruption_sweep(
            graph, _rates(quick), seed=seed, kinds=("flip",)
        )
        # bits of the uncoded flood per rate, for the overhead ratio.
        uncoded_bits = {
            r.corruption_rate: r.bits
            for r in reports
            if r.variant == "uncoded"
        }
        for report in reports:
            baseline = uncoded_bits.get(report.corruption_rate, 0)
            rows.append(
                {
                    "graph": name,
                    "n": graph.number_of_nodes(),
                    "m": graph.number_of_edges(),
                    "seed": seed,
                    "variant": report.variant,
                    "corruption_rate": report.corruption_rate,
                    "coverage": round(report.coverage, 4),
                    "wrong_rate": round(report.wrong_rate, 4),
                    "completed": report.completed,
                    "rounds": report.rounds,
                    "messages": report.messages,
                    "bits": report.bits,
                    "bits_overhead": (
                        round(report.bits / baseline, 3) if baseline else None
                    ),
                }
            )
        at_gate = {
            r.variant: r
            for r in reports
            if r.corruption_rate == GATE_RATE
        }
        uncoded = at_gate["uncoded"]
        if uncoded.wrong_rate == 0.0 and uncoded.coverage == 1.0:
            gate_failures.append(
                f"{name}: uncoded flood survived rate {GATE_RATE:g} — "
                "the gate rate is not adversarial enough to discriminate"
            )
        for variant in ("checksum", "vote"):
            coded = at_gate[variant]
            if coded.coverage < GATE_COVERAGE or coded.wrong_rate > 0.0:
                gate_failures.append(
                    f"{name}: {variant} flood failed at rate {GATE_RATE:g} "
                    f"(coverage {coded.coverage:.3f}, wrong_rate "
                    f"{coded.wrong_rate:.3f})"
                )
    if gate_failures:
        raise AssertionError(
            "resilience gate failed:\n  " + "\n  ".join(gate_failures)
        )
    return {
        "benchmark": "resilience",
        "unit": "coverage / wrong-answer fraction per (rate, variant)",
        "gate": (
            f"at rate {GATE_RATE:g}: uncoded measurably fails; checksum and "
            f"vote hold coverage >= {GATE_COVERAGE:g} with wrong_rate 0"
        ),
        "adversary": {"kinds": ["flip"], "rates": _rates(quick)},
        "python": platform.python_version(),
        "machine": platform.machine(),
        "results": rows,
    }


def smoke():
    """Tiny sweep + the full gate, for the bench-smoke tier."""
    report = run(quick=True)
    assert report["results"], "resilience bench produced no rows"
    for row in report["results"]:
        assert 0.0 <= row["coverage"] <= 1.0
        assert 0.0 <= row["wrong_rate"] <= 1.0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="tiny graphs")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--out",
        type=pathlib.Path,
        default=REPO_ROOT / "BENCH_resilience.json",
        help="output JSON path (default: repo root)",
    )
    args = parser.parse_args(argv)
    report = run(quick=args.quick, seed=args.seed)
    args.out.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
    for row in report["results"]:
        print(
            "{graph:>14}  {variant:>8} p={corruption_rate:<5g} "
            "coverage={coverage:<7} wrong={wrong_rate:<7} "
            "bits={bits}".format(**row)
        )
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
