"""E7 — Corollary 1.7: O(log n)-approximation of vertex connectivity.

Paper claim: the packing size lands in [Ω(k/log n), k], so
upper/lower ≤ O(log n); we report the achieved interval and the measured
approximation ratio against the exact oracle on every family."""

import math

import pytest

from benchmarks.conftest import print_table
from repro.core.vertex_connectivity import approximate_vertex_connectivity
from repro.graphs.connectivity import vertex_connectivity
from repro.graphs.generators import (
    clique_chain,
    fat_cycle,
    harary_graph,
    hypercube,
    random_regular_connected,
    torus_grid,
)

FAMILIES = [
    ("harary(4,24)", lambda: harary_graph(4, 24)),
    ("harary(8,32)", lambda: harary_graph(8, 32)),
    ("clique_chain(4,7)", lambda: clique_chain(4, 7)),
    ("fat_cycle(3,7)", lambda: fat_cycle(3, 7)),
    ("hypercube(5)", lambda: hypercube(5)),
    ("torus(5,6)", lambda: torus_grid(5, 6)),
    ("regular(8,28)", lambda: random_regular_connected(8, 28, rng=3)),
]


@pytest.mark.benchmark(group="E7-vc-approx")
def test_e7_approximation_quality(benchmark):
    rows = []

    def run_all():
        rows.clear()
        for name, builder in FAMILIES:
            g = builder()
            k = vertex_connectivity(g)
            est = approximate_vertex_connectivity(g, rng=15)
            n = g.number_of_nodes()
            ratio = est.upper_bound / max(est.lower_bound, 1.0)
            rows.append(
                (
                    name,
                    k,
                    est.lower_bound,
                    est.upper_bound,
                    est.contains(k),
                    ratio,
                    ratio / math.log(n),
                )
            )
        return rows

    benchmark.pedantic(run_all, rounds=1, iterations=1)
    print_table(
        "E7: Corollary 1.7 — vertex connectivity O(log n)-approximation",
        ["family", "true k", "lower", "upper", "k in interval",
         "upper/lower", "(upper/lower)/ln n"],
        rows,
    )
    assert all(r[4] for r in rows), "an interval missed the true k"
    assert all(r[6] <= 8 for r in rows), "approximation worse than O(log n)"

def smoke():
    """Tiny E7-style run for the bench-smoke tier."""
    est = approximate_vertex_connectivity(harary_graph(4, 12), rng=15)
    assert est.lower_bound <= est.upper_bound
