"""E4 — Theorem B.1 round complexity: Õ(min{n/k, D + √n}) shape.

We measure simulated meta-rounds of the distributed CDS packing as n
grows, and separately as the diameter regime changes (expander vs chain),
reporting the analytic Theorem B.2 bound beside the measured count.
The claim's observable shape: meta-rounds grow sublinearly in n on
low-diameter graphs and track component diameters on chains."""

import math

import pytest

from benchmarks.conftest import print_table
from repro.core.cds_packing import PackingParameters
from repro.core.cds_packing_distributed import distributed_cds_packing
from repro.core.spanning_packing import MwuParameters
from repro.core.spanning_packing_distributed import distributed_spanning_packing
from repro.graphs.generators import clique_chain, harary_graph

PARAMS = PackingParameters(layer_factor=1, min_layers=4)


@pytest.mark.benchmark(group="E4-rounds")
def test_e4_cds_rounds_vs_n(benchmark):
    rows = []

    def run_all():
        rows.clear()
        for n in (16, 24, 32):
            g = harary_graph(4, n)
            result = distributed_cds_packing(g, 4, params=PARAMS, rng=6)
            rows.append(
                (
                    n,
                    result.meta_rounds,
                    result.real_round_estimate,
                    result.report.analytic_total(),
                    result.meta_rounds / n,
                )
            )
        return rows

    benchmark.pedantic(run_all, rounds=1, iterations=1)
    print_table(
        "E4: Theorem B.1 — distributed CDS packing rounds",
        ["n", "meta-rounds", "real rounds (x3L)", "analytic B.2", "meta/n"],
        rows,
    )
    # Shape: meta-rounds per node must not explode with n.
    ratios = [r[4] for r in rows]
    assert ratios[-1] <= 4 * ratios[0] + 4


@pytest.mark.benchmark(group="E4-rounds")
def test_e4_diameter_regimes(benchmark):
    """Low-diameter (Harary) vs high-diameter (clique chain) at equal n."""
    rows = []

    def run_all():
        rows.clear()
        for name, g in (
            ("harary(4,24) D~6", harary_graph(4, 24)),
            ("chain(4,6)  D=5", clique_chain(4, 6)),
        ):
            result = distributed_cds_packing(g, 4, params=PARAMS, rng=8)
            rows.append((name, result.meta_rounds, result.result.size))
        return rows

    benchmark.pedantic(run_all, rounds=1, iterations=1)
    print_table(
        "E4b: round counts across diameter regimes",
        ["graph", "meta-rounds", "size"],
        rows,
    )
    assert all(r[1] > 0 for r in rows)


@pytest.mark.benchmark(group="E4-rounds")
def test_e4_spanning_rounds(benchmark):
    """Distributed spanning packing round accounting (Lemma 5.1 shape)."""
    rows = []
    params = MwuParameters(epsilon=0.25, beta_factor=3.0)

    def run_all():
        rows.clear()
        for n in (12, 18, 24):
            g = harary_graph(4, n)
            result = distributed_spanning_packing(
                g, params=params, rng=7, max_iterations=12
            )
            rows.append(
                (
                    n,
                    result.report.measured.rounds,
                    result.report.analytic_total(),
                    result.result.size,
                )
            )
        return rows

    benchmark.pedantic(run_all, rounds=1, iterations=1)
    print_table(
        "E4c: distributed spanning packing rounds (Lemma 5.1)",
        ["n", "measured rounds", "analytic", "size"],
        rows,
    )
    assert all(r[1] > 0 for r in rows)

def smoke():
    """Tiny E4-style run for the bench-smoke tier."""
    result = distributed_cds_packing(harary_graph(4, 12), 4, params=PARAMS, rng=6)
    assert result.meta_rounds > 0
    spanning = distributed_spanning_packing(
        harary_graph(4, 10), 4, max_iterations=2, rng=1
    )
    assert spanning.packing.size > 0
