"""Benchmark helpers: compact table printing + shared fixtures.

Each benchmark regenerates one experiment of the index in DESIGN.md §5,
printing the paper's claim next to the measured values (EXPERIMENTS.md
records a snapshot of these tables). Timings come from pytest-benchmark;
the printed tables carry the scientific content.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence


def print_table(title: str, headers: Sequence[str], rows: Iterable[Sequence]) -> None:
    """Print an aligned results table to the benchmark log."""
    rows = [[_fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    line = "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    print(f"\n== {title} ==")
    print(line)
    print("-" * len(line))
    for row in rows:
        print("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))


def _fmt(cell) -> str:
    if isinstance(cell, float):
        return f"{cell:.3f}"
    return str(cell)
