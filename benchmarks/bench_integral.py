"""E15 — Integral packings: Ω(κ/log² n) vertex-disjoint CDSs and
Ω(λ/log n) edge-disjoint spanning trees (Section 1.2)."""

import math

import pytest

from benchmarks.conftest import print_table
from repro.core.integral_packing import (
    integral_cds_packing,
    integral_spanning_packing,
)
from repro.graphs.connectivity import edge_connectivity, vertex_connectivity
from repro.graphs.generators import fat_cycle, harary_graph, random_regular_connected


@pytest.mark.benchmark(group="E15-integral")
def test_e15_vertex_disjoint_cds(benchmark):
    rows = []

    def run_all():
        rows.clear()
        for name, builder in (
            ("harary(10,40)", lambda: harary_graph(10, 40)),
            ("fat_cycle(5,6)", lambda: fat_cycle(5, 6)),
            ("regular(12,40)", lambda: random_regular_connected(12, 40, rng=5)),
        ):
            g = builder()
            k = vertex_connectivity(g)
            n = g.number_of_nodes()
            result = integral_cds_packing(g, rng=6)
            bound = k / math.log(n) ** 2
            rows.append((name, k, result.size, bound, result.size / max(bound, 1e-9)))
        return rows

    benchmark.pedantic(run_all, rounds=1, iterations=1)
    print_table(
        "E15: integral CDS packing vs Ω(k/log² n)",
        ["family", "k", "disjoint CDSs", "k/ln²n", "achieved/bound"],
        rows,
    )
    assert all(r[2] >= 1 for r in rows)


@pytest.mark.benchmark(group="E15-integral")
def test_e15_edge_disjoint_spanning_trees(benchmark):
    rows = []

    def run_all():
        rows.clear()
        for name, builder in (
            ("harary(8,24)", lambda: harary_graph(8, 24)),
            ("harary(14,30)", lambda: harary_graph(14, 30)),
            ("regular(10,30)", lambda: random_regular_connected(10, 30, rng=7)),
        ):
            g = builder()
            lam = edge_connectivity(g)
            n = g.number_of_nodes()
            packing = integral_spanning_packing(g, rng=8)
            bound = lam / math.log(n)
            rows.append(
                (name, lam, len(packing), bound, len(packing) / max(bound, 1e-9))
            )
        return rows

    benchmark.pedantic(run_all, rounds=1, iterations=1)
    print_table(
        "E15b: integral spanning packing vs Ω(lambda/log n)",
        ["family", "lambda", "disjoint trees", "l/ln n", "achieved/bound"],
        rows,
    )
    assert all(r[2] >= 1 for r in rows)


@pytest.mark.benchmark(group="E15-integral")
def test_e15c_distributed_integral_spanning(benchmark):
    """The distributed variant (Karger parts + Lemma 5.1 simultaneous
    MSTs) must match the centralized twin's sizes while reporting its
    simulated round cost."""
    from repro.core.integral_packing_distributed import (
        distributed_integral_spanning_packing,
    )

    rows = []

    def run_all():
        rows.clear()
        for name, builder in (
            ("harary(8,24)", lambda: harary_graph(8, 24)),
            ("harary(14,30)", lambda: harary_graph(14, 30)),
            ("regular(10,30)", lambda: random_regular_connected(10, 30, rng=7)),
        ):
            g = builder()
            lam = edge_connectivity(g)
            central = len(integral_spanning_packing(g, rng=8))
            result = distributed_integral_spanning_packing(g, rng=8)
            rows.append(
                (
                    name,
                    lam,
                    central,
                    result.size,
                    result.parts,
                    result.total_rounds,
                )
            )
        return rows

    benchmark.pedantic(run_all, rounds=1, iterations=1)
    print_table(
        "E15c: distributed integral spanning packing (rounds are simulated)",
        ["family", "lambda", "central size", "dist size", "parts", "rounds"],
        rows,
    )
    assert all(r[3] >= 1 for r in rows)

def smoke():
    """Tiny E15-style run for the bench-smoke tier."""
    packing = integral_spanning_packing(harary_graph(6, 14), rng=2)
    assert packing.is_edge_disjoint()
    result = integral_cds_packing(harary_graph(8, 20), rng=6)
    assert result.size >= 1
